// Property-based cross-check of the SIMD dispatch contract (la/simd.h):
// the scalar and AVX2 kernels must produce BIT-IDENTICAL outputs — for
// the raw kernels and for everything built on top of them
// (TopKByCosineAll, CslsAdjust) — across shapes that stress the vector
// width (d not a multiple of 8, tails of every length, k > n, zero-norm
// rows). Equality here is EXPECT_EQ on floats, not a tolerance: the
// whole point of the canonical reduction order is that no tolerance is
// needed.
//
// On machines without AVX2 the cross-level tests GTEST_SKIP; the
// scalar-only properties still run.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "eval/csls.h"
#include "la/matrix.h"
#include "la/simd.h"
#include "la/similarity.h"
#include "util/rng.h"

namespace exea {
namespace {

// Restores the dispatch level a test forced, even on failure.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : original_(la::ActiveSimdLevel()) {}
  ~SimdLevelGuard() { la::SetSimdLevelForTest(original_); }

 private:
  la::SimdLevel original_;
};

std::vector<float> RandomVector(Rng& rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) {
    // Mixed magnitudes so reduction order actually matters: a
    // same-scale input could round identically under ANY summation
    // order and hide a broken kernel.
    x = rng.UniformFloat(-2.0f, 2.0f) *
        (rng.Bernoulli(0.2) ? 100.0f : 1.0f);
  }
  return v;
}

la::Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols,
                        bool with_zero_rows) {
  la::Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    if (with_zero_rows && rng.Bernoulli(0.15)) continue;  // stays all-zero
    std::vector<float> row = RandomVector(rng, cols);
    std::copy(row.begin(), row.end(), m.Row(r));
  }
  return m;
}

bool MatrixBytesEqual(const la::Matrix& a, const la::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

TEST(SimdTest, LevelNamesAreStable) {
  EXPECT_STREQ(la::SimdLevelName(la::SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(la::SimdLevelName(la::SimdLevel::kAvx2), "avx2");
}

TEST(SimdTest, ScalarOverrideSwitchesTheActiveTable) {
  SimdLevelGuard guard;
  la::SetSimdLevelForTest(la::SimdLevel::kScalar);
  EXPECT_EQ(la::ActiveSimdLevel(), la::SimdLevel::kScalar);
  EXPECT_EQ(la::ActiveSimdOps().dot, la::ScalarSimdOps().dot);
  if (la::Avx2Supported()) {
    la::SetSimdLevelForTest(la::SimdLevel::kAvx2);
    EXPECT_EQ(la::ActiveSimdLevel(), la::SimdLevel::kAvx2);
    EXPECT_EQ(la::ActiveSimdOps().dot, la::Avx2SimdOpsOrNull()->dot);
  }
}

TEST(SimdTest, Avx2SupportMatchesOpsTable) {
  EXPECT_EQ(la::Avx2Supported(), la::Avx2SimdOpsOrNull() != nullptr);
}

// Every tail length in [0, 2 vectors + 1], plus larger sizes: the dot
// kernels must agree bit for bit.
TEST(SimdTest, DotKernelsAreBitIdenticalAtEveryLength) {
  if (!la::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this machine";
  const la::SimdOps& avx2 = *la::Avx2SimdOpsOrNull();
  const la::SimdOps& scalar = la::ScalarSimdOps();
  Rng rng(101);
  std::vector<size_t> lengths;
  for (size_t n = 0; n <= 17; ++n) lengths.push_back(n);
  for (size_t n : {31u, 32u, 33u, 63u, 64u, 65u, 100u, 255u, 256u, 1000u}) {
    lengths.push_back(n);
  }
  for (size_t n : lengths) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<float> a = RandomVector(rng, n);
      std::vector<float> b = RandomVector(rng, n);
      float s = scalar.dot(a.data(), b.data(), n);
      float v = avx2.dot(a.data(), b.data(), n);
      EXPECT_EQ(s, v) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(SimdTest, CslsRowKernelsAreBitIdenticalAtEveryLength) {
  if (!la::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this machine";
  const la::SimdOps& avx2 = *la::Avx2SimdOpsOrNull();
  const la::SimdOps& scalar = la::ScalarSimdOps();
  Rng rng(202);
  for (size_t n = 0; n <= 13; ++n) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<float> sim = RandomVector(rng, n);
      std::vector<double> r_tgt(n);
      for (double& x : r_tgt) x = rng.UniformDouble() * 2.0 - 1.0;
      double r_src = rng.UniformDouble();
      std::vector<float> got_scalar(n), got_avx2(n);
      scalar.csls_adjust_row(sim.data(), r_src, r_tgt.data(),
                             got_scalar.data(), n);
      avx2.csls_adjust_row(sim.data(), r_src, r_tgt.data(),
                           got_avx2.data(), n);
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(got_scalar[j], got_avx2[j]) << "n=" << n << " j=" << j;
      }
    }
  }
}

// The tentpole property: TopKByCosineAll is bit-identical between
// EXEA_SIMD=scalar and EXEA_SIMD=avx2 across random shapes, including
// d not a multiple of the vector width, k > n, and zero-norm rows.
TEST(SimdTest, TopKByCosineAllIsBitIdenticalAcrossLevels) {
  if (!la::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this machine";
  SimdLevelGuard guard;
  Rng rng(303);
  struct Shape {
    size_t queries, n, d, k;
  };
  std::vector<Shape> shapes = {
      {3, 7, 8, 3},    // exact vector width
      {5, 20, 13, 5},  // d % 8 != 0
      {4, 3, 17, 10},  // k > n
      {1, 1, 1, 1},    // minimal
      {2, 50, 24, 0},  // k == 0
  };
  for (int i = 0; i < 20; ++i) {  // random shapes on top of the pinned ones
    shapes.push_back({1 + rng.UniformInt(6), 1 + rng.UniformInt(60),
                      1 + rng.UniformInt(40), rng.UniformInt(12)});
  }
  for (const Shape& s : shapes) {
    Rng case_rng(rng.Next());
    la::Matrix queries = RandomMatrix(case_rng, s.queries, s.d, true);
    la::Matrix table = RandomMatrix(case_rng, s.n, s.d, true);

    la::SetSimdLevelForTest(la::SimdLevel::kScalar);
    auto scalar = la::TopKByCosineAll(queries, table, s.k);
    la::SetSimdLevelForTest(la::SimdLevel::kAvx2);
    auto avx2 = la::TopKByCosineAll(queries, table, s.k);

    ASSERT_EQ(scalar.size(), avx2.size());
    for (size_t q = 0; q < scalar.size(); ++q) {
      ASSERT_EQ(scalar[q].size(), avx2[q].size())
          << "shape (" << s.queries << "," << s.n << "," << s.d << ","
          << s.k << ") query " << q;
      for (size_t r = 0; r < scalar[q].size(); ++r) {
        EXPECT_EQ(scalar[q][r].index, avx2[q][r].index)
            << "query " << q << " rank " << r;
        EXPECT_EQ(scalar[q][r].score, avx2[q][r].score)
            << "query " << q << " rank " << r;
      }
    }
  }
}

TEST(SimdTest, CslsAdjustIsBitIdenticalAcrossLevels) {
  if (!la::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this machine";
  SimdLevelGuard guard;
  Rng rng(404);
  for (const auto& [n1, n2, k] :
       {std::tuple<size_t, size_t, size_t>{37, 53, 5},
        {1, 1, 1},
        {64, 13, 10},
        {9, 100, 200}}) {  // k larger than either side
    la::Matrix a = RandomMatrix(rng, n1, 12, true);
    la::Matrix b = RandomMatrix(rng, n2, 12, true);
    la::SetSimdLevelForTest(la::SimdLevel::kScalar);
    la::Matrix sim = la::CosineSimilarityMatrix(a, b);
    la::Matrix scalar = eval::CslsAdjust(sim, k);
    la::SetSimdLevelForTest(la::SimdLevel::kAvx2);
    la::Matrix sim2 = la::CosineSimilarityMatrix(a, b);
    la::Matrix avx2 = eval::CslsAdjust(sim2, k);
    EXPECT_TRUE(MatrixBytesEqual(sim, sim2))
        << n1 << "x" << n2 << ": similarity matrices diverge";
    EXPECT_TRUE(MatrixBytesEqual(scalar, avx2))
        << n1 << "x" << n2 << ": CSLS outputs diverge";
  }
}

}  // namespace
}  // namespace exea
