// Plain-text persistence for dense matrices (embedding tables).
//
// Format: first line "rows cols", then one whitespace-separated row per
// line, full float precision (%.9g round-trips IEEE single).

#ifndef EXEA_LA_MATRIX_IO_H_
#define EXEA_LA_MATRIX_IO_H_

#include <string>

#include "la/matrix.h"
#include "util/status.h"

namespace exea::la {

[[nodiscard]] Status SaveMatrix(const Matrix& matrix, const std::string& path);

[[nodiscard]] StatusOr<Matrix> LoadMatrix(const std::string& path);

}  // namespace exea::la

#endif  // EXEA_LA_MATRIX_IO_H_
