// Runtime contract macros: the project's single vocabulary for stating
// invariants in code.
//
// Two tiers, one policy:
//
//   EXEA_CHECK*   always on, in every build type. Use for invariants whose
//                 violation would corrupt results or memory if execution
//                 continued (out-of-bounds ids, shape mismatches feeding
//                 pointer arithmetic, broken snapshot preconditions). Cost
//                 must be O(1) per call site.
//   EXEA_DCHECK*  compiled out of release builds unless the build sets
//                 -DEXEA_DCHECKS=ON. Use for invariants that are (a) hot —
//                 per-element rather than per-call — or (b) internal
//                 postconditions already implied by checked preconditions,
//                 where the redundant verification is only worth paying in
//                 debug/sanitizer builds.
//
// Both tiers log the failing expression text with file:line and abort; they
// are for programming errors only. Recoverable conditions (bad input files,
// malformed requests, unknown entities) must return util::Status instead —
// see status.h and DESIGN.md §8 for the boundary.
//
// The base EXEA_CHECK / EXEA_CHECK_* / EXEA_CHECK_OK macros live in
// logging.h (they predate this header); this header re-exports them and
// adds the debug tier, so contract call sites include "util/check.h" only.

#ifndef EXEA_UTIL_CHECK_H_
#define EXEA_UTIL_CHECK_H_

#include "util/logging.h"
#include "util/status.h"

// EXEA_DCHECK_IS_ON: debug checks compile in when NDEBUG is absent (Debug /
// RelWithDebInfo-without-NDEBUG builds) or when the build opts in
// explicitly via the EXEA_DCHECKS CMake option (which defines
// EXEA_DCHECKS_ENABLED; the sanitizer rows of ci/check.sh do this so the
// contract layer is exercised under ASan/UBSan/TSAN).
#if !defined(NDEBUG) || defined(EXEA_DCHECKS_ENABLED)
#define EXEA_DCHECK_IS_ON() 1
#else
#define EXEA_DCHECK_IS_ON() 0
#endif

#if EXEA_DCHECK_IS_ON()

#define EXEA_DCHECK(cond) EXEA_CHECK(cond)
#define EXEA_DCHECK_EQ(lhs, rhs) EXEA_CHECK_EQ(lhs, rhs)
#define EXEA_DCHECK_NE(lhs, rhs) EXEA_CHECK_NE(lhs, rhs)
#define EXEA_DCHECK_LT(lhs, rhs) EXEA_CHECK_LT(lhs, rhs)
#define EXEA_DCHECK_LE(lhs, rhs) EXEA_CHECK_LE(lhs, rhs)
#define EXEA_DCHECK_GT(lhs, rhs) EXEA_CHECK_GT(lhs, rhs)
#define EXEA_DCHECK_GE(lhs, rhs) EXEA_CHECK_GE(lhs, rhs)
#define EXEA_DCHECK_OK(expr) EXEA_CHECK_OK(expr)

#else  // !EXEA_DCHECK_IS_ON()

// Disabled DCHECKs must still parse their operands (so a variable used only
// in a DCHECK does not become -Wunused in release) without evaluating them,
// and must keep swallowing any streamed message.
#define EXEA_DCHECK(cond)                       \
  while (false && (cond)) ::exea::internal_logging::NullStream()
#define EXEA_DCHECK_EQ(lhs, rhs) EXEA_DCHECK((lhs) == (rhs))
#define EXEA_DCHECK_NE(lhs, rhs) EXEA_DCHECK((lhs) != (rhs))
#define EXEA_DCHECK_LT(lhs, rhs) EXEA_DCHECK((lhs) < (rhs))
#define EXEA_DCHECK_LE(lhs, rhs) EXEA_DCHECK((lhs) <= (rhs))
#define EXEA_DCHECK_GT(lhs, rhs) EXEA_DCHECK((lhs) > (rhs))
#define EXEA_DCHECK_GE(lhs, rhs) EXEA_DCHECK((lhs) >= (rhs))
#define EXEA_DCHECK_OK(expr) EXEA_DCHECK((expr).ok())

#endif  // EXEA_DCHECK_IS_ON()

// ------------------------------------------------------------------------
// Lock-discipline annotations (DESIGN.md §9).
//
//   EXEA_GUARDED_BY(mu)  on a data member: every read or write must happen
//                        with `mu` held.
//   EXEA_REQUIRES(mu)    on a function/method declaration: callers must
//                        already hold `mu` when invoking it (the "Locked"
//                        suffix convention in this codebase).
//
// Under Clang the macros expand to the thread-safety-analysis attributes,
// so `-Wthread-safety` can verify the discipline statically; elsewhere
// they expand to nothing. Independently of the compiler, exea_lint's
// lock-discipline pass enforces the same contract lexically: annotated
// members may only be touched under a visible lock_guard / unique_lock /
// scoped_lock of the named mutex (or inside an EXEA_REQUIRES method), and
// classes that own a std::mutex must annotate every member declared after
// it — the convention is mutex first, then the state it protects.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define EXEA_GUARDED_BY(mu) __attribute__((guarded_by(mu)))
#endif
#if __has_attribute(exclusive_locks_required)
#define EXEA_REQUIRES(mu) __attribute__((exclusive_locks_required(mu)))
#endif
#endif

#ifndef EXEA_GUARDED_BY
#define EXEA_GUARDED_BY(mu)
#endif
#ifndef EXEA_REQUIRES
#define EXEA_REQUIRES(mu)
#endif

#endif  // EXEA_UTIL_CHECK_H_
