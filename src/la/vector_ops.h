// Dense float-vector kernels used throughout embedding training,
// path-embedding computation, and similarity search.
//
// All functions operate on raw spans (pointer + length) so they compose
// with Matrix row views without copies. Lengths must match; mismatches are
// programming errors (checked).

#ifndef EXEA_LA_VECTOR_OPS_H_
#define EXEA_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace exea::la {

using Vec = std::vector<float>;

float Dot(const float* a, const float* b, size_t n);
float Dot(const Vec& a, const Vec& b);

// Euclidean norm.
float Norm(const float* a, size_t n);
float Norm(const Vec& a);

// Squared L2 distance.
float SquaredDistance(const float* a, const float* b, size_t n);
float SquaredDistance(const Vec& a, const Vec& b);

// Cosine similarity; returns 0 when either vector is (near-)zero.
float Cosine(const float* a, const float* b, size_t n);
float Cosine(const Vec& a, const Vec& b);

// In-place: a += alpha * b.
void Axpy(float alpha, const float* b, float* a, size_t n);
void Axpy(float alpha, const Vec& b, Vec& a);

// In-place scaling: a *= alpha.
void Scale(float alpha, float* a, size_t n);
void Scale(float alpha, Vec& a);

// In-place L2 normalization; leaves (near-)zero vectors untouched.
void NormalizeL2(float* a, size_t n);
void NormalizeL2(Vec& a);

// out = a - b.
Vec Sub(const Vec& a, const Vec& b);

// out = a + b.
Vec Add(const Vec& a, const Vec& b);

// Concatenates a and b.
Vec Concat(const Vec& a, const Vec& b);

// Numerically-stable logistic sigmoid.
double Sigmoid(double x);

}  // namespace exea::la

#endif  // EXEA_LA_VECTOR_OPS_H_
