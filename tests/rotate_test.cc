// Tests for RotAlign (the RotatE-style extensibility-demo model) and the
// MRR metric added alongside it.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/rotate_align.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "repair/pipeline.h"

namespace exea {
namespace {

const data::EaDataset& Dataset() {
  static const data::EaDataset* dataset = new data::EaDataset(
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
  return *dataset;
}

emb::TrainConfig RotConfig() {
  emb::TrainConfig config;
  config.epochs = 80;
  return config;
}

TEST(RotAlignTest, TrainsWellAboveChance) {
  emb::RotAlign model(RotConfig());
  model.Train(Dataset());
  eval::RankedSimilarity ranked = eval::RankTestEntities(model, Dataset());
  double accuracy =
      eval::Accuracy(eval::GreedyAlign(ranked), Dataset().test_gold);
  EXPECT_GT(accuracy, 0.25) << "RotAlign accuracy " << accuracy;
}

TEST(RotAlignTest, RelationEmbeddingsAreUnitRotations) {
  emb::RotAlign model(RotConfig());
  model.Train(Dataset());
  const la::Matrix& rel = model.RelationEmbeddings(kg::KgSide::kSource);
  size_t half = rel.cols() / 2;
  for (size_t r = 0; r < rel.rows(); ++r) {
    const float* row = rel.Row(r);
    for (size_t k = 0; k < half; ++k) {
      float modulus = row[k] * row[k] + row[half + k] * row[half + k];
      EXPECT_NEAR(modulus, 1.0f, 1e-5f) << "relation " << r << " coord " << k;
    }
  }
}

TEST(RotAlignTest, DeterministicAndClonable) {
  emb::RotAlign a(RotConfig());
  emb::RotAlign b(RotConfig());
  a.Train(Dataset());
  b.Train(Dataset());
  EXPECT_EQ(a.EntityEmbeddings(kg::KgSide::kSource).data(),
            b.EntityEmbeddings(kg::KgSide::kSource).data());
  std::unique_ptr<emb::EAModel> clone = a.CloneUntrained();
  EXPECT_EQ(clone->name(), "RotAlign");
  EXPECT_TRUE(clone->HasRelationEmbeddings());
  EXPECT_TRUE(clone->IsTranslationBased());
}

TEST(RotAlignTest, WorksWithExplainAndRepairUnchanged) {
  // The extensibility claim: a brand-new model plugs into the core.
  emb::RotAlign model(RotConfig());
  model.Train(Dataset());
  explain::ExeaExplainer explainer(Dataset(), model, explain::ExeaConfig{});
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  repair::RepairReport report = pipeline.Run();
  EXPECT_GT(report.repaired_accuracy, report.base_accuracy);
  EXPECT_TRUE(report.repaired_alignment.IsOneToOne());
}

TEST(RotAlignTest, OddDimensionIsRoundedDown) {
  emb::TrainConfig config = RotConfig();
  config.dim = 33;
  config.epochs = 2;
  emb::RotAlign model(config);
  model.Train(Dataset());
  EXPECT_EQ(model.EntityEmbeddings(kg::KgSide::kSource).cols(), 32u);
}

// ---------------------------------------------------------------- MRR

TEST(MrrTest, PerfectRankingGivesOne) {
  emb::RotAlign model(RotConfig());
  model.Train(Dataset());
  eval::RankedSimilarity ranked = eval::RankTestEntities(model, Dataset());
  double mrr = eval::MeanReciprocalRank(ranked, Dataset().test_gold);
  double hits1 = eval::HitsAtK(ranked, Dataset().test_gold, 1);
  // MRR is bounded by [hits@1, 1] and at least hits@1.
  EXPECT_GE(mrr, hits1);
  EXPECT_LE(mrr, 1.0);
  EXPECT_GT(mrr, 0.2);
}

TEST(MrrTest, EmptyGoldIsZero) {
  emb::RotAlign model(RotConfig());
  model.Train(Dataset());
  eval::RankedSimilarity ranked = eval::RankTestEntities(model, Dataset());
  EXPECT_EQ(eval::MeanReciprocalRank(ranked, {}), 0.0);
}

}  // namespace
}  // namespace exea
