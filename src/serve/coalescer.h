// AlignCoalescer: leader-follower micro-batching for align queries.
//
// Concurrent align requests each pay the fixed cost of a top-k index
// dispatch (pool fan-out, kernel launch, cache warm-up). Those dispatches
// batch well — la::SimilarityIndex::TopKAll is one call regardless of the
// query-row count — so under concurrency it is strictly cheaper to merge
// the rows of several requests into one dispatch. The coalescer does
// exactly that: the first caller into an idle coalescer becomes the
// *leader*, holds the batch open for up to max_wait_ms (or until
// max_batch rows accumulate, whichever first), then drains every queued
// sub-request into a single QueryEngine::AlignResolved call and
// distributes the rows back.
//
// Byte-identity: each result row of AlignResolved depends only on its own
// query row, never on what else shared the dispatch, and each
// sub-request's name resolution + error handling happen individually
// before it joins a batch. A request served through the coalescer
// therefore produces byte-for-byte the response it would have produced
// alone — serve_test pins this — and one sub-request's error (unknown
// entity, expired deadline) never leaks into its batch-mates.
//
// Deadlines: each sub-request's deadline is re-checked at drain time,
// after its queue wait; an expired one is completed with
// DEADLINE_EXCEEDED (the same status AlignBatch produces when a deadline
// expires before lookup) and excluded from the dispatch, so a stale
// request costs no compute.

#ifndef EXEA_SERVE_COALESCER_H_
#define EXEA_SERVE_COALESCER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/engine.h"
#include "util/check.h"

namespace exea::serve {

struct CoalescerOptions {
  // Max query rows (entities, not requests) merged into one dispatch.
  size_t max_batch = 32;

  // How long the leader holds the batch open for stragglers. 0 disables
  // the hold: a request that arrives at an idle coalescer dispatches
  // immediately (and still merges with anything that raced in).
  double max_wait_ms = 1.0;

  // Where the coalescer registers its metrics. nullptr →
  // obs::Registry::Global().
  obs::Registry* registry = nullptr;
};

class AlignCoalescer {
 public:
  // Borrows `engine`, which must outlive the coalescer.
  AlignCoalescer(const QueryEngine* engine, const CoalescerOptions& options);

  AlignCoalescer(const AlignCoalescer&) = delete;
  AlignCoalescer& operator=(const AlignCoalescer&) = delete;

  // Drop-in for QueryEngine::AlignBatch (same signature, same error
  // semantics, byte-identical results); blocks until this request's rows
  // come back from whichever dispatch they rode. Thread-safe.
  [[nodiscard]] StatusOr<std::vector<AlignResult>> Align(
      const std::vector<std::string>& sources, const Deadline& deadline);

 private:
  // One caller blocked in Align: its resolved rows going in, its slice of
  // the dispatch coming back. Stack-allocated in Align and linked into
  // queue_; the pointer stays valid because the caller cannot return
  // until done.
  struct Pending {
    // The snapshot version the ids were resolved against. Pinning it
    // here keeps the version alive across the batch window, and lets the
    // drain dispatch each request against its own version when a hot
    // swap lands mid-batch (ids are version-relative).
    std::shared_ptr<const ServingState> state;
    std::vector<kg::EntityId> ids;
    std::vector<std::string> names;
    const Deadline* deadline;
    std::vector<AlignResult> rows;
    Status error;  // overrides rows when not OK (drain-time shed)
    bool done = false;
  };

  // Called by the leader with the lock held; drains queue_, dispatches,
  // fulfills every drained Pending, and wakes the followers.
  void DrainLocked(std::unique_lock<std::mutex>& lock) EXEA_REQUIRES(mu_);

  const QueryEngine* engine_;
  CoalescerOptions options_;

  obs::Counter& ticks_;          // dispatches performed
  obs::Histogram& rows_per_dispatch_;

  // mu_ protects everything declared after it (the class convention the
  // lock-discipline lint pass enforces).
  std::mutex mu_;
  std::condition_variable batch_cv_;  // wakes the leader when full
  std::condition_variable done_cv_;   // wakes followers when fulfilled
  std::deque<Pending*> queue_ EXEA_GUARDED_BY(mu_);
  size_t queued_rows_ EXEA_GUARDED_BY(mu_) = 0;
  bool leader_active_ EXEA_GUARDED_BY(mu_) = false;
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_COALESCER_H_
