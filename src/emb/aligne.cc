#include "emb/aligne.h"

#include <cmath>
#include <unordered_map>

#include "emb/negative_sampling.h"
#include "emb/transe_common.h"
#include "la/vector_ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exea::emb {

using internal_transe::ApplyTripleGradient;
using internal_transe::ParamRef;
using internal_transe::TripleScore;

void AlignE::Train(const data::EaDataset& dataset) {
  const kg::KnowledgeGraph& kg1 = dataset.kg1;
  const kg::KnowledgeGraph& kg2 = dataset.kg2;
  size_t dim = config_.dim;
  Rng rng(config_.seed);

  ent1_ = la::Matrix(kg1.num_entities(), dim);
  ent2_ = la::Matrix(kg2.num_entities(), dim);
  rel1_ = la::Matrix(kg1.num_relations(), dim);
  rel2_ = la::Matrix(kg2.num_relations(), dim);
  float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  ent1_.FillNormal(rng, stddev);
  ent2_.FillNormal(rng, stddev);
  rel1_.FillNormal(rng, stddev);
  rel2_.FillNormal(rng, stddev);
  ent1_.NormalizeRowsL2();
  ent2_.NormalizeRowsL2();

  AdagradTable ent1_opt(&ent1_, config_.learning_rate);
  AdagradTable ent2_opt(&ent2_, config_.learning_rate);
  AdagradTable rel1_opt(&rel1_, config_.learning_rate);
  AdagradTable rel2_opt(&rel2_, config_.learning_rate);

  // Seed maps for parameter swapping.
  std::unordered_map<kg::EntityId, kg::EntityId> src_to_tgt;
  std::unordered_map<kg::EntityId, kg::EntityId> tgt_to_src;
  for (const kg::AlignedPair& pair : dataset.train.SortedPairs()) {
    src_to_tgt[pair.source] = pair.target;
    tgt_to_src[pair.target] = pair.source;
  }

  std::vector<float> residual_pos;
  std::vector<float> residual_neg;

  // Limit-based step on a triple whose entities may live in either KG's
  // table. Positive part: [f(pos) - limit_pos]_+; negative part (hard
  // negative corrupting the tail): neg_weight * [limit_neg - f(neg)]_+.
  auto limit_step = [&](ParamRef h, ParamRef r, ParamRef t,
                        la::Matrix& neg_table, AdagradTable& neg_opt,
                        kg::EntityId exclude) {
    float pos = TripleScore(h, r, t, residual_pos);
    if (pos > config_.limit_pos) {
      ApplyTripleGradient(h, r, t, residual_pos, +1.0f);
    }
    // Truncated hard negatives: nearest entities to the true tail.
    std::vector<kg::EntityId> negatives =
        HardNegatives(neg_table, t.values(), exclude, config_.negatives,
                      /*pool=*/config_.negatives * 8, rng);
    for (kg::EntityId neg : negatives) {
      ParamRef neg_t{&neg_table, &neg_opt, neg};
      float score = TripleScore(h, r, neg_t, residual_neg);
      if (score < config_.limit_neg) {
        // Push the negative score up; scale by neg_weight (mu).
        for (float& v : residual_neg) v *= config_.neg_weight;
        ApplyTripleGradient(h, r, neg_t, residual_neg, -1.0f);
      }
    }
  };

  std::vector<float> grad(dim);
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // KG1 triples (plus swapped cross-KG variants for seed heads).
    for (const kg::Triple& t : kg1.triples()) {
      ParamRef h{&ent1_, &ent1_opt, t.head};
      ParamRef r{&rel1_, &rel1_opt, t.rel};
      ParamRef tail{&ent1_, &ent1_opt, t.tail};
      limit_step(h, r, tail, ent1_, ent1_opt, t.tail);
      // Parameter swapping: replace a seed head/tail with its counterpart.
      auto swap_h = src_to_tgt.find(t.head);
      if (swap_h != src_to_tgt.end() && rng.Bernoulli(0.5)) {
        ParamRef h2{&ent2_, &ent2_opt, swap_h->second};
        limit_step(h2, r, tail, ent1_, ent1_opt, t.tail);
      }
      auto swap_t = src_to_tgt.find(t.tail);
      if (swap_t != src_to_tgt.end() && rng.Bernoulli(0.5)) {
        ParamRef t2{&ent2_, &ent2_opt, swap_t->second};
        limit_step(h, r, t2, ent2_, ent2_opt, swap_t->second);
      }
    }
    // KG2 triples (with swaps into KG1).
    for (const kg::Triple& t : kg2.triples()) {
      ParamRef h{&ent2_, &ent2_opt, t.head};
      ParamRef r{&rel2_, &rel2_opt, t.rel};
      ParamRef tail{&ent2_, &ent2_opt, t.tail};
      limit_step(h, r, tail, ent2_, ent2_opt, t.tail);
      auto swap_h = tgt_to_src.find(t.head);
      if (swap_h != tgt_to_src.end() && rng.Bernoulli(0.5)) {
        ParamRef h1{&ent1_, &ent1_opt, swap_h->second};
        limit_step(h1, r, tail, ent2_, ent2_opt, t.tail);
      }
      auto swap_t = tgt_to_src.find(t.tail);
      if (swap_t != tgt_to_src.end() && rng.Bernoulli(0.5)) {
        ParamRef t1{&ent1_, &ent1_opt, swap_t->second};
        limit_step(h, r, t1, ent1_, ent1_opt, swap_t->second);
      }
    }
    // Calibration pull on seeds keeps the spaces fused.
    for (const auto& [source, target] : src_to_tgt) {
      const float* e1 = ent1_.Row(source);
      const float* e2 = ent2_.Row(target);
      for (size_t c = 0; c < dim; ++c) grad[c] = 2.0f * (e1[c] - e2[c]);
      ent1_opt.Update(source, grad.data());
      for (size_t c = 0; c < dim; ++c) grad[c] = -grad[c];
      ent2_opt.Update(target, grad.data());
    }

    ent1_.NormalizeRowsL2();
    ent2_.NormalizeRowsL2();
  }
}

const la::Matrix& AlignE::EntityEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? ent1_ : ent2_;
}

const la::Matrix& AlignE::RelationEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? rel1_ : rel2_;
}

}  // namespace exea::emb
