// A fixed-size worker pool with a shared FIFO task queue. The pool is the
// substrate under util/parallel.h's ParallelFor; most code should use that
// instead of submitting raw tasks.
//
// Lifecycle: workers start in the constructor and join in the destructor.
// Submit() never blocks (the queue is unbounded); Wait() blocks the caller
// until every task submitted so far has finished, after which the pool can
// be reused for another batch.

#ifndef EXEA_UTIL_THREAD_POOL_H_
#define EXEA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace exea::util {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  // Joins all workers. Tasks already queued are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for execution on some worker. Tasks must not throw;
  // exception handling belongs to the caller's wrapper (see ParallelFor).
  void Submit(std::function<void()> task);

  // Blocks until all tasks submitted so far have completed. The pool
  // remains usable afterwards.
  void Wait();

  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  // Started in the constructor, joined in the destructor; immutable in
  // between, so reads (size()) need no lock.
  std::vector<std::thread> workers_;

  // mu_ protects everything declared after it (the class convention the
  // lock-discipline lint pass enforces).
  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled on Submit / shutdown
  std::condition_variable idle_cv_;   // signalled when pending_ hits zero
  std::deque<std::function<void()>> queue_ EXEA_GUARDED_BY(mu_);
  size_t pending_ EXEA_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool stop_ EXEA_GUARDED_BY(mu_) = false;
};

}  // namespace exea::util

#endif  // EXEA_UTIL_THREAD_POOL_H_
