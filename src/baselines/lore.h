// LORE — local rule-based explanations adapted to EA (Section V-B1).
//
// LORE generates a synthetic neighbourhood around the instance with a
// genetic algorithm (two subpopulations: one evolved to preserve the
// model's positive classification, one evolved toward counterfactuals),
// fits a shallow decision tree on the labelled neighbourhood, and reads
// the explanation off the decision path of the instance. The EA adaptation
// uses the same triple-mask feature space and the same classification
// threshold as the Anchor baseline.

#ifndef EXEA_BASELINES_LORE_H_
#define EXEA_BASELINES_LORE_H_

#include <cstdint>

#include "baselines/explainer.h"
#include "baselines/perturbation.h"

namespace exea::baselines {

struct LoreOptions {
  size_t population = 128;
  size_t generations = 24;
  double mutation_rate = 0.1;
  size_t tree_depth = 5;
  size_t min_samples_split = 4;
  double threshold_ratio = 0.9;
  uint64_t seed = 19;
};

class LoreExplainer : public Explainer {
 public:
  LoreExplainer(const PerturbedEmbedder* embedder, const LoreOptions& options)
      : embedder_(embedder), options_(options) {}

  std::string name() const override { return "LORE"; }

  ExplainerResult Explain(kg::EntityId e1, kg::EntityId e2,
                          const std::vector<kg::Triple>& candidates1,
                          const std::vector<kg::Triple>& candidates2,
                          size_t budget) override;

 private:
  const PerturbedEmbedder* embedder_;
  LoreOptions options_;
};

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_LORE_H_
