#include "emb/gcn_align.h"

#include <cmath>

#include "emb/negative_sampling.h"
#include "emb/optimizer.h"
#include "la/sparse.h"
#include "la/vector_ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exea::emb {
namespace {

// Symmetrically normalized adjacency with self loops:
// A_hat = D^-1/2 (A + I) D^-1/2, treating triples as undirected edges.
la::SparseMatrix NormalizedAdjacency(const kg::KnowledgeGraph& graph) {
  size_t n = graph.num_entities();
  std::vector<float> degree(n, 1.0f);  // self loop counts as 1
  for (const kg::Triple& t : graph.triples()) {
    if (t.head == t.tail) continue;
    degree[t.head] += 1.0f;
    degree[t.tail] += 1.0f;
  }
  std::vector<float> inv_sqrt(n);
  for (size_t i = 0; i < n; ++i) inv_sqrt[i] = 1.0f / std::sqrt(degree[i]);
  la::SparseMatrix adj(n, n);
  for (size_t i = 0; i < n; ++i) {
    adj.Add(i, i, inv_sqrt[i] * inv_sqrt[i]);
  }
  for (const kg::Triple& t : graph.triples()) {
    if (t.head == t.tail) continue;
    float w = inv_sqrt[t.head] * inv_sqrt[t.tail];
    adj.Add(t.head, t.tail, w);
    adj.Add(t.tail, t.head, w);
  }
  adj.Finalize();
  return adj;
}

// One KG's propagation state: H = A_hat tanh(A_hat X).
struct GcnState {
  la::Matrix x;       // trainable input features
  la::Matrix pre1;    // A_hat X
  la::Matrix hidden;  // tanh(pre1)
  la::Matrix out;     // A_hat hidden
};

void Forward(const la::SparseMatrix& adj, GcnState& state) {
  state.pre1 = adj.Multiply(state.x);
  state.hidden = state.pre1;
  for (float& v : state.hidden.mutable_data()) v = std::tanh(v);
  state.out = adj.Multiply(state.hidden);
}

// Given dL/dout, returns dL/dX = A_hat^T ((1 - hidden^2) * (A_hat^T dOut)).
la::Matrix Backward(const la::SparseMatrix& adj, const GcnState& state,
                    const la::Matrix& grad_out) {
  la::Matrix grad_hidden = adj.MultiplyTransposed(grad_out);
  // Elementwise tanh' = 1 - hidden^2.
  const std::vector<float>& h = state.hidden.data();
  std::vector<float>& g = grad_hidden.mutable_data();
  for (size_t i = 0; i < g.size(); ++i) g[i] *= (1.0f - h[i] * h[i]);
  return adj.MultiplyTransposed(grad_hidden);
}

}  // namespace

void GcnAlign::Train(const data::EaDataset& dataset) {
  size_t dim = config_.dim;
  Rng rng(config_.seed);

  la::SparseMatrix adj1 = NormalizedAdjacency(dataset.kg1);
  la::SparseMatrix adj2 = NormalizedAdjacency(dataset.kg2);

  GcnState kg1_state;
  GcnState kg2_state;
  kg1_state.x = la::Matrix(dataset.kg1.num_entities(), dim);
  kg2_state.x = la::Matrix(dataset.kg2.num_entities(), dim);
  float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  kg1_state.x.FillNormal(rng, stddev);
  kg2_state.x.FillNormal(rng, stddev);

  AdagradTable opt1(&kg1_state.x, config_.learning_rate);
  AdagradTable opt2(&kg2_state.x, config_.learning_rate);

  std::vector<kg::AlignedPair> seeds = dataset.train.SortedPairs();
  size_t n2 = dataset.kg2.num_entities();
  size_t n1 = dataset.kg1.num_entities();

  std::vector<float> diff(dim);
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Forward(adj1, kg1_state);
    Forward(adj2, kg2_state);

    la::Matrix grad_out1(n1, dim);
    la::Matrix grad_out2(n2, dim);

    // Accumulates the gradient of ||a - b||^2 terms into the two output
    // gradients; `sign` +1 shrinks the distance, -1 grows it.
    auto add_pair_grad = [&](la::Matrix& grad_a, size_t ia,
                             const la::Matrix& out_a, la::Matrix& grad_b,
                             size_t ib, const la::Matrix& out_b, float sign) {
      const float* a = out_a.Row(ia);
      const float* b = out_b.Row(ib);
      float* ga = grad_a.Row(ia);
      float* gb = grad_b.Row(ib);
      for (size_t c = 0; c < dim; ++c) {
        float d = 2.0f * (a[c] - b[c]) * sign;
        ga[c] += d;
        gb[c] -= d;
      }
    };

    for (const kg::AlignedPair& pair : seeds) {
      float pos = la::SquaredDistance(kg1_state.out.Row(pair.source),
                                      kg2_state.out.Row(pair.target), dim);
      // Corrupt the target side.
      for (kg::EntityId neg :
           UniformNegatives(n2, pair.target, config_.negatives, rng)) {
        float neg_dist = la::SquaredDistance(kg1_state.out.Row(pair.source),
                                             kg2_state.out.Row(neg), dim);
        if (config_.margin + pos - neg_dist > 0.0f) {
          add_pair_grad(grad_out1, pair.source, kg1_state.out, grad_out2,
                        pair.target, kg2_state.out, +1.0f);
          add_pair_grad(grad_out1, pair.source, kg1_state.out, grad_out2, neg,
                        kg2_state.out, -1.0f);
        }
      }
      // Corrupt the source side.
      for (kg::EntityId neg :
           UniformNegatives(n1, pair.source, config_.negatives, rng)) {
        float neg_dist = la::SquaredDistance(kg1_state.out.Row(neg),
                                             kg2_state.out.Row(pair.target),
                                             dim);
        if (config_.margin + pos - neg_dist > 0.0f) {
          add_pair_grad(grad_out1, pair.source, kg1_state.out, grad_out2,
                        pair.target, kg2_state.out, +1.0f);
          add_pair_grad(grad_out1, neg, kg1_state.out, grad_out2, pair.target,
                        kg2_state.out, -1.0f);
        }
      }
    }

    la::Matrix grad_x1 = Backward(adj1, kg1_state, grad_out1);
    la::Matrix grad_x2 = Backward(adj2, kg2_state, grad_out2);
    for (size_t r = 0; r < n1; ++r) opt1.Update(r, grad_x1.Row(r));
    for (size_t r = 0; r < n2; ++r) opt2.Update(r, grad_x2.Row(r));
  }

  Forward(adj1, kg1_state);
  Forward(adj2, kg2_state);
  out1_ = std::move(kg1_state.out);
  out2_ = std::move(kg2_state.out);
  out1_.NormalizeRowsL2();
  out2_.NormalizeRowsL2();

  // Attribute channel (the original GCN-Align design): fixed hashed
  // bag-of-attribute features, propagated through the same normalized
  // adjacency, concatenated to the structure block with weight
  // attribute_weight (blocks are unit-normalized, so cosine decomposes as
  // a weighted sum of the two channels).
  if (config_.use_attributes && (dataset.attrs1.num_triples() > 0 ||
                                 dataset.attrs2.num_triples() > 0)) {
    auto propagate = [](const la::SparseMatrix& adj, la::Matrix features) {
      la::Matrix hidden = adj.Multiply(features);
      la::Matrix out = adj.Multiply(hidden);
      out.NormalizeRowsL2();
      return out;
    };
    la::Matrix attr1 = propagate(
        adj1, dataset.attrs1.FeatureMatrix(dataset.kg1.num_entities(),
                                           config_.attribute_dim));
    la::Matrix attr2 = propagate(
        adj2, dataset.attrs2.FeatureMatrix(dataset.kg2.num_entities(),
                                           config_.attribute_dim));
    float w_attr = std::sqrt(config_.attribute_weight);
    float w_struct = std::sqrt(1.0f - config_.attribute_weight);
    auto blend = [&](const la::Matrix& structure, const la::Matrix& attr) {
      la::Matrix out(structure.rows(), structure.cols() + attr.cols());
      for (size_t r = 0; r < structure.rows(); ++r) {
        float* dst = out.Row(r);
        const float* s = structure.Row(r);
        const float* a = attr.Row(r);
        for (size_t c = 0; c < structure.cols(); ++c) {
          dst[c] = w_struct * s[c];
        }
        for (size_t c = 0; c < attr.cols(); ++c) {
          dst[structure.cols() + c] = w_attr * a[c];
        }
      }
      return out;
    };
    out1_ = blend(out1_, attr1);
    out2_ = blend(out2_, attr2);
  }
}

const la::Matrix& GcnAlign::EntityEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? out1_ : out2_;
}

}  // namespace exea::emb
