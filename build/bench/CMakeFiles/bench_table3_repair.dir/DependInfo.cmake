
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_repair.cc" "bench/CMakeFiles/bench_table3_repair.dir/bench_table3_repair.cc.o" "gcc" "bench/CMakeFiles/bench_table3_repair.dir/bench_table3_repair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/exea_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/exea_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/exea_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/exea_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/exea_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/exea_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/emb/CMakeFiles/exea_emb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/exea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
