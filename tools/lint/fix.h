// The --fix pass: mechanical rewrites for the rules whose remedy is
// unambiguous — inserting [[nodiscard]] on Status-returning declarations
// and normalizing lax waiver comments to the canonical spelling. Fixes
// are applied to the raw lines and are idempotent: a second run finds
// nothing left to change.

#ifndef EXEA_TOOLS_LINT_FIX_H_
#define EXEA_TOOLS_LINT_FIX_H_

#include <cstddef>
#include <filesystem>
#include <vector>

#include "lint/config.h"

namespace lint {

struct FixStats {
  size_t files_changed = 0;
  size_t nodiscard_inserted = 0;
  size_t waivers_normalized = 0;
  size_t files_failed = 0;  // unreadable or unwritable
};

// Analyzes each file and rewrites it in place where a mechanical fix
// applies. Files without applicable findings are left untouched.
FixStats ApplyFixes(const std::vector<std::filesystem::path>& files,
                    const ConcurrencyConfig& conc);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_FIX_H_
