#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

#include "baselines/anchor.h"
#include "baselines/ealime.h"
#include "baselines/eashapley.h"
#include "explain/exea_explainer_adapter.h"
#include "baselines/lore.h"
#include "baselines/perturbation.h"
#include "eval/metrics.h"
#include "llm/llm_baselines.h"
#include "llm/sim_llm.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/parse.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace exea::bench {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  EXEA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddSeparator() { rows_.push_back({}); }

std::string Table::Fmt(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "" : "  ",
                  static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  auto print_rule = [&]() {
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c == 0 ? 0 : 2);
    }
    for (size_t i = 0; i < total; ++i) std::printf("-");
    std::printf("\n");
  };
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  size_t threads = ConfigureThreadsFromEnv();
  data::Scale scale = data::ScaleFromEnv();
  const char* scale_name = scale == data::Scale::kTiny      ? "tiny"
                           : scale == data::Scale::kSmall   ? "small"
                                                            : "medium";
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Substrate: synthetic benchmarks at scale '%s' "
              "(EXEA_BENCH_SCALE); absolute values\n"
              "differ from the paper's DBP15K/OpenEA numbers — compare the "
              "*shape* (see\nEXPERIMENTS.md).\n",
              scale_name);
  std::printf("Threads: %zu (EXEA_THREADS; results are identical at any "
              "count)\n",
              threads);
  std::printf("==============================================================="
              "=================\n\n");
}

size_t SamplesFromEnv(size_t default_samples) {
  const char* env = std::getenv("EXEA_BENCH_SAMPLES");
  if (env == nullptr || *env == '\0') return default_samples;
  int32_t value = 0;
  if (!util::ParseInt32(env, 1, 1'000'000, &value).ok()) {
    return default_samples;
  }
  return static_cast<size_t>(value);
}

#ifndef EXEA_GIT_SHA
#define EXEA_GIT_SHA "unknown"
#endif
#ifndef EXEA_BUILD_TYPE
#define EXEA_BUILD_TYPE "unspecified"
#endif

std::string BuildGitSha() { return EXEA_GIT_SHA; }

std::string BuildType() { return EXEA_BUILD_TYPE; }

size_t ConfigureThreadsFromEnv() {
  const char* env = std::getenv("EXEA_THREADS");
  size_t requested = 0;  // 0 = hardware default
  if (env != nullptr && *env != '\0') {
    int32_t value = 0;
    if (util::ParseInt32(env, 1, 4096, &value).ok()) {
      requested = static_cast<size_t>(value);
    }
  }
  util::SetThreadCount(requested);
  return util::ThreadCount();
}

std::unique_ptr<emb::EAModel> TrainModel(emb::ModelKind kind,
                                         const data::EaDataset& dataset) {
  std::unique_ptr<emb::EAModel> model = emb::MakeDefaultModel(kind);
  model->Train(dataset);
  return model;
}

const std::vector<emb::ModelKind>& AllModels() {
  static const std::vector<emb::ModelKind>* kAll =
      // leaky singleton. exea-lint: allow(raw-new-delete)
      new std::vector<emb::ModelKind>{
          emb::ModelKind::kMTransE, emb::ModelKind::kAlignE,
          emb::ModelKind::kGcnAlign, emb::ModelKind::kDualAmn};
  return *kAll;
}

std::vector<MethodResult> RunExplanationBench(
    const data::EaDataset& dataset, const emb::EAModel& model,
    const ExplanationBenchOptions& options) {
  eval::RankedSimilarity ranked = eval::RankTestEntities(model, dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);

  explain::ExeaConfig config;
  config.hops = options.hops;
  explain::ExeaExplainer explainer(dataset, model, config);
  explain::AlignmentContext context(&aligned, &dataset.train);

  baselines::PerturbedEmbedder embedder(dataset, model);
  llm::SimulatedLLM sim_llm;

  // Method roster, paper order: classic baselines, LLM baselines, ExEA.
  struct Method {
    std::unique_ptr<baselines::Explainer> impl;
    std::vector<eval::FidelitySample> samples;
    double seconds = 0.0;
  };
  std::vector<Method> methods;
  auto add = [&methods](std::unique_ptr<baselines::Explainer> impl) {
    Method m;
    m.impl = std::move(impl);
    methods.push_back(std::move(m));
  };
  if (options.include_classic_baselines) {
    add(std::make_unique<baselines::EALime>(&embedder));
    add(std::make_unique<baselines::EAShapley>(
        &embedder,
        options.hops >= 2 ? baselines::ShapleyEstimator::kKernelShap
                          : baselines::ShapleyEstimator::kMonteCarlo));
    add(std::make_unique<baselines::AnchorExplainer>(&embedder));
    add(std::make_unique<baselines::LoreExplainer>(
        &embedder, baselines::LoreOptions{}));
  }
  if (options.include_llm_baselines) {
    add(std::make_unique<llm::ChatGptPerturb>(&sim_llm, &dataset, &embedder));
    add(std::make_unique<llm::ChatGptMatch>(&sim_llm, &dataset));
  }
  add(std::make_unique<explain::ExeaAdapter>(&explainer, &context));
  size_t exea_index = methods.size() - 1;

  // Sample correctly predicted pairs and explain them with every method at
  // ExEA-matched sparsity.
  size_t sampled = 0;
  for (const kg::AlignedPair& pair : dataset.test) {
    if (sampled >= options.num_samples) break;
    const auto& candidates = ranked.CandidatesFor(pair.source);
    if (candidates.empty() || candidates[0].target != pair.target) continue;

    explain::Explanation reference =
        explainer.Explain(pair.source, pair.target, context);
    if (reference.CandidateCount() == 0) continue;
    size_t budget = std::max<size_t>(1, reference.TripleCount());
    ++sampled;

    for (size_t m = 0; m < methods.size(); ++m) {
      WallTimer timer;
      baselines::ExplainerResult result = methods[m].impl->Explain(
          pair.source, pair.target, reference.candidates1,
          reference.candidates2, m == exea_index ? 0 : budget);
      methods[m].seconds += timer.ElapsedSeconds();
      eval::FidelitySample sample;
      sample.e1 = pair.source;
      sample.e2 = pair.target;
      sample.candidates1 = reference.candidates1;
      sample.candidates2 = reference.candidates2;
      sample.explanation1 = std::move(result.triples1);
      sample.explanation2 = std::move(result.triples2);
      methods[m].samples.push_back(std::move(sample));
    }
  }

  std::vector<MethodResult> results;
  for (Method& method : methods) {
    eval::FidelityResult fidelity =
        eval::EvaluateFidelity(dataset, model, method.samples);
    MethodResult row;
    row.method = method.impl->name();
    row.fidelity = fidelity.fidelity;
    row.sparsity = fidelity.sparsity;
    row.explain_seconds = method.seconds;
    results.push_back(std::move(row));
  }
  return results;
}

}  // namespace exea::bench
