file(REMOVE_RECURSE
  "CMakeFiles/exea_llm.dir/llm_baselines.cc.o"
  "CMakeFiles/exea_llm.dir/llm_baselines.cc.o.d"
  "CMakeFiles/exea_llm.dir/sim_llm.cc.o"
  "CMakeFiles/exea_llm.dir/sim_llm.cc.o.d"
  "CMakeFiles/exea_llm.dir/verification.cc.o"
  "CMakeFiles/exea_llm.dir/verification.cc.o.d"
  "libexea_llm.a"
  "libexea_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
