#include "repair/relation_alignment.h"

#include <algorithm>

#include "la/similarity.h"
#include "kg/name_encoder.h"
#include "util/logging.h"

namespace exea::repair {

void RelationAlignment::Add(kg::RelationId r1, kg::RelationId r2) {
  source_to_target_[r1] = r2;
  target_to_source_[r2] = r1;
}

bool RelationAlignment::Contains(kg::RelationId r1, kg::RelationId r2) const {
  auto it = source_to_target_.find(r1);
  return it != source_to_target_.end() && it->second == r2;
}

kg::RelationId RelationAlignment::TargetOf(kg::RelationId r1) const {
  auto it = source_to_target_.find(r1);
  return it == source_to_target_.end() ? kg::kInvalidRelation : it->second;
}

kg::RelationId RelationAlignment::SourceOf(kg::RelationId r2) const {
  auto it = target_to_source_.find(r2);
  return it == target_to_source_.end() ? kg::kInvalidRelation : it->second;
}

std::vector<std::pair<kg::RelationId, kg::RelationId>>
RelationAlignment::SortedPairs() const {
  std::vector<std::pair<kg::RelationId, kg::RelationId>> out(
      source_to_target_.begin(), source_to_target_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> MutualBestPairs(
    const la::Matrix& a, const la::Matrix& b, double min_similarity) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (a.rows() == 0 || b.rows() == 0) return out;
  la::Matrix sim = la::CosineSimilarityMatrix(a, b);
  // Best column per row and best row per column.
  std::vector<size_t> best_col(a.rows());
  std::vector<size_t> best_row(b.rows(), 0);
  std::vector<float> best_row_score(b.rows(), -2.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* row = sim.Row(i);
    size_t best = 0;
    for (size_t j = 1; j < b.rows(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    best_col[i] = best;
    for (size_t j = 0; j < b.rows(); ++j) {
      if (row[j] > best_row_score[j]) {
        best_row_score[j] = row[j];
        best_row[j] = i;
      }
    }
  }
  for (size_t i = 0; i < a.rows(); ++i) {
    size_t j = best_col[i];
    if (best_row[j] == i &&
        sim.At(i, j) >= static_cast<float>(min_similarity)) {
      out.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
    }
  }
  return out;
}

RelationAlignment MineRelationAlignment(const data::EaDataset& dataset,
                                        const emb::EAModel& model,
                                        const RelationAlignmentOptions& opts) {
  la::Matrix emb1;
  la::Matrix emb2;
  if (opts.use_names) {
    kg::NameEncoder encoder;
    emb1 = encoder.EncodeRelationNames(dataset.kg1);
    emb2 = encoder.EncodeRelationNames(dataset.kg2);
  } else {
    EXEA_CHECK(model.HasRelationEmbeddings())
        << "model " << model.name()
        << " has no relation embeddings and names were disallowed";
    emb1 = model.RelationEmbeddings(kg::KgSide::kSource);
    emb2 = model.RelationEmbeddings(kg::KgSide::kTarget);
  }
  RelationAlignment alignment;
  for (const auto& [r1, r2] :
       MutualBestPairs(emb1, emb2, opts.min_similarity)) {
    alignment.Add(r1, r2);
  }
  return alignment;
}

}  // namespace exea::repair
