// Path representations, Eq. (2) of the paper:
//
//   p = (e_1 + sum_{i=1..n-1} e'_i) / n  ⊕  (sum_{i=1..n} r_i) / n
//
// i.e. the concatenation of (a) the mean of the central entity and the
// path-internal entities (the terminal neighbour is excluded, as in the
// paper) and (b) the mean of the traversed relation embeddings.
//
// Direction handling: a step traversed against the stored triple direction
// contributes the *negated* relation embedding, consistent with the
// translation semantics under which these relation vectors are obtained
// (Eq. (1): r ≈ e_head - e_tail). This is what lets a forward `successor`
// path match a backward `predecessor` path.

#ifndef EXEA_EXPLAIN_PATH_EMBEDDING_H_
#define EXEA_EXPLAIN_PATH_EMBEDDING_H_

#include "kg/neighborhood.h"
#include "la/matrix.h"
#include "la/vector_ops.h"

namespace exea::explain {

// Computes the Eq. (2) embedding of `path`. `entity_embeddings` rows are
// entity ids; `relation_embeddings` rows are relation ids. The result has
// 2 * dim entries.
la::Vec PathEmbedding(const kg::RelationPath& path,
                      const la::Matrix& entity_embeddings,
                      const la::Matrix& relation_embeddings);

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_PATH_EMBEDDING_H_
