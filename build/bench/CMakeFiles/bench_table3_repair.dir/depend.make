# Empty dependencies file for bench_table3_repair.
# This may be replaced when dependencies are built.
