// Wall-clock timer used by the efficiency experiments (Fig. 4).

#ifndef EXEA_UTIL_TIMER_H_
#define EXEA_UTIL_TIMER_H_

#include <chrono>

namespace exea {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time in seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace exea

#endif  // EXEA_UTIL_TIMER_H_
