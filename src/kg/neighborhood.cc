#include "kg/neighborhood.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/logging.h"

namespace exea::kg {

std::vector<Triple> RelationPath::Triples() const {
  std::vector<Triple> out;
  out.reserve(steps.size());
  EntityId from = source;
  for (const PathStep& step : steps) {
    if (step.outgoing) {
      out.push_back({from, step.rel, step.to});
    } else {
      out.push_back({step.to, step.rel, from});
    }
    from = step.to;
  }
  return out;
}

std::vector<Triple> TriplesWithinHops(const KnowledgeGraph& graph, EntityId e,
                                      int hops) {
  EXEA_CHECK_GE(hops, 1);
  std::vector<Triple> out;
  std::unordered_set<Triple, TripleHash> seen;
  // BFS frontier of entities at increasing distance; collect all triples
  // incident to entities at distance < hops.
  std::unordered_set<EntityId> visited{e};
  std::deque<EntityId> frontier{e};
  for (int depth = 0; depth < hops && !frontier.empty(); ++depth) {
    std::deque<EntityId> next;
    for (EntityId current : frontier) {
      for (const AdjacentEdge& edge : graph.Edges(current)) {
        Triple t = edge.outgoing
                       ? Triple{current, edge.rel, edge.neighbor}
                       : Triple{edge.neighbor, edge.rel, current};
        if (seen.insert(t).second) out.push_back(t);
        if (visited.insert(edge.neighbor).second) {
          next.push_back(edge.neighbor);
        }
      }
    }
    frontier.swap(next);
  }
  return out;
}

namespace {

void EnumerateRecursive(const KnowledgeGraph& graph,
                        const PathEnumerationOptions& opts,
                        RelationPath& current,
                        std::unordered_set<EntityId>& on_path,
                        EntityId at,
                        std::vector<RelationPath>& out) {
  if (out.size() >= opts.max_paths) return;
  if (static_cast<int>(current.steps.size()) >= opts.max_length) return;
  const std::vector<AdjacentEdge>& edges = graph.Edges(at);
  size_t fanout = std::min(edges.size(), opts.max_branch);
  for (size_t i = 0; i < fanout && out.size() < opts.max_paths; ++i) {
    const AdjacentEdge& edge = edges[i];
    if (on_path.count(edge.neighbor) > 0) continue;
    current.steps.push_back({edge.rel, edge.outgoing, edge.neighbor});
    out.push_back(current);
    on_path.insert(edge.neighbor);
    EnumerateRecursive(graph, opts, current, on_path, edge.neighbor, out);
    on_path.erase(edge.neighbor);
    current.steps.pop_back();
  }
}

}  // namespace

std::vector<RelationPath> EnumeratePaths(const KnowledgeGraph& graph,
                                         EntityId e,
                                         const PathEnumerationOptions& opts) {
  std::vector<RelationPath> out;
  RelationPath current;
  current.source = e;
  std::unordered_set<EntityId> on_path{e};
  EnumerateRecursive(graph, opts, current, on_path, e, out);
  // DFS yields depth-first order; re-sort so shorter paths come first while
  // keeping the deterministic tie order of discovery.
  std::stable_sort(out.begin(), out.end(),
                   [](const RelationPath& a, const RelationPath& b) {
                     return a.steps.size() < b.steps.size();
                   });
  return out;
}

}  // namespace exea::kg
