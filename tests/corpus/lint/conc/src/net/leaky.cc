// fd-leak fixture: one function leaks a socket on an early return, its
// twin closes on every path.

// A stale waiver spelling that suppresses nothing — waiver-format flags
// it (and --fix normalizes it):
// exea-lint:allow(raw-rng)

namespace demo::net {

// Positive: the early return on a bad port drops the live socket.
int OpenAndBind(int port) {
  int fd = ::socket(2, 1, 0);
  if (fd < 0) return -1;
  if (port <= 0) {
    return -1;
  }
  return fd;
}

// Negative: every path closes or hands back the descriptor.
int OpenChecked(int port) {
  int fd = ::socket(2, 1, 0);
  if (fd < 0) return -1;
  if (port <= 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace demo::net
