#include "kg/name_encoder.h"

#include "la/vector_ops.h"
#include "util/string_util.h"

namespace exea::kg {

std::string_view StripNamespace(std::string_view name) {
  size_t slash = name.find('/');
  if (slash == std::string_view::npos) return name;
  return name.substr(slash + 1);
}

la::Vec NameEncoder::Encode(std::string_view name) const {
  std::string lowered = AsciiLower(StripNamespace(name));
  la::Vec out(dim_, 0.0f);
  if (lowered.empty()) return out;
  // Pad so short names still produce trigrams.
  std::string padded = "^" + lowered + "$";
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    // FNV-1a over the trigram.
    uint64_t h = 1469598103934665603ULL;
    for (size_t k = 0; k < 3; ++k) {
      h ^= static_cast<unsigned char>(padded[i + k]);
      h *= 1099511628211ULL;
    }
    size_t bucket = static_cast<size_t>(h % dim_);
    // Signed hashing reduces collisions' bias.
    float sign = (h >> 63) != 0u ? -1.0f : 1.0f;
    out[bucket] += sign;
  }
  la::NormalizeL2(out);
  return out;
}

la::Matrix NameEncoder::EncodeRelationNames(
    const kg::KnowledgeGraph& graph) const {
  la::Matrix out(graph.num_relations(), dim_);
  for (kg::RelationId r = 0; r < graph.num_relations(); ++r) {
    out.SetRow(r, Encode(graph.RelationName(r)));
  }
  return out;
}

}  // namespace exea::kg
