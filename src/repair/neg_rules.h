// ¬sameAs rule mining (paper Section IV-A).
//
// Within one KG, a relation pair (r, r') yields the Horn rule
//   (x, r, y) ∧ (x, r', z) ∧ (r, ¬sameAs, r') → (y, ¬sameAs, z)
// when
//   1. no head entity ever reaches the *same* tail through both r and r'
//      (the relations are tail-disjoint per head), and
//   2. at least one real rule instance exists: some head reaches two
//      *different* tails through r and r' (the witness condition the paper
//      adds to prune useless rules).
//
// The mined set is symmetric in (r, r').

#ifndef EXEA_REPAIR_NEG_RULES_H_
#define EXEA_REPAIR_NEG_RULES_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kg/graph.h"

namespace exea::repair {

class NegRuleSet {
 public:
  NegRuleSet() = default;

  void Add(kg::RelationId r1, kg::RelationId r2);

  // Symmetric lookup.
  bool Contains(kg::RelationId r1, kg::RelationId r2) const;

  size_t size() const { return rules_.size(); }

  std::vector<std::pair<kg::RelationId, kg::RelationId>> SortedPairs() const;

 private:
  static uint64_t Key(kg::RelationId a, kg::RelationId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  std::unordered_set<uint64_t> rules_;
};

// Mines the ¬sameAs rules of one KG.
NegRuleSet MineNegRules(const kg::KnowledgeGraph& graph);

}  // namespace exea::repair

#endif  // EXEA_REPAIR_NEG_RULES_H_
