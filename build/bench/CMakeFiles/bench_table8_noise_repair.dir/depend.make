# Empty dependencies file for bench_table8_noise_repair.
# This may be replaced when dependencies are built.
