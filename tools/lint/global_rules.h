// The cross-TU phase: passes that need every file's fact tables at once.
// Layering and include-cycle detection (migrated from the per-file tool),
// discard resolution against the global Status registry, and the four
// concurrency rule families built on the call graph — lock discipline
// propagated through EXEA_REQUIRES, guarded members escaping into free
// functions, event-loop blocking-call reachability, and unordered-
// container iteration feeding serialized output. Everything here consumes
// FileAnalysis records, which may have been restored from the cache.

#ifndef EXEA_TOOLS_LINT_GLOBAL_RULES_H_
#define EXEA_TOOLS_LINT_GLOBAL_RULES_H_

#include <string>
#include <vector>

#include "lint/analysis.h"
#include "lint/config.h"

namespace lint {

// Runs every cross-TU pass and returns the (unsorted, unfiltered-by-rule)
// diagnostics. `layers` may be null (the layering family is skipped).
// Waivers are honored here; rule enablement is the driver's concern.
std::vector<Diagnostic> RunGlobalRules(const std::vector<FileAnalysis>& files,
                                       const LayerGraph* layers,
                                       const std::string& layers_path,
                                       const ConcurrencyConfig& conc);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_GLOBAL_RULES_H_
