// AlignE (Sun et al., IJCAI 2018, "Bootstrapping entity alignment"):
// a translation-based model that improves over MTransE with
//   * a limit-based loss (positive scores pushed below gamma_1, negative
//     scores pushed above gamma_2) instead of margin ranking, and
//   * epsilon-truncated hard negative sampling, which is what gives it the
//     ability to discriminate confusable sibling entities (the property the
//     paper's case study highlights), and
//   * parameter swapping: seed pairs generate cross-KG triples during
//     training, fusing the two embedding spaces.

#ifndef EXEA_EMB_ALIGNE_H_
#define EXEA_EMB_ALIGNE_H_

#include <memory>
#include <string>

#include "emb/model.h"

namespace exea::emb {

class AlignE : public EAModel {
 public:
  explicit AlignE(const TrainConfig& config) : config_(config) {}

  std::string name() const override { return "AlignE"; }
  void Train(const data::EaDataset& dataset) override;
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override;
  bool HasRelationEmbeddings() const override { return true; }
  const la::Matrix& RelationEmbeddings(kg::KgSide side) const override;
  std::unique_ptr<EAModel> CloneUntrained() const override {
    return std::make_unique<AlignE>(config_);
  }

 private:
  TrainConfig config_;
  la::Matrix ent1_, ent2_;
  la::Matrix rel1_, rel2_;
};

}  // namespace exea::emb

#endif  // EXEA_EMB_ALIGNE_H_
