// Tests for the bench harness utilities (table rendering, env parsing,
// and the explanation-bench protocol invariants at minimal sample count).

#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/common.h"

namespace exea::bench {
namespace {

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::Fmt(0.123456), "0.123");
  EXPECT_EQ(Table::Fmt(0.5, 1), "0.5");
  EXPECT_EQ(Table::Fmt(-1.25, 2), "-1.25");
}

TEST(TableTest, PrintAlignsColumns) {
  Table table({"col_a", "b"});
  table.AddRow({"x", "long_value"});
  table.AddSeparator();
  table.AddRow({"longer_cell", "y"});
  ::testing::internal::CaptureStdout();
  table.Print();
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("col_a"), std::string::npos);
  EXPECT_NE(out.find("longer_cell"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Every data line has the same width header line implies: just check
  // both rows appear after the header.
  EXPECT_LT(out.find("col_a"), out.find("x"));
}

TEST(EnvTest, SamplesFromEnvParsesAndDefaults) {
  ::unsetenv("EXEA_BENCH_SAMPLES");
  EXPECT_EQ(SamplesFromEnv(42), 42u);
  ::setenv("EXEA_BENCH_SAMPLES", "7", 1);
  EXPECT_EQ(SamplesFromEnv(42), 7u);
  ::setenv("EXEA_BENCH_SAMPLES", "garbage", 1);
  EXPECT_EQ(SamplesFromEnv(42), 42u);
  ::unsetenv("EXEA_BENCH_SAMPLES");
}

TEST(EnvTest, BuildStampsAreNonEmpty) {
  // The actual values depend on the checkout/configure, but the accessors
  // must always return something usable for the bench JSON context.
  EXPECT_FALSE(BuildGitSha().empty());
  EXPECT_FALSE(BuildType().empty());
}

TEST(EnvTest, AllModelsIsPaperRoster) {
  const auto& models = AllModels();
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(emb::ModelKindName(models[0]), "MTransE");
  EXPECT_EQ(emb::ModelKindName(models[3]), "Dual-AMN");
}

TEST(ExplanationBenchTest, ProtocolInvariants) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      TrainModel(emb::ModelKind::kMTransE, dataset);
  ExplanationBenchOptions options;
  options.num_samples = 5;
  std::vector<MethodResult> results =
      RunExplanationBench(dataset, *model, options);
  // Roster: 4 classic baselines + ExEA, paper order, ExEA last.
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].method, "EALime");
  EXPECT_EQ(results[4].method, "ExEA");
  for (const MethodResult& row : results) {
    EXPECT_GE(row.fidelity, 0.0);
    EXPECT_LE(row.fidelity, 1.0);
    EXPECT_GE(row.sparsity, 0.0);
    EXPECT_LT(row.sparsity, 1.0);
    EXPECT_GE(row.explain_seconds, 0.0);
  }
  // Matched-sparsity protocol: all baselines share ExEA's sparsity.
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    EXPECT_NEAR(results[i].sparsity, results.back().sparsity, 1e-9);
  }
}

}  // namespace
}  // namespace exea::bench
