// RepairPipeline: the end-to-end EA repair facade (paper Section IV).
//
// Orchestrates the three conflict-resolution stages over a trained model's
// raw alignment:
//   cr1 — relation-alignment conflicts: mined ¬sameAs rules prune
//         implicated ADG neighbours before confidence is read, sharpening
//         every confidence comparison made by the later stages;
//   cr2 — one-to-many conflicts: Algorithm 1;
//   cr3 — low-confidence conflicts: Algorithm 2 (+ greedy fallback).
//
// Each stage can be disabled independently, which is how the Table IV /
// Fig. 6 ablations are produced.

#ifndef EXEA_REPAIR_PIPELINE_H_
#define EXEA_REPAIR_PIPELINE_H_

#include <memory>
#include <optional>

#include "emb/inference.h"
#include "explain/exea.h"
#include "repair/conflicts.h"
#include "repair/low_confidence.h"
#include "repair/one_to_many.h"

namespace exea::repair {

struct RepairOptions {
  bool enable_cr1 = true;  // relation-alignment conflict resolution
  bool enable_cr2 = true;  // one-to-many conflict resolution (Algorithm 1)
  bool enable_cr3 = true;  // low-confidence conflict resolution (Algorithm 2)
};

struct RepairReport {
  kg::AlignmentSet base_alignment;      // raw greedy model output A_res
  kg::AlignmentSet repaired_alignment;  // final A*
  double base_accuracy = 0.0;
  double repaired_accuracy = 0.0;

  // Stage statistics.
  size_t one_to_many_conflicts = 0;
  size_t one_to_many_swaps = 0;
  size_t low_confidence_removed = 0;
  size_t low_confidence_swaps = 0;
  size_t greedy_fallback_matches = 0;
  size_t relation_conflict_prunes = 0;  // ADG neighbours removed by cr1

  double AccuracyGain() const { return repaired_accuracy - base_accuracy; }
};

class RepairPipeline {
 public:
  // Borrows `explainer` (and transitively its dataset/model), which must
  // outlive the pipeline. Mining for cr1 happens here when enabled.
  RepairPipeline(const explain::ExeaExplainer& explainer,
                 const RepairOptions& options);

  // Full run: greedy inference, then the enabled repair stages, then
  // accuracy measurement against the dataset's test gold.
  RepairReport Run();

  // As Run(), but starting from a caller-provided base alignment and
  // ranked similarity (used by benches that share inference across
  // configurations).
  RepairReport Run(const kg::AlignmentSet& base,
                   const emb::RankedSimilarity& ranked);

  // Extension (bootstrapping-style, in the spirit of the AlignE lineage):
  // repairs, then re-runs the repair with the *repaired* alignment as the
  // matching context, up to `max_rounds` times or until the alignment
  // stops changing. Each round's confidence comparisons benefit from the
  // previous round's cleaner neighbour alignments. Returns the last
  // round's report with base_* fields referring to the original input.
  RepairReport RunIterative(size_t max_rounds);

  // The confidence oracle the pipeline uses (ADG confidence, with cr1
  // pruning folded in when enabled). Exposed for the verification
  // experiments (Table VI), which reuse it as a pair-validity score.
  double PairConfidence(kg::EntityId e1, kg::EntityId e2,
                        const explain::AlignmentContext& context) const;

  const RelationConflictChecker* conflict_checker() const {
    return checker_ ? &*checker_ : nullptr;
  }

 private:
  const explain::ExeaExplainer* explainer_;
  RepairOptions options_;
  std::optional<RelationConflictChecker> checker_;
  // Accumulates cr1 prune counts across PairConfidence calls during a Run.
  mutable size_t prune_count_ = 0;
};

}  // namespace exea::repair

#endif  // EXEA_REPAIR_PIPELINE_H_
