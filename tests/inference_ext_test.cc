// Tests for the extended inference strategies: CSLS re-scoring and
// stable-matching (Gale-Shapley) alignment, plus the explanation/ADG
// export formats.

#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/csls.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "explain/export.h"

namespace exea {
namespace {

// ------------------------------------------------------------------ CSLS

TEST(CslsTest, PenalizesHubColumns) {
  // Target 0 is a "hub": similar to everything. CSLS must demote it
  // relative to the exclusive match.
  la::Matrix sim(2, 2);
  sim.SetRow(0, {0.80f, 0.75f});
  sim.SetRow(1, {0.80f, 0.10f});
  // Raw: source 0 prefers target 0 (0.80 > 0.75). Target 0 is desired by
  // both sources; target 1 only by source 0.
  la::Matrix adjusted = la::Matrix();
  adjusted = eval::CslsAdjust(sim, 1);
  // r_tgt(0) = 0.80, r_tgt(1) = 0.75; r_src(0) = 0.80, r_src(1) = 0.80.
  // csls(0,0) = 1.6 - .8 - .8 = 0; csls(0,1) = 1.5 - .8 - .75 = -0.05.
  EXPECT_NEAR(adjusted.At(0, 0), 0.0f, 1e-5f);
  EXPECT_NEAR(adjusted.At(0, 1), -0.05f, 1e-5f);
  EXPECT_NEAR(adjusted.At(1, 0), 0.0f, 1e-5f);
  EXPECT_NEAR(adjusted.At(1, 1), -1.35f, 1e-5f);
}

TEST(CslsTest, PreservesShapeAndDeterminism) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity a = eval::RankTestEntitiesCsls(*model, dataset);
  eval::RankedSimilarity b = eval::RankTestEntitiesCsls(*model, dataset);
  EXPECT_EQ(a.sources().size(), dataset.test_sources.size());
  for (kg::EntityId source : a.sources()) {
    EXPECT_EQ(a.CandidatesFor(source)[0].target,
              b.CandidatesFor(source)[0].target);
  }
}

TEST(CslsTest, ReducesOneToManyConflicts) {
  // CSLS's purpose: hub targets attract fewer sources.
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  kg::AlignmentSet greedy =
      eval::GreedyAlign(eval::RankTestEntities(*model, dataset));
  kg::AlignmentSet csls =
      eval::GreedyAlign(eval::RankTestEntitiesCsls(*model, dataset));
  auto conflicts = [](const kg::AlignmentSet& alignment) {
    size_t count = 0;
    for (const kg::AlignedPair& pair : alignment.SortedPairs()) {
      if (alignment.SourcesOf(pair.target).size() > 1) ++count;
    }
    return count;
  };
  EXPECT_LE(conflicts(csls), conflicts(greedy));
}

// -------------------------------------------------------- stable matching

TEST(StableMatchTest, OutputIsOneToOneAndComplete) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  kg::AlignmentSet stable = eval::StableMatchAlign(ranked);
  EXPECT_TRUE(stable.IsOneToOne());
  // |sources| == |targets| here, so everyone is matched.
  EXPECT_EQ(stable.size(), ranked.sources().size());
}

TEST(StableMatchTest, NoBlockingPair) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  kg::AlignmentSet stable = eval::StableMatchAlign(ranked);
  // Stability: no (s, t) where both strictly prefer each other over their
  // assigned partners. Check a sample to keep the test fast.
  size_t checked = 0;
  for (kg::EntityId s : ranked.sources()) {
    if (++checked > 20) break;
    kg::EntityId matched_t = stable.TargetsOf(s)[0];
    double s_current = ranked.Sim(s, matched_t);
    for (kg::EntityId t : ranked.targets()) {
      if (t == matched_t) continue;
      if (ranked.Sim(s, t) <= s_current) continue;  // s doesn't prefer t
      kg::EntityId t_partner = stable.SourcesOf(t)[0];
      EXPECT_LE(ranked.Sim(s, t), ranked.Sim(t_partner, t))
          << "blocking pair (" << s << ", " << t << ")";
    }
  }
}

TEST(StableMatchTest, BeatsGreedyOnConflictedSimilarities) {
  // Construct two sources both preferring target 0, one strictly better;
  // greedy collides, stable matching resolves.
  la::Matrix sim(2, 2);
  sim.SetRow(0, {0.9f, 0.2f});
  sim.SetRow(1, {0.8f, 0.7f});
  eval::RankedSimilarity ranked(sim, {10, 11}, {20, 21});
  kg::AlignmentSet greedy = eval::GreedyAlign(ranked);
  EXPECT_FALSE(greedy.IsOneToOne());
  kg::AlignmentSet stable = eval::StableMatchAlign(ranked);
  EXPECT_TRUE(stable.Contains(10, 20));
  EXPECT_TRUE(stable.Contains(11, 21));
}

// ----------------------------------------------------------------- export

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    model_ = emb::MakeDefaultModel(emb::ModelKind::kMTransE).release();
    model_->Train(*dataset_);
    explainer_ = new explain::ExeaExplainer(*dataset_, *model_,
                                            explain::ExeaConfig{});
    aligned_ = new kg::AlignmentSet(
        eval::GreedyAlign(eval::RankTestEntities(*model_, *dataset_)));
  }
  static void TearDownTestSuite() {
    delete aligned_;
    delete explainer_;
    delete model_;
    delete dataset_;
  }

  static explain::Explanation SomeExplanation() {
    explain::AlignmentContext context(aligned_, &dataset_->train);
    for (const kg::AlignedPair& pair : dataset_->test) {
      explain::Explanation e =
          explainer_->Explain(pair.source, pair.target, context);
      if (!e.empty()) return e;
    }
    ADD_FAILURE() << "no non-empty explanation found";
    return {};
  }

  static data::EaDataset* dataset_;
  static emb::EAModel* model_;
  static explain::ExeaExplainer* explainer_;
  static kg::AlignmentSet* aligned_;
};

data::EaDataset* ExportTest::dataset_ = nullptr;
emb::EAModel* ExportTest::model_ = nullptr;
explain::ExeaExplainer* ExportTest::explainer_ = nullptr;
kg::AlignmentSet* ExportTest::aligned_ = nullptr;

TEST_F(ExportTest, DotContainsEntitiesAndStructure) {
  explain::Explanation e = SomeExplanation();
  std::string dot =
      explain::ExplanationToDot(e, dataset_->kg1, dataset_->kg2);
  EXPECT_NE(dot.find("digraph explanation"), std::string::npos);
  EXPECT_NE(dot.find("cluster_kg1"), std::string::npos);
  EXPECT_NE(dot.find(dataset_->kg1.EntityName(e.e1)), std::string::npos);
  EXPECT_NE(dot.find(dataset_->kg2.EntityName(e.e2)), std::string::npos);
  // One central dashed link plus one per matched neighbour pair at most.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST_F(ExportTest, AdgDotListsNeighbors) {
  explain::Explanation e = SomeExplanation();
  explain::Adg adg = explainer_->BuildAdg(e);
  std::string dot = explain::AdgToDot(adg, dataset_->kg1, dataset_->kg2);
  EXPECT_NE(dot.find("digraph adg"), std::string::npos);
  EXPECT_NE(dot.find("confidence"), std::string::npos);
  for (size_t i = 0; i < adg.neighbors.size(); ++i) {
    EXPECT_NE(dot.find("nb" + std::to_string(i)), std::string::npos);
  }
}

TEST_F(ExportTest, JsonIsStructurallySound) {
  explain::Explanation e = SomeExplanation();
  std::string json =
      explain::ExplanationToJson(e, dataset_->kg1, dataset_->kg2);
  // Balanced braces/brackets and the expected keys.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"matches\":"), std::string::npos);
  EXPECT_NE(json.find("\"source\":"), std::string::npos);

  explain::Adg adg = explainer_->BuildAdg(e);
  std::string adg_json =
      explain::AdgToJson(adg, dataset_->kg1, dataset_->kg2);
  EXPECT_NE(adg_json.find("\"confidence\":"), std::string::npos);
  EXPECT_EQ(std::count(adg_json.begin(), adg_json.end(), '{'),
            std::count(adg_json.begin(), adg_json.end(), '}'));
}

TEST(ExportEscapeTest, EscapesSpecials) {
  EXPECT_EQ(explain::EscapeForQuotes("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(explain::EscapeForQuotes("plain"), "plain");
}

}  // namespace
}  // namespace exea
