// Extra — the extension features in one table (none of these are paper
// tables; they exercise the future-work/related-work machinery this
// repository ships beyond the paper's evaluation):
//
//   * inference strategies: greedy vs mutual-best vs CSLS vs stable
//     matching, on the same trained model;
//   * bootstrapping (BootEA-style self-training) on top of MTransE;
//   * name augmentation (the paper's Section VII future-work direction);
//   * iterative repair (repair with the repaired alignment as context).

#include <cstdio>

#include "bench/common.h"
#include "data/noise.h"
#include "emb/bootstrapping.h"
#include "emb/name_augmented.h"
#include "eval/csls.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "repair/seed_cleaning.h"
#include "util/logging.h"
#include "util/string_util.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner("Extra — extension features (ZH-EN, MTransE)",
                     "beyond the paper's evaluation; see EXPERIMENTS.md");

  data::Scale scale = data::ScaleFromEnv();
  data::EaDataset dataset = data::MakeBenchmark(data::Benchmark::kZhEn, scale);
  std::unique_ptr<emb::EAModel> model =
      bench::TrainModel(emb::ModelKind::kMTransE, dataset);

  bench::Table table({"configuration", "accuracy"});
  auto acc = [&](const kg::AlignmentSet& alignment) {
    return bench::Table::Fmt(eval::Accuracy(alignment, dataset.test_gold));
  };

  // Inference strategies on the same embeddings.
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  table.AddRow({"greedy NN", acc(eval::GreedyAlign(ranked))});
  table.AddRow({"mutual-best (bi-kNN)", acc(eval::MutualBestAlign(ranked))});
  table.AddRow({"CSLS + greedy",
                acc(eval::GreedyAlign(
                    eval::RankTestEntitiesCsls(*model, dataset)))});
  table.AddRow({"stable matching", acc(eval::StableMatchAlign(ranked))});
  table.AddSeparator();

  // Bootstrapping.
  emb::BootstrapOptions boot;
  boot.rounds = 3;
  emb::BootstrapResult booted = emb::Bootstrap(*model, dataset, boot);
  table.AddRow({"bootstrapped (3 rounds)",
                acc(eval::GreedyAlign(
                    eval::RankTestEntities(*booted.model, dataset)))});

  // Name augmentation.
  emb::NameAugmentedModel augmented(
      emb::MakeDefaultModel(emb::ModelKind::kMTransE), 0.5);
  augmented.Train(dataset);
  table.AddRow({"+ name features (w=0.5)",
                acc(eval::GreedyAlign(
                    eval::RankTestEntities(augmented, dataset)))});
  table.AddSeparator();

  // Repair variants.
  explain::ExeaExplainer explainer(dataset, *model, explain::ExeaConfig{});
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  table.AddRow({"ExEA repair (1 round)",
                bench::Table::Fmt(pipeline.Run().repaired_accuracy)});
  table.AddRow({"ExEA repair (iterative)",
                bench::Table::Fmt(
                    pipeline.RunIterative(3).repaired_accuracy)});
  table.AddSeparator();

  // Seed cleaning under noise (extends Section V-E): corrupt 1/6 of the
  // seeds, then compare retraining on noisy vs cleaned seeds.
  {
    data::EaDataset noisy =
        data::CorruptSeedAlignment(dataset, 1.0 / 6.0, /*seed=*/23);
    std::unique_ptr<emb::EAModel> noisy_model =
        bench::TrainModel(emb::ModelKind::kMTransE, noisy);
    kg::AlignmentSet noisy_result =
        eval::GreedyAlign(eval::RankTestEntities(*noisy_model, noisy));
    table.AddRow({"noisy seeds (1/6 corrupt)",
                  bench::Table::Fmt(
                      eval::Accuracy(noisy_result, noisy.test_gold))});
    explain::ExeaExplainer noisy_explainer(noisy, *noisy_model,
                                           explain::ExeaConfig{});
    repair::SeedCleaningResult cleaned = repair::CleanSeeds(
        noisy_explainer, noisy.train, noisy_result,
        repair::SeedCleaningOptions{});
    data::EaDataset cleaned_dataset = noisy;
    cleaned_dataset.train = cleaned.cleaned;
    std::unique_ptr<emb::EAModel> retrained =
        bench::TrainModel(emb::ModelKind::kMTransE, cleaned_dataset);
    table.AddRow(
        {StrFormat("after seed cleaning (-%zu seeds)",
                   cleaned.removed.size()),
         bench::Table::Fmt(eval::Accuracy(
             eval::GreedyAlign(
                 eval::RankTestEntities(*retrained, cleaned_dataset)),
             noisy.test_gold))});
  }
  table.Print();

  std::printf(
      "\nExpected: mutual-best trades recall for precision (its accuracy "
      "counts only\nmutually-best pairs); CSLS/stable matching reduce "
      "one-to-many collisions; each\nextension is at least competitive with "
      "plain greedy; ExEA repair dominates all\ninference-only rows.\n");
  return 0;
}
