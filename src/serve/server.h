// The serving request loop: newline-delimited JSON, one request per line,
// one response line per request, over stdin/stdout (exea_cli serve) or an
// optional localhost TCP listener.
//
// Requests (flat JSON objects, string values):
//   {"op":"align","entity":"zh/Foo"}
//   {"op":"align","entities":"zh/Foo,zh/Bar"}        (batched)
//   {"op":"explain","source":"zh/Foo","target":"en/Bar"}
//   {"op":"neighbors","entity":"zh/Foo","side":"1"}
//   {"op":"repair_status","source":"zh/Foo","target":"en/Bar"}
//   {"op":"stats"}
//   {"op":"load_snapshot","dir":"/path/to/bundle"}   (hot swap)
//   {"op":"engine_status"}
//   {"op":"shutdown"}
//
// Responses: {"ok":true,"op":...,...} on success,
// {"ok":false,"error":"...","code":"NOT_FOUND"} on failure. A malformed or
// unknown request produces an error response — never a crash, never loop
// termination. Every request is subject to the configured deadline; an
// over-deadline request answers with code DEADLINE_EXCEEDED.
//
// The server records its traffic into an obs::Registry (requests, per-op
// counts, errors, cache hits/misses via the engine, and a latency
// histogram whose p50/p99 stay accurate at any request count — see
// obs/metrics.h) and reports it on {"op":"stats"} and to stderr at
// shutdown.

#ifndef EXEA_SERVE_SERVER_H_
#define EXEA_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/engine.h"
#include "util/check.h"
#include "util/status.h"

namespace exea::serve {

// Parses one flat JSON object ({"key":"value"|number|true|false|null,...})
// into a key → value map. Non-string scalars are returned as their literal
// text. Nested objects/arrays are rejected (the protocol is flat by
// design). Exposed for tests.
[[nodiscard]] StatusOr<std::map<std::string, std::string>> ParseFlatJson(
    const std::string& line);

// Escapes a string for embedding in a JSON double-quoted literal.
std::string JsonEscape(const std::string& raw);

struct ServerOptions {
  double deadline_seconds = 5.0;  // per request; <= 0 disables

  // Hard cap on one request line. Longer lines are answered with an
  // OUT_OF_RANGE error and discarded without ever being buffered
  // whole, so a hostile peer cannot balloon the server's memory by
  // withholding its newline. The loop then continues at the next line.
  size_t max_request_bytes = 1 << 20;  // 1 MiB

  // Where the server registers its metrics. nullptr → the engine's
  // registry, so server and engine metrics land in one place by default
  // (production uses obs::Registry::Global() for both).
  obs::Registry* registry = nullptr;
};

class Server {
 public:
  // How align batches reach the engine. The default dispatcher is
  // QueryEngine::AlignBatch; the async server swaps in the micro-batching
  // coalescer, which shares one index dispatch across concurrent
  // requests while returning byte-identical per-request results.
  using AlignDispatcher = std::function<StatusOr<std::vector<AlignResult>>(
      const std::vector<std::string>&, const Deadline&)>;

  // Borrows `engine`, which must outlive the server.
  Server(QueryEngine* engine, const ServerOptions& options);

  // Handles one request line, returns the response line (no trailing
  // newline) and updates the metrics. Never throws; malformed input
  // yields an {"ok":false,...} response. Public for in-process tests.
  // Thread-safe: the engine is immutable apart from its internally locked
  // cache, counters are atomic, and the latency histogram takes its own
  // brief lock per sample.
  std::string HandleLine(const std::string& line);

  // Reads requests from `in` until EOF or {"op":"shutdown"}; writes one
  // response line per request to `out` (flushed per line, so a pipe peer
  // can converse synchronously). Dumps the stats to stderr on exit.
  void Serve(std::istream& in, std::ostream& out);

  // Listens on 127.0.0.1:`port`, serving one client connection at a time
  // with the same protocol, until a client sends {"op":"shutdown"}.
  [[nodiscard]] Status ServeTcp(int port);

  // The registry this server's metrics live in:
  //   serve.requests / .ok / .errors / .malformed / .oversized /
  //   .deadline_exceeded                      counters
  //   serve.op.<op>                           per-op request counters
  //   serve.latency_ms                        histogram over all requests
  const obs::Registry& registry() const { return *registry_; }

  // The server + engine metrics as a JSON object (the "stats" response
  // payload). Scalar keys are flattened for ergonomic grepping; the full
  // registry dump rides along under "metrics".
  std::string StatsJson() const;

  // True once a {"op":"shutdown"} request has been handled.
  bool shutdown_requested() const { return shutdown_requested_.load(); }

  // Replaces the align dispatch path. Call before serving traffic; the
  // dispatcher must be safe to invoke from multiple threads.
  void set_align_dispatcher(AlignDispatcher dispatcher) {
    align_dispatcher_ = std::move(dispatcher);
  }

  // Counts and renders the rejection of a line longer than
  // options_.max_request_bytes. Public so transports that do their own
  // framing (the event loop) can reject with identical bytes + counters.
  std::string RejectOversized(size_t observed_bytes);

  // Counts and renders an admission-control rejection: the request queue
  // was full when the line arrived. Counted under serve.rejected; like
  // RejectOversized, the request never enters the latency histogram
  // (no work was done).
  std::string RejectQueueFull();

  // Counts and renders the shedding of a request whose deadline expired
  // while it sat in the queue — checked after dequeue, before any work.
  // Counted under serve.deadline_exceeded (the client-visible code) and
  // serve.shed (distinguishing queue sheds from compute timeouts); the
  // queue wait is recorded as the request's latency. The per-op counter
  // is not advanced: the line was never parsed.
  std::string ShedExpired(double queue_wait_ms);

 private:
  QueryEngine* engine_;
  ServerOptions options_;
  std::atomic<bool> shutdown_requested_{false};

  // All traffic accounting lives in the registry (the
  // obs-no-adhoc-metrics lint rule); these are resolved-once references
  // into it.
  obs::Registry* registry_;  // never null; set from options in the ctor
  obs::Counter& requests_;
  obs::Counter& ok_;
  obs::Counter& errors_;     // well-formed requests that returned an error
  obs::Counter& malformed_;  // lines that did not parse as a request
  obs::Counter& oversized_;  // lines rejected by max_request_bytes
  obs::Counter& deadline_exceeded_;
  obs::Counter& rejected_;   // admission rejections (queue full)
  obs::Counter& shed_;       // dequeued with an already-expired deadline
  obs::Histogram& latency_ms_;
  AlignDispatcher align_dispatcher_;  // empty → engine_->AlignBatch
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_SERVER_H_
