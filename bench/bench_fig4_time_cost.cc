// Figure 4: time cost (seconds) of explanation generation for Dual-AMN on
// ZH-EN, comparing every method with first-order candidates (-1) and
// candidates within the second order (-2).
//
// Paper shape (relative ordering, hardware-independent): ExEA is orders of
// magnitude faster than the perturbation baselines; LORE is the slowest
// (genetic iterations); EAShapley-2 (KernelSHAP) is *faster* than
// EAShapley-1 (Monte-Carlo permutations).

#include <cstdio>

#include "bench/common.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Figure 4 — time cost of explanation generation (Dual-AMN, ZH-EN)",
      "ExEA paper Fig. 4 (Section V-B4)");

  data::Scale scale = data::ScaleFromEnv();
  data::EaDataset dataset = data::MakeBenchmark(data::Benchmark::kZhEn, scale);
  std::unique_ptr<emb::EAModel> model =
      bench::TrainModel(emb::ModelKind::kDualAmn, dataset);

  bench::Table table({"method", "hops", "total_s", "per_sample_ms"});
  for (int hops : {1, 2}) {
    bench::ExplanationBenchOptions options;
    options.hops = hops;
    options.num_samples = bench::SamplesFromEnv();
    std::vector<bench::MethodResult> results =
        bench::RunExplanationBench(dataset, *model, options);
    for (const bench::MethodResult& row : results) {
      table.AddRow({row.method + (hops == 1 ? "-1" : "-2"),
                    std::to_string(hops),
                    bench::Table::Fmt(row.explain_seconds, 4),
                    bench::Table::Fmt(row.explain_seconds * 1000.0 /
                                          static_cast<double>(
                                              options.num_samples),
                                      3)});
    }
    table.AddSeparator();
  }
  table.Print();

  std::printf(
      "\nExpected shape (matches Fig. 4): ExEA fastest by a wide margin in "
      "both settings;\nLORE among the slowest (genetic iterations); "
      "EAShapley-2 (KernelSHAP) stays near the\nEAShapley-1 cost despite the "
      "enlarged candidate space — Monte-Carlo permutations on\n2-hop "
      "candidates would be an order of magnitude slower, which is exactly "
      "why the paper\n(and this build) switches estimators.\n");
  return 0;
}
