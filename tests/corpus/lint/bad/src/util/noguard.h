// Seeded header-hygiene violations: no include guard or #pragma once
// (→ header-guard) and a namespace dump at header scope
// (→ header-using-namespace).

using namespace std;

namespace demo {
struct Unprotected {};
}  // namespace demo
