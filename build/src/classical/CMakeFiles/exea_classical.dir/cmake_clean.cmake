file(REMOVE_RECURSE
  "CMakeFiles/exea_classical.dir/paris.cc.o"
  "CMakeFiles/exea_classical.dir/paris.cc.o.d"
  "CMakeFiles/exea_classical.dir/similarity_flooding.cc.o"
  "CMakeFiles/exea_classical.dir/similarity_flooding.cc.o.d"
  "libexea_classical.a"
  "libexea_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
