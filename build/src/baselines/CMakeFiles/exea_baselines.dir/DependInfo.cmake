
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/anchor.cc" "src/baselines/CMakeFiles/exea_baselines.dir/anchor.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/anchor.cc.o.d"
  "/root/repo/src/baselines/ealime.cc" "src/baselines/CMakeFiles/exea_baselines.dir/ealime.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/ealime.cc.o.d"
  "/root/repo/src/baselines/eashapley.cc" "src/baselines/CMakeFiles/exea_baselines.dir/eashapley.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/eashapley.cc.o.d"
  "/root/repo/src/baselines/exea_explainer_adapter.cc" "src/baselines/CMakeFiles/exea_baselines.dir/exea_explainer_adapter.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/exea_explainer_adapter.cc.o.d"
  "/root/repo/src/baselines/exhaustive.cc" "src/baselines/CMakeFiles/exea_baselines.dir/exhaustive.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/exhaustive.cc.o.d"
  "/root/repo/src/baselines/explainer.cc" "src/baselines/CMakeFiles/exea_baselines.dir/explainer.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/explainer.cc.o.d"
  "/root/repo/src/baselines/lore.cc" "src/baselines/CMakeFiles/exea_baselines.dir/lore.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/lore.cc.o.d"
  "/root/repo/src/baselines/perturbation.cc" "src/baselines/CMakeFiles/exea_baselines.dir/perturbation.cc.o" "gcc" "src/baselines/CMakeFiles/exea_baselines.dir/perturbation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explain/CMakeFiles/exea_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/exea_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/emb/CMakeFiles/exea_emb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/exea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
