#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace exea::data {
namespace {

using kg::EntityId;
using kg::RelationId;
using kg::Triple;
using kg::TripleHash;

// Abstract (id-level) description of the base KG, before naming/interning.
struct AbstractKg {
  size_t num_entities = 0;
  size_t num_relations = 0;
  std::vector<Triple> triples;
};

// Functionality profile a generic relation is generated under.
enum class RelationProfile { kFunctional, kInverseFunctional, kNoisy };

RelationProfile ProfileOf(size_t relation_index) {
  switch (relation_index % 3) {
    case 0:
      return RelationProfile::kFunctional;
    case 1:
      return RelationProfile::kInverseFunctional;
    default:
      return RelationProfile::kNoisy;
  }
}

// Reserved relation ids in the abstract KG.
constexpr RelationId kSuccessorId = 0;
constexpr RelationId kPredecessorId = 1;
constexpr RelationId kHubId = 2;
constexpr RelationId kFirstGenericId = 3;

// Samples an entity with a skew toward low indexes (hub-like entities),
// giving the KG a heavy-tailed degree distribution.
EntityId SampleSkewedEntity(Rng& rng, size_t n) {
  double u = rng.UniformDouble();
  return static_cast<EntityId>(
      std::min<size_t>(n - 1, static_cast<size_t>(std::pow(u, 1.6) * n)));
}

AbstractKg BuildBaseKg(const SyntheticOptions& options, Rng& rng) {
  AbstractKg base;
  base.num_entities = options.num_entities;
  base.num_relations = std::max<size_t>(options.num_relations, 4);

  std::unordered_set<Triple, TripleHash> seen;
  auto add = [&](EntityId h, RelationId r, EntityId t) {
    if (h == t) return false;
    Triple triple{h, r, t};
    if (!seen.insert(triple).second) return false;
    base.triples.push_back(triple);
    return true;
  };

  // --- 1. Confusable families -------------------------------------------
  // Family f occupies entities [f*s, (f+1)*s); hubs are drawn from the
  // remaining entity range.
  size_t family_span = options.num_families * options.family_size;
  EXEA_CHECK_LT(family_span + options.num_families, options.num_entities)
      << "num_entities too small for the requested families";
  for (size_t f = 0; f < options.num_families; ++f) {
    EntityId first = static_cast<EntityId>(f * options.family_size);
    EntityId hub = static_cast<EntityId>(
        family_span + rng.UniformInt(options.num_entities - family_span));
    for (size_t m = 0; m < options.family_size; ++m) {
      EntityId member = first + static_cast<EntityId>(m);
      if (m + 1 < options.family_size) {
        add(member, kSuccessorId, member + 1);
      }
      if (m > 0) {
        add(member, kPredecessorId, member - 1);
      }
      add(member, kHubId, hub);
    }
  }

  // --- 2. Background triples ---------------------------------------------
  size_t target_triples = static_cast<size_t>(
      options.triples_per_entity * static_cast<double>(options.num_entities));
  // (rel, head) pairs already used — enforced unique for functional
  // relations; (rel, tail) for inverse-functional ones.
  std::unordered_set<uint64_t> used_head;
  std::unordered_set<uint64_t> used_tail;
  auto key = [](RelationId r, EntityId e) {
    return (static_cast<uint64_t>(r) << 32) | e;
  };
  size_t num_generic = base.num_relations - kFirstGenericId;
  size_t attempts = 0;
  size_t max_attempts = target_triples * 20;
  while (base.triples.size() < target_triples && attempts < max_attempts) {
    ++attempts;
    RelationId rel = kFirstGenericId +
                     static_cast<RelationId>(rng.UniformInt(num_generic));
    EntityId head = SampleSkewedEntity(rng, options.num_entities);
    EntityId tail = SampleSkewedEntity(rng, options.num_entities);
    RelationProfile profile = ProfileOf(rel - kFirstGenericId);
    if (profile == RelationProfile::kFunctional &&
        used_head.count(key(rel, head)) > 0) {
      continue;
    }
    if (profile == RelationProfile::kInverseFunctional &&
        used_tail.count(key(rel, tail)) > 0) {
      continue;
    }
    if (add(head, rel, tail)) {
      used_head.insert(key(rel, head));
      used_tail.insert(key(rel, tail));
    }
  }

  // --- 3. Connectivity pass ----------------------------------------------
  std::vector<bool> touched(options.num_entities, false);
  for (const Triple& t : base.triples) {
    touched[t.head] = true;
    touched[t.tail] = true;
  }
  for (EntityId e = 0; e < options.num_entities; ++e) {
    if (touched[e]) continue;
    // Attach to a skewed-random partner with a generic relation.
    for (int tries = 0; tries < 32; ++tries) {
      EntityId partner = SampleSkewedEntity(rng, options.num_entities);
      RelationId rel = kFirstGenericId +
                       static_cast<RelationId>(rng.UniformInt(num_generic));
      if (partner != e && add(e, rel, partner)) break;
    }
  }
  return base;
}

// Per-relation mapping from base relation id to one or two counterpart
// relation names (split) or a shared name (merge).
struct RelationMapping {
  // For each base relation: candidate counterpart names. Split relations
  // have two entries; merged relations share one string with another
  // relation.
  std::vector<std::vector<std::string>> names;
};

RelationMapping BuildRelationMapping(const SyntheticOptions& options,
                                     const AbstractKg& base, Rng& rng) {
  RelationMapping mapping;
  mapping.names.resize(base.num_relations);
  const std::string& prefix = options.kg2_prefix;
  mapping.names[kSuccessorId] = {prefix + "/" + kSuccessorRelation};
  mapping.names[kPredecessorId] = {prefix + "/" + kPredecessorRelation};
  mapping.names[kHubId] = {prefix + "/" + kHubRelation};

  size_t num_generic = base.num_relations - kFirstGenericId;
  size_t num_split = static_cast<size_t>(
      options.relation_split_fraction * static_cast<double>(num_generic));
  size_t num_merge_pairs = static_cast<size_t>(
      options.relation_merge_fraction * static_cast<double>(num_generic) / 2);

  std::vector<size_t> generic_order =
      rng.SampleWithoutReplacement(num_generic, num_generic);
  size_t cursor = 0;
  // Split relations: "rel_j" becomes "rel_j_a" / "rel_j_b".
  for (size_t i = 0; i < num_split && cursor < generic_order.size();
       ++i, ++cursor) {
    RelationId r = kFirstGenericId + generic_order[cursor];
    mapping.names[r] = {StrFormat("%s/rel_%u_a", prefix.c_str(), r),
                        StrFormat("%s/rel_%u_b", prefix.c_str(), r)};
  }
  // Merged relations: two base relations share one counterpart name.
  for (size_t i = 0; i < num_merge_pairs && cursor + 1 < generic_order.size();
       ++i, cursor += 2) {
    RelationId r1 = kFirstGenericId + generic_order[cursor];
    RelationId r2 = kFirstGenericId + generic_order[cursor + 1];
    std::string shared = StrFormat("%s/rel_%u_%u", prefix.c_str(), r1, r2);
    mapping.names[r1] = {shared};
    mapping.names[r2] = {shared};
  }
  // Remaining generics map 1:1 by index so name-similarity mining works.
  for (; cursor < generic_order.size(); ++cursor) {
    RelationId r = kFirstGenericId + generic_order[cursor];
    mapping.names[r] = {StrFormat("%s/rel_%u", prefix.c_str(), r)};
  }
  return mapping;
}

}  // namespace

std::string FamilyEntityBaseName(size_t family, size_t member) {
  // Digit-bearing names so the simulated LLM's numeric insensitivity has
  // something to trip on (paper: "GeForce 300" vs "GeForce 400").
  return StrFormat("Widget_%zu_v%zu00", family, member + 1);
}

EaDataset GenerateDataset(const SyntheticOptions& options) {
  EXEA_CHECK_GE(options.num_relations, 4u);
  EXEA_CHECK_GE(options.family_size, 2u);
  Rng rng(options.seed);
  Rng base_rng = rng.Fork();
  Rng derive_rng = rng.Fork();
  Rng split_rng = rng.Fork();

  AbstractKg base = BuildBaseKg(options, base_rng);

  EaDataset dataset;
  dataset.name = options.dataset_name;

  // --- names -------------------------------------------------------------
  size_t family_span = options.num_families * options.family_size;
  auto base_name = [&](EntityId e) -> std::string {
    if (e < family_span) {
      size_t family = e / options.family_size;
      size_t member = e % options.family_size;
      return FamilyEntityBaseName(family, member);
    }
    return StrFormat("Entity_%u", e);
  };
  auto rel_base_name = [&](RelationId r) -> std::string {
    switch (r) {
      case kSuccessorId:
        return kSuccessorRelation;
      case kPredecessorId:
        return kPredecessorRelation;
      case kHubId:
        return kHubRelation;
      default:
        return StrFormat("rel_%u", r);
    }
  };

  // --- KG1: direct interning in id order ----------------------------------
  for (EntityId e = 0; e < base.num_entities; ++e) {
    dataset.kg1.AddEntity(options.kg1_prefix + "/" + base_name(e));
  }
  for (RelationId r = 0; r < base.num_relations; ++r) {
    dataset.kg1.AddRelation(options.kg1_prefix + "/" + rel_base_name(r));
  }
  for (const Triple& t : base.triples) {
    dataset.kg1.AddTriple(t.head, t.rel, t.tail);
  }

  // --- KG2: shuffled entity interning + relation mapping -------------------
  RelationMapping mapping = BuildRelationMapping(options, base, split_rng);
  std::vector<size_t> kg2_order =
      derive_rng.SampleWithoutReplacement(base.num_entities,
                                          base.num_entities);
  // counterpart[e1] = entity id in kg2.
  std::vector<EntityId> counterpart(base.num_entities);
  for (size_t i = 0; i < kg2_order.size(); ++i) {
    EntityId e1 = static_cast<EntityId>(kg2_order[i]);
    counterpart[e1] =
        dataset.kg2.AddEntity(options.kg2_prefix + "/" + base_name(e1));
  }
  for (const auto& names : mapping.names) {
    for (const std::string& name : names) {
      dataset.kg2.AddRelation(name);
    }
  }

  // Copy triples with dropout; split relations route by head parity.
  // Chain relations (successor/predecessor) drop at their own, typically
  // higher, rate — see SyntheticOptions::chain_dropout.
  for (const Triple& t : base.triples) {
    bool is_chain = t.rel == kSuccessorId || t.rel == kPredecessorId;
    double dropout =
        is_chain ? options.chain_dropout : options.triple_dropout;
    if (derive_rng.Bernoulli(dropout)) continue;
    const std::vector<std::string>& names = mapping.names[t.rel];
    const std::string& rel_name =
        names.size() == 1 ? names[0] : names[t.head % names.size()];
    RelationId r2 = dataset.kg2.FindRelation(rel_name);
    EXEA_CHECK_NE(r2, kg::kInvalidRelation);
    dataset.kg2.AddTriple(counterpart[t.head], r2, counterpart[t.tail]);
  }

  // Extra noise triples unique to KG2.
  size_t num_extra = static_cast<size_t>(options.extra_triple_fraction *
                                         static_cast<double>(
                                             base.triples.size()));
  size_t num_generic = base.num_relations - kFirstGenericId;
  for (size_t i = 0; i < num_extra; ++i) {
    EntityId h1 = SampleSkewedEntity(derive_rng, base.num_entities);
    EntityId t1 = SampleSkewedEntity(derive_rng, base.num_entities);
    if (h1 == t1) continue;
    RelationId r = kFirstGenericId + static_cast<RelationId>(
                                         derive_rng.UniformInt(num_generic));
    const std::vector<std::string>& names = mapping.names[r];
    RelationId r2 = dataset.kg2.FindRelation(names[0]);
    dataset.kg2.AddTriple(counterpart[h1], r2, counterpart[t1]);
  }

  // KG2 connectivity: counterparts that lost all triples to dropout get a
  // copy of one of their KG1 triples back.
  for (EntityId e1 = 0; e1 < base.num_entities; ++e1) {
    EntityId e2 = counterpart[e1];
    if (dataset.kg2.Degree(e2) > 0) continue;
    const auto& edges = dataset.kg1.Edges(e1);
    if (edges.empty()) continue;
    const kg::AdjacentEdge& edge = edges[0];
    const std::vector<std::string>& names = mapping.names[edge.rel];
    RelationId r2 = dataset.kg2.FindRelation(names[0]);
    if (edge.outgoing) {
      dataset.kg2.AddTriple(e2, r2, counterpart[edge.neighbor]);
    } else {
      dataset.kg2.AddTriple(counterpart[edge.neighbor], r2, e2);
    }
  }

  // --- attribute triples ---------------------------------------------------
  // Values are derived deterministically from the *base* entity index, so
  // counterpart entities carry the same facts; KG2 drops attribute triples
  // at the relational dropout rate and corrupts a small fraction of the
  // surviving values. Family members carry a digit-bearing "version"
  // attribute mirroring their names.
  if (options.num_attributes > 0 && options.attributes_per_entity > 0) {
    // Independent stream: attribute generation must not perturb the
    // relational derivation or the train/test split.
    Rng attr_rng(options.seed ^ 0xA77B5EEDULL);
    std::vector<kg::AttributeId> attrs1;
    std::vector<kg::AttributeId> attrs2;
    for (size_t a = 0; a < options.num_attributes; ++a) {
      attrs1.push_back(dataset.attrs1.AddAttribute(
          StrFormat("%s/attr_%zu", options.kg1_prefix.c_str(), a)));
      attrs2.push_back(dataset.attrs2.AddAttribute(
          StrFormat("%s/attr_%zu", options.kg2_prefix.c_str(), a)));
    }
    kg::AttributeId version1 =
        dataset.attrs1.AddAttribute(options.kg1_prefix + "/version");
    kg::AttributeId version2 =
        dataset.attrs2.AddAttribute(options.kg2_prefix + "/version");

    for (EntityId e1 = 0; e1 < base.num_entities; ++e1) {
      EntityId e2 = counterpart[e1];
      if (e1 < family_span) {
        size_t member = e1 % options.family_size;
        std::string version = StrFormat("v%zu00", member + 1);
        dataset.attrs1.AddTriple(e1, version1, version);
        if (!attr_rng.Bernoulli(options.triple_dropout)) {
          dataset.attrs2.AddTriple(e2, version2, version);
        }
      }
      size_t count = static_cast<size_t>(options.attributes_per_entity) +
                     (attr_rng.Bernoulli(options.attributes_per_entity -
                                         std::floor(
                                             options.attributes_per_entity))
                          ? 1
                          : 0);
      for (size_t k = 0; k < count; ++k) {
        size_t a = attr_rng.UniformInt(options.num_attributes);
        // Deterministic token per (entity, attribute): identical on both
        // sides unless corrupted.
        std::string value =
            StrFormat("tok_%zu", (static_cast<size_t>(e1) * 131 + a * 17 + k) %
                                     97);
        dataset.attrs1.AddTriple(e1, attrs1[a], value);
        if (attr_rng.Bernoulli(options.triple_dropout)) continue;
        if (attr_rng.Bernoulli(options.attribute_value_noise)) {
          value = StrFormat("tok_%llu",
                            static_cast<unsigned long long>(
                                attr_rng.UniformInt(97)));
        }
        dataset.attrs2.AddTriple(e2, attrs2[a], value);
      }
    }
  }

  // --- gold mapping and train/test split ----------------------------------
  for (EntityId e1 = 0; e1 < base.num_entities; ++e1) {
    dataset.gold[e1] = counterpart[e1];
  }
  std::vector<size_t> split_order = derive_rng.SampleWithoutReplacement(
      base.num_entities, base.num_entities);
  size_t num_train = static_cast<size_t>(
      options.train_ratio * static_cast<double>(base.num_entities));
  for (size_t i = 0; i < split_order.size(); ++i) {
    EntityId e1 = static_cast<EntityId>(split_order[i]);
    if (i < num_train) {
      dataset.train.Add(e1, counterpart[e1]);
    } else {
      dataset.test.push_back({e1, counterpart[e1]});
      dataset.test_sources.push_back(e1);
      dataset.test_gold[e1] = counterpart[e1];
    }
  }
  std::sort(dataset.test.begin(), dataset.test.end());
  dataset.test_sources.clear();
  for (const kg::AlignedPair& pair : dataset.test) {
    dataset.test_sources.push_back(pair.source);
  }

  ValidateDataset(dataset);
  return dataset;
}

}  // namespace exea::data
