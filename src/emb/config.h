// Shared training hyper-parameters for the EA embedding models.

#ifndef EXEA_EMB_CONFIG_H_
#define EXEA_EMB_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace exea::emb {

struct TrainConfig {
  size_t dim = 32;          // embedding dimensionality
  size_t epochs = 60;       // full passes over the triple lists
  float learning_rate = 0.08f;
  float margin = 1.0f;      // ranking-loss margin (TransE-family)
  size_t negatives = 5;     // negative samples per positive
  uint64_t seed = 7;

  // AlignE-specific: limit-based loss bounds and negative-side weight.
  float limit_pos = 0.1f;   // gamma_1: positive scores pushed below this
  float limit_neg = 1.0f;   // gamma_2: negative scores pushed above this
  float neg_weight = 0.2f;  // mu

  // Dual-AMN-specific: LogSumExp sharpness for hard negative mining.
  float lse_scale = 8.0f;

  // GCN-Align-specific: enable the original model's attribute channel
  // (propagated bag-of-attribute features concatenated to the structure
  // embeddings). Ignored when the dataset carries no attribute triples.
  bool use_attributes = false;
  size_t attribute_dim = 32;
  float attribute_weight = 0.3f;  // blend weight of the attribute block
};

}  // namespace exea::emb

#endif  // EXEA_EMB_CONFIG_H_
