// Configuration of the ExEA explanation/repair core. Field semantics map
// one-to-one onto the paper's hyper-parameters.

#ifndef EXEA_EXPLAIN_CONFIG_H_
#define EXEA_EXPLAIN_CONFIG_H_

#include <cmath>
#include <cstddef>

namespace exea::explain {

struct ExeaConfig {
  // Candidate scope: triples within `hops` of each entity (paper: h <= 2).
  int hops = 1;

  // Eq. (7): moderately-influential edge discount (alpha <= 1).
  double alpha = 0.5;

  // Fixed small weight for weakly-influential edges.
  double weak_weight = 0.05;

  // Eq. (9) thresholds: theta gates whether moderate edges are added on top
  // of the strong aggregate; gamma gates weak edges. The paper treats the
  // decision as binary classification and sets theta = 0.
  double theta = 0.0;
  double gamma = 0.0;

  // Low-confidence threshold for conflict detection (Section IV-C):
  // beta = sigmoid(theta). Defined inline below.
  double LowConfidenceBeta() const;

  // Path enumeration caps (Section IV-A analysis: |T_n| restricted to a
  // constant level).
  size_t max_paths_per_entity = 256;
  size_t max_branch = 48;

  // Algorithm 1 / Algorithm 2: number of candidate target entities (k).
  size_t repair_top_k = 5;

  // Algorithm 2 line 14: alignment score = confidence + score_alpha * sim.
  double score_alpha = 1.0;
};

inline double SigmoidForConfig(double x) {
  return x >= 0 ? 1.0 / (1.0 + std::exp(-x))
                : std::exp(x) / (1.0 + std::exp(x));
}

inline double ExeaConfig::LowConfidenceBeta() const {
  return SigmoidForConfig(theta);
}

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_CONFIG_H_
