#include "serve/engine.h"

#include <algorithm>

#include "explain/export.h"
#include "la/similarity.h"
#include "la/similarity_index.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace exea::serve {
namespace {

uint64_t PairKey(kg::EntityId e1, kg::EntityId e2) {
  return static_cast<uint64_t>(e1) << 32 | e2;
}

// Resolves the engine's search strategy once, at construction. A policy
// that cannot be honored degrades to exact with a warning — a serving
// process should come up searchable rather than refuse to start over a
// tuning knob.
std::unique_ptr<la::SimilarityIndex> BuildIndex(const SnapshotBundle& bundle,
                                                const EngineOptions& options,
                                                obs::Registry* registry) {
  const std::string& policy = options.index_policy;
  bool want_ivf = false;
  if (policy == "ivf") {
    want_ivf = !bundle.ivf.empty();
    if (!want_ivf) {
      EXEA_LOG(Warning) << "index_policy=ivf but the bundle was frozen "
                           "without a trained index; serving exact";
    }
  } else if (policy == "auto") {
    want_ivf =
        !bundle.ivf.empty() && bundle.emb2.rows() >= options.ivf_min_rows;
  } else if (policy != "exact") {
    EXEA_LOG(Warning) << "unknown index_policy '" << policy
                      << "' (expected auto|exact|ivf); serving exact";
  }
  if (want_ivf) {
    return std::make_unique<la::IvfIndex>(&bundle.emb2, &bundle.ivf,
                                          registry);
  }
  return std::make_unique<la::ExactIndex>(&bundle.emb2, registry);
}

}  // namespace

QueryEngine::QueryEngine(std::unique_ptr<SnapshotBundle> bundle,
                         const EngineOptions& options)
    : bundle_(std::move(bundle)),
      options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::Registry::Global()),
      search_index_(BuildIndex(*bundle_, options_, registry_)),
      model_(bundle_.get()),
      explainer_(bundle_->dataset, model_, explain::ExeaConfig{}),
      context_(&bundle_->alignment, &bundle_->dataset.train),
      cache_(options.explain_cache_capacity),
      cache_hits_(registry_->GetCounter("serve.explain_cache.hits")),
      cache_misses_(registry_->GetCounter("serve.explain_cache.misses")),
      cache_size_(registry_->GetGauge("serve.explain_cache.size")) {}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    const std::string& dir, const EngineOptions& options) {
  auto bundle = ReadSnapshot(dir);
  if (!bundle.ok()) return bundle.status();
  return FromBundle(std::move(*bundle), options);
}

std::unique_ptr<QueryEngine> QueryEngine::FromBundle(
    std::unique_ptr<SnapshotBundle> bundle, const EngineOptions& options) {
  EXEA_CHECK(bundle != nullptr) << "engine constructed without a bundle";
  return std::unique_ptr<QueryEngine>(
      // private ctor — make_unique cannot call it, and the pointer goes
      // straight into the unique_ptr. exea-lint: allow(raw-new-delete)
      new QueryEngine(std::move(bundle), options));
}

StatusOr<kg::EntityId> QueryEngine::ResolveSource(
    const std::string& name) const {
  kg::EntityId e = bundle_->dataset.kg1.FindEntity(name);
  if (e == kg::kInvalidEntity) {
    return Status::NotFound("unknown KG1 entity: " + name);
  }
  return e;
}

StatusOr<kg::EntityId> QueryEngine::ResolveTarget(
    const std::string& name) const {
  kg::EntityId e = bundle_->dataset.kg2.FindEntity(name);
  if (e == kg::kInvalidEntity) {
    return Status::NotFound("unknown KG2 entity: " + name);
  }
  return e;
}

StatusOr<AlignResult> QueryEngine::Align(const std::string& source,
                                         const Deadline& deadline) const {
  auto batch = AlignBatch({source}, deadline);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

StatusOr<std::vector<AlignResult>> QueryEngine::AlignBatch(
    const std::vector<std::string>& sources, const Deadline& deadline) const {
  auto ids = ResolveAlignBatch(sources);
  if (!ids.ok()) return ids.status();
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("align: deadline expired before lookup");
  }
  return AlignResolved(*ids, sources);
}

StatusOr<std::vector<kg::EntityId>> QueryEngine::ResolveAlignBatch(
    const std::vector<std::string>& sources) const {
  if (sources.empty()) {
    return Status::InvalidArgument("empty align batch");
  }
  std::vector<kg::EntityId> ids;
  ids.reserve(sources.size());
  for (const std::string& name : sources) {
    auto id = ResolveSource(name);
    if (!id.ok()) return id.status();
    ids.push_back(*id);
  }
  return ids;
}

std::vector<AlignResult> QueryEngine::AlignResolved(
    const std::vector<kg::EntityId>& ids,
    const std::vector<std::string>& names) const {
  EXEA_CHECK_EQ(ids.size(), names.size());

  // One batched top-k dispatch for all queries; the similarity kernel
  // splits the query rows over the worker pool.
  la::Matrix queries(ids.size(), bundle_->emb1.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    // Resolved ids index the embedding table directly; snapshot-load
    // consistency (rows == entity count) makes this hold, and a violation
    // here would hand Row() out-of-table memory — always-on check.
    EXEA_CHECK_LT(ids[i], bundle_->emb1.rows());
    const float* row = bundle_->emb1.Row(ids[i]);
    std::copy(row, row + bundle_->emb1.cols(), queries.Row(i));
  }
  std::vector<std::vector<la::ScoredIndex>> topk;
  {
    obs::Span span(registry_, "serve.align_topk");
    topk = search_index_->TopKAll(queries, options_.top_k);
  }

  std::vector<AlignResult> results;
  results.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignResult result;
    result.source = names[i];
    result.index = search_index_->name();
    for (kg::EntityId target : bundle_->repaired.TargetsOf(ids[i])) {
      result.aligned.push_back(bundle_->dataset.kg2.EntityName(target));
    }
    for (const la::ScoredIndex& candidate : topk[i]) {
      result.candidates.emplace_back(
          bundle_->dataset.kg2.EntityName(candidate.index),
          static_cast<double>(candidate.score));
    }
    results.push_back(std::move(result));
  }
  return results;
}

StatusOr<ExplainResult> QueryEngine::Explain(const std::string& source,
                                             const std::string& target,
                                             const Deadline& deadline) const {
  auto e1 = ResolveSource(source);
  if (!e1.ok()) return e1.status();
  auto e2 = ResolveTarget(target);
  if (!e2.ok()) return e2.status();
  EXEA_DCHECK_LT(*e1, bundle_->dataset.kg1.num_entities());
  EXEA_DCHECK_LT(*e2, bundle_->dataset.kg2.num_entities());
  uint64_t key = PairKey(*e1, *e2);

  if (options_.explain_cache_capacity > 0) {
    ExplainLruCache::Entry cached;
    if (cache_.Get(key, &cached)) {
      cache_hits_.Increment();
      ExplainResult result;
      result.json = std::move(cached.json);
      result.confidence = cached.confidence;
      result.cache_hit = true;
      return result;
    }
    cache_misses_.Increment();
  }
  if (deadline.Expired()) {
    return Status::DeadlineExceeded(
        "explain: deadline expired before generation");
  }

  ExplainResult result;
  {
    obs::Span span(registry_, "serve.explain_render");
    explain::Explanation explanation =
        explainer_.Explain(*e1, *e2, context_);
    explain::Adg adg = explainer_.BuildAdg(explanation);
    result.json = StrFormat(
        "{\"explanation\":%s,\"adg\":%s}",
        explain::ExplanationToJson(explanation, bundle_->dataset.kg1,
                                   bundle_->dataset.kg2)
            .c_str(),
        explain::AdgToJson(adg, bundle_->dataset.kg1, bundle_->dataset.kg2)
            .c_str());
    result.confidence = adg.confidence;
  }

  if (options_.explain_cache_capacity > 0) {
    cache_.Put(key, ExplainLruCache::Entry{result.json, result.confidence});
    cache_size_.Set(static_cast<double>(cache_.size()));
  }
  return result;
}

StatusOr<NeighborsResult> QueryEngine::Neighbors(
    const std::string& entity, int side, const Deadline& deadline) const {
  if (side != 1 && side != 2) {
    return Status::InvalidArgument("side must be 1 (KG1) or 2 (KG2)");
  }
  const kg::KnowledgeGraph& graph =
      side == 1 ? bundle_->dataset.kg1 : bundle_->dataset.kg2;
  kg::EntityId e = graph.FindEntity(entity);
  if (e == kg::kInvalidEntity) {
    return Status::NotFound(StrFormat("unknown KG%d entity: %s", side,
                                      entity.c_str()));
  }
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("neighbors: deadline expired");
  }
  NeighborsResult result;
  result.entity = entity;
  for (const kg::AdjacentEdge& edge : graph.Edges(e)) {
    result.edges.push_back({graph.RelationName(edge.rel),
                            graph.EntityName(edge.neighbor), edge.outgoing});
  }
  return result;
}

StatusOr<RepairStatusResult> QueryEngine::RepairStatus(
    const std::string& source, const std::string& target,
    const Deadline& deadline) const {
  auto e1 = ResolveSource(source);
  if (!e1.ok()) return e1.status();
  auto e2 = ResolveTarget(target);
  if (!e2.ok()) return e2.status();
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("repair_status: deadline expired");
  }
  RepairStatusResult result;
  result.in_base = bundle_->alignment.Contains(*e1, *e2);
  result.in_repaired = bundle_->repaired.Contains(*e1, *e2);
  for (kg::EntityId t : bundle_->repaired.TargetsOf(*e1)) {
    result.repaired_targets.push_back(bundle_->dataset.kg2.EntityName(t));
  }
  if (result.in_base && result.in_repaired) {
    result.verdict = "kept";
  } else if (result.in_base) {
    result.verdict = result.repaired_targets.empty() ? "removed" : "replaced";
  } else if (result.in_repaired) {
    result.verdict = "added";
  } else {
    result.verdict = "absent";
  }
  return result;
}

void QueryEngine::ClearExplainCache() {
  cache_.Clear();
  cache_size_.Set(0.0);
}

}  // namespace exea::serve
