// Simplified Similarity Flooding (Melnik et al., ICDE 2002) — the other
// classical graph-matching approach the paper cites as early EA work
// (similarity propagation). Implemented over a pairwise connectivity graph
// (PCG) restricted to plausible pairs:
//
//   * nodes: candidate (e1, e2) pairs — the seeds plus test pairs sharing
//     at least one seed/confident neighbour pair;
//   * edges: (e1, e2) — (n1, n2) whenever matching-direction triples
//     (e1 r1 n1) and (e2 r2 n2) exist; edge weight is split among a
//     node's propagation edges (the original's weight normalization);
//   * iteration: sigma' = sigma0 + propagate(sigma), normalized by the
//     maximum, to a fixed point;
//   * decoding: per-source argmax (greedy), like the original's filter
//     stage.

#ifndef EXEA_CLASSICAL_SIMILARITY_FLOODING_H_
#define EXEA_CLASSICAL_SIMILARITY_FLOODING_H_

#include "data/dataset.h"
#include "kg/alignment.h"

namespace exea::classical {

struct SimilarityFloodingOptions {
  size_t iterations = 8;
  // Convergence threshold on the max per-node change.
  double epsilon = 1e-3;
  // Cap on PCG nodes (keeps the quadratic pair space bounded).
  size_t max_pairs = 200000;
};

struct SimilarityFloodingResult {
  kg::AlignmentSet alignment;
  size_t pcg_nodes = 0;
  size_t pcg_edges = 0;
  size_t iterations_run = 0;
};

SimilarityFloodingResult RunSimilarityFlooding(
    const data::EaDataset& dataset, const SimilarityFloodingOptions& options);

}  // namespace exea::classical

#endif  // EXEA_CLASSICAL_SIMILARITY_FLOODING_H_
