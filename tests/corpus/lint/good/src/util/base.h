// The bottom-layer header of the compliant layering fixture.
#ifndef EXEA_TESTS_CORPUS_LINT_GOOD_SRC_UTIL_BASE_H_
#define EXEA_TESTS_CORPUS_LINT_GOOD_SRC_UTIL_BASE_H_

namespace demo {
struct Base {};
}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_GOOD_SRC_UTIL_BASE_H_
