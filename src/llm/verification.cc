#include "llm/verification.h"

#include <algorithm>

#include "kg/neighborhood.h"
#include "llm/llm_baselines.h"

namespace exea::llm {

bool ChatGptVerifier::Verify(kg::EntityId e1, kg::EntityId e2) const {
  std::vector<kg::Triple> evidence1 =
      kg::TriplesWithinHops(dataset_->kg1, e1, 1);
  std::vector<kg::Triple> evidence2 =
      kg::TriplesWithinHops(dataset_->kg2, e2, 1);
  return llm_->VerifyClaim(dataset_->kg1.EntityName(e1),
                           dataset_->kg2.EntityName(e2),
                           ToNamedTriples(dataset_->kg1, evidence1),
                           ToNamedTriples(dataset_->kg2, evidence2));
}

explain::Adg ExeaVerifier::BuildAdg(kg::EntityId e1, kg::EntityId e2) const {
  return explainer_->BuildAdg(explainer_->Explain(e1, e2, *context_));
}

bool ExeaVerifier::Verify(kg::EntityId e1, kg::EntityId e2) const {
  explain::Adg adg = BuildAdg(e1, e2);
  double bar =
      std::max(threshold_, explainer_->config().LowConfidenceBeta());
  return adg.HasStrongEdge() && adg.confidence > bar;
}

bool FusionVerifier::Verify(kg::EntityId e1, kg::EntityId e2) const {
  bool exea_verdict = exea_->Verify(e1, e2);
  bool chatgpt_verdict = chatgpt_->Verify(e1, e2);
  if (exea_verdict == chatgpt_verdict) return exea_verdict;
  // Disagreement: the two signals fail in different places (the LLM on
  // numeric siblings and unknown entities, ExEA on structure-sparse
  // neighbourhoods), so break the tie with the third independent signal —
  // the model's own embedding similarity.
  return model_->Similarity(e1, e2) > sim_threshold_;
}

}  // namespace exea::llm
