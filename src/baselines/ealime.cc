#include "baselines/ealime.h"

#include "la/linreg.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exea::baselines {

ExplainerResult EALime::Explain(kg::EntityId e1, kg::EntityId e2,
                                const std::vector<kg::Triple>& candidates1,
                                const std::vector<kg::Triple>& candidates2,
                                size_t budget) {
  size_t n1 = candidates1.size();
  size_t n = n1 + candidates2.size();
  if (n == 0) return {};

  Rng rng(seed_ ^ (static_cast<uint64_t>(e1) << 32 | e2));
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  std::vector<double> weights;
  features.reserve(num_samples_ + 1);

  std::vector<bool> mask1(n1);
  std::vector<bool> mask2(candidates2.size());
  auto add_sample = [&](bool full) {
    for (size_t i = 0; i < mask1.size(); ++i) {
      mask1[i] = full || rng.Bernoulli(0.5);
    }
    for (size_t i = 0; i < mask2.size(); ++i) {
      mask2[i] = full || rng.Bernoulli(0.5);
    }
    std::vector<kg::Triple> kept1 = ApplyMask(candidates1, mask1);
    std::vector<kg::Triple> kept2 = ApplyMask(candidates2, mask2);
    std::vector<double> row(n, 0.0);
    for (size_t i = 0; i < mask1.size(); ++i) row[i] = mask1[i] ? 1.0 : 0.0;
    for (size_t i = 0; i < mask2.size(); ++i) {
      row[n1 + i] = mask2[i] ? 1.0 : 0.0;
    }
    features.push_back(std::move(row));
    targets.push_back(embedder_->PerturbedSimilarity(e1, kept1, e2, kept2));
    // Eq. (11) similarity kernel.
    double pi = 0.5 * (embedder_->ReconstructionSimilarity(
                           kg::KgSide::kSource, e1, kept1) +
                       embedder_->ReconstructionSimilarity(
                           kg::KgSide::kTarget, e2, kept2));
    weights.push_back(std::max(pi, 0.0));
  };

  add_sample(/*full=*/true);
  for (size_t s = 0; s < num_samples_; ++s) add_sample(/*full=*/false);

  la::RidgeOptions options;
  options.l2 = 1e-3;
  auto model = la::FitWeightedRidge(features, targets, weights, options);
  std::vector<double> scores(n, 0.0);
  if (model.ok()) {
    scores = model->weights;
  } else {
    EXEA_LOG(Warning) << "EALime surrogate fit failed: "
                      << model.status().ToString();
  }
  return SelectTopTriples(candidates1, candidates2, scores, budget);
}

}  // namespace exea::baselines
