// Table V: comparison with LLM-based explanation baselines — ChatGPT
// (perturb) and ChatGPT (match) (here: the SimulatedLLM stand-ins, see
// DESIGN.md §1) vs ExEA, for MTransE and Dual-AMN on ZH-EN and DBP-WD,
// first-order candidates, 100 sampled pairs.
//
// Paper shape: ExEA best; ChatGPT (match) — which shares ExEA's matching
// idea — close behind; ChatGPT (perturb) clearly worse.

#include <cstdio>

#include "bench/common.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Table V — comparison with LLMs on explanation generation",
      "ExEA paper Table V (Section V-D1); ChatGPT simulated (DESIGN.md §1)");

  data::Scale scale = data::ScaleFromEnv();
  bench::ExplanationBenchOptions options;
  options.hops = 1;
  options.num_samples = bench::SamplesFromEnv(100);
  options.include_classic_baselines = false;
  options.include_llm_baselines = true;

  bench::Table table({"model", "dataset", "method", "fidelity", "sparsity"});
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kDualAmn}) {
    for (data::Benchmark benchmark :
         {data::Benchmark::kZhEn, data::Benchmark::kDbpWd}) {
      data::EaDataset dataset = data::MakeBenchmark(benchmark, scale);
      std::unique_ptr<emb::EAModel> model = bench::TrainModel(kind, dataset);
      std::vector<bench::MethodResult> results =
          bench::RunExplanationBench(dataset, *model, options);
      for (const bench::MethodResult& row : results) {
        table.AddRow({model->name(), dataset.name, row.method,
                      bench::Table::Fmt(row.fidelity),
                      bench::Table::Fmt(row.sparsity)});
      }
      table.AddSeparator();
    }
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table V, fidelity): MTransE/ZH-EN perturb 0.470, "
      "match 0.690,\nExEA 0.690; Dual-AMN/ZH-EN perturb 0.430, match 0.780, "
      "ExEA 0.820.\nExpected shape: ExEA >= match > perturb.\n");
  return 0;
}
