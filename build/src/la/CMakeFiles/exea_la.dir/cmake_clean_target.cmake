file(REMOVE_RECURSE
  "libexea_la.a"
)
