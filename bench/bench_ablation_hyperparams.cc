// Extra ablation (not a paper table, called out in DESIGN.md §3): the
// sensitivity of repair quality to ExEA's own hyper-parameters —
//   * alpha (Eq. 7 moderate-edge discount),
//   * theta (Eq. 9 strong-aggregate threshold; beta = sigmoid(theta)),
//   * k (Algorithms 1/2 candidate count),
//   * hops (candidate scope of explanations).
// Run on MTransE / ZH-EN, the configuration the paper ablates.

#include <cstdio>

#include "bench/common.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Extra ablation — ExEA hyper-parameter sensitivity (MTransE, ZH-EN)",
      "design-choice ablation (DESIGN.md §3), not a paper table");

  data::Scale scale = data::ScaleFromEnv();
  data::EaDataset dataset = data::MakeBenchmark(data::Benchmark::kZhEn, scale);
  std::unique_ptr<emb::EAModel> model =
      bench::TrainModel(emb::ModelKind::kMTransE, dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  kg::AlignmentSet base = eval::GreedyAlign(ranked);

  auto run_with = [&](const explain::ExeaConfig& config) {
    explain::ExeaExplainer explainer(dataset, *model, config);
    repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
    return pipeline.Run(base, ranked).repaired_accuracy;
  };

  bench::Table table({"parameter", "value", "repaired_acc"});
  {
    for (double alpha : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      explain::ExeaConfig config;
      config.alpha = alpha;
      table.AddRow({"alpha", bench::Table::Fmt(alpha, 2),
                    bench::Table::Fmt(run_with(config))});
    }
    table.AddSeparator();
    for (double theta : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
      explain::ExeaConfig config;
      config.theta = theta;
      table.AddRow({"theta", bench::Table::Fmt(theta, 2),
                    bench::Table::Fmt(run_with(config))});
    }
    table.AddSeparator();
    for (size_t k : {1, 3, 5, 10}) {
      explain::ExeaConfig config;
      config.repair_top_k = k;
      table.AddRow({"k", std::to_string(k),
                    bench::Table::Fmt(run_with(config))});
    }
    table.AddSeparator();
    for (int hops : {1, 2}) {
      explain::ExeaConfig config;
      config.hops = hops;
      table.AddRow({"hops", std::to_string(hops),
                    bench::Table::Fmt(run_with(config))});
    }
  }
  table.Print();

  std::printf(
      "\nExpected: results are stable across alpha/theta (strong edges "
      "dominate, matching\nthe paper's observation behind Eq. (9)); k "
      "trades repair reach for noise; 2-hop\nexplanations buy little over "
      "1-hop for repair (the paper defaults to h = 1).\n");
  return 0;
}
