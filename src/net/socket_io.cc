#include "net/socket_io.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/string_util.h"

namespace exea::net {

StatusOr<int> ListenOn(int port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot bind 127.0.0.1:%d", port));
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  return fd;
}

StatusOr<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::IoError("getsockname() failed");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

StatusOr<int> ConnectLocal(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot connect to 127.0.0.1:%d", port));
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("fcntl(O_NONBLOCK) failed");
  }
  return Status::Ok();
}

int AcceptRetry(int listener) {
  while (true) {
    int client = ::accept(listener, nullptr, nullptr);
    if (client >= 0 || errno != EINTR) return client;
  }
}

int AcceptNonBlocking(int listener) {
  while (true) {
    // Callers hand this a non-blocking listener, so accept4 returns
    // EAGAIN instead of parking the loop thread.
    // exea-lint: allow(loop-blocking)
    int client = ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);
    if (client >= 0 || errno != EINTR) return client;
  }
}

Status WriteAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(
          StrFormat("send() failed: %s", ::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteAll(int fd, const std::string& data) {
  return WriteAll(fd, data.data(), data.size());
}

bool LineReader::Refill() {
  buf_.clear();
  pos_ = 0;
  char chunk[4096];
  while (true) {
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.assign(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    return false;  // hard error: treat like EOF, the caller closes
  }
}

bool LineReader::ReadLine(size_t max_bytes, std::string* line,
                          bool* truncated, size_t* truncated_bytes) {
  line->clear();
  *truncated = false;
  *truncated_bytes = 0;
  bool discarding = false;
  while (true) {
    if (pos_ >= buf_.size() && !Refill()) {
      // EOF mid-line still delivers what was read, matching the stream
      // reader the blocking server always used.
      if (discarding) return true;
      return !line->empty();
    }
    while (pos_ < buf_.size()) {
      char c = buf_[pos_++];
      if (c == '\n') return true;
      if (discarding) {
        ++*truncated_bytes;
        continue;
      }
      if (line->size() >= max_bytes) {
        // Over the cap: stop buffering, keep measuring to the newline.
        *truncated = true;
        *truncated_bytes = line->size() + 1;
        discarding = true;
        continue;
      }
      line->push_back(c);
    }
  }
}

}  // namespace exea::net
