// Unit tests for the exea::obs observability subsystem: the corrected
// nearest-rank quantile, counters/gauges, the log-bucketed histogram (its
// exactness and error-bound contract, including behaviour past the old
// serving layer's 2^20 sample cap), the registry, and RAII trace spans.
// The concurrent tests at the bottom run under TSAN via ci/check.sh.

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"

namespace exea::obs {
namespace {

// --------------------------------------------------- NearestRankQuantile

// Pins the off-by-one fix: the old serving-layer Percentile() indexed with
// floor(q * n), which reads one rank too high whenever q * n is integral.
TEST(NearestRankQuantileTest, SingleSample) {
  EXPECT_EQ(NearestRankQuantile({5.0}, 0.0), 5.0);
  EXPECT_EQ(NearestRankQuantile({5.0}, 0.5), 5.0);
  EXPECT_EQ(NearestRankQuantile({5.0}, 0.99), 5.0);
  EXPECT_EQ(NearestRankQuantile({5.0}, 1.0), 5.0);
}

TEST(NearestRankQuantileTest, TwoSamples) {
  // ceil(0.5 * 2) = 1 → the lower sample. The old floor(0.5 * 2) = 1
  // *index* returned the upper one.
  EXPECT_EQ(NearestRankQuantile({2.0, 1.0}, 0.5), 1.0);
  EXPECT_EQ(NearestRankQuantile({2.0, 1.0}, 0.99), 2.0);
}

TEST(NearestRankQuantileTest, FourSamples) {
  std::vector<double> values = {3.0, 1.0, 4.0, 2.0};  // unsorted on purpose
  EXPECT_EQ(NearestRankQuantile(values, 0.25), 1.0);
  EXPECT_EQ(NearestRankQuantile(values, 0.5), 2.0);  // the old code said 3
  EXPECT_EQ(NearestRankQuantile(values, 0.75), 3.0);
  EXPECT_EQ(NearestRankQuantile(values, 0.99), 4.0);
}

TEST(NearestRankQuantileTest, HundredSamples) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) values.push_back(i);
  EXPECT_EQ(NearestRankQuantile(values, 0.01), 1.0);
  EXPECT_EQ(NearestRankQuantile(values, 0.5), 50.0);
  EXPECT_EQ(NearestRankQuantile(values, 0.99), 99.0);
  EXPECT_EQ(NearestRankQuantile(values, 1.0), 100.0);
}

TEST(NearestRankQuantileTest, EdgeInputs) {
  EXPECT_EQ(NearestRankQuantile({}, 0.5), 0.0);
  // q outside [0, 1] clamps instead of indexing out of range.
  EXPECT_EQ(NearestRankQuantile({1.0, 2.0}, -0.5), 1.0);
  EXPECT_EQ(NearestRankQuantile({1.0, 2.0}, 7.0), 2.0);
}

// ------------------------------------------------------- Counter / Gauge

TEST(CounterTest, IncrementsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundariesContainTheirSamples) {
  const double values[] = {1.0,  0.5,    2.0,  3.14, 1e-5,
                           1e6,  0.0097, 42.0, 999.9};
  for (double v : values) {
    size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    EXPECT_LE(Histogram::BucketLowerBound(index), v) << v;
    EXPECT_LT(v, Histogram::BucketUpperBound(index)) << v;
  }
  // Buckets tile the range: each upper bound is the next lower bound.
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; i += 37) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i),
                     Histogram::BucketLowerBound(i + 1));
  }
}

TEST(HistogramTest, OutOfRangeSamplesLandInSentinelBuckets) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), Histogram::kUnderflowBucket);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), Histogram::kUnderflowBucket);
  EXPECT_EQ(Histogram::BucketIndex(1e-10), Histogram::kUnderflowBucket);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")),
            Histogram::kUnderflowBucket);
  EXPECT_EQ(Histogram::BucketIndex(2e9), Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kOverflowBucket);
}

TEST(HistogramTest, SmallCountQuantilesAreExact) {
  Histogram histogram;
  for (double v : {3.0, 1.0, 4.0, 2.0}) histogram.Record(v);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_EQ(histogram.Sum(), 10.0);
  EXPECT_EQ(histogram.Min(), 1.0);
  EXPECT_EQ(histogram.Max(), 4.0);
  // Identical to NearestRankQuantile while count <= kExactSampleCap —
  // including the p50 the old Percentile() got wrong.
  EXPECT_EQ(histogram.Quantile(0.5), 2.0);
  EXPECT_EQ(histogram.Quantile(0.99), 4.0);
  Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_EQ(snapshot.p50, 2.0);
  EXPECT_EQ(snapshot.p99, 4.0);
}

TEST(HistogramTest, EmptyHistogramReadsAsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
  Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.p99, 0.0);
}

TEST(HistogramTest, UnderAndOverflowReportObservedExtremes) {
  Histogram histogram;
  // Push past the exact window so quantiles come from the buckets, with
  // every sample outside the bucketed range.
  for (int i = 0; i < 100; ++i) histogram.Record(1e-9);
  for (int i = 0; i < 100; ++i) histogram.Record(5e12);
  EXPECT_EQ(histogram.Count(), 200u);
  EXPECT_EQ(histogram.Quantile(0.25), 1e-9);  // underflow → observed min
  EXPECT_EQ(histogram.Quantile(0.99), 5e12);  // overflow → observed max
}

// The bounded-error contract: past the exact window, a quantile estimate
// lands in the same geometric bucket as the true order statistic, so it is
// off by at most one bucket width — a factor of 2^(1/kBucketsPerOctave).
TEST(HistogramTest, BucketedQuantilesStayWithinOneBucketWidth) {
  Rng rng(20260805);
  Histogram histogram;
  std::vector<double> values;
  values.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over [2^-10, 2^10]: every octave gets traffic, so the
    // walk crosses many buckets for every quantile tested.
    double value = std::exp2(rng.UniformDouble() * 20.0 - 10.0);
    values.push_back(value);
    histogram.Record(value);
  }
  const double kWidth =
      std::exp2(1.0 / Histogram::kBucketsPerOctave);  // ≈ 1.0905
  for (double q : {0.05, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    double exact = NearestRankQuantile(values, q);
    double estimate = histogram.Quantile(q);
    EXPECT_LE(estimate, exact * kWidth) << "q=" << q;
    EXPECT_GE(estimate, exact / kWidth) << "q=" << q;
  }
}

// The latency-accounting fix at the histogram level: no sample cap, so a
// slow tail that begins after 2^20 fast samples (the old serving cap, at
// which the old percentiles froze forever) still moves the p99.
TEST(HistogramTest, LateSlowTailPastTheOldServingCapMovesP99) {
  Histogram histogram;
  constexpr size_t kOldCap = 1u << 20;
  for (size_t i = 0; i < kOldCap; ++i) histogram.Record(0.1);
  EXPECT_LT(histogram.Quantile(0.99), 1.0);

  constexpr size_t kSlow = kOldCap / 50;  // 2% of traffic at 400ms
  for (size_t i = 0; i < kSlow; ++i) histogram.Record(400.0);
  EXPECT_EQ(histogram.Count(), kOldCap + kSlow);  // nothing dropped
  double p99 = histogram.Quantile(0.99);
  EXPECT_GT(p99, 300.0);  // ≈ 400 up to one bucket width
  EXPECT_LE(p99, 400.0);  // clamped to the observed max
}

// --------------------------------------------------------------- Registry

TEST(RegistryTest, GetOrCreateReturnsStableIdentity) {
  Registry registry;
  Counter& counter = registry.GetCounter("a.requests");
  counter.Increment();
  EXPECT_EQ(&registry.GetCounter("a.requests"), &counter);
  EXPECT_EQ(registry.CounterValue("a.requests"), 1u);
  // The three kinds live in separate namespaces.
  registry.GetGauge("a.requests").Set(7.0);
  EXPECT_EQ(registry.CounterValue("a.requests"), 1u);
  EXPECT_EQ(registry.GaugeValue("a.requests"), 7.0);
  EXPECT_EQ(registry.MetricCount(), 2u);
}

TEST(RegistryTest, ReadSideLookupsNeverCreate) {
  Registry registry;
  EXPECT_EQ(registry.CounterValue("absent"), 0u);
  EXPECT_EQ(registry.GaugeValue("absent"), 0.0);
  EXPECT_EQ(registry.HistogramSnapshot("absent").count, 0u);
  EXPECT_EQ(registry.MetricCount(), 0u);
}

TEST(RegistryTest, CountersWithPrefixSortedByName) {
  Registry registry;
  registry.GetCounter("serve.op.stats").Increment(3);
  registry.GetCounter("serve.op.align").Increment(5);
  registry.GetCounter("serve.requests").Increment(8);
  auto per_op = registry.CountersWithPrefix("serve.op.");
  ASSERT_EQ(per_op.size(), 2u);
  EXPECT_EQ(per_op[0].first, "serve.op.align");
  EXPECT_EQ(per_op[0].second, 5u);
  EXPECT_EQ(per_op[1].first, "serve.op.stats");
  EXPECT_EQ(per_op[1].second, 3u);
}

TEST(RegistryTest, ToJsonDumpsEveryKind) {
  Registry registry;
  registry.GetCounter("c.one").Increment(2);
  registry.GetGauge("g.depth").Set(1.5);
  registry.GetHistogram("h.lat").Record(3.0);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c.one\":2}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"g.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// ------------------------------------------------------------------ Spans

TEST(SpanTest, NestedSpansBuildDottedPathsAndRecord) {
  Registry registry;
  EXPECT_EQ(Span::CurrentPath(), "");
  {
    Span outer(&registry, "exea.explain");
    EXPECT_EQ(outer.path(), "exea.explain");
    EXPECT_EQ(Span::CurrentPath(), "exea.explain");
    {
      Span inner(&registry, "paths");
      EXPECT_EQ(inner.path(), "exea.explain.paths");
      EXPECT_EQ(Span::CurrentPath(), "exea.explain.paths");
    }
    EXPECT_EQ(Span::CurrentPath(), "exea.explain");
  }
  EXPECT_EQ(Span::CurrentPath(), "");
  EXPECT_EQ(registry.HistogramSnapshot("span.exea.explain").count, 1u);
  EXPECT_EQ(registry.HistogramSnapshot("span.exea.explain.paths").count, 1u);
}

TEST(SpanTest, SpanStackIsThreadLocal) {
  Registry registry;
  Span outer(&registry, "parent");
  std::string seen_in_thread = "sentinel";
  std::thread worker([&] {
    // A pool worker does not inherit the submitting thread's span stack.
    seen_in_thread = Span::CurrentPath();
    Span own(&registry, "worker");
    EXPECT_EQ(own.path(), "worker");
  });
  worker.join();
  EXPECT_EQ(seen_in_thread, "");
  EXPECT_EQ(registry.HistogramSnapshot("span.worker").count, 1u);
}

// ------------------------------------------------------------ concurrency

// Run under TSAN by ci/check.sh. Exact totals also prove no update was
// lost: 8 threads hammer one counter, one gauge, one histogram, and the
// registry's create-on-demand path simultaneously.
TEST(RegistryConcurrencyTest, ParallelRecordingKeepsExactTotals) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      Counter& counter = registry.GetCounter("shared.counter");
      Gauge& gauge = registry.GetGauge("shared.gauge");
      Histogram& histogram = registry.GetHistogram("shared.latency");
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        histogram.Record(static_cast<double>(1 + (i + t) % 16));
        // Exercise the registry map lock against the hot-path atomics.
        registry.GetCounter("per_thread." + std::to_string(t)).Increment();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(registry.CounterValue("shared.counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GaugeValue("shared.gauge"),
            static_cast<double>(kThreads) * kPerThread);
  Histogram::Snapshot latency = registry.HistogramSnapshot("shared.latency");
  EXPECT_EQ(latency.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(latency.min, 1.0);
  EXPECT_EQ(latency.max, 16.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.CounterValue("per_thread." + std::to_string(t)),
              static_cast<uint64_t>(kPerThread));
  }
}

TEST(SpanConcurrencyTest, ParallelSpansRecordEverySample) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        Span outer(&registry, "stage");
        Span inner(&registry, "sub");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.HistogramSnapshot("span.stage").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.HistogramSnapshot("span.stage.sub").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace exea::obs
