#include "explain/audit.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace exea::explain {

const char* AuditFlagName(AuditFlag flag) {
  switch (flag) {
    case AuditFlag::kNoMatches:
      return "no-matches";
    case AuditFlag::kNoStrongSupport:
      return "no-strong-support";
    case AuditFlag::kLowConfidence:
      return "low-confidence";
    case AuditFlag::kTargetContested:
      return "target-contested";
  }
  return "?";
}

AuditReport AuditAlignment(const ExeaExplainer& explainer,
                           const kg::AlignmentSet& alignment,
                           const kg::AlignmentSet& seeds) {
  AlignmentContext context(&alignment, &seeds);
  double beta = explainer.config().LowConfidenceBeta();

  AuditReport report;
  double confidence_sum = 0.0;
  for (const kg::AlignedPair& pair : alignment.SortedPairs()) {
    Explanation explanation =
        explainer.Explain(pair.source, pair.target, context);
    Adg adg = explainer.BuildAdg(explanation);

    AuditEntry entry;
    entry.source = pair.source;
    entry.target = pair.target;
    entry.similarity = explainer.model().Similarity(pair.source, pair.target);
    entry.confidence = adg.confidence;
    entry.matches = explanation.matches.size();
    for (const AdgNode& node : adg.neighbors) {
      for (const AdgEdge& edge : node.edges) {
        if (edge.influence == EdgeInfluence::kStrong) ++entry.strong_edges;
      }
    }
    if (explanation.empty()) {
      entry.flags.push_back(AuditFlag::kNoMatches);
    } else if (entry.strong_edges == 0) {
      entry.flags.push_back(AuditFlag::kNoStrongSupport);
    }
    if (entry.confidence <= beta + 1e-9) {
      entry.flags.push_back(AuditFlag::kLowConfidence);
    }
    if (alignment.SourcesOf(pair.target).size() > 1) {
      entry.flags.push_back(AuditFlag::kTargetContested);
    }

    confidence_sum += entry.confidence;
    size_t bin = std::min<size_t>(
        9, static_cast<size_t>(std::max(0.0, entry.confidence) * 10.0));
    ++report.confidence_histogram[bin];
    if (entry.suspect()) ++report.suspect_count;
    report.entries.push_back(std::move(entry));
  }
  if (!report.entries.empty()) {
    report.mean_confidence =
        confidence_sum / static_cast<double>(report.entries.size());
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const AuditEntry& a, const AuditEntry& b) {
              if (a.flags.size() != b.flags.size()) {
                return a.flags.size() > b.flags.size();
              }
              if (a.confidence != b.confidence) {
                return a.confidence < b.confidence;
              }
              if (a.source != b.source) return a.source < b.source;
              return a.target < b.target;
            });
  return report;
}

namespace {

// Renders one matched path as "via zh/r1 → zh/r2" style text relative to
// the central entity.
std::string DescribePath(const kg::RelationPath& path,
                         const kg::KnowledgeGraph& graph) {
  std::string out;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out += " then ";
    const kg::PathStep& step = path.steps[i];
    out += step.outgoing ? "→" : "←";
    out += graph.RelationName(step.rel);
  }
  return out;
}

const char* InfluenceAdjective(EdgeInfluence influence) {
  switch (influence) {
    case EdgeInfluence::kStrong:
      return "Strong";
    case EdgeInfluence::kModerate:
      return "Moderate";
    case EdgeInfluence::kWeak:
      return "Weak";
  }
  return "?";
}

}  // namespace

std::string VerbalizeExplanation(const Explanation& explanation,
                                 const Adg& adg,
                                 const kg::KnowledgeGraph& kg1,
                                 const kg::KnowledgeGraph& kg2) {
  std::ostringstream out;
  out << StrFormat(
      "%s was aligned with %s (similarity %.2f, confidence %.2f).\n",
      kg1.EntityName(explanation.e1).c_str(),
      kg2.EntityName(explanation.e2).c_str(), adg.central_similarity,
      adg.confidence);
  if (explanation.empty()) {
    out << "No matching structure was found around the two entities — "
           "this alignment has no structural explanation.\n";
    return out.str();
  }
  for (const AdgNode& node : adg.neighbors) {
    for (const AdgEdge& edge : node.edges) {
      const MatchedPathPair& match = explanation.matches[edge.match_index];
      out << StrFormat(
          "%s evidence (weight %.2f): the aligned neighbours (%s, %s) "
          "are connected via %s / %s.\n",
          InfluenceAdjective(edge.influence), edge.weight,
          kg1.EntityName(node.e1).c_str(), kg2.EntityName(node.e2).c_str(),
          DescribePath(match.p1, kg1).c_str(),
          DescribePath(match.p2, kg2).c_str());
    }
  }
  if (!adg.HasStrongEdge()) {
    out << "Caution: none of the evidence is strongly influential; the "
           "paper's criterion would flag this pair as a low-confidence "
           "conflict.\n";
  }
  return out.str();
}

}  // namespace exea::explain
