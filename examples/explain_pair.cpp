// Explains a single EA pair in depth — the "why did the model align these
// two entities?" workflow a practitioner would run.
//
// Usage: explain_pair [BENCHMARK] [SCALE] [MODEL] [SOURCE_NAME]
//   MODEL: MTransE | AlignE | GCN-Align | Dual-AMN   (default Dual-AMN)
//   SOURCE_NAME: a KG1 entity name (default: first test entity the model
//                gets wrong, because those are the interesting ones)
//
// Prints the prediction, the semantic matching subgraph, the ADG with
// per-edge influence classes and weights, and the Eq. (9) confidence.

#include <cstdio>
#include <string>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "explain/exea.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace exea;
  SetMinLogLevel(LogLevel::kWarning);

  std::string benchmark_name = argc > 1 ? argv[1] : "ZH-EN";
  std::string scale_name = argc > 2 ? argv[2] : "tiny";
  std::string model_name = argc > 3 ? argv[3] : "Dual-AMN";

  data::EaDataset dataset =
      data::MakeBenchmark(data::BenchmarkFromName(benchmark_name),
                          data::ScaleFromName(scale_name));

  emb::ModelKind kind = emb::ModelKind::kDualAmn;
  for (emb::ModelKind candidate :
       {emb::ModelKind::kMTransE, emb::ModelKind::kAlignE,
        emb::ModelKind::kGcnAlign, emb::ModelKind::kDualAmn}) {
    if (emb::ModelKindName(candidate) == model_name) kind = candidate;
  }
  std::unique_ptr<emb::EAModel> model = emb::MakeDefaultModel(kind);
  model->Train(dataset);

  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);

  // Choose the source entity.
  kg::EntityId source = kg::kInvalidEntity;
  if (argc > 4) {
    source = dataset.kg1.FindEntity(argv[4]);
    if (source == kg::kInvalidEntity) {
      std::fprintf(stderr, "unknown KG1 entity: %s\n", argv[4]);
      return 1;
    }
  } else {
    for (const kg::AlignedPair& pair : dataset.test) {
      std::vector<kg::EntityId> targets = aligned.TargetsOf(pair.source);
      if (!targets.empty() && targets[0] != pair.target) {
        source = pair.source;
        break;
      }
    }
    if (source == kg::kInvalidEntity) source = dataset.test[0].source;
  }

  std::vector<kg::EntityId> targets = aligned.TargetsOf(source);
  if (targets.empty()) {
    std::printf("%s is not aligned by the model.\n",
                dataset.kg1.EntityName(source).c_str());
    return 0;
  }
  kg::EntityId predicted = targets[0];
  auto gold_it = dataset.gold.find(source);
  bool correct = gold_it != dataset.gold.end() &&
                 gold_it->second == predicted;

  std::printf("Model:      %s\n", model->name().c_str());
  std::printf("Pair:       (%s, %s)\n",
              dataset.kg1.EntityName(source).c_str(),
              dataset.kg2.EntityName(predicted).c_str());
  std::printf("Similarity: %.3f\n", model->Similarity(source, predicted));
  std::printf("Verdict:    %s", correct ? "correct" : "INCORRECT");
  if (!correct && gold_it != dataset.gold.end()) {
    std::printf(" (gold counterpart: %s)",
                dataset.kg2.EntityName(gold_it->second).c_str());
  }
  std::printf("\n\n");

  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(dataset, *model, config);
  explain::AlignmentContext context(&aligned, &dataset.train);
  explain::Explanation explanation =
      explainer.Explain(source, predicted, context);
  explain::Adg adg = explainer.BuildAdg(explanation);

  std::printf("Semantic matching subgraph (%zu matched path pairs, "
              "%zu + %zu triples out of %zu + %zu candidates):\n",
              explanation.matches.size(), explanation.triples1.size(),
              explanation.triples2.size(), explanation.candidates1.size(),
              explanation.candidates2.size());
  for (const explain::MatchedPathPair& match : explanation.matches) {
    std::printf("  match (path sim %.3f):\n", match.similarity);
    for (const kg::Triple& t : match.p1.Triples()) {
      std::printf("    KG1 (%s, %s, %s)\n",
                  dataset.kg1.EntityName(t.head).c_str(),
                  dataset.kg1.RelationName(t.rel).c_str(),
                  dataset.kg1.EntityName(t.tail).c_str());
    }
    for (const kg::Triple& t : match.p2.Triples()) {
      std::printf("    KG2 (%s, %s, %s)\n",
                  dataset.kg2.EntityName(t.head).c_str(),
                  dataset.kg2.RelationName(t.rel).c_str(),
                  dataset.kg2.EntityName(t.tail).c_str());
    }
  }

  std::printf("\nAlignment dependency graph:\n");
  std::printf("  central node: (%s, %s), similarity %.3f\n",
              dataset.kg1.EntityName(adg.e1).c_str(),
              dataset.kg2.EntityName(adg.e2).c_str(),
              adg.central_similarity);
  for (const explain::AdgNode& node : adg.neighbors) {
    std::printf("  neighbour (%s, %s), influence %.3f\n",
                dataset.kg1.EntityName(node.e1).c_str(),
                dataset.kg2.EntityName(node.e2).c_str(), node.influence);
    for (const explain::AdgEdge& edge : node.edges) {
      std::printf("    %-8s edge, weight %.3f\n",
                  explain::EdgeInfluenceName(edge.influence), edge.weight);
    }
  }
  std::printf("  aggregates: c_s=%.3f c_m=%.3f c_w=%.3f\n", adg.strong_sum,
              adg.moderate_sum, adg.weak_sum);
  std::printf("  confidence (Eq. 9): %.3f%s\n", adg.confidence,
              adg.HasStrongEdge() ? "" : "  [no strong edges -> would be "
                                         "flagged as a low-confidence "
                                         "conflict]");
  return 0;
}
