# Empty compiler generated dependencies file for exea_baselines.
# This may be replaced when dependencies are built.
