#include "serve/engine.h"

#include <algorithm>
#include <filesystem>

#include "explain/export.h"
#include "la/similarity.h"
#include "la/similarity_index.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace exea::serve {
namespace {

uint64_t PairKey(kg::EntityId e1, kg::EntityId e2) {
  return static_cast<uint64_t>(e1) << 32 | e2;
}

StateOptions StateOptionsFrom(const EngineOptions& options) {
  StateOptions state_options;
  state_options.shards = options.shards;
  state_options.index_policy = options.index_policy;
  state_options.ivf_min_rows = options.ivf_min_rows;
  return state_options;
}

}  // namespace

QueryEngine::QueryEngine(std::unique_ptr<SnapshotBundle> bundle,
                         std::string source, const EngineOptions& options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::Registry::Global()),
      manager_(options.max_resident_versions, registry_),
      cache_(options.explain_cache_capacity,
             &registry_->GetGauge("serve.explain_cache.size")),
      cache_hits_(registry_->GetCounter("serve.explain_cache.hits")),
      cache_misses_(registry_->GetCounter("serve.explain_cache.misses")),
      cache_invalidations_(
          registry_->GetCounter("serve.explain_cache.invalidations")) {
  manager_.Install(BuildState(std::move(bundle), std::move(source)));
}

std::unique_ptr<const ServingState> QueryEngine::BuildState(
    std::unique_ptr<SnapshotBundle> bundle, std::string source) {
  return std::make_unique<ServingState>(std::move(bundle),
                                        manager_.NextEpoch(),
                                        std::move(source),
                                        StateOptionsFrom(options_), registry_);
}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    const std::string& dir, const EngineOptions& options) {
  auto bundle = ReadSnapshot(dir);
  if (!bundle.ok()) return bundle.status();
  EXEA_CHECK(*bundle != nullptr) << "engine constructed without a bundle";
  return std::unique_ptr<QueryEngine>(
      // private ctor — make_unique cannot call it, and the pointer goes
      // straight into the unique_ptr. exea-lint: allow(raw-new-delete)
      new QueryEngine(std::move(*bundle), dir, options));
}

std::unique_ptr<QueryEngine> QueryEngine::FromBundle(
    std::unique_ptr<SnapshotBundle> bundle, const EngineOptions& options) {
  EXEA_CHECK(bundle != nullptr) << "engine constructed without a bundle";
  return std::unique_ptr<QueryEngine>(
      // private ctor — make_unique cannot call it, and the pointer goes
      // straight into the unique_ptr. exea-lint: allow(raw-new-delete)
      new QueryEngine(std::move(bundle), "<memory>", options));
}

StatusOr<uint64_t> QueryEngine::LoadSnapshot(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("load_snapshot: empty bundle dir");
  }
  // Swap requests arrive over the wire; a relative escape like
  // "bundles/../../etc" must die here, before any filesystem probe.
  if (dir.find("..") != std::string::npos) {
    return Status::InvalidArgument(
        "load_snapshot: refusing bundle dir with '..': " + dir);
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("load_snapshot: no such bundle dir: " + dir);
  }
  auto bundle = ReadSnapshot(dir);
  if (!bundle.ok()) {
    // Normalize the loader's codes to this op's contract: an unreadable
    // bundle is NOT_FOUND, anything wrong with its contents (format
    // version, checksums, shapes) is an invalid argument to the op. The
    // current version keeps serving either way.
    const Status& status = bundle.status();
    if (status.code() == StatusCode::kIoError) {
      return Status::NotFound(status.message());
    }
    if (status.code() == StatusCode::kFailedPrecondition) {
      return Status::InvalidArgument(status.message());
    }
    return status;
  }
  std::lock_guard<std::mutex> lock(swap_mu_);
  uint64_t epoch = manager_.Install(BuildState(std::move(*bundle), dir));
  if (options_.explain_cache_capacity > 0) {
    // Entity ids are version-relative, so every cached rendering is now
    // unaddressable (the epoch key) — drop the storage too.
    cache_.Clear();
    cache_invalidations_.Increment();
  }
  return epoch;
}

EngineStatusResult QueryEngine::EngineStatus() const {
  std::shared_ptr<const ServingState> state = AcquireState();
  EngineStatusResult result;
  result.epoch = state->epoch();
  result.source = state->source();
  result.shards = state->shards();
  result.index = state->index().name();
  result.index_size = state->index().size();
  result.resident_versions = manager_.resident();
  result.live_versions = registry_->GaugeValue("serve.snapshot.versions");
  result.swaps = registry_->CounterValue("serve.snapshot.swaps");
  result.explain_cache_size = cache_.size();
  return result;
}

StatusOr<kg::EntityId> QueryEngine::ResolveSource(
    const ServingState& state, const std::string& name) const {
  kg::EntityId e = state.bundle().dataset.kg1.FindEntity(name);
  if (e == kg::kInvalidEntity) {
    return Status::NotFound("unknown KG1 entity: " + name);
  }
  return e;
}

StatusOr<kg::EntityId> QueryEngine::ResolveTarget(
    const ServingState& state, const std::string& name) const {
  kg::EntityId e = state.bundle().dataset.kg2.FindEntity(name);
  if (e == kg::kInvalidEntity) {
    return Status::NotFound("unknown KG2 entity: " + name);
  }
  return e;
}

StatusOr<AlignResult> QueryEngine::Align(const std::string& source,
                                         const Deadline& deadline) const {
  auto batch = AlignBatch({source}, deadline);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

StatusOr<std::vector<AlignResult>> QueryEngine::AlignBatch(
    const std::vector<std::string>& sources, const Deadline& deadline) const {
  // One pinned version for both stages: ids resolved here index the
  // same tables AlignResolved reads, even if a swap lands in between.
  std::shared_ptr<const ServingState> state = AcquireState();
  auto ids = ResolveAlignBatch(*state, sources);
  if (!ids.ok()) return ids.status();
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("align: deadline expired before lookup");
  }
  return AlignResolved(*state, *ids, sources);
}

StatusOr<std::vector<kg::EntityId>> QueryEngine::ResolveAlignBatch(
    const ServingState& state, const std::vector<std::string>& sources) const {
  if (sources.empty()) {
    return Status::InvalidArgument("empty align batch");
  }
  std::vector<kg::EntityId> ids;
  ids.reserve(sources.size());
  for (const std::string& name : sources) {
    auto id = ResolveSource(state, name);
    if (!id.ok()) return id.status();
    ids.push_back(*id);
  }
  return ids;
}

std::vector<AlignResult> QueryEngine::AlignResolved(
    const ServingState& state, const std::vector<kg::EntityId>& ids,
    const std::vector<std::string>& names) const {
  EXEA_CHECK_EQ(ids.size(), names.size());
  const SnapshotBundle& bundle = state.bundle();

  // One batched top-k dispatch for all queries; the similarity kernel
  // splits the query rows over the worker pool.
  la::Matrix queries(ids.size(), bundle.emb1.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    // Resolved ids index the embedding table directly; snapshot-load
    // consistency (rows == entity count) makes this hold WITHIN one
    // pinned state, and a violation here would hand Row() out-of-table
    // memory — always-on check.
    EXEA_CHECK_LT(ids[i], bundle.emb1.rows());
    const float* row = bundle.emb1.Row(ids[i]);
    std::copy(row, row + bundle.emb1.cols(), queries.Row(i));
  }
  std::vector<std::vector<la::ScoredIndex>> topk;
  {
    obs::Span span(registry_, "serve.align_topk");
    topk = state.index().TopKAll(queries, options_.top_k);
  }

  std::vector<AlignResult> results;
  results.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignResult result;
    result.source = names[i];
    result.index = state.index().name();
    for (kg::EntityId target : bundle.repaired.TargetsOf(ids[i])) {
      result.aligned.push_back(bundle.dataset.kg2.EntityName(target));
    }
    for (const la::ScoredIndex& candidate : topk[i]) {
      result.candidates.emplace_back(
          bundle.dataset.kg2.EntityName(candidate.index),
          static_cast<double>(candidate.score));
    }
    results.push_back(std::move(result));
  }
  return results;
}

StatusOr<ExplainResult> QueryEngine::Explain(const std::string& source,
                                             const std::string& target,
                                             const Deadline& deadline) const {
  std::shared_ptr<const ServingState> state = AcquireState();
  auto e1 = ResolveSource(*state, source);
  if (!e1.ok()) return e1.status();
  auto e2 = ResolveTarget(*state, target);
  if (!e2.ok()) return e2.status();
  const SnapshotBundle& bundle = state->bundle();
  EXEA_DCHECK_LT(*e1, bundle.dataset.kg1.num_entities());
  EXEA_DCHECK_LT(*e2, bundle.dataset.kg2.num_entities());
  // The epoch makes the key version-relative: after a swap the same
  // (name, name) pair resolves to a different key, so a pre-swap entry
  // can never answer a post-swap request — even when a laggard renderer
  // Puts its stale result after the swap's Clear() already ran.
  ExplainLruCache::Key key{state->epoch(), PairKey(*e1, *e2)};

  if (options_.explain_cache_capacity > 0) {
    ExplainLruCache::Entry cached;
    if (cache_.Get(key, &cached)) {
      cache_hits_.Increment();
      ExplainResult result;
      result.json = std::move(cached.json);
      result.confidence = cached.confidence;
      result.cache_hit = true;
      return result;
    }
    cache_misses_.Increment();
  }
  if (deadline.Expired()) {
    return Status::DeadlineExceeded(
        "explain: deadline expired before generation");
  }

  ExplainResult result;
  {
    obs::Span span(registry_, "serve.explain_render");
    explain::Explanation explanation =
        state->explainer().Explain(*e1, *e2, state->context());
    explain::Adg adg = state->explainer().BuildAdg(explanation);
    result.json = StrFormat(
        "{\"explanation\":%s,\"adg\":%s}",
        explain::ExplanationToJson(explanation, bundle.dataset.kg1,
                                   bundle.dataset.kg2)
            .c_str(),
        explain::AdgToJson(adg, bundle.dataset.kg1, bundle.dataset.kg2)
            .c_str());
    result.confidence = adg.confidence;
  }

  if (options_.explain_cache_capacity > 0) {
    cache_.Put(key, ExplainLruCache::Entry{result.json, result.confidence});
  }
  return result;
}

StatusOr<NeighborsResult> QueryEngine::Neighbors(
    const std::string& entity, int side, const Deadline& deadline) const {
  if (side != 1 && side != 2) {
    return Status::InvalidArgument("side must be 1 (KG1) or 2 (KG2)");
  }
  std::shared_ptr<const ServingState> state = AcquireState();
  const kg::KnowledgeGraph& graph =
      side == 1 ? state->bundle().dataset.kg1 : state->bundle().dataset.kg2;
  kg::EntityId e = graph.FindEntity(entity);
  if (e == kg::kInvalidEntity) {
    return Status::NotFound(StrFormat("unknown KG%d entity: %s", side,
                                      entity.c_str()));
  }
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("neighbors: deadline expired");
  }
  NeighborsResult result;
  result.entity = entity;
  for (const kg::AdjacentEdge& edge : graph.Edges(e)) {
    result.edges.push_back({graph.RelationName(edge.rel),
                            graph.EntityName(edge.neighbor), edge.outgoing});
  }
  return result;
}

StatusOr<RepairStatusResult> QueryEngine::RepairStatus(
    const std::string& source, const std::string& target,
    const Deadline& deadline) const {
  std::shared_ptr<const ServingState> state = AcquireState();
  auto e1 = ResolveSource(*state, source);
  if (!e1.ok()) return e1.status();
  auto e2 = ResolveTarget(*state, target);
  if (!e2.ok()) return e2.status();
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("repair_status: deadline expired");
  }
  const SnapshotBundle& bundle = state->bundle();
  RepairStatusResult result;
  result.in_base = bundle.alignment.Contains(*e1, *e2);
  result.in_repaired = bundle.repaired.Contains(*e1, *e2);
  for (kg::EntityId t : bundle.repaired.TargetsOf(*e1)) {
    result.repaired_targets.push_back(bundle.dataset.kg2.EntityName(t));
  }
  if (result.in_base && result.in_repaired) {
    result.verdict = "kept";
  } else if (result.in_base) {
    result.verdict = result.repaired_targets.empty() ? "removed" : "replaced";
  } else if (result.in_repaired) {
    result.verdict = "added";
  } else {
    result.verdict = "absent";
  }
  return result;
}

void QueryEngine::ClearExplainCache() { cache_.Clear(); }

}  // namespace exea::serve
