// Tests for the embedding layer: optimizer, negative sampling, Eq. (1)
// relation embeddings, and training smoke/quality tests for all four EA
// models (parameterized).

#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "emb/negative_sampling.h"
#include "emb/optimizer.h"
#include "emb/relation_embedding.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace exea::emb {
namespace {

// ---------------------------------------------------------------- Adagrad

TEST(AdagradTest, StepsAgainstGradient) {
  la::Matrix table(1, 2);
  table.SetRow(0, {1.0f, -1.0f});
  AdagradTable opt(&table, 0.1f);
  std::vector<float> grad{1.0f, -1.0f};
  opt.Update(0, grad.data());
  EXPECT_LT(table.At(0, 0), 1.0f);
  EXPECT_GT(table.At(0, 1), -1.0f);
}

TEST(AdagradTest, StepSizeShrinksWithAccumulation) {
  la::Matrix table(1, 1);
  AdagradTable opt(&table, 0.1f);
  std::vector<float> grad{1.0f};
  opt.Update(0, grad.data());
  float first_step = -table.At(0, 0);
  float before = table.At(0, 0);
  opt.Update(0, grad.data());
  float second_step = before - table.At(0, 0);
  EXPECT_GT(first_step, second_step);
}

TEST(AdagradTest, RowsAreIndependent) {
  la::Matrix table(2, 1);
  AdagradTable opt(&table, 0.1f);
  std::vector<float> grad{1.0f};
  opt.Update(0, grad.data());
  EXPECT_EQ(table.At(1, 0), 0.0f);
}

// ------------------------------------------------------ negative sampling

TEST(NegativeSamplingTest, UniformExcludesAndBounds) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto negatives = UniformNegatives(10, 4, 5, rng);
    EXPECT_EQ(negatives.size(), 5u);
    for (kg::EntityId n : negatives) {
      EXPECT_NE(n, 4u);
      EXPECT_LT(n, 10u);
    }
  }
}

TEST(NegativeSamplingTest, HardNegativesAreSimilar) {
  // Table with one cluster near the anchor and one far away; hard
  // negatives must come from the near cluster.
  Rng rng(5);
  la::Matrix table(20, 4);
  for (size_t i = 0; i < 10; ++i) {
    table.SetRow(i, {1.0f, 0.01f * static_cast<float>(i), 0, 0});
  }
  for (size_t i = 10; i < 20; ++i) {
    table.SetRow(i, {-1.0f, 0, 0.01f * static_cast<float>(i), 0});
  }
  la::Vec anchor{1.0f, 0, 0, 0};
  auto hard = HardNegatives(table, anchor.data(), /*exclude=*/0, 3,
                            /*pool=*/18, rng);
  EXPECT_EQ(hard.size(), 3u);
  for (kg::EntityId n : hard) {
    EXPECT_LT(n, 10u) << "hard negative came from the far cluster";
    EXPECT_NE(n, 0u);
  }
}

TEST(NegativeSamplingTest, HardFallsBackWhenPoolTooSmall) {
  Rng rng(7);
  la::Matrix table(4, 2);
  la::Vec anchor{1.0f, 0.0f};
  auto negatives = HardNegatives(table, anchor.data(), 0, 2, 2, rng);
  EXPECT_EQ(negatives.size(), 2u);
}

// ----------------------------------------------------- relation embedding

TEST(RelationEmbeddingTest, TranslationFormula) {
  kg::KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddTriple("c", "r", "d");
  la::Matrix ent(4, 2);
  ent.SetRow(g.FindEntity("a"), {1, 0});
  ent.SetRow(g.FindEntity("b"), {0, 1});
  ent.SetRow(g.FindEntity("c"), {2, 2});
  ent.SetRow(g.FindEntity("d"), {1, 1});
  la::Matrix rel = TranslationRelationEmbeddings(g, ent);
  // r = mean((a-b), (c-d)) = mean((1,-1), (1,1)) = (1, 0).
  EXPECT_NEAR(rel.At(g.FindRelation("r"), 0), 1.0f, 1e-6f);
  EXPECT_NEAR(rel.At(g.FindRelation("r"), 1), 0.0f, 1e-6f);
}

TEST(RelationEmbeddingTest, EmptyRelationIsZero) {
  kg::KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddRelation("empty");
  la::Matrix ent(2, 2);
  ent.SetRow(0, {1, 2});
  ent.SetRow(1, {3, 4});
  la::Matrix rel = TranslationRelationEmbeddings(g, ent);
  EXPECT_EQ(rel.At(g.FindRelation("empty"), 0), 0.0f);
  EXPECT_EQ(rel.At(g.FindRelation("empty"), 1), 0.0f);
}

// ------------------------------------------------------------- all models

struct ModelCase {
  ModelKind kind;
  double min_accuracy;  // floor the model must clear at tiny scale
};

class ModelTrainingTest : public ::testing::TestWithParam<ModelCase> {
 protected:
  static const data::EaDataset& Dataset() {
    static const data::EaDataset* dataset = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    return *dataset;
  }
};

TEST_P(ModelTrainingTest, BeatsRandomByWideMargin) {
  std::unique_ptr<EAModel> model = MakeDefaultModel(GetParam().kind);
  model->Train(Dataset());
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, Dataset());
  double accuracy =
      eval::Accuracy(eval::GreedyAlign(ranked), Dataset().test_gold);
  // Random assignment is ~1/|test| (under 1%).
  EXPECT_GE(accuracy, GetParam().min_accuracy)
      << ModelKindName(GetParam().kind);
}

TEST_P(ModelTrainingTest, EmbeddingShapesMatchDataset) {
  std::unique_ptr<EAModel> model = MakeDefaultModel(GetParam().kind);
  model->Train(Dataset());
  EXPECT_EQ(model->EntityEmbeddings(kg::KgSide::kSource).rows(),
            Dataset().kg1.num_entities());
  EXPECT_EQ(model->EntityEmbeddings(kg::KgSide::kTarget).rows(),
            Dataset().kg2.num_entities());
  if (model->HasRelationEmbeddings()) {
    EXPECT_EQ(model->RelationEmbeddings(kg::KgSide::kSource).rows(),
              Dataset().kg1.num_relations());
    EXPECT_EQ(model->RelationEmbeddings(kg::KgSide::kTarget).rows(),
              Dataset().kg2.num_relations());
  }
}

TEST_P(ModelTrainingTest, TrainingIsDeterministic) {
  std::unique_ptr<EAModel> a = MakeDefaultModel(GetParam().kind);
  std::unique_ptr<EAModel> b = MakeDefaultModel(GetParam().kind);
  a->Train(Dataset());
  b->Train(Dataset());
  const la::Matrix& ea = a->EntityEmbeddings(kg::KgSide::kSource);
  const la::Matrix& eb = b->EntityEmbeddings(kg::KgSide::kSource);
  ASSERT_EQ(ea.rows(), eb.rows());
  for (size_t i = 0; i < ea.data().size(); ++i) {
    ASSERT_EQ(ea.data()[i], eb.data()[i]) << "diverged at " << i;
  }
}

TEST_P(ModelTrainingTest, CloneUntrainedMatchesArchitecture) {
  std::unique_ptr<EAModel> model = MakeDefaultModel(GetParam().kind);
  std::unique_ptr<EAModel> clone = model->CloneUntrained();
  EXPECT_EQ(clone->name(), model->name());
  EXPECT_EQ(clone->HasRelationEmbeddings(), model->HasRelationEmbeddings());
  EXPECT_EQ(clone->IsTranslationBased(), model->IsTranslationBased());
  // The clone trains to the same result (same config/seed).
  model->Train(Dataset());
  clone->Train(Dataset());
  EXPECT_EQ(model->EntityEmbeddings(kg::KgSide::kSource).data(),
            clone->EntityEmbeddings(kg::KgSide::kSource).data());
}

TEST_P(ModelTrainingTest, SeedPairsAreSimilarAfterTraining) {
  std::unique_ptr<EAModel> model = MakeDefaultModel(GetParam().kind);
  model->Train(Dataset());
  double seed_sim_sum = 0.0;
  std::vector<kg::AlignedPair> seeds = Dataset().train.SortedPairs();
  for (const kg::AlignedPair& pair : seeds) {
    seed_sim_sum += model->Similarity(pair.source, pair.target);
  }
  EXPECT_GT(seed_sim_sum / static_cast<double>(seeds.size()), 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    Models, ModelTrainingTest,
    ::testing::Values(ModelCase{ModelKind::kMTransE, 0.3},
                      ModelCase{ModelKind::kAlignE, 0.35},
                      ModelCase{ModelKind::kGcnAlign, 0.3},
                      ModelCase{ModelKind::kDualAmn, 0.4}),
    [](const auto& info) {
      std::string name = ModelKindName(info.param.kind);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelFactoryTest, NamesMatchPaper) {
  EXPECT_EQ(ModelKindName(ModelKind::kMTransE), "MTransE");
  EXPECT_EQ(ModelKindName(ModelKind::kAlignE), "AlignE");
  EXPECT_EQ(ModelKindName(ModelKind::kGcnAlign), "GCN-Align");
  EXPECT_EQ(ModelKindName(ModelKind::kDualAmn), "Dual-AMN");
}

TEST(ModelFactoryTest, FamilyFlags) {
  EXPECT_TRUE(MakeDefaultModel(ModelKind::kMTransE)->IsTranslationBased());
  EXPECT_TRUE(MakeDefaultModel(ModelKind::kAlignE)->IsTranslationBased());
  EXPECT_FALSE(MakeDefaultModel(ModelKind::kGcnAlign)->IsTranslationBased());
  EXPECT_FALSE(MakeDefaultModel(ModelKind::kDualAmn)->IsTranslationBased());
  EXPECT_FALSE(
      MakeDefaultModel(ModelKind::kGcnAlign)->HasRelationEmbeddings());
  EXPECT_TRUE(
      MakeDefaultModel(ModelKind::kDualAmn)->HasRelationEmbeddings());
}

TEST(ModelFactoryTest, DualAmnIsStrongestAtTinyScale) {
  // The paper's premise: Dual-AMN is the best structure-only base model.
  const data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  auto accuracy_of = [&](ModelKind kind) {
    std::unique_ptr<EAModel> model = MakeDefaultModel(kind);
    model->Train(dataset);
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
    return eval::Accuracy(eval::GreedyAlign(ranked), dataset.test_gold);
  };
  double dual_amn = accuracy_of(ModelKind::kDualAmn);
  EXPECT_GE(dual_amn, accuracy_of(ModelKind::kMTransE));
  EXPECT_GE(dual_amn, accuracy_of(ModelKind::kGcnAlign));
}

}  // namespace
}  // namespace exea::emb
