#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/string_util.h"

namespace exea::obs {
namespace {

// Metric names are programmer-chosen dotted identifiers, but a hostile op
// label can reach a name via "serve.op.<op>" — escape like any JSON key.
std::string EscapeJsonKey(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

double NearestRankQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  auto rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;  // q = 0 still reads the minimum
  if (rank > n) rank = n;  // guard float round-up at q = 1
  return values[rank - 1];
}

void Gauge::Add(double delta) {
  // C++20 atomic<double>::fetch_add is not yet universal; CAS instead.
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

double Histogram::BucketLowerBound(size_t index) {
  return std::exp2((static_cast<double>(kMinExponent * kBucketsPerOctave) +
                    static_cast<double>(index)) /
                   kBucketsPerOctave);
}

double Histogram::BucketUpperBound(size_t index) {
  return BucketLowerBound(index + 1);
}

size_t Histogram::BucketIndex(double value) {
  // NaN, negatives, zero, and sub-range values all read as underflow; the
  // quantile path reports them as the observed minimum.
  if (!(value >= BucketLowerBound(0))) return kUnderflowBucket;
  if (value >= BucketUpperBound(kNumBuckets - 1)) return kOverflowBucket;
  double octaves = std::log2(value) - kMinExponent;
  auto index = static_cast<long>(
      std::floor(octaves * static_cast<double>(kBucketsPerOctave)));
  if (index < 0) index = 0;
  if (index >= static_cast<long>(kNumBuckets)) {
    index = static_cast<long>(kNumBuckets) - 1;
  }
  // log2/exp2 rounding can land a boundary value one bucket off its
  // half-open range; nudge until lower <= value < upper holds.
  auto i = static_cast<size_t>(index);
  while (i > 0 && value < BucketLowerBound(i)) --i;
  while (i + 1 < kNumBuckets && value >= BucketUpperBound(i)) ++i;
  return i;
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  if (exact_.size() < kExactSampleCap) exact_.push_back(value);
  size_t index = BucketIndex(value);
  if (index == kUnderflowBucket) {
    ++underflow_;
  } else if (index == kOverflowBucket) {
    ++overflow_;
  } else {
    ++buckets_[index];
  }
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  if (count_ <= kExactSampleCap) {
    // exact_ still holds every sample — true order statistic.
    return NearestRankQuantile(exact_, q);
  }
  auto rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = underflow_;
  if (rank <= seen) return min_;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (rank <= seen) {
      // The true order statistic lies in this bucket; report its
      // geometric midpoint, clamped to the observed range (clamping only
      // tightens the one-bucket-width error bound).
      double mid = std::sqrt(BucketLowerBound(i) * BucketUpperBound(i));
      return std::min(std::max(mid, min_), max_);
    }
  }
  return max_;  // overflow bucket: no finite upper bound, report max
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  snapshot.p50 = QuantileLocked(0.50);
  snapshot.p90 = QuantileLocked(0.90);
  snapshot.p99 = QuantileLocked(0.99);
  return snapshot;
}

Registry& Registry::Global() {
  // Intentionally leaked: metrics are recorded from arbitrary threads up
  // to process exit, so the global registry must never run a destructor.
  // exea-lint: allow(raw-new-delete)
  static Registry* global = new Registry();
  return *global;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

double Registry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->Value();
}

Histogram::Snapshot Registry::HistogramSnapshot(
    const std::string& name) const {
  const Histogram* histogram = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) histogram = it->second.get();
  }
  return histogram == nullptr ? Histogram::Snapshot{}
                              : histogram->TakeSnapshot();
}

std::vector<std::pair<std::string, uint64_t>> Registry::CountersWithPrefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = counters_.lower_bound(prefix); it != counters_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second->Value());
  }
  return out;
}

size_t Registry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string Registry::ToJson() const {
  // Collect stable pointers under mu_, render outside it (histogram
  // snapshots take each histogram's own lock; never while holding mu_
  // would also be fine, but keeping mu_ short keeps the getters cheap).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, metric] : counters_) {
      counters.emplace_back(name, metric.get());
    }
    for (const auto& [name, metric] : gauges_) {
      gauges.emplace_back(name, metric.get());
    }
    for (const auto& [name, metric] : histograms_) {
      histograms.emplace_back(name, metric.get());
    }
  }
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "" : ",") << '"' << EscapeJsonKey(counters[i].first)
        << "\":" << counters[i].second->Value();
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "" : ",") << '"' << EscapeJsonKey(gauges[i].first)
        << "\":" << StrFormat("%.6f", gauges[i].second->Value());
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    Histogram::Snapshot s = histograms[i].second->TakeSnapshot();
    out << (i == 0 ? "" : ",") << '"' << EscapeJsonKey(histograms[i].first)
        << "\":" << StrFormat("{\"count\":%llu,\"sum\":%.6f,\"min\":%.6f,"
                              "\"max\":%.6f,\"p50\":%.6f,\"p90\":%.6f,"
                              "\"p99\":%.6f}",
                              static_cast<unsigned long long>(s.count),
                              s.sum, s.min, s.max, s.p50, s.p90, s.p99);
  }
  out << "}}";
  return out.str();
}

}  // namespace exea::obs
