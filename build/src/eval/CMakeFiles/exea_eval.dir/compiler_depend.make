# Empty compiler generated dependencies file for exea_eval.
# This may be replaced when dependencies are built.
