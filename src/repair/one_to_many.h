// One-to-many conflict repair — Algorithm 1 of the paper (Section IV-B).
//
// One-to-many conflicts violate the unique-name assumption: two source
// entities predicted to align with the same target entail
// (e1, sameAs, e1') by transitivity, contradicting (e1, ¬sameAs, e1').
// The repair keeps the pair with the highest explanation confidence and
// iteratively realigns the losers over the ranked candidate matrix M.

#ifndef EXEA_REPAIR_ONE_TO_MANY_H_
#define EXEA_REPAIR_ONE_TO_MANY_H_

#include <functional>
#include <vector>

#include "emb/inference.h"
#include "explain/matcher.h"
#include "kg/alignment.h"

namespace exea::repair {

// Explanation-confidence oracle: confidence of pair (e1, e2) under the
// given alignment context (Exp + ADGConstruct in the paper's pseudocode;
// with cr1 enabled the pipeline bakes conflict pruning into this function).
using ConfidenceFn = std::function<double(
    kg::EntityId e1, kg::EntityId e2, const explain::AlignmentContext&)>;

struct OneToManyResult {
  kg::AlignmentSet alignment;           // the one-to-one A*
  std::vector<kg::EntityId> unaligned;  // E1': sources left unaligned
  size_t initial_conflicts = 0;  // pairs displaced by the OnetoOne step
  size_t iterations = 0;
  size_t swaps = 0;  // confidence-won replacements during realignment
};

// Runs Algorithm 1. `results` is the raw model alignment A_res (may contain
// conflicts); `seeds` is A_train; `ranked` is the similarity matrix M;
// `top_k` is the candidate count k. The output alignment is one-to-one.
OneToManyResult RepairOneToMany(const kg::AlignmentSet& results,
                                const kg::AlignmentSet& seeds,
                                const emb::RankedSimilarity& ranked,
                                const ConfidenceFn& confidence, size_t top_k);

}  // namespace exea::repair

#endif  // EXEA_REPAIR_ONE_TO_MANY_H_
