// exea_lint — the repo's compilation-aware rule checker. The analysis
// lives in tools/lint/ (source loading, the declaration indexer, the
// local per-file rules, the cross-TU passes, the incremental cache, the
// emitters); this file is the command-line driver.
//
// A scan has two phases. The local phase analyzes each file in
// isolation, producing per-file diagnostics plus a fact summary
// (declarations, call sites, guarded members, include edges). Local
// results are pure functions of (file bytes, configuration) and are what
// the --cache file persists. The global phase runs over the collected
// summaries: layering, include cycles, Status-discard resolution, the
// cross-TU lock discipline, event-loop blocking reachability, and
// unordered-iteration-into-output, each scoped to per-file include
// closures.
//
// Exit codes: 0 clean (or every finding baselined), 1 active findings,
// 2 configuration or I/O errors.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/cache.h"
#include "lint/config.h"
#include "lint/emit.h"
#include "lint/fix.h"
#include "lint/global_rules.h"
#include "lint/local_rules.h"
#include "lint/registry.h"
#include "lint/source.h"
#include "lint/taint.h"

namespace fs = std::filesystem;

namespace {

using lint::Diagnostic;

// Serves raw source lines to the baseline fingerprinting, splitting each
// file's content on first use.
class FileLines : public lint::LineSource {
 public:
  void Add(const std::string& path, std::string content) {
    contents_[path] = std::move(content);
  }

  std::string Line(const std::string& file, size_t line_1based) override {
    auto split = split_.find(file);
    if (split == split_.end()) {
      auto content = contents_.find(file);
      if (content == contents_.end()) return "";
      std::vector<std::string> lines;
      lint::SplitLines(content->second, &lines);
      split = split_.emplace(file, std::move(lines)).first;
    }
    if (line_1based < 1 || line_1based > split->second.size()) return "";
    return split->second[line_1based - 1];
  }

 private:
  std::map<std::string, std::string> contents_;
  std::map<std::string, std::vector<std::string>> split_;
};

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path layers_path;
  bool layers_explicit = false;
  fs::path concurrency_path;
  bool concurrency_explicit = false;
  fs::path taint_path;
  bool taint_explicit = false;
  fs::path baseline_path;
  bool baseline_explicit = false;
  fs::path cache_path;
  bool cache_enabled = false;
  bool update_baseline = false;
  bool fix_mode = false;
  std::string format = "text";
  std::set<std::string> enabled;
  bool rules_given = false;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
      layers_explicit = true;
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_path = arg.substr(9);
      layers_explicit = true;
    } else if (arg == "--concurrency" && i + 1 < argc) {
      concurrency_path = argv[++i];
      concurrency_explicit = true;
    } else if (arg.rfind("--concurrency=", 0) == 0) {
      concurrency_path = arg.substr(14);
      concurrency_explicit = true;
    } else if (arg == "--taint" && i + 1 < argc) {
      taint_path = argv[++i];
      taint_explicit = true;
    } else if (arg.rfind("--taint=", 0) == 0) {
      taint_path = arg.substr(8);
      taint_explicit = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      baseline_explicit = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      baseline_explicit = true;
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
      cache_enabled = true;
    } else if (arg.rfind("--cache=", 0) == 0) {
      cache_path = arg.substr(8);
      cache_enabled = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--fix") {
      fix_mode = true;
    } else if (arg == "--rules" && i + 1 < argc) {
      rules_given = true;
      std::string unknown;
      if (!lint::ExpandRules(argv[++i], &enabled, &unknown)) {
        std::fprintf(stderr, "exea_lint: unknown rule or family '%s'\n",
                     unknown.c_str());
        return 2;
      }
    } else if (arg.rfind("--rules=", 0) == 0) {
      rules_given = true;
      std::string unknown;
      if (!lint::ExpandRules(arg.substr(8), &enabled, &unknown)) {
        std::fprintf(stderr, "exea_lint: unknown rule or family '%s'\n",
                     unknown.c_str());
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "exea_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--list-rules") {
      for (const lint::RuleInfo& info : lint::kRules) {
        std::printf("%-22s %-16s %s\n", info.name, info.family,
                    info.description);
      }
      return 0;
    } else if (arg == "--help") {
      std::printf(
          "usage: exea_lint [--root <dir>] [--layers <file>]\n"
          "                 [--concurrency <file>] [--taint <file>]\n"
          "                 [--rules <r1,r2|family>]\n"
          "                 [--format text|json|sarif] [--cache <file>]\n"
          "                 [--baseline <file>] [--update-baseline] [--fix]\n"
          "                 [--list-rules] [paths...]\n"
          "Checks project rules over C++ sources; with no paths, scans\n"
          "<root>/src, <root>/tools, <root>/bench. Exits 1 if any rule\n"
          "fires, 2 on I/O or configuration errors (unreadable input,\n"
          "unknown --rules name, a cycle in the declared layer DAG).\n"
          "--layers defaults to <root>/tools/layers.txt; if that file is\n"
          "absent the layering family is skipped. --concurrency defaults\n"
          "to <root>/tools/lint_concurrency.txt (event-loop entries,\n"
          "blocking set, fd acquirers); absent, built-in defaults apply\n"
          "and the event-loop family is skipped. --taint defaults to\n"
          "<root>/tools/lint_taint.txt (untrusted sources, sanitizers,\n"
          "sinks); absent, the cross-TU taint pass is skipped (the local\n"
          "atoi-on-untrusted rule still runs). --cache keeps a per-file\n"
          "analysis cache keyed by content hash. --baseline defaults to\n"
          "<root>/tools/lint_baseline.txt; findings it lists are reported\n"
          "as suppressed and do not fail the scan; --update-baseline\n"
          "rewrites it from the current findings. --fix applies the\n"
          "mechanical fixes (nodiscard insertion, waiver normalization).\n"
          "--list-rules prints the rule registry (name, family,\n"
          "description).\n");
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (!rules_given) {
    for (const lint::RuleInfo& info : lint::kRules) enabled.insert(info.name);
  }
  if (inputs.empty()) {
    for (const char* sub : {"src", "tools", "bench"}) {
      inputs.push_back(root / sub);
    }
  }
  if (layers_path.empty()) layers_path = root / "tools" / "layers.txt";
  if (concurrency_path.empty()) {
    concurrency_path = root / "tools" / "lint_concurrency.txt";
  }
  if (taint_path.empty()) taint_path = root / "tools" / "lint_taint.txt";
  if (baseline_path.empty()) {
    baseline_path = root / "tools" / "lint_baseline.txt";
  }

  lint::ConcurrencyConfig conc;
  conc.AddDefaults();
  {
    std::error_code ec;
    if (fs::is_regular_file(concurrency_path, ec)) {
      std::string error;
      if (!lint::ParseConcurrency(concurrency_path, &conc, &error)) {
        std::fprintf(stderr, "exea_lint: %s\n", error.c_str());
        return 2;
      }
    } else if (concurrency_explicit) {
      std::fprintf(stderr, "exea_lint: cannot read concurrency file %s\n",
                   concurrency_path.generic_string().c_str());
      return 2;
    }
  }

  lint::TaintConfig taint;
  {
    std::error_code ec;
    if (fs::is_regular_file(taint_path, ec)) {
      std::string error;
      if (!lint::ParseTaint(taint_path, &taint, &error)) {
        std::fprintf(stderr, "exea_lint: %s\n", error.c_str());
        return 2;
      }
    } else if (taint_explicit) {
      std::fprintf(stderr, "exea_lint: cannot read taint file %s\n",
                   taint_path.generic_string().c_str());
      return 2;
    }
  }

  std::vector<fs::path> paths;
  for (const fs::path& input : inputs) lint::CollectFiles(input, &paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "exea_lint: no .cc/.h files found under inputs\n");
    return 2;
  }

  if (fix_mode) {
    lint::FixStats stats = lint::ApplyFixes(paths, conc);
    std::fprintf(stderr,
                 "exea_lint: fixed %zu file(s): %zu [[nodiscard]] "
                 "inserted, %zu waiver(s) normalized\n",
                 stats.files_changed, stats.nodiscard_inserted,
                 stats.waivers_normalized);
    if (stats.files_failed > 0) {
      std::fprintf(stderr, "exea_lint: %zu file(s) could not be rewritten\n",
                   stats.files_failed);
      return 2;
    }
    return 0;
  }

  lint::LayerGraph layers;
  bool have_layers = false;
  {
    std::error_code ec;
    if (fs::is_regular_file(layers_path, ec)) {
      std::string error;
      if (!lint::ParseLayers(layers_path, &layers, &error)) {
        std::fprintf(stderr, "exea_lint: %s\n", error.c_str());
        return 2;
      }
      have_layers = true;
    } else if (layers_explicit) {
      std::fprintf(stderr, "exea_lint: cannot read layers file %s\n",
                   layers_path.generic_string().c_str());
      return 2;
    }
  }

  lint::AnalysisCache cache(cache_path, lint::CacheConfigKey(conc));
  if (cache_enabled) cache.Load();

  FileLines lines;
  std::vector<lint::FileAnalysis> analyses;
  analyses.reserve(paths.size());
  size_t cache_hits = 0;
  for (const fs::path& path : paths) {
    std::string content;
    if (!lint::ReadFileContent(path, &content)) {
      std::fprintf(stderr, "exea_lint: cannot read %s\n",
                   path.generic_string().c_str());
      return 2;
    }
    std::string path_str = path.generic_string();
    uint64_t hash = lint::Fnv1a64(content);
    lint::FileAnalysis analysis;
    if (cache_enabled && cache.Lookup(path_str, hash, &analysis)) {
      ++cache_hits;
    } else {
      lint::SourceFile file;
      lint::BuildSourceFile(path_str, content, &file);
      analysis = lint::AnalyzeFile(file, conc);
      analysis.content_hash = hash;
    }
    lines.Add(path_str, std::move(content));
    analyses.push_back(std::move(analysis));
  }
  // A fully warm scan leaves the cache byte-identical; skip the rewrite.
  if (cache_enabled && cache_hits < analyses.size()) cache.Write(analyses);

  std::vector<Diagnostic> diags;
  for (const lint::FileAnalysis& analysis : analyses) {
    diags.insert(diags.end(), analysis.local.begin(), analysis.local.end());
  }
  {
    std::vector<Diagnostic> global = lint::RunGlobalRules(
        analyses, have_layers ? &layers : nullptr,
        layers_path.generic_string(), conc);
    diags.insert(diags.end(), global.begin(), global.end());
  }
  if (taint.loaded) {
    std::vector<Diagnostic> flows = lint::RunTaintPass(analyses, taint);
    diags.insert(diags.end(), flows.begin(), flows.end());
  }
  diags.erase(std::remove_if(diags.begin(), diags.end(),
                             [&enabled](const Diagnostic& d) {
                               return enabled.count(d.rule) == 0;
                             }),
              diags.end());
  std::sort(diags.begin(), diags.end());
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.col == b.col && a.rule == b.rule &&
                                   a.message == b.message;
                          }),
              diags.end());

  if (update_baseline) {
    if (!lint::WriteBaseline(baseline_path, diags, &lines)) {
      std::fprintf(stderr, "exea_lint: cannot write baseline file %s\n",
                   baseline_path.generic_string().c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "exea_lint: wrote baseline covering %zu finding(s) to %s\n",
                 diags.size(), baseline_path.generic_string().c_str());
    return 0;
  }

  {
    std::error_code ec;
    if (fs::is_regular_file(baseline_path, ec)) {
      lint::Baseline baseline;
      if (!lint::LoadBaseline(baseline_path, &baseline)) {
        std::fprintf(stderr, "exea_lint: cannot read baseline file %s\n",
                     baseline_path.generic_string().c_str());
        return 2;
      }
      lint::ApplyBaseline(baseline, &lines, &diags);
    } else if (baseline_explicit) {
      std::fprintf(stderr, "exea_lint: cannot read baseline file %s\n",
                   baseline_path.generic_string().c_str());
      return 2;
    }
  }

  size_t active = 0;
  for (const Diagnostic& d : diags) {
    if (!d.baselined) ++active;
  }

  if (format == "json") {
    lint::PrintJson(diags);
  } else if (format == "sarif") {
    lint::PrintSarif(diags);
  } else {
    lint::PrintText(diags);
  }
  if (cache_enabled) {
    std::fprintf(stderr,
                 "exea_lint: %zu file(s) (%zu from cache), %zu violation(s)\n",
                 analyses.size(), cache_hits, active);
  } else {
    std::fprintf(stderr, "exea_lint: %zu file(s), %zu violation(s)\n",
                 analyses.size(), active);
  }
  return active == 0 ? 0 : 1;
}
