// The LRU cache over rendered explanations, extracted from QueryEngine so
// its recency discipline is unit-testable in isolation. Internally
// synchronized; keys are the engine's packed (e1, e2) pair keys.
//
// Both operations maintain recency:
//   Get  — a hit moves the entry to the front.
//   Put  — a new key is inserted at the front (evicting from the back
//          over capacity); an existing key is refreshed and moved to the
//          front. The promote-on-existing-Put matters under concurrency:
//          two threads can miss on the same key and both render; the
//          second Put used to return without touching recency, leaving a
//          just-used entry parked at its stale position — first in line
//          for eviction.

#ifndef EXEA_SERVE_EXPLAIN_CACHE_H_
#define EXEA_SERVE_EXPLAIN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace exea::serve {

class ExplainLruCache {
 public:
  struct Entry {
    std::string json;
    double confidence = 0.0;
  };

  // `capacity` 0 disables the cache: Get always misses, Put drops.
  explicit ExplainLruCache(size_t capacity) : capacity_(capacity) {}

  ExplainLruCache(const ExplainLruCache&) = delete;
  ExplainLruCache& operator=(const ExplainLruCache&) = delete;

  // On hit copies the entry into `out` (may be nullptr to probe),
  // promotes it to most-recent, and returns true.
  bool Get(uint64_t key, Entry* out);

  // Inserts or refreshes `key` as the most-recent entry, then evicts
  // least-recent entries down to capacity.
  void Put(uint64_t key, Entry entry);

  size_t size() const;
  void Clear();

  // Keys in recency order, most recent first. For tests pinning the
  // eviction order.
  std::vector<uint64_t> KeysMostRecentFirst() const;

 private:
  struct Node {
    uint64_t key = 0;
    Entry entry;
  };

  size_t capacity_;

  // mu_ protects everything declared after it (the class convention the
  // lock-discipline lint pass enforces). The list is most-recent-first;
  // the map points into it.
  mutable std::mutex mu_;
  std::list<Node> lru_ EXEA_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<Node>::iterator>
      index_ EXEA_GUARDED_BY(mu_);
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_EXPLAIN_CACHE_H_
