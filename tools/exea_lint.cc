// exea_lint: the project's multi-pass rule checker. Scans C++ sources under
// src/, tools/, and bench/ and enforces conventions the compiler alone
// cannot. Rules are grouped into families; `--list-rules` prints the full
// registry. The three architecture-level families:
//
//   layering          src/<module> directories form a DAG declared in
//                     tools/layers.txt ("a < b" means a is below b, so b may
//                     include a). An include that points upward or sideways
//                     across that order is rejected, as is a src/<module>
//                     directory the file never declared. File-level include
//                     cycles are reported with the offending chain printed
//                     (rule include-cycle).
//   lock-discipline   classes follow the convention "mutex first, then the
//                     state it protects": every data member declared after
//                     the first std::mutex member must carry
//                     EXEA_GUARDED_BY(mu) (util/check.h), be a sync type
//                     (mutex / condition_variable / atomic / thread /
//                     once_flag), or carry a waiver (rule guarded-by). A
//                     reference to an annotated member with no enclosing
//                     lock_guard / unique_lock / scoped_lock of the named
//                     mutex — and outside any method marked
//                     EXEA_REQUIRES(mu) — is flagged (rule lock-held).
//   header-hygiene    every header carries an include guard or #pragma once
//                     (rule header-guard) and never says `using namespace`
//                     at header scope (rule header-using-namespace).
//
// The original single-pass rules remain:
//
//   nodiscard-status   every Status / StatusOr-returning declaration in a
//                      header carries [[nodiscard]].
//   discarded-status   no call site discards a Status/StatusOr anyway.
//   raw-rng            no rand()/srand()/std::random_device outside
//                      src/util/rng — randomness flows through the seeded
//                      util Rng.
//   raw-new-delete     no naked new/delete outside waived leaky singletons.
//   cout-logging       no std::cout inside src/ — library code logs through
//                      EXEA_LOG.
//
// A violation prints as "file:line:col: rule: message" and makes the exit
// code 1, so ci/check.sh can gate on it; I/O and configuration errors
// (unreadable input, unknown --rules name, a cycle in the declared layer
// DAG) exit 2. An individual line opts out with an inline waiver comment
// naming the rule it suppresses:
//
//   static Foo* foo = new Foo();  // exea-lint: allow(raw-new-delete)
//
// The checker is deliberately lexical (a comment/string-aware line scanner,
// not a parser): it is dependency-free, runs in milliseconds, and the rules
// it enforces are all expressible at token level. Heuristics were tuned so
// the repo scans clean; when the checker and the code disagree, either fix
// the code or leave a waiver with a justification next to it.
//
// Usage:
//   exea_lint [--root <dir>] [--layers <file>] [--rules <r1,r2|family>]
//             [--format text|json] [--list-rules] [paths...]
// With no paths, scans <root>/src, <root>/tools, <root>/bench. Paths may be
// files or directories. --root defaults to the current directory. --layers
// defaults to <root>/tools/layers.txt; when that file does not exist the
// layering family is skipped.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- registry

struct RuleInfo {
  const char* name;
  const char* family;
  const char* description;
};

// The registry drives --list-rules, --rules validation, and the family →
// rule expansion. Keep it in sync with the passes below.
constexpr RuleInfo kRules[] = {
    {"nodiscard-status", "status",
     "Status/StatusOr-returning declarations in headers carry [[nodiscard]]"},
    {"discarded-status", "status",
     "no bare statement discards a Status/StatusOr result"},
    {"raw-rng", "determinism",
     "no rand()/srand()/std::random_device outside src/util/rng"},
    {"raw-new-delete", "memory",
     "no naked new/delete; ownership lives in containers and smart pointers"},
    {"cout-logging", "logging",
     "no std::cout in src/; library code logs via EXEA_LOG"},
    {"layering", "layering",
     "src/<module> includes must point downward in tools/layers.txt"},
    {"include-cycle", "layering",
     "no cyclic quoted-include chains between repo files"},
    {"guarded-by", "lock-discipline",
     "members declared after a class's first mutex carry EXEA_GUARDED_BY"},
    {"lock-held", "lock-discipline",
     "annotated members are only touched under a visible lock of their "
     "mutex"},
    {"header-guard", "header-hygiene",
     "every header has an include guard or #pragma once"},
    {"header-using-namespace", "header-hygiene",
     "no `using namespace` at header scope"},
    {"obs-no-adhoc-metrics", "observability",
     "no raw timing/counter members in src/ outside obs/; telemetry lives "
     "in the exea::obs registry"},
};

struct Diagnostic {
  std::string file;
  size_t line = 0;
  size_t col = 1;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (col != other.col) return col < other.col;
    return rule < other.rule;
  }
};

// One scanned translation unit: the raw lines, the comment/string-stripped
// lines (same count, columns preserved), and per-line waivers.
struct SourceFile {
  std::string path;        // as reported in diagnostics
  bool is_header = false;
  bool in_src = false;     // under a src/ directory (not tools/, bench/)
  bool is_rng_impl = false;  // src/util/rng.* — exempt from raw-rng
  std::string module;      // src/<module>/..., "tools", "bench", or empty
  std::string src_rel;     // path relative to src/ for include resolution
  std::vector<std::string> raw;
  std::vector<std::string> code;  // comments and literals blanked out
  std::vector<std::set<std::string>> waivers;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Collects "exea-lint: allow(rule1, rule2)" waivers out of a comment.
void ParseWaivers(const std::string& comment, std::set<std::string>* out) {
  const std::string marker = "exea-lint: allow(";
  size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  size_t open = at + marker.size();
  size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string inside = comment.substr(open, close - open);
  std::string name;
  std::istringstream parts(inside);
  while (std::getline(parts, name, ',')) {
    size_t b = name.find_first_not_of(" \t");
    size_t e = name.find_last_not_of(" \t");
    if (b != std::string::npos) out->insert(name.substr(b, e - b + 1));
  }
}

// Blanks comments, string literals, and char literals (preserving line
// structure and column positions) so the rule matchers never fire inside
// them. Comment text is mined for waivers before being dropped.
void StripToCode(SourceFile* file) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string comment_text;
  file->code.resize(file->raw.size());
  file->waivers.resize(file->raw.size());
  for (size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& in = file->raw[li];
    std::string out(in.size(), ' ');
    if (state == State::kLineComment) state = State::kCode;
    for (size_t i = 0; i < in.size(); ++i) {
      char c = in[i];
      char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment_text.assign(in, i, std::string::npos);
            ParseWaivers(comment_text, &file->waivers[li]);
            i = in.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            comment_text.clear();
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kBlockComment:
          comment_text.push_back(c);
          if (c == '*' && next == '/') {
            ParseWaivers(comment_text, &file->waivers[li]);
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kLineComment:
          break;  // unreachable: reset at line start
      }
    }
    if (state == State::kBlockComment) {
      ParseWaivers(comment_text, &file->waivers[li]);
      comment_text.push_back('\n');
    }
    // A string/char literal never legally spans a newline in this codebase.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    file->code[li] = std::move(out);
  }
}

// ----------------------------------------------------------------- layers

// The declared module partial order, parsed from tools/layers.txt. Grammar:
// '#' starts a comment; a nonblank line is either a chain "a < b < c"
// (each '<' declares "left is below right") or a single module name that
// participates in no ordering. `below[m]` is the transitive set of modules
// strictly below m; an include from module A into module B is legal iff
// B == A or B ∈ below[A].
struct LayerGraph {
  std::set<std::string> modules;
  std::map<std::string, std::set<std::string>> below;  // transitive closure
};

// Parses `path` into `*graph`. Returns false with `*error` set on a syntax
// error or a cycle in the declared order — both are configuration errors
// (exit 2), not lint findings.
bool ParseLayers(const fs::path& path, LayerGraph* graph, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path.generic_string();
    return false;
  }
  std::map<std::string, std::set<std::string>> direct;  // m -> directly below
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> chain;
    std::string token;
    std::istringstream parts(line);
    while (std::getline(parts, token, '<')) {
      size_t b = token.find_first_not_of(" \t");
      if (b == std::string::npos) {
        if (!chain.empty() || !token.empty()) {
          // "a < " or "< b": an empty side of a '<' is malformed.
          if (line.find('<') != std::string::npos) {
            *error = path.generic_string() + ":" + std::to_string(lineno) +
                     ": malformed chain (empty module name)";
            return false;
          }
        }
        continue;
      }
      size_t e = token.find_last_not_of(" \t");
      std::string name = token.substr(b, e - b + 1);
      for (char c : name) {
        if (!IsIdentChar(c)) {
          *error = path.generic_string() + ":" + std::to_string(lineno) +
                   ": bad module name '" + name + "'";
          return false;
        }
      }
      chain.push_back(name);
    }
    for (const std::string& name : chain) graph->modules.insert(name);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      direct[chain[i + 1]].insert(chain[i]);  // chain[i] is below chain[i+1]
    }
  }

  // Transitive closure by DFS, detecting cycles (gray = on the stack).
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  // Explicit recursion via a lambda would need std::function; a worklist
  // DFS keeps the tool dependency-free and the chain reconstructable.
  struct Frame {
    std::string node;
    std::vector<std::string> pending;
  };
  for (const std::string& start : graph->modules) {
    if (color[start] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back({start, {direct[start].begin(), direct[start].end()}});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& top = frames.back();
      if (top.pending.empty()) {
        color[top.node] = 2;
        // Fold the finished node's closure into its parent.
        graph->below[top.node].insert(direct[top.node].begin(),
                                      direct[top.node].end());
        for (const std::string& d : direct[top.node]) {
          graph->below[top.node].insert(graph->below[d].begin(),
                                        graph->below[d].end());
        }
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      std::string next = top.pending.back();
      top.pending.pop_back();
      if (color[next] == 1) {
        // Cycle: report the chain from `next` back to itself.
        std::string chain = next;
        bool in_cycle = false;
        for (const std::string& n : stack) {
          if (n == next) in_cycle = true;
          if (in_cycle && n != next) chain += " < " + n;
        }
        chain += " < " + next;
        *error = path.generic_string() + ": cycle in declared layering: " +
                 chain;
        return false;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.push_back(next);
        frames.push_back({next, {direct[next].begin(), direct[next].end()}});
      }
    }
  }
  return true;
}

// ------------------------------------------------------------ declarations

// Skips leading declaration qualifiers, returns the index after them.
size_t SkipQualifiers(const std::string& s, size_t i) {
  static const char* const kQualifiers[] = {"static",   "virtual", "inline",
                                            "constexpr", "friend",  "explicit"};
  for (;;) {
    while (i < s.size() && s[i] == ' ') ++i;
    bool matched = false;
    for (const char* q : kQualifiers) {
      size_t n = std::strlen(q);
      if (s.compare(i, n, q) == 0 && i + n < s.size() && s[i + n] == ' ') {
        i += n;
        matched = true;
        break;
      }
    }
    if (!matched) return i;
  }
}

// Matches an optionally namespace-qualified Status / StatusOr<...> return
// type starting at `i`; on success sets `*after` past the type (including a
// balanced template argument list) and `*is_status_or`.
bool MatchStatusType(const std::string& s, size_t i, size_t* after,
                     bool* is_status_or) {
  if (s.compare(i, 2, "::") == 0) i += 2;
  for (const char* ns : {"exea::", "util::", "exea::util::"}) {
    size_t n = std::strlen(ns);
    if (s.compare(i, n, ns) == 0) {
      i += n;
      break;
    }
  }
  const std::string kStatus = "Status";
  if (s.compare(i, kStatus.size(), kStatus) != 0) return false;
  i += kStatus.size();
  if (s.compare(i, 2, "Or") == 0 && i + 2 < s.size() && s[i + 2] == '<') {
    i += 3;
    int depth = 1;
    while (i < s.size() && depth > 0) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>') --depth;
      ++i;
    }
    if (depth != 0) return false;  // template args span lines: next line
    *is_status_or = true;
  } else {
    if (i < s.size() && IsIdentChar(s[i])) return false;  // StatusXyz
    *is_status_or = false;
  }
  *after = i;
  return true;
}

// A Status-returning function declaration found in a header.
struct Declaration {
  std::string file;
  size_t line = 0;
  size_t col = 1;
  std::string name;
  bool has_nodiscard = false;
};

// Scans one file for Status/StatusOr-returning function declarations.
// Declarations in this codebase keep the return type and function name on
// one physical line (Google style), so a line scanner suffices.
void FindDeclarations(const SourceFile& file, std::vector<Declaration>* out) {
  std::string prev_nonblank;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    // `using` aliases, returns, and macro bodies are not declarations.
    if (line.compare(i, 6, "using ") == 0 || line.compare(i, 7, "return ") == 0 ||
        line.compare(i, 8, "typedef ") == 0 || line[i] == '#') {
      prev_nonblank = line;
      continue;
    }
    bool nodiscard_here = false;
    const std::string kAttr = "[[nodiscard]]";
    if (line.compare(i, kAttr.size(), kAttr) == 0) {
      nodiscard_here = true;
      i += kAttr.size();
    }
    i = SkipQualifiers(line, i);
    if (line.compare(i, kAttr.size(), kAttr) == 0) {  // static [[nodiscard]]
      nodiscard_here = true;
      i = SkipQualifiers(line, i + kAttr.size());
    }
    size_t after_type = 0;
    bool is_status_or = false;
    if (!MatchStatusType(line, i, &after_type, &is_status_or)) {
      prev_nonblank = line;
      continue;
    }
    size_t j = after_type;
    while (j < line.size() && line[j] == ' ') ++j;
    if (j == after_type || j >= line.size()) {  // no space → constructor etc.
      prev_nonblank = line;
      continue;
    }
    // Function name: identifier (possibly Class::Name for out-of-line
    // definitions) immediately followed by '('.
    size_t name_begin = j;
    while (j < line.size() &&
           (IsIdentChar(line[j]) || line.compare(j, 2, "::") == 0)) {
      j += line.compare(j, 2, "::") == 0 ? 2 : 1;
    }
    if (j == name_begin || j >= line.size() || line[j] != '(') {
      prev_nonblank = line;
      continue;
    }
    std::string qualified = line.substr(name_begin, j - name_begin);
    // Operators and qualified (out-of-line) definitions: the attribute
    // belongs on the in-class/in-header declaration, which is scanned
    // separately — still register the name for the call-site rule.
    bool out_of_line = qualified.find("::") != std::string::npos;
    size_t last_sep = qualified.rfind("::");
    std::string name = last_sep == std::string::npos
                           ? qualified
                           : qualified.substr(last_sep + 2);
    // nodiscard may also sit on its own line directly above.
    if (!nodiscard_here) {
      size_t at = prev_nonblank.find(kAttr);
      if (at != std::string::npos &&
          prev_nonblank.find_first_not_of(" \t") == at &&
          prev_nonblank.find_first_not_of(" \t", at + kAttr.size()) ==
              std::string::npos) {
        nodiscard_here = true;
      }
    }
    Declaration decl;
    decl.file = file.path;
    decl.line = li + 1;
    decl.col = line.find_first_not_of(" \t") + 1;
    decl.name = name;
    decl.has_nodiscard = nodiscard_here || out_of_line || !file.is_header;
    out->push_back(decl);
    prev_nonblank = line;
  }
}

// -------------------------------------------------------------- rule pass

class Linter {
 public:
  // `enabled` filters which rules may report; `layers` is null when the
  // layering family is skipped (no layers.txt).
  Linter(std::set<std::string> enabled, const LayerGraph* layers,
         std::string layers_path)
      : enabled_(std::move(enabled)),
        layers_(layers),
        layers_path_(std::move(layers_path)) {}

  void Scan(const std::vector<SourceFile>& files) {
    // Pass 1: registry of Status-returning function names (for the
    // call-site rule) + the nodiscard rule itself.
    for (const SourceFile& file : files) {
      std::vector<Declaration> decls;
      FindDeclarations(file, &decls);
      for (const Declaration& d : decls) {
        status_returning_.insert(d.name);
        if (!d.has_nodiscard) {
          Report(file, d.line, d.col, "nodiscard-status",
                 "declaration of '" + d.name +
                     "' returns Status/StatusOr but is not [[nodiscard]]");
        }
      }
    }
    // Pass 2: per-line rules.
    for (const SourceFile& file : files) {
      CheckDiscardedStatus(file);
      CheckRawRng(file);
      CheckRawNewDelete(file);
      CheckCoutLogging(file);
      CheckHeaderHygiene(file);
      CheckAdhocMetrics(file);
    }
    // Pass 3: the include graph — module layering and file-level cycles.
    CheckLayering(files);
    // Pass 4: lock discipline over class members and their uses.
    CheckLockDiscipline(files);
  }

  // Sorted diagnostics; empty means the scan is clean.
  const std::vector<Diagnostic>& diagnostics() {
    std::sort(diags_.begin(), diags_.end());
    return diags_;
  }

 private:
  // A waiver applies to its own line, or — when it sits on a comment-only
  // line — to the next line (for sites too long to carry the comment).
  static bool Waived(const SourceFile& file, size_t line_1based,
                     const std::string& rule) {
    const std::set<std::string>& w = file.waivers[line_1based - 1];
    if (w.count(rule) > 0 || w.count("all") > 0) return true;
    if (line_1based >= 2) {
      size_t prev = line_1based - 2;
      const std::set<std::string>& pw = file.waivers[prev];
      bool prev_comment_only =
          file.code[prev].find_first_not_of(" \t") == std::string::npos;
      if (prev_comment_only && (pw.count(rule) > 0 || pw.count("all") > 0)) {
        return true;
      }
    }
    return false;
  }

  // Central sink: drops disabled rules and waived lines, so every rule
  // gets waiver support for free.
  void Report(const SourceFile& file, size_t line, size_t col,
              const std::string& rule, const std::string& message) {
    if (enabled_.count(rule) == 0) return;
    if (line >= 1 && line <= file.waivers.size() && Waived(file, line, rule)) {
      return;
    }
    diags_.push_back({file.path, line, col, rule, message});
  }

  // A bare expression statement whose outermost callee is a registered
  // Status-returning function. Joins simple continuation lines so a call
  // whose argument list wraps is still seen as one statement.
  void CheckDiscardedStatus(const SourceFile& file) {
    // Last significant character of the previous code line; a physical line
    // is only a *statement start* when the previous one ended a statement
    // (';'), opened or closed a block, or was a label/access specifier.
    // Continuation lines of a wrapped assignment or argument list are not
    // statement starts and must not be re-read as bare calls.
    char prev_end = ';';
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos) continue;
      char saved_prev_end = prev_end;
      size_t tail = line.find_last_not_of(" \t");
      prev_end = line[tail];
      if (line[i] == '#') continue;  // preprocessor: does not end statements
      bool statement_start = saved_prev_end == ';' || saved_prev_end == '{' ||
                             saved_prev_end == '}' || saved_prev_end == ':';
      if (!statement_start) continue;
      if (!IsIdentChar(line[i]) && line.compare(i, 2, "::") != 0) continue;
      // Leading keyword → not a bare call statement.
      static const char* const kKeywords[] = {
          "return", "if",   "while", "for",    "switch", "case",
          "else",   "do",   "goto",  "delete", "new",    "throw",
          "using",  "co_return"};
      bool keyword = false;
      for (const char* k : kKeywords) {
        size_t n = std::strlen(k);
        if (line.compare(i, n, k) == 0 &&
            (i + n >= line.size() || !IsIdentChar(line[i + n]))) {
          keyword = true;
          break;
        }
      }
      if (keyword) continue;
      // Outermost callee: a chain of identifiers joined by :: . ->
      // immediately followed by '('.
      size_t j = i;
      size_t callee_begin = i;
      while (j < line.size()) {
        if (IsIdentChar(line[j])) {
          ++j;
        } else if (line.compare(j, 2, "::") == 0) {
          j += 2;
          callee_begin = j;
        } else if (line[j] == '.') {
          ++j;
          callee_begin = j;
        } else if (line.compare(j, 2, "->") == 0) {
          j += 2;
          callee_begin = j;
        } else {
          break;
        }
      }
      if (j >= line.size() || line[j] != '(' || j == callee_begin) continue;
      std::string callee = line.substr(callee_begin, j - callee_begin);
      if (status_returning_.count(callee) == 0) continue;
      // Join continuations until the statement terminates, then require the
      // whole statement to be exactly <call-expression>; — an assignment,
      // comparison, or larger expression is not a discard.
      std::string statement = line.substr(i);
      for (size_t k = li + 1;
           k < file.code.size() && statement.find(';') == std::string::npos &&
           k < li + 12;
           ++k) {
        statement += ' ';
        statement += file.code[k];
      }
      size_t semi = statement.find(';');
      if (semi == std::string::npos) continue;
      statement.resize(semi);
      if (statement.find('=') != std::string::npos) continue;
      // The statement must end exactly at the paren closing the callee's
      // own argument list: `Foo(...)` is a discard, `Foo(...).ok()` is not.
      size_t open = statement.find('(', j - i);
      if (open == std::string::npos) continue;
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t k = open; k < statement.size(); ++k) {
        if (statement[k] == '(') ++depth;
        if (statement[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close == std::string::npos ||
          statement.find_first_not_of(" \t", close + 1) !=
              std::string::npos) {
        continue;
      }
      Report(file, li + 1, i + 1, "discarded-status",
             "result of Status-returning call '" + callee +
                 "' is discarded; check it, EXEA_RETURN_IF_ERROR it, or "
                 "EXEA_CHECK_OK it");
    }
  }

  void CheckRawRng(const SourceFile& file) {
    if (file.is_rng_impl) return;
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      size_t rd = line.find("std::random_device");
      if (rd != std::string::npos) {
        Report(file, li + 1, rd + 1, "raw-rng",
               "std::random_device is nondeterministic; seed a util Rng "
               "instead");
      }
      for (const char* fn : {"rand", "srand"}) {
        size_t at = 0;
        size_t n = std::strlen(fn);
        while ((at = line.find(fn, at)) != std::string::npos) {
          // Word boundary on the left ("operand(" is fine; "std::rand(" is
          // not, ':' being a non-identifier char) and a call paren on the
          // right.
          bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
          bool call = at + n < line.size() && line[at + n] == '(';
          if (left_ok && call) {
            Report(file, li + 1, at + 1, "raw-rng",
                   std::string(fn) +
                       "() bypasses the seeded util Rng; all randomness "
                       "must be reproducible");
            break;
          }
          at += n;
        }
      }
    }
  }

  void CheckRawNewDelete(const SourceFile& file) {
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      for (const char* kw : {"new", "delete"}) {
        size_t n = std::strlen(kw);
        size_t at = 0;
        while ((at = line.find(kw, at)) != std::string::npos) {
          bool left = at == 0 || !IsIdentChar(line[at - 1]);
          bool right = at + n >= line.size() || !IsIdentChar(line[at + n]);
          if (!left || !right) {
            at += n;
            continue;
          }
          // "= delete" / "= delete;" is a deleted function, not a
          // deallocation.
          if (kw[0] == 'd') {
            size_t prev = line.find_last_not_of(" \t", at == 0 ? 0 : at - 1);
            if (prev != std::string::npos && line[prev] == '=') {
              at += n;
              continue;
            }
          }
          Report(file, li + 1, at + 1, "raw-new-delete",
                 std::string("naked '") + kw +
                     "': use containers / std::make_unique, or waive "
                     "with a justification for deliberate leaky "
                     "singletons");
          at += n;
        }
      }
    }
  }

  void CheckCoutLogging(const SourceFile& file) {
    if (!file.in_src) return;
    for (size_t li = 0; li < file.code.size(); ++li) {
      size_t at = file.code[li].find("std::cout");
      if (at != std::string::npos) {
        Report(file, li + 1, at + 1, "cout-logging",
               "library code must log via EXEA_LOG; stdout is reserved for "
               "tools/ and bench/");
      }
    }
  }

  // ------------------------------------------------- ad-hoc metric members
  //
  // Telemetry state — request counters, hit/miss tallies, latency sample
  // buffers, precomputed percentile fields — belongs in the obs::Registry.
  // A raw member named like a metric re-creates exactly the
  // accumulate-and-report drift the obs subsystem replaced (the capped
  // latency vector that froze p99 on warm-up traffic; DESIGN.md §10).
  //
  // Lexical heuristic: a member-ish declaration line in a src/ header
  // (outside obs/ itself, which implements the metrics) whose declared
  // name contains a metric token. Lines mentioning obs:: are references
  // into the registry — the approved pattern — and pass; anything else is
  // waivable per line like every rule.
  void CheckAdhocMetrics(const SourceFile& file) {
    if (!file.is_header || !file.in_src || file.module == "obs") return;
    static const char* kTokens[] = {"counter", "latenc",  "qps",
                                    "p50",     "p99",     "_hits",
                                    "_misses", "hits_",   "misses_"};
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      size_t last = line.find_last_not_of(" \t");
      if (last == std::string::npos || line[last] != ';') continue;
      size_t first = line.find_first_not_of(" \t");
      if (!IsIdentChar(line[first])) continue;  // '#', '}', operators …
      if (line.find("obs::") != std::string::npos) continue;
      // Forward declarations, aliases, and statements are not members.
      size_t word_end = first;
      while (word_end < line.size() && IsIdentChar(line[word_end])) {
        ++word_end;
      }
      std::string first_word = line.substr(first, word_end - first);
      static const std::set<std::string> kSkipLead = {
          "class",  "struct", "enum",   "union",  "friend", "using",
          "typedef", "return", "delete", "goto",  "case",   "break",
          "continue", "template", "namespace"};
      if (kSkipLead.count(first_word) > 0) continue;
      // Annotations aside, a parenthesis marks a method declaration or a
      // macro invocation, not a data member.
      std::string head = line.substr(0, line.find("EXEA_GUARDED_BY"));
      if (head.find('(') != std::string::npos) continue;
      std::string name = MemberName(head);
      if (name.empty()) continue;
      std::string lowered = name;
      for (char& c : lowered) c = static_cast<char>(std::tolower(c));
      for (const char* token : kTokens) {
        if (lowered.find(token) == std::string::npos) continue;
        Report(file, li + 1, first + 1, "obs-no-adhoc-metrics",
               "member '" + name + "' looks like ad-hoc telemetry ('" +
                   token + "'); record it in the exea::obs registry "
                   "(obs/metrics.h) instead");
        break;
      }
    }
  }

  // -------------------------------------------------------- header hygiene

  void CheckHeaderHygiene(const SourceFile& file) {
    if (!file.is_header) return;
    // header-guard: accept #pragma once anywhere, or a classic
    // #ifndef X / #define X pair among the first preprocessor lines.
    bool guarded = false;
    std::string ifndef_macro;
    for (const std::string& line : file.code) {
      size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos || line[i] != '#') continue;
      std::string directive = line.substr(i);
      if (directive.rfind("#pragma", 0) == 0 &&
          directive.find("once") != std::string::npos) {
        guarded = true;
        break;
      }
      if (directive.rfind("#ifndef", 0) == 0 && ifndef_macro.empty()) {
        std::istringstream words(directive.substr(7));
        words >> ifndef_macro;
        continue;
      }
      if (directive.rfind("#define", 0) == 0 && !ifndef_macro.empty()) {
        std::string macro;
        std::istringstream words(directive.substr(7));
        words >> macro;
        if (macro == ifndef_macro) guarded = true;
        break;  // the guard pair must be the first two directives
      }
      if (directive.rfind("#include", 0) == 0) break;  // guard comes first
    }
    if (!guarded) {
      Report(file, 1, 1, "header-guard",
             "header lacks an include guard (#ifndef/#define pair) or "
             "#pragma once");
    }
    // header-using-namespace: a `using namespace` leaks names into every
    // includer; headers must qualify instead.
    for (size_t li = 0; li < file.code.size(); ++li) {
      size_t at = file.code[li].find("using namespace");
      if (at != std::string::npos) {
        Report(file, li + 1, at + 1, "header-using-namespace",
               "`using namespace` at header scope pollutes every includer; "
               "qualify names instead");
      }
    }
  }

  // -------------------------------------------------------------- layering

  // Extracts the quoted include targets of one file: (line index, path).
  static std::vector<std::pair<size_t, std::string>> QuotedIncludes(
      const SourceFile& file) {
    std::vector<std::pair<size_t, std::string>> out;
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& code = file.code[li];
      size_t i = code.find_first_not_of(" \t");
      if (i == std::string::npos || code[i] != '#') continue;
      if (code.find("include", i) == std::string::npos) continue;
      // The path itself was blanked by StripToCode; read it from raw.
      const std::string& raw = file.raw[li];
      size_t open = raw.find('"');
      if (open == std::string::npos) continue;
      size_t close = raw.find('"', open + 1);
      if (close == std::string::npos) continue;
      out.emplace_back(li, raw.substr(open + 1, close - open - 1));
    }
    return out;
  }

  void CheckLayering(const std::vector<SourceFile>& files) {
    if (layers_ == nullptr) return;
    // Module-level pass: every quoted include whose first path segment is a
    // declared module must point at the includer's own module or strictly
    // below it.
    for (const SourceFile& file : files) {
      if (file.in_src && file.module.empty()) continue;  // src-root file
      if (file.in_src && layers_->modules.count(file.module) == 0) {
        Report(file, 1, 1, "layering",
               "module '" + file.module + "' is not declared in " +
                   layers_path_);
        continue;
      }
      if (file.module.empty()) continue;  // not src/tools/bench
      auto below_it = layers_->below.find(file.module);
      const std::set<std::string>* below =
          below_it == layers_->below.end() ? nullptr : &below_it->second;
      for (const auto& [li, target] : QuotedIncludes(file)) {
        size_t slash = target.find('/');
        if (slash == std::string::npos) continue;  // relative include
        std::string target_module = target.substr(0, slash);
        if (layers_->modules.count(target_module) == 0) continue;  // gtest …
        if (target_module == file.module) continue;
        if (below != nullptr && below->count(target_module) > 0) continue;
        size_t col = file.raw[li].find('"');
        Report(file, li + 1, col == std::string::npos ? 1 : col + 1,
               "layering",
               "module '" + file.module + "' may not include \"" + target +
                   "\": '" + target_module + "' is not below '" +
                   file.module + "' in " + layers_path_);
      }
    }
    // File-level pass: cycles in the quoted-include graph. Keys are
    // src-relative paths (the spelling used in #include "...").
    std::map<std::string, size_t> key_to_file;
    for (size_t fi = 0; fi < files.size(); ++fi) {
      if (!files[fi].src_rel.empty()) key_to_file[files[fi].src_rel] = fi;
    }
    struct Edge {
      size_t to;
      size_t line;  // include line in the source file, 1-based
    };
    std::vector<std::vector<Edge>> adj(files.size());
    for (size_t fi = 0; fi < files.size(); ++fi) {
      for (const auto& [li, target] : QuotedIncludes(files[fi])) {
        std::string key = target;
        if (target.find('/') == std::string::npos &&
            !files[fi].src_rel.empty()) {
          // Relative include: resolve against the includer's directory.
          size_t dir = files[fi].src_rel.rfind('/');
          key = dir == std::string::npos
                    ? target
                    : files[fi].src_rel.substr(0, dir + 1) + target;
        }
        auto it = key_to_file.find(key);
        if (it != key_to_file.end()) adj[fi].push_back({it->second, li + 1});
      }
    }
    // DFS with an explicit stack; a gray-node hit is a cycle, reported once
    // per distinct cycle (canonicalized by its sorted member set).
    std::vector<int> color(files.size(), 0);
    std::set<std::string> reported;
    for (size_t start = 0; start < files.size(); ++start) {
      if (color[start] != 0) continue;
      struct Frame {
        size_t node;
        size_t next_edge = 0;
      };
      std::vector<Frame> frames{{start}};
      color[start] = 1;
      while (!frames.empty()) {
        Frame& top = frames.back();
        if (top.next_edge >= adj[top.node].size()) {
          color[top.node] = 2;
          frames.pop_back();
          continue;
        }
        const Edge& edge = adj[top.node][top.next_edge++];
        if (color[edge.to] == 1) {
          // Reconstruct the chain from edge.to down to top.node.
          std::vector<size_t> chain;
          bool in_cycle = false;
          for (const Frame& f : frames) {
            if (f.node == edge.to) in_cycle = true;
            if (in_cycle) chain.push_back(f.node);
          }
          std::vector<std::string> keys;
          keys.reserve(chain.size());
          for (size_t n : chain) keys.push_back(files[n].src_rel);
          std::vector<std::string> canon = keys;
          std::sort(canon.begin(), canon.end());
          std::string canon_key;
          for (const std::string& k : canon) canon_key += k + "|";
          if (reported.insert(canon_key).second) {
            std::string pretty;
            for (const std::string& k : keys) pretty += k + " -> ";
            pretty += files[edge.to].src_rel;
            Report(files[top.node], edge.line, 1, "include-cycle",
                   "include cycle: " + pretty);
          }
          continue;
        }
        if (color[edge.to] == 0) {
          color[edge.to] = 1;
          frames.push_back({edge.to});
        }
      }
    }
  }

  // -------------------------------------------------------- lock discipline

  struct GuardedMember {
    std::string name;
    std::string mutex;
  };
  struct RequiredMethod {
    std::string name;
    std::string mutex;
  };
  // One open class/struct body while scanning a header: the brace depth of
  // its members and the first mutex member seen so far.
  struct ClassScope {
    int body_depth = 0;
    bool has_mutex = false;
    std::string first_mutex;
  };

  // True when the accumulated member statement declares a synchronization
  // object — those coordinate the lock rather than being protected by it.
  static bool IsSyncType(const std::string& stmt) {
    for (const char* t :
         {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
          "std::condition_variable", "std::atomic", "std::thread",
          "std::once_flag", "std::stop_token"}) {
      if (stmt.find(t) != std::string::npos) return true;
    }
    return false;
  }

  // Last identifier before the terminator of a member declaration:
  // "size_t pending_ = 0;" → pending_, "char buf_[4];" → buf_.
  static std::string MemberName(const std::string& stmt) {
    size_t end = stmt.find_first_of("=;{[");
    std::string head = end == std::string::npos ? stmt : stmt.substr(0, end);
    size_t e = head.find_last_not_of(" \t");
    if (e == std::string::npos) return "";
    size_t b = e;
    while (b > 0 && IsIdentChar(head[b - 1])) --b;
    if (!IsIdentChar(head[e])) return "";
    return head.substr(b, e - b + 1);
  }

  // The argument of the first MACRO(...) occurrence in `stmt`, or "".
  static std::string MacroArg(const std::string& stmt,
                              const std::string& macro) {
    size_t at = stmt.find(macro + "(");
    if (at == std::string::npos) return "";
    size_t open = at + macro.size();
    size_t close = stmt.find(')', open + 1);
    if (close == std::string::npos) return "";
    std::string arg = stmt.substr(open + 1, close - open - 1);
    size_t b = arg.find_first_not_of(" \t");
    if (b == std::string::npos) return "";
    size_t e = arg.find_last_not_of(" \t");
    return arg.substr(b, e - b + 1);
  }

  // Finds the method name a trailing EXEA_REQUIRES(...) belongs to: the
  // last identifier followed by '(' in `stmt` that is not a macro name.
  static std::string RequiresMethodName(const std::string& stmt) {
    size_t limit = stmt.find("EXEA_REQUIRES");
    if (limit == std::string::npos) limit = stmt.size();
    std::string name;
    for (size_t i = 0; i + 1 < limit; ++i) {
      if (!IsIdentChar(stmt[i])) continue;
      size_t b = i;
      while (i < limit && IsIdentChar(stmt[i])) ++i;
      if (i < limit && stmt[i] == '(') {
        std::string candidate = stmt.substr(b, i - b);
        if (candidate.rfind("EXEA_", 0) != 0) name = candidate;
      }
    }
    return name;
  }

  // Collects guarded members + REQUIRES methods from a header, reporting
  // unannotated members declared after a class's first mutex (guarded-by).
  void CollectGuardedMembers(const SourceFile& file,
                             std::vector<GuardedMember>* members,
                             std::vector<RequiredMethod>* methods) {
    std::vector<ClassScope> classes;
    int depth = 0;
    std::string stmt;          // accumulated member statement text
    size_t stmt_line = 0;      // 1-based line where the statement started
    bool pending_class = false;
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      size_t b = line.find_first_not_of(" \t");
      std::string trimmed =
          b == std::string::npos ? "" : line.substr(b);
      bool at_member_depth =
          !classes.empty() && depth == classes.back().body_depth;

      if (at_member_depth && !trimmed.empty() && trimmed[0] != '#') {
        bool access_label = trimmed == "public:" || trimmed == "private:" ||
                            trimmed == "protected:";
        bool opens_type = trimmed.rfind("class ", 0) == 0 ||
                          trimmed.rfind("struct ", 0) == 0 ||
                          trimmed.rfind("enum ", 0) == 0 ||
                          trimmed.rfind("union ", 0) == 0;
        if (access_label || opens_type ||
            line.find('{') != std::string::npos) {
          // Access labels, nested types, and inline bodies end any pending
          // member statement without classifying it.
          stmt.clear();
        } else {
          if (stmt.empty()) stmt_line = li + 1;
          if (!stmt.empty()) stmt += ' ';
          stmt += trimmed;
          if (stmt.find(';') != std::string::npos) {
            ClassifyMemberStatement(file, stmt, stmt_line, &classes.back(),
                                    members, methods);
            stmt.clear();
          } else if (li + 1 - stmt_line >= 5) {
            stmt.clear();  // runaway join: bail out, stay conservative
          }
        }
      }

      // A class/struct head on this line claims the next opened brace.
      if (!trimmed.empty() &&
          (trimmed.rfind("class ", 0) == 0 ||
           trimmed.rfind("struct ", 0) == 0) &&
          trimmed.find(';') == std::string::npos &&
          line.find('{') != std::string::npos) {
        pending_class = true;
      }
      for (char c : line) {
        if (c == '{') {
          ++depth;
          if (pending_class) {
            classes.push_back({depth, false, ""});
            pending_class = false;
          }
        } else if (c == '}') {
          if (!classes.empty() && classes.back().body_depth == depth) {
            classes.pop_back();
            stmt.clear();
          }
          --depth;
        }
      }
    }
  }

  void ClassifyMemberStatement(const SourceFile& file, const std::string& stmt,
                               size_t line, ClassScope* scope,
                               std::vector<GuardedMember>* members,
                               std::vector<RequiredMethod>* methods) {
    // EXEA_REQUIRES → a method contract, not a data member.
    std::string required_mutex = MacroArg(stmt, "EXEA_REQUIRES");
    if (!required_mutex.empty()) {
      std::string method = RequiresMethodName(stmt);
      if (!method.empty()) methods->push_back({method, required_mutex});
      return;
    }
    // Annotated member: record it for the lock-held pass.
    std::string guarded_mutex = MacroArg(stmt, "EXEA_GUARDED_BY");
    if (!guarded_mutex.empty()) {
      std::string name = MemberName(
          stmt.substr(0, stmt.find("EXEA_GUARDED_BY")) + ";");
      if (!name.empty()) members->push_back({name, guarded_mutex});
      return;
    }
    // The class's own mutex members establish the "after the mutex" zone.
    if (stmt.find("std::mutex") != std::string::npos ||
        stmt.find("std::shared_mutex") != std::string::npos) {
      if (!scope->has_mutex) {
        scope->has_mutex = true;
        scope->first_mutex = MemberName(stmt);
      }
      return;
    }
    if (IsSyncType(stmt)) return;  // cv / atomic / thread coordinate locking
    // Skip non-member statements: using/typedef/friend/static declarations
    // and anything with a parameter list (a method declaration).
    std::string head = stmt.substr(0, stmt.find(';'));
    for (const char* kw : {"using ", "typedef ", "friend ", "static ",
                           "template", "operator"}) {
      if (head.rfind(kw, 0) == 0) return;
    }
    if (head.find('(') != std::string::npos) return;  // method declaration
    if (!scope->has_mutex) return;  // members above the mutex are unguarded
    std::string name = MemberName(stmt);
    if (name.empty()) return;
    Report(file, line, 1, "guarded-by",
           "member '" + name + "' is declared after mutex '" +
               scope->first_mutex +
               "' but carries no EXEA_GUARDED_BY annotation (move it above "
               "the mutex if it is not protected)");
  }

  // Checks every reference to a guarded member in `file` against the
  // lexically visible locks (lock_guard / unique_lock / scoped_lock of the
  // member's mutex in an enclosing scope, or an EXEA_REQUIRES method body).
  void CheckLockHeld(const SourceFile& file,
                     const std::vector<GuardedMember>& members,
                     const std::vector<RequiredMethod>& methods) {
    std::vector<std::set<std::string>> scopes(1);  // [0] = file scope
    std::set<std::string> pending_attach;  // mutexes for the next '{'
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      // Lock statements add their mutex to the innermost scope.
      if (line.find("lock_guard") != std::string::npos ||
          line.find("unique_lock") != std::string::npos ||
          line.find("scoped_lock") != std::string::npos) {
        for (const GuardedMember& m : members) {
          if (FindWord(line, m.mutex) != std::string::npos) {
            scopes.back().insert(m.mutex);
          }
        }
      }
      // A qualified definition of an EXEA_REQUIRES method: its body holds
      // the mutex by contract.
      for (const RequiredMethod& m : methods) {
        if (line.find("::" + m.name + "(") != std::string::npos) {
          pending_attach.insert(m.mutex);
        }
      }
      // References — skipped on declaration lines (the annotation site).
      if (line.find("EXEA_GUARDED_BY") == std::string::npos &&
          line.find("EXEA_REQUIRES") == std::string::npos) {
        for (const GuardedMember& m : members) {
          size_t at = FindWord(line, m.name);
          if (at == std::string::npos) continue;
          bool held = false;
          for (const std::set<std::string>& scope : scopes) {
            if (scope.count(m.mutex) > 0) {
              held = true;
              break;
            }
          }
          if (!held) {
            Report(file, li + 1, at + 1, "lock-held",
                   "'" + m.name + "' is EXEA_GUARDED_BY(" + m.mutex +
                       ") but no enclosing scope holds that mutex (take a "
                       "lock_guard, or mark the method EXEA_REQUIRES)");
          }
        }
      }
      for (char c : line) {
        if (c == '{') {
          scopes.emplace_back(pending_attach);
          pending_attach.clear();
        } else if (c == '}') {
          if (scopes.size() > 1) scopes.pop_back();
        }
      }
    }
  }

  // First whole-word occurrence of `word` in `line`, or npos.
  static size_t FindWord(const std::string& line, const std::string& word) {
    size_t at = 0;
    while ((at = line.find(word, at)) != std::string::npos) {
      bool left = at == 0 || !IsIdentChar(line[at - 1]);
      bool right = at + word.size() >= line.size() ||
                   !IsIdentChar(line[at + word.size()]);
      if (left && right) return at;
      at += word.size();
    }
    return std::string::npos;
  }

  void CheckLockDiscipline(const std::vector<SourceFile>& files) {
    // Per module: annotations come from headers, references are checked in
    // every file of that module (headers included — inline methods count).
    std::map<std::string, std::vector<GuardedMember>> members_by_module;
    std::map<std::string, std::vector<RequiredMethod>> methods_by_module;
    for (const SourceFile& file : files) {
      if (!file.is_header || !file.in_src || file.module.empty()) continue;
      CollectGuardedMembers(file, &members_by_module[file.module],
                            &methods_by_module[file.module]);
    }
    for (const SourceFile& file : files) {
      if (file.module.empty()) continue;
      auto it = members_by_module.find(file.module);
      if (it == members_by_module.end() || it->second.empty()) continue;
      CheckLockHeld(file, it->second, methods_by_module[file.module]);
    }
  }

  std::set<std::string> enabled_;
  const LayerGraph* layers_;
  std::string layers_path_;
  std::set<std::string> status_returning_;
  std::vector<Diagnostic> diags_;
};

// ------------------------------------------------------------------ driver

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool LoadFile(const fs::path& path, SourceFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->path = path.generic_string();
  out->is_header = HasSuffix(out->path, ".h");
  // Classify by path segment, so absolute and relative invocations agree.
  std::string generic = "/" + out->path;
  out->in_src = generic.find("/src/") != std::string::npos;
  out->is_rng_impl = generic.find("/util/rng.") != std::string::npos;
  if (out->in_src) {
    size_t at = generic.rfind("/src/");
    std::string rel = generic.substr(at + 5);
    out->src_rel = rel;
    size_t slash = rel.find('/');
    if (slash != std::string::npos) out->module = rel.substr(0, slash);
  } else if (generic.find("/tools/") != std::string::npos) {
    out->module = "tools";
  } else if (generic.find("/bench/") != std::string::npos) {
    out->module = "bench";
  }
  std::string line;
  while (std::getline(in, line)) out->raw.push_back(line);
  StripToCode(out);
  return true;
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out->push_back(root);
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    std::string p = it->path().generic_string();
    if (HasSuffix(p, ".cc") || HasSuffix(p, ".h")) out->push_back(it->path());
  }
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* FamilyOf(const std::string& rule) {
  for (const RuleInfo& info : kRules) {
    if (rule == info.name) return info.family;
  }
  return "";
}

// Expands a --rules list (rule names and family names, comma-separated)
// into the enabled-rule set. Returns false on an unknown name.
bool ExpandRules(const std::string& spec, std::set<std::string>* enabled,
                 std::string* unknown) {
  std::string token;
  std::istringstream parts(spec);
  while (std::getline(parts, token, ',')) {
    size_t b = token.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    size_t e = token.find_last_not_of(" \t");
    std::string name = token.substr(b, e - b + 1);
    bool matched = false;
    for (const RuleInfo& info : kRules) {
      if (name == info.name || name == info.family) {
        matched = true;
        enabled->insert(info.name);
      }
    }
    if (!matched) {
      *unknown = name;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path layers_path;
  bool layers_explicit = false;
  std::string format = "text";
  std::set<std::string> enabled;
  bool rules_given = false;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
      layers_explicit = true;
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_path = arg.substr(9);
      layers_explicit = true;
    } else if (arg == "--rules" && i + 1 < argc) {
      rules_given = true;
      std::string unknown;
      if (!ExpandRules(argv[++i], &enabled, &unknown)) {
        std::fprintf(stderr, "exea_lint: unknown rule or family '%s'\n",
                     unknown.c_str());
        return 2;
      }
    } else if (arg.rfind("--rules=", 0) == 0) {
      rules_given = true;
      std::string unknown;
      if (!ExpandRules(arg.substr(8), &enabled, &unknown)) {
        std::fprintf(stderr, "exea_lint: unknown rule or family '%s'\n",
                     unknown.c_str());
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "exea_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--list-rules") {
      for (const RuleInfo& info : kRules) {
        std::printf("%-22s %-16s %s\n", info.name, info.family,
                    info.description);
      }
      return 0;
    } else if (arg == "--help") {
      std::printf(
          "usage: exea_lint [--root <dir>] [--layers <file>]\n"
          "                 [--rules <r1,r2|family>] [--format text|json]\n"
          "                 [--list-rules] [paths...]\n"
          "Checks project rules over C++ sources; with no paths, scans\n"
          "<root>/src, <root>/tools, <root>/bench. Exits 1 if any rule\n"
          "fires, 2 on I/O or configuration errors (unreadable input,\n"
          "unknown --rules name, a cycle in the declared layer DAG).\n"
          "--layers defaults to <root>/tools/layers.txt; if that file is\n"
          "absent the layering family is skipped. --list-rules prints the\n"
          "rule registry (name, family, description).\n");
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (!rules_given) {
    for (const RuleInfo& info : kRules) enabled.insert(info.name);
  }
  if (inputs.empty()) {
    for (const char* sub : {"src", "tools", "bench"}) {
      inputs.push_back(root / sub);
    }
  }
  if (layers_path.empty()) layers_path = root / "tools" / "layers.txt";

  std::vector<fs::path> paths;
  for (const fs::path& input : inputs) CollectFiles(input, &paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "exea_lint: no .cc/.h files found under inputs\n");
    return 2;
  }

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    SourceFile file;
    if (!LoadFile(path, &file)) {
      std::fprintf(stderr, "exea_lint: cannot read %s\n",
                   path.generic_string().c_str());
      return 2;
    }
    files.push_back(std::move(file));
  }

  LayerGraph layers;
  bool have_layers = false;
  {
    std::error_code ec;
    if (fs::is_regular_file(layers_path, ec)) {
      std::string error;
      if (!ParseLayers(layers_path, &layers, &error)) {
        std::fprintf(stderr, "exea_lint: %s\n", error.c_str());
        return 2;
      }
      have_layers = true;
    } else if (layers_explicit) {
      std::fprintf(stderr, "exea_lint: cannot read layers file %s\n",
                   layers_path.generic_string().c_str());
      return 2;
    }
  }

  Linter linter(enabled, have_layers ? &layers : nullptr,
                layers_path.generic_string());
  linter.Scan(files);
  const std::vector<Diagnostic>& diags = linter.diagnostics();
  if (format == "json") {
    std::printf("[");
    for (size_t i = 0; i < diags.size(); ++i) {
      const Diagnostic& d = diags[i];
      std::printf(
          "%s\n  {\"file\":\"%s\",\"line\":%zu,\"col\":%zu,"
          "\"rule\":\"%s\",\"family\":\"%s\",\"message\":\"%s\"}",
          i == 0 ? "" : ",", JsonEscape(d.file).c_str(), d.line, d.col,
          d.rule.c_str(), FamilyOf(d.rule), JsonEscape(d.message).c_str());
    }
    std::printf("%s]\n", diags.empty() ? "" : "\n");
  } else {
    for (const Diagnostic& d : diags) {
      std::printf("%s:%zu:%zu: %s: %s\n", d.file.c_str(), d.line, d.col,
                  d.rule.c_str(), d.message.c_str());
    }
  }
  std::fprintf(stderr, "exea_lint: %zu file(s), %zu violation(s)\n",
               files.size(), diags.size());
  return diags.empty() ? 0 : 1;
}
