// Unit tests for the util layer: Status/StatusOr, Rng, string utilities,
// TSV I/O, and the logging CHECK macros' non-fatal paths.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/tsv.h"

namespace exea {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

Status FailsThenPropagates() {
  EXEA_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status status = FailsThenPropagates();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKTooLarge) {
  Rng rng(31);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkIsDecorrelated) {
  Rng parent(37);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------- String

TEST(StringTest, SplitBasic) {
  std::vector<std::string> parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringTest, SplitPreservesEmptyFields) {
  std::vector<std::string> parts = Split("a||b", '|');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringTest, SplitEmptyString) {
  std::vector<std::string> parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix/test", "prefix/"));
  EXPECT_FALSE(StartsWith("a", "ab"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "file.txt"));
}

TEST(StringTest, StripDigits) {
  EXPECT_EQ(StripDigits("GeForce 400"), "GeForce ");
  EXPECT_EQ(StripDigits("abc"), "abc");
  EXPECT_EQ(StripDigits("123"), "");
}

TEST(StringTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("AbC-12"), "abc-12");
}

// ------------------------------------------------------------------- TSV

class TsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("exea_tsv_test_" + std::to_string(::getpid()) + ".tsv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(TsvTest, RoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"a", "r", "b"}, {"c", "s", "d"}};
  ASSERT_TRUE(WriteTsv(path_.string(), rows).ok());
  auto read = ReadTsv(path_.string(), 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
}

TEST_F(TsvTest, SkipsCommentsAndBlankLines) {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  std::fputs("# comment\n\na\tb\n  \nc\td\n", f);
  std::fclose(f);
  auto read = ReadTsv(path_.string(), 2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 2u);
}

TEST_F(TsvTest, RejectsShortRows) {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  std::fputs("only_one_field\n", f);
  std::fclose(f);
  auto read = ReadTsv(path_.string(), 2);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TsvTest, MissingFileIsIoError) {
  auto read = ReadTsv("/nonexistent/path/file.tsv", 1);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

// ----------------------------------------------------------------- Flags

StatusOr<Flags> ParseArgs(const std::vector<const char*>& argv) {
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesBothFlagFormsAndPositionals) {
  auto flags = ParseArgs({"prog", "run", "--threads", "4", "--out=x.tsv"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->positional(), std::vector<std::string>{"run"});
  EXPECT_EQ(flags->GetInt("threads", 0), 4);
  EXPECT_EQ(flags->GetString("out", ""), "x.tsv");
  EXPECT_FALSE(flags->Has("absent"));
  EXPECT_EQ(flags->GetString("absent", "fallback"), "fallback");
}

TEST(FlagsTest, FlagBeforeAnotherFlagIsABooleanSwitch) {
  auto flags = ParseArgs({"prog", "--verbose", "--threads", "2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("verbose"));
  EXPECT_EQ(flags->GetString("verbose", ""), "true");
  EXPECT_EQ(flags->GetInt("threads", 0), 2);
}

TEST(FlagsTest, TrailingFlagIsABooleanSwitch) {
  auto flags = ParseArgs({"prog", "--help"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("help"));
}

TEST(FlagsTest, StrayDoubleDashIsRejected) {
  auto flags = ParseArgs({"prog", "--"});
  ASSERT_FALSE(flags.ok());
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, DuplicateFlagLastWins) {
  auto flags = ParseArgs({"prog", "--threads", "2", "--threads=8"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("threads", 0), 8);
}

TEST(FlagsTest, GetIntOnNonNumericAndNegativeValues) {
  auto flags = ParseArgs({"prog", "--threads", "banana", "--offset", "-3"});
  ASSERT_TRUE(flags.ok());
  // GetInt parses through util::ParseInt64: a non-numeric value is not
  // silently decoded to 0 (old atoll semantics) — it yields the fallback,
  // so a typo'd flag behaves exactly like an absent one.
  EXPECT_EQ(flags->GetInt("threads", 99), 99);
  EXPECT_EQ(flags->GetInt("offset", 0), -3);
}

TEST(FlagsTest, GetIntRejectsTrailingGarbageAndOverflow) {
  auto flags = ParseArgs(
      {"prog", "--a=12junk", "--b=99999999999999999999", "--c=7"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("a", -1), -1);
  EXPECT_EQ(flags->GetInt("b", -1), -1);
  EXPECT_EQ(flags->GetInt("c", -1), 7);
}

TEST(FlagsTest, GetDoubleOnGarbageYieldsFallback) {
  auto flags = ParseArgs({"prog", "--rate=fast", "--lr=0.5x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate", 0.125), 0.125);
  EXPECT_DOUBLE_EQ(flags->GetDouble("lr", 0.25), 0.25);
}

TEST(FlagsTest, GetDoubleParsesValue) {
  auto flags = ParseArgs({"prog", "--rate=0.25"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(flags->GetDouble("missing", 1.5), 1.5);
}

TEST(FlagsTest, NegativeNumberIsAValueNotAFlag) {
  // "-1" does not start with "--", so it binds as the preceding flag's
  // value instead of turning --threads into a boolean switch.
  auto flags = ParseArgs({"prog", "--threads", "-1"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("threads", 0), -1);
}

// ----------------------------------------------------------------- Timer

TEST(ParseTest, Int32AcceptsOnlyFullInRangeStrings) {
  int32_t v = -7;
  EXPECT_TRUE(util::ParseInt32("42", 0, 100, &v).ok());
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(util::ParseInt32("-5", -10, 10, &v).ok());
  EXPECT_EQ(v, -5);
  // Bounds are a closed interval.
  EXPECT_TRUE(util::ParseInt32("100", 0, 100, &v).ok());
  EXPECT_TRUE(util::ParseInt32("0", 0, 100, &v).ok());
}

TEST(ParseTest, Int32RejectsGarbageWithoutTouchingOut) {
  int32_t v = 123;
  EXPECT_EQ(util::ParseInt32("", 0, 100, &v).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(util::ParseInt32("2junk", 0, 100, &v).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(util::ParseInt32("1 ", 0, 100, &v).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(util::ParseInt32(" 1", 0, 100, &v).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(util::ParseInt32("101", 0, 100, &v).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(util::ParseInt32("-1", 0, 100, &v).code(),
            StatusCode::kOutOfRange);
  // A value outside int32 entirely is still a clean failure, not UB.
  EXPECT_FALSE(util::ParseInt32("99999999999", 0, 100, &v).ok());
  EXPECT_EQ(v, 123);
}

TEST(ParseTest, Int64HandlesWideRangeAndOverflow) {
  int64_t v = 0;
  EXPECT_TRUE(util::ParseInt64("-9223372036854775808", INT64_MIN, INT64_MAX,
                               &v)
                  .ok());
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_FALSE(util::ParseInt64("9223372036854775808", INT64_MIN, INT64_MAX,
                                &v)
                   .ok());
}

TEST(ParseTest, DoubleRejectsNanAndPartialParses) {
  double d = 0.5;
  EXPECT_TRUE(util::ParseDouble("0.25", 0.0, 1.0, &d).ok());
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_FALSE(util::ParseDouble("nan", 0.0, 1.0, &d).ok());
  EXPECT_FALSE(util::ParseDouble("0.5x", 0.0, 1.0, &d).ok());
  EXPECT_EQ(util::ParseDouble("2.5", 0.0, 1.0, &d).code(),
            StatusCode::kOutOfRange);
}

TEST(ParseTest, Uint64HexRoundTripsChecksums) {
  uint64_t h = 0;
  EXPECT_TRUE(util::ParseUint64Hex("deadbeef", &h).ok());
  EXPECT_EQ(h, 0xdeadbeefULL);
  EXPECT_TRUE(util::ParseUint64Hex("ffffffffffffffff", &h).ok());
  EXPECT_EQ(h, UINT64_MAX);
  EXPECT_FALSE(util::ParseUint64Hex("0x12", &h).ok());
  EXPECT_FALSE(util::ParseUint64Hex("12zz", &h).ok());
  EXPECT_FALSE(util::ParseUint64Hex("", &h).ok());
}

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  double first = timer.ElapsedSeconds();
  double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(TimerTest, ResetRestarts) {
  WallTimer timer;
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace exea
