// Adapter exposing the ExEA core through the shared Explainer interface so
// the fidelity harness can evaluate ExEA and the baselines uniformly.
// ExEA ignores the budget: it "does not require pre-selecting the
// explanation length" (Section V-B2) — the baselines are instead matched
// to *its* sparsity.

#ifndef EXEA_BASELINES_EXEA_EXPLAINER_ADAPTER_H_
#define EXEA_BASELINES_EXEA_EXPLAINER_ADAPTER_H_

#include "baselines/explainer.h"
#include "explain/exea.h"
#include "explain/matcher.h"

namespace exea::baselines {

class ExeaAdapter : public Explainer {
 public:
  // Borrows both; `context` must remain valid while the adapter is used.
  ExeaAdapter(const explain::ExeaExplainer* explainer,
              const explain::AlignmentContext* context)
      : explainer_(explainer), context_(context) {}

  std::string name() const override { return "ExEA"; }

  ExplainerResult Explain(kg::EntityId e1, kg::EntityId e2,
                          const std::vector<kg::Triple>& candidates1,
                          const std::vector<kg::Triple>& candidates2,
                          size_t budget) override;

 private:
  const explain::ExeaExplainer* explainer_;
  const explain::AlignmentContext* context_;
};

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_EXEA_EXPLAINER_ADAPTER_H_
