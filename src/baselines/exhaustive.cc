#include "baselines/exhaustive.h"

#include <algorithm>

#include "util/logging.h"

namespace exea::baselines {
namespace {

// Counts set bits (subset size) of a mask.
int PopCount(uint32_t mask) { return __builtin_popcount(mask); }

}  // namespace

ExplainerResult ExhaustiveExplainer::Explain(
    kg::EntityId e1, kg::EntityId e2,
    const std::vector<kg::Triple>& candidates1,
    const std::vector<kg::Triple>& candidates2, size_t budget) {
  last_evaluations_ = 0;
  size_t n1 = candidates1.size();
  size_t n = n1 + candidates2.size();
  if (n == 0) return {};

  auto similarity = [&](const std::vector<bool>& mask) {
    ++last_evaluations_;
    std::vector<kg::Triple> kept1;
    std::vector<kg::Triple> kept2;
    for (size_t i = 0; i < n1; ++i) {
      if (mask[i]) kept1.push_back(candidates1[i]);
    }
    for (size_t i = n1; i < n; ++i) {
      if (mask[i]) kept2.push_back(candidates2[i - n1]);
    }
    return embedder_->PerturbedSimilarity(e1, kept1, e2, kept2);
  };

  std::vector<bool> full(n, true);
  double target = threshold_ratio_ * similarity(full);

  auto to_result = [&](const std::vector<bool>& mask) {
    ExplainerResult out;
    for (size_t i = 0; i < n1; ++i) {
      if (mask[i]) out.triples1.push_back(candidates1[i]);
    }
    for (size_t i = n1; i < n; ++i) {
      if (mask[i]) out.triples2.push_back(candidates2[i - n1]);
    }
    return out;
  };

  if (n <= max_features_ && n <= 24) {
    // Exhaustive: enumerate subsets ordered by size; the first preserving
    // subset is minimal. Enumeration by size via popcount filter keeps the
    // code simple (2^n masks, n <= 24 bounded above).
    uint32_t limit = 1u << n;
    std::vector<bool> mask(n);
    for (int size = 1; size <= static_cast<int>(n); ++size) {
      for (uint32_t bits = 1; bits < limit; ++bits) {
        if (PopCount(bits) != size) continue;
        for (size_t i = 0; i < n; ++i) mask[i] = (bits >> i) & 1u;
        if (similarity(mask) >= target) {
          return to_result(mask);
        }
      }
    }
    return to_result(full);  // nothing smaller preserves the prediction
  }

  // Greedy forward selection fallback: repeatedly add the triple that
  // raises the reconstructed similarity most, until the target (or the
  // budget) is reached.
  std::vector<bool> chosen(n, false);
  size_t cap = budget == 0 ? n : std::min(budget, n);
  double current = similarity(chosen);
  for (size_t step = 0; step < cap && current < target; ++step) {
    double best_gain = -1e9;
    size_t best_feature = n;
    for (size_t f = 0; f < n; ++f) {
      if (chosen[f]) continue;
      chosen[f] = true;
      double value = similarity(chosen);
      chosen[f] = false;
      if (value - current > best_gain) {
        best_gain = value - current;
        best_feature = f;
      }
    }
    if (best_feature == n) break;
    chosen[best_feature] = true;
    current += best_gain;
  }
  return to_result(chosen);
}

}  // namespace exea::baselines
