// Figure 6: variation in repair effects across models on ZH-EN — the
// accuracy *drop* when each conflict-resolution component is removed, for
// all four models.
//
// Paper shape: cr2 (one-to-many) dominates for MTransE/GCN-Align; the
// hard-negative models (AlignE, Dual-AMN) lose less from removing cr2;
// GCN-Align benefits most from cr1 (it never learned relation semantics);
// weaker base models lose more from removing cr3.

#include <cstdio>

#include "bench/common.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Figure 6 — repair-effect variation across models (ZH-EN)",
      "ExEA paper Fig. 6 (Section V-C4)");

  data::Scale scale = data::ScaleFromEnv();
  data::EaDataset dataset = data::MakeBenchmark(data::Benchmark::kZhEn, scale);

  bench::Table table({"model", "full_ExEA", "drop_w/o_cr1", "drop_w/o_cr2",
                      "drop_w/o_cr3"});
  for (emb::ModelKind kind : bench::AllModels()) {
    std::unique_ptr<emb::EAModel> model = bench::TrainModel(kind, dataset);
    explain::ExeaExplainer explainer(dataset, *model, explain::ExeaConfig{});
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
    kg::AlignmentSet base = eval::GreedyAlign(ranked);

    auto run = [&](bool cr1, bool cr2, bool cr3) {
      repair::RepairOptions options;
      options.enable_cr1 = cr1;
      options.enable_cr2 = cr2;
      options.enable_cr3 = cr3;
      repair::RepairPipeline pipeline(explainer, options);
      return pipeline.Run(base, ranked).repaired_accuracy;
    };
    double full = run(true, true, true);
    table.AddRow({model->name(), bench::Table::Fmt(full),
                  bench::Table::Fmt(full - run(false, true, true)),
                  bench::Table::Fmt(full - run(true, false, true)),
                  bench::Table::Fmt(full - run(true, true, false))});
  }
  table.Print();

  std::printf(
      "\nExpected shape (matches Fig. 6): the w/o-cr2 drop is the largest "
      "column for the\nnon-hard-negative models; AlignE/Dual-AMN suffer "
      "smaller cr2 drops; GCN-Align has\nthe largest cr1 drop.\n");
  return 0;
}
