# Empty compiler generated dependencies file for bench_table1_first_order.
# This may be replaced when dependencies are built.
