// The per-file fact tables the cross-TU passes consume, and the
// FileAnalysis record the incremental cache persists. Everything here is
// a pure function of one file's content plus the tool configuration —
// that is what makes the content-hash cache sound: a warm hit restores
// the facts and local diagnostics without re-reading a single rule.

#ifndef EXEA_TOOLS_LINT_ANALYSIS_H_
#define EXEA_TOOLS_LINT_ANALYSIS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/registry.h"

namespace lint {

// A function declaration or definition found by the indexer.
struct FnDecl {
  std::string name;    // base name (Run)
  std::string qname;   // fully qualified (exea::net::EventLoop::Run)
  size_t line = 0;     // 1-based
  size_t col = 1;
  bool is_definition = false;
  bool is_method = false;        // member of a class (in-class or Class::)
  std::string requires_mutex;    // EXEA_REQUIRES arg on the header, or ""
  size_t body_begin = 0;         // 1-based first body line (definitions)
  size_t body_end = 0;           // 1-based last body line (definitions)
};

// A call site inside a function body, with the lexically held locks.
struct CallSite {
  std::string name;    // base callee name (ListenOn)
  std::string qual;    // ::-chain as written (net::ListenOn)
  size_t line = 0;
  size_t col = 1;
  int fn = -1;         // index into FileSummary::decls of the enclosing def
  std::set<std::string> held;  // mutex names locked in an enclosing scope
};

// A trailing-underscore identifier read or written inside a function body
// (the candidate guarded-member accesses).
struct MemberRef {
  std::string name;
  size_t line = 0;
  size_t col = 1;
  int fn = -1;
  std::set<std::string> held;
};

struct GuardedMemberFact {
  std::string name;
  std::string mutex;
};

struct RequiredMethodFact {
  std::string name;
  std::string mutex;
};

struct IncludeFact {
  size_t line = 0;  // 1-based
  size_t col = 1;   // column of the opening quote
  std::string target;
};

// A bare statement whose outermost callee might return Status — resolved
// against the global Status-returning registry in the cross-TU phase.
struct DiscardCandidate {
  std::string callee;
  size_t line = 0;
  size_t col = 1;
};

// A range-for over `ident` whose body reaches serialization (<<, append,
// printf, +=) — cross-checked against unordered-container declarations.
struct RangeForFact {
  std::string ident;
  size_t line = 0;
  size_t col = 1;
  bool serializes = false;
};

struct FileSummary {
  std::vector<IncludeFact> includes;
  std::vector<FnDecl> decls;
  std::vector<CallSite> calls;
  std::vector<MemberRef> refs;
  std::vector<GuardedMemberFact> guarded;
  std::vector<RequiredMethodFact> required;
  std::vector<std::string> status_fns;     // Status-returning fn names
  std::vector<DiscardCandidate> discards;
  std::vector<std::string> unordered;      // unordered-container decl names
  std::vector<RangeForFact> range_fors;
};

// One waiver-bearing line: which rules it allows and whether the line is
// comment-only (a comment-only waiver also covers the next line).
struct WaiverLine {
  std::set<std::string> rules;
  bool comment_only = false;
};

// Everything the analyzer knows about one file — restorable from cache.
struct FileAnalysis {
  std::string path;
  std::string module;
  std::string src_rel;
  bool is_header = false;
  bool in_src = false;
  uint64_t content_hash = 0;
  FileSummary summary;
  std::vector<Diagnostic> local;            // local-rule diags, waiver-filtered
  std::map<size_t, WaiverLine> waivers;     // 1-based line -> waiver
  bool from_cache = false;
};

// A waiver applies to its own line, or — when it sits on a comment-only
// line — to the next line (for sites too long to carry the comment).
bool Waived(const FileAnalysis& a, size_t line_1based,
            const std::string& rule);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_ANALYSIS_H_
