// Hostile-input corpus replay: every checked-in adversarial input under
// tests/corpus/ must come back as an error Status (snapshot loading) or an
// {"ok":false,...} response line (the serving protocol) — never a crash,
// never a silent success. The corpus is data, not code: adding a regression
// input means dropping a file into tests/corpus/, nothing to register here.
//
// Snapshot entries are *recipes*: each one mutates a freshly written valid
// bundle (see tests/corpus/snapshot/README.md for the operation grammar),
// so the corpus stays valid as the bundle format evolves — recipes corrupt
// whatever the current writer produces.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "la/matrix_io.h"
#include "la/similarity_index.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace exea {
namespace {

namespace fs = std::filesystem;

std::string CorpusDir() { return EXEA_CORPUS_DIR; }

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "short write to " << path;
}

// A minimal but internally consistent bundle: three entities a side, one
// relation, two triples, one train pair, two test pairs. Small enough that
// every corruption test can rewrite it from scratch.
serve::SnapshotBundle MakeTinyBundle() {
  serve::SnapshotBundle bundle;
  bundle.meta.model_name = "toy";
  bundle.meta.dataset_name = "hostile-tiny";
  bundle.meta.inference = "greedy";
  bundle.meta.has_relation_embeddings = false;
  bundle.meta.has_repair = true;

  bundle.dataset.name = "hostile-tiny";
  // Interning order pins the ids: Alpha=0, Beta=1, Gamma=2 on both sides.
  bundle.dataset.kg1.AddTriple("zh/Alpha", "zh/rel", "zh/Beta");
  bundle.dataset.kg1.AddTriple("zh/Beta", "zh/rel", "zh/Gamma");
  bundle.dataset.kg2.AddTriple("en/Alpha", "en/rel", "en/Beta");
  bundle.dataset.kg2.AddTriple("en/Beta", "en/rel", "en/Gamma");
  bundle.dataset.train.Add(0, 0);
  bundle.dataset.test.push_back({1, 1});
  bundle.dataset.test.push_back({2, 2});
  bundle.dataset.gold = {{0, 0}, {1, 1}, {2, 2}};
  bundle.dataset.test_gold = {{1, 1}, {2, 2}};
  bundle.dataset.test_sources = {1, 2};

  bundle.emb1 = la::Matrix(3, 4);
  bundle.emb2 = la::Matrix(3, 4);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      float v = static_cast<float>(r == c % 3 ? 1.0 : 0.1 * (r + 1));
      bundle.emb1.Row(r)[c] = v;
      bundle.emb2.Row(r)[c] = v;
    }
  }

  bundle.alignment.Add(1, 1);
  bundle.alignment.Add(2, 2);
  bundle.repaired = bundle.alignment;

  // Freeze with a trained index so the index.ivf corpus recipes have a
  // payload file to corrupt (2 clusters over the 3x4 table; the
  // replace-rechecksum recipes hard-code these dimensions).
  bundle.meta.index = "ivf";
  la::IvfOptions ivf_options;
  ivf_options.num_clusters = 2;
  ivf_options.nprobe = 2;
  bundle.ivf = la::TrainIvfIndex(bundle.emb2, ivf_options);
  return bundle;
}

// One parsed .recipe file: leading '#' lines are comments, the first
// non-comment line is "<op> <args...>", everything after that line is the
// verbatim replacement content (for replace / replace-rechecksum).
struct Recipe {
  std::string name;
  std::string op;
  std::string arg_path;   // payload path relative to the bundle root
  std::string arg_extra;  // keep-bytes / offset / append text
  std::string content;
};

Recipe ParseRecipe(const fs::path& path) {
  Recipe recipe;
  recipe.name = path.stem().string();
  std::string bytes = ReadFileBytes(path.string());
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t eol = bytes.find('\n', pos);
    if (eol == std::string::npos) eol = bytes.size();
    std::string line = bytes.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    tokens >> recipe.op >> recipe.arg_path;
    std::getline(tokens, recipe.arg_extra);
    // Strip the single separating space the tokenizer leaves behind.
    if (!recipe.arg_extra.empty() && recipe.arg_extra[0] == ' ') {
      recipe.arg_extra.erase(0, 1);
    }
    if (pos < bytes.size()) recipe.content = bytes.substr(pos);
    break;
  }
  EXPECT_FALSE(recipe.op.empty()) << "no operation line in " << path;
  return recipe;
}

// Rewrites the MANIFEST checksum entry for `rel_path` so a corrupted
// payload still passes the checksum gate and reaches the parser behind it.
void RecomputeManifestChecksum(const std::string& dir,
                               const std::string& rel_path) {
  auto checksum = serve::ChecksumFile(dir + "/" + rel_path);
  ASSERT_TRUE(checksum.ok()) << checksum.status().message();
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(*checksum));
  std::string manifest = ReadFileBytes(dir + "/MANIFEST");
  std::string needle = "file\t" + rel_path + "\t";
  size_t at = manifest.find(needle);
  ASSERT_NE(at, std::string::npos)
      << rel_path << " has no checksum line in the MANIFEST";
  size_t value = at + needle.size();
  size_t eol = manifest.find('\n', value);
  ASSERT_NE(eol, std::string::npos);
  manifest.replace(value, eol - value, hex);
  WriteFileBytes(dir + "/MANIFEST", manifest);
}

void ApplyRecipe(const std::string& dir, const Recipe& recipe) {
  std::string target = dir + "/" + recipe.arg_path;
  if (recipe.op == "truncate") {
    size_t keep = static_cast<size_t>(std::stoull(recipe.arg_extra));
    std::string bytes = ReadFileBytes(target);
    ASSERT_LE(keep, bytes.size()) << recipe.name << ": nothing to truncate";
    WriteFileBytes(target, bytes.substr(0, keep));
  } else if (recipe.op == "garble") {
    size_t offset = static_cast<size_t>(std::stoull(recipe.arg_extra));
    std::string bytes = ReadFileBytes(target);
    ASSERT_LT(offset, bytes.size()) << recipe.name << ": offset past EOF";
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0xFF);
    WriteFileBytes(target, bytes);
  } else if (recipe.op == "delete") {
    ASSERT_TRUE(fs::remove(target)) << recipe.name << ": no file to delete";
  } else if (recipe.op == "append") {
    WriteFileBytes(target, ReadFileBytes(target) + recipe.arg_extra);
  } else if (recipe.op == "value-append") {
    // `value-append <file> <key> <suffix>`: append <suffix> to the value
    // of the TSV row whose first cell is <key>, leaving every other row
    // untouched. This mutates exactly one cell — a trailing-junk version
    // is rejected by the checked parse while the rest of the MANIFEST
    // (checksums, payload list) stays perfectly valid.
    std::istringstream extra(recipe.arg_extra);
    std::string key, suffix;
    extra >> key >> suffix;
    ASSERT_FALSE(suffix.empty()) << recipe.name << ": want <key> <suffix>";
    std::string bytes = ReadFileBytes(target);
    size_t at = bytes.rfind(key + "\t", 0) == 0
                    ? 0
                    : bytes.find("\n" + key + "\t");
    ASSERT_NE(at, std::string::npos) << recipe.name << ": no row " << key;
    size_t eol = bytes.find('\n', at + 1);
    if (eol == std::string::npos) eol = bytes.size();
    bytes.insert(eol, suffix);
    WriteFileBytes(target, bytes);
  } else if (recipe.op == "replace") {
    WriteFileBytes(target, recipe.content);
  } else if (recipe.op == "replace-rechecksum") {
    WriteFileBytes(target, recipe.content);
    RecomputeManifestChecksum(dir, recipe.arg_path);
  } else {
    FAIL() << recipe.name << ": unknown recipe operation " << recipe.op;
  }
}

std::vector<fs::path> CorpusFiles(const std::string& subdir,
                                  const std::string& extension) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(CorpusDir() + "/" + subdir)) {
    if (entry.path().extension() == extension) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class HostileInputTest : public ::testing::Test {
 protected:
  std::string Scratch(const std::string& leaf) {
    std::string dir = ::testing::TempDir() + "/hostile_" + leaf;
    fs::remove_all(dir);
    return dir;
  }
};

TEST_F(HostileInputTest, CleanBundleRoundTrips) {
  std::string dir = Scratch("clean");
  ASSERT_TRUE(serve::WriteSnapshot(MakeTinyBundle(), dir).ok());
  auto bundle = serve::ReadSnapshot(dir);
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  auto engine = serve::QueryEngine::FromBundle(std::move(*bundle),
                                               serve::EngineOptions{});
  auto aligned = engine->Align("zh/Beta", serve::Deadline::None());
  ASSERT_TRUE(aligned.ok()) << aligned.status().message();
  EXPECT_EQ(aligned->aligned, std::vector<std::string>{"en/Beta"});
}

TEST_F(HostileInputTest, EverySnapshotRecipeIsRejected) {
  std::vector<fs::path> recipes = CorpusFiles("snapshot", ".recipe");
  ASSERT_GE(recipes.size(), 15u) << "snapshot corpus went missing";

  std::string clean = Scratch("recipe_clean");
  ASSERT_TRUE(serve::WriteSnapshot(MakeTinyBundle(), clean).ok());

  for (const fs::path& path : recipes) {
    Recipe recipe = ParseRecipe(path);
    std::string dir = Scratch("recipe_" + recipe.name);
    fs::copy(clean, dir, fs::copy_options::recursive);
    ApplyRecipe(dir, recipe);
    if (HasFatalFailure()) return;  // corpus itself is broken; stop early
    auto bundle = serve::ReadSnapshot(dir);
    EXPECT_FALSE(bundle.ok())
        << recipe.name << ": corrupted bundle loaded successfully";
  }
}

// Every snapshot corruption in the corpus, replayed as a hot-swap
// target: load_snapshot must reject the bundle with a structured error
// AND the current version must keep answering exactly as before. A swap
// is transactional — there is no state where a half-validated bundle
// serves traffic.
TEST_F(HostileInputTest, CorruptSwapTargetNeverReplacesTheServingVersion) {
  std::vector<fs::path> recipes = CorpusFiles("snapshot", ".recipe");
  ASSERT_GE(recipes.size(), 15u) << "snapshot corpus went missing";

  std::string clean = Scratch("swap_clean");
  ASSERT_TRUE(serve::WriteSnapshot(MakeTinyBundle(), clean).ok());
  obs::Registry registry;
  serve::EngineOptions engine_options;
  engine_options.registry = &registry;
  auto engine = serve::QueryEngine::Open(clean, engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  serve::Server server(engine->get(), serve::ServerOptions{});
  const std::string align = "{\"op\":\"align\",\"entity\":\"zh/Beta\"}";
  std::string baseline = server.HandleLine(align);
  ASSERT_EQ(baseline.rfind("{\"ok\":true", 0), 0u) << baseline;

  for (const fs::path& path : recipes) {
    Recipe recipe = ParseRecipe(path);
    std::string dir = Scratch("swap_" + recipe.name);
    fs::copy(clean, dir, fs::copy_options::recursive);
    ApplyRecipe(dir, recipe);
    if (HasFatalFailure()) return;  // corpus itself is broken; stop early

    std::string response = server.HandleLine(
        "{\"op\":\"load_snapshot\",\"dir\":\"" + serve::JsonEscape(dir) +
        "\"}");
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u)
        << recipe.name << ": corrupted bundle was installed: " << response;
    EXPECT_EQ(server.HandleLine(align), baseline)
        << recipe.name << ": serving changed after a rejected swap";
  }
  EXPECT_EQ(registry.CounterValue("serve.snapshot.swaps"), 0u);
  EXPECT_EQ(registry.CounterValue("serve.explain_cache.invalidations"), 0u);
}

TEST_F(HostileInputTest, EveryNdjsonEntryAnswersWithAnError) {
  std::vector<fs::path> entries = CorpusFiles("ndjson", ".txt");
  ASSERT_GE(entries.size(), 30u) << "ndjson corpus went missing";

  std::string dir = Scratch("ndjson");
  ASSERT_TRUE(serve::WriteSnapshot(MakeTinyBundle(), dir).ok());
  obs::Registry registry;
  serve::EngineOptions engine_options;
  engine_options.registry = &registry;
  auto engine = serve::QueryEngine::Open(dir, engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  serve::Server server(engine->get(), serve::ServerOptions{});

  for (const fs::path& path : entries) {
    std::string line = ReadFileBytes(path.string());
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    // The parser must return a Status (either way) without crashing…
    (void)serve::ParseFlatJson(line).ok();
    // …and the server must answer every entry with a structured error.
    std::string response = server.HandleLine(line);
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u)
        << path.filename() << " got " << response;
    auto reparsed = serve::ParseFlatJson(response);
    EXPECT_TRUE(reparsed.ok())
        << path.filename() << ": unparseable error response " << response;
  }
  EXPECT_EQ(registry.CounterValue("serve.requests"),
            static_cast<uint64_t>(entries.size()));
  EXPECT_EQ(registry.CounterValue("serve.ok"), 0u);
}

TEST_F(HostileInputTest, OversizedRequestLineIsRejectedAndCounted) {
  std::string dir = Scratch("oversized");
  ASSERT_TRUE(serve::WriteSnapshot(MakeTinyBundle(), dir).ok());
  obs::Registry registry;
  serve::EngineOptions engine_options;
  engine_options.registry = &registry;
  auto engine = serve::QueryEngine::Open(dir, engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  serve::ServerOptions options;
  serve::Server server(engine->get(), options);

  std::string huge(options.max_request_bytes + 1, 'a');
  std::string response = server.HandleLine(huge);
  EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u) << response;
  EXPECT_NE(response.find("OUT_OF_RANGE"), std::string::npos) << response;
  EXPECT_EQ(registry.CounterValue("serve.oversized"), 1u);
  EXPECT_NE(server.StatsJson().find("\"oversized\":1"), std::string::npos);
}

TEST_F(HostileInputTest, OversizedLineDoesNotKillTheServeLoop) {
  std::string dir = Scratch("serve_loop");
  ASSERT_TRUE(serve::WriteSnapshot(MakeTinyBundle(), dir).ok());
  obs::Registry registry;
  serve::EngineOptions engine_options;
  engine_options.registry = &registry;
  auto engine = serve::QueryEngine::Open(dir, engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  serve::ServerOptions options;
  options.max_request_bytes = 64;  // keep the test input small
  serve::Server server(engine->get(), options);

  std::istringstream in("{\"op\":\"stats\"}\n" + std::string(1000, 'x') +
                        "\n{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  server.Serve(in, out);

  std::vector<std::string> responses;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    responses.push_back(line);
  }
  ASSERT_EQ(responses.size(), 4u) << out.str();
  EXPECT_EQ(responses[0].rfind("{\"ok\":true", 0), 0u);
  EXPECT_NE(responses[1].find("OUT_OF_RANGE"), std::string::npos);
  EXPECT_EQ(responses[2].rfind("{\"ok\":true", 0), 0u);
  EXPECT_NE(responses[3].find("shutdown"), std::string::npos);
  EXPECT_EQ(registry.CounterValue("serve.oversized"), 1u);
}

TEST_F(HostileInputTest, LoadMatrixRefusesHostileHeadersBeforeAllocating) {
  std::string dir = Scratch("matrix");
  fs::create_directories(dir);
  struct Case {
    const char* name;
    const char* header;
  } cases[] = {
      // Each factor is plausible; only the product (1e10 floats) is absurd.
      // Guards that multiply before checking can be wrapped past — this is
      // the division-based check's reason to exist.
      {"product-overflow", "100000 100000"},
      {"factor-overflow", "99999999999999999999 2"},
      {"negative-dimension", "-5 8"},
      {"wraparound-product", "4294967296 4294967297"},
  };
  for (const Case& c : cases) {
    std::string path = dir + "/" + c.name + ".txt";
    WriteFileBytes(path, std::string(c.header) + "\n");
    auto matrix = la::LoadMatrix(path);
    ASSERT_FALSE(matrix.ok()) << c.name << " was accepted";
    EXPECT_EQ(matrix.status().code(), StatusCode::kInvalidArgument)
        << c.name << ": " << matrix.status().message();
  }
}

}  // namespace
}  // namespace exea
