// Shared machinery for the TransE-family trainers (MTransE, AlignE):
// the translation score f(h, r, t) = ||h + r - t||^2 and gradient
// application helpers over (table, row) parameter references.
//
// Internal to exea_emb; not part of the public API.

#ifndef EXEA_EMB_TRANSE_COMMON_H_
#define EXEA_EMB_TRANSE_COMMON_H_

#include <vector>

#include "emb/optimizer.h"
#include "la/matrix.h"

namespace exea::emb::internal_transe {

// A mutable embedding row together with its optimizer.
struct ParamRef {
  la::Matrix* table = nullptr;
  AdagradTable* opt = nullptr;
  size_t row = 0;

  const float* values() const { return table->Row(row); }
};

// f(h, r, t) = ||h + r - t||^2, writing the residual g = h + r - t into
// `residual` (df/dh = df/dr = 2g, df/dt = -2g).
float TripleScore(const ParamRef& h, const ParamRef& r, const ParamRef& t,
                  std::vector<float>& residual);

// Applies `sign * 2 * residual` as the gradient of the triple score to the
// three parameter rows (sign +1 pushes the score down, -1 pushes it up).
void ApplyTripleGradient(const ParamRef& h, const ParamRef& r,
                         const ParamRef& t, const std::vector<float>& residual,
                         float sign);

}  // namespace exea::emb::internal_transe

#endif  // EXEA_EMB_TRANSE_COMMON_H_
