// Noise-robustness sweep (generalizes the paper's Section V-E experiment):
// corrupts an increasing fraction of the seed alignment, retrains, and
// reports base vs repaired accuracy — showing that the repair pipeline
// keeps delivering gains as supervision degrades.
//
// Usage: noise_robustness [BENCHMARK] [SCALE] [MODEL]

#include <cstdio>
#include <string>

#include "data/benchmarks.h"
#include "data/noise.h"
#include "emb/model.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace exea;
  SetMinLogLevel(LogLevel::kWarning);

  std::string benchmark_name = argc > 1 ? argv[1] : "ZH-EN";
  std::string scale_name = argc > 2 ? argv[2] : "tiny";
  std::string model_name = argc > 3 ? argv[3] : "MTransE";

  data::EaDataset clean =
      data::MakeBenchmark(data::BenchmarkFromName(benchmark_name),
                          data::ScaleFromName(scale_name));
  emb::ModelKind kind = emb::ModelKind::kMTransE;
  for (emb::ModelKind candidate :
       {emb::ModelKind::kMTransE, emb::ModelKind::kAlignE,
        emb::ModelKind::kGcnAlign, emb::ModelKind::kDualAmn}) {
    if (emb::ModelKindName(candidate) == model_name) kind = candidate;
  }

  std::printf("Noise robustness on %s (%s), model %s\n\n",
              clean.name.c_str(), scale_name.c_str(),
              emb::ModelKindName(kind).c_str());
  std::printf("%8s %8s %8s %8s\n", "noise", "base", "repaired", "gain");
  for (double fraction : {0.0, 1.0 / 12.0, 1.0 / 6.0, 0.25, 1.0 / 3.0}) {
    data::EaDataset noisy =
        data::CorruptSeedAlignment(clean, fraction, /*seed=*/33);
    std::unique_ptr<emb::EAModel> model = emb::MakeDefaultModel(kind);
    model->Train(noisy);
    explain::ExeaExplainer explainer(noisy, *model, explain::ExeaConfig{});
    repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
    repair::RepairReport report = pipeline.Run();
    std::printf("%7.1f%% %8.3f %8.3f %+8.3f\n", fraction * 100.0,
                report.base_accuracy, report.repaired_accuracy,
                report.AccuracyGain());
  }
  std::printf(
      "\nExpected: base accuracy decays with noise; the repaired accuracy "
      "decays slower,\nso the gain persists (paper Section V-E).\n");
  return 0;
}
