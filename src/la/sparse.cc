#include "la/sparse.h"

#include <algorithm>

#include "util/logging.h"

namespace exea::la {

void SparseMatrix::Add(size_t r, size_t c, float value) {
  EXEA_CHECK_LT(r, rows_);
  EXEA_CHECK_LT(c, cols_);
  entries_[r].push_back({static_cast<uint32_t>(c), value});
}

void SparseMatrix::Finalize() {
  for (auto& row : entries_) {
    std::sort(row.begin(), row.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                return a.col < b.col;
              });
    size_t out = 0;
    for (size_t i = 0; i < row.size(); ++i) {
      if (out > 0 && row[out - 1].col == row[i].col) {
        row[out - 1].value += row[i].value;
      } else {
        row[out++] = row[i];
      }
    }
    row.resize(out);
  }
}

Matrix SparseMatrix::Multiply(const Matrix& x) const {
  EXEA_CHECK_EQ(cols_, x.rows());
  Matrix y(rows_, x.cols());
  for (size_t r = 0; r < rows_; ++r) {
    float* out = y.Row(r);
    for (const SparseEntry& entry : entries_[r]) {
      Axpy(entry.value, x.Row(entry.col), out, x.cols());
    }
  }
  return y;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& x) const {
  EXEA_CHECK_EQ(rows_, x.rows());
  Matrix y(cols_, x.cols());
  for (size_t r = 0; r < rows_; ++r) {
    const float* in = x.Row(r);
    for (const SparseEntry& entry : entries_[r]) {
      Axpy(entry.value, in, y.Row(entry.col), x.cols());
    }
  }
  return y;
}

size_t SparseMatrix::nnz() const {
  size_t total = 0;
  for (const auto& row : entries_) total += row.size();
  return total;
}

}  // namespace exea::la
