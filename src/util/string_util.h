// Small string helpers used across the library (splitting, trimming,
// joining, printf-style formatting).

#ifndef EXEA_UTIL_STRING_UTIL_H_
#define EXEA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace exea {

// Splits `input` on `delim`. Empty fields are preserved ("a||b" -> 3 parts).
std::vector<std::string> Split(std::string_view input, char delim);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

// Strips ASCII digits from a string ("GeForce 400" -> "GeForce ").
// Used by the simulated LLM to model numeric insensitivity.
std::string StripDigits(std::string_view s);

// Lowercases ASCII letters.
std::string AsciiLower(std::string_view s);

}  // namespace exea

#endif  // EXEA_UTIL_STRING_UTIL_H_
