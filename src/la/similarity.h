// Embedding-similarity utilities: pairwise cosine similarity matrices and
// ranked top-k retrieval. These back the alignment-inference phase and the
// ranked candidate matrix M consumed by the repair algorithms.

#ifndef EXEA_LA_SIMILARITY_H_
#define EXEA_LA_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace exea::la {

// Full pairwise cosine similarity: out(i, j) = cos(a.Row(i), b.Row(j)).
// Row dimensions must match.
Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b);

// One candidate with its similarity score.
struct ScoredIndex {
  uint32_t index = 0;
  float score = 0.0f;
};

// The canonical candidate ordering shared by every ranked entry point:
// descending score, ties broken by ascending index. Pinned by la_test so
// SIMD reduction reordering cannot silently permute equal-score
// neighbors.
bool ScoredLess(const ScoredIndex& a, const ScoredIndex& b);

// Per-row inverse L2 norms of `m`; rows with norm <= 1e-12 get 0 so
// their similarity collapses to 0 instead of NaN. Computed with the
// active SIMD kernels (see la/simd.h).
std::vector<float> RowInverseNorms(const Matrix& m);

// Inverse norms for rows [row_begin, row_end) only; result[i] is the
// inverse norm of row row_begin + i. Each entry is the same value
// RowInverseNorms would produce for that row (per-row computation, no
// cross-row state), so shard-local norms compose bit-identically with
// the full-table scan.
std::vector<float> RowInverseNormsRange(const Matrix& m, size_t row_begin,
                                        size_t row_end);

// Top-k table rows for one query given precomputed table inverse norms
// (inv_table.size() must equal table.rows()). Result is sorted by
// ScoredLess and has min(k, table.rows()) entries. Shared by
// TopKByCosine* and the SimilarityIndex implementations.
std::vector<ScoredIndex> TopKWithNorms(const float* query, const Matrix& table,
                                       const std::vector<float>& inv_table,
                                       size_t k);

// Top-k over the row range [row_begin, row_end) only. `inv_range` holds
// one inverse norm per range row (inv_range[j - row_begin] for row j);
// result indices are GLOBAL table row ids, sorted by ScoredLess with
// min(k, row_end - row_begin) entries. Because ScoredLess is a strict
// total order (score ties break on the unique row id), concatenating the
// per-shard top-k of a disjoint row partition and re-sorting reproduces
// the full-table TopKWithNorms output bit for bit — the invariant the
// sharded serving engine's scatter-gather merge rests on (pinned by
// index_test / determinism_test).
std::vector<ScoredIndex> TopKRangeWithNorms(const float* query,
                                            const Matrix& table,
                                            const std::vector<float>& inv_range,
                                            size_t row_begin, size_t row_end,
                                            size_t k);

// For a query vector, returns the k highest-cosine rows of `table`,
// sorted by descending score (ties broken by ascending index for
// determinism).
std::vector<ScoredIndex> TopKByCosine(const float* query, const Matrix& table,
                                      size_t k);

// For every row of `queries`, the top-k rows of `table` by cosine.
// Result[i] is sorted descending.
std::vector<std::vector<ScoredIndex>> TopKByCosineAll(const Matrix& queries,
                                                      const Matrix& table,
                                                      size_t k);

// Returns argmax_j cos(query, table.Row(j)), or -1 if the table is empty.
int64_t ArgMaxCosine(const float* query, const Matrix& table);

}  // namespace exea::la

#endif  // EXEA_LA_SIMILARITY_H_
