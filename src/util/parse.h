// Checked numeric parsing for untrusted inputs.
//
// Every byte that arrives from outside the process — NDJSON request
// fields, snapshot MANIFEST rows, TSV cells, argv — must go through one
// of these helpers instead of atoi/stoi/strtol. The contract is strict
// on purpose:
//
//   * the WHOLE string must be consumed ("2junk", "1 ", "" all fail),
//   * the value must land inside the caller-supplied closed range,
//   * failure is a Status (INVALID_ARGUMENT for malformed text,
//     OUT_OF_RANGE for well-formed values outside the bounds), never a
//     silent 0 or a partial prefix.
//
// exea_lint's `atoi-on-untrusted` rule bans the libc/std parsers across
// src/, tools/ and bench/; its taint pass treats these functions as
// sanitizers that kill taint on the parsed output.

#ifndef EXEA_UTIL_PARSE_H_
#define EXEA_UTIL_PARSE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace exea {
namespace util {

// Parses `text` as a base-10 signed integer into `*out`. The full string
// must parse and the value must satisfy min_value <= value <= max_value;
// on failure `*out` is left untouched.
[[nodiscard]] Status ParseInt32(const std::string& text, int32_t min_value,
                                int32_t max_value, int32_t* out);
[[nodiscard]] Status ParseInt64(const std::string& text, int64_t min_value,
                                int64_t max_value, int64_t* out);

// Parses `text` as a decimal floating-point value. NaN never satisfies
// the range check, so "nan" is rejected; "inf" only passes if the bounds
// admit it (they never should for untrusted input).
[[nodiscard]] Status ParseDouble(const std::string& text, double min_value,
                                 double max_value, double* out);

// Parses `text` as an unsigned base-16 integer (no "0x" prefix), the
// format snapshot MANIFEST checksums are written in.
[[nodiscard]] Status ParseUint64Hex(const std::string& text, uint64_t* out);

}  // namespace util
}  // namespace exea

#endif  // EXEA_UTIL_PARSE_H_
