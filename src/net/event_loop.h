// A single-threaded non-blocking epoll event loop speaking the serving
// subsystem's NDJSON framing: one '\n'-terminated request line in, one
// response line out, per connection, in request order.
//
// Division of labor (DESIGN.md §12): the loop owns every socket and all
// framing state — accept (drained to EAGAIN), per-connection read buffers
// with a partial-read state machine (a request line may arrive across any
// number of reads), and per-connection write buffers with a partial-write
// state machine (a response may need any number of writes, re-armed via
// EPOLLOUT). It never computes a response itself: each complete line is
// handed to the LineHandler with a (connection, sequence) tag, and some
// other thread eventually answers via Send(). Responses may complete out
// of order — workers race — so the loop holds a per-connection reorder
// buffer and releases bytes to the socket strictly in sequence order,
// keeping the one-response-per-request-line protocol honest under any
// worker interleaving.
//
// Admission control at the edge: connections beyond max_connections are
// accepted and immediately closed (counted net.conn_rejected), so a
// saturated server sheds load at the kernel boundary instead of queueing
// unbounded sockets. A request line longer than max_line_bytes is drained
// without being buffered (bounded memory against a hostile peer) and
// delivered as an `oversized` event carrying only its measured length.
//
// Threading: Listen/Run/Stop-callbacks run on the loop thread; Send,
// BeginDrain, and Stop are thread-safe and may be called from any thread
// (they post through an eventfd-woken mailbox). The LineHandler runs on
// the loop thread and must not block — hand the work off and return.

#ifndef EXEA_NET_EVENT_LOOP_H_
#define EXEA_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/status.h"
#include "util/timer.h"

namespace exea::net {

struct EventLoopOptions {
  size_t max_connections = 256;
  size_t max_line_bytes = 1 << 20;  // 1 MiB, matching the serving cap

  // After Stop(), the loop keeps running up to this long to flush
  // pending response bytes to slow readers before closing them.
  double stop_flush_seconds = 5.0;

  // Where the loop registers its metrics (net.* counters and the
  // net.connections gauge). nullptr → obs::Registry::Global().
  obs::Registry* registry = nullptr;
};

class EventLoop {
 public:
  // One complete request line (or one oversized rejection). `seq` is
  // per-connection and dense from 0; every delivered Line must be
  // answered by exactly one Send(conn, seq, ...) or the connection's
  // response stream stalls behind the hole. Whitespace-only lines are
  // skipped by the loop itself (no event, no seq), matching the blocking
  // server's behavior.
  struct Line {
    uint64_t conn = 0;
    uint64_t seq = 0;
    std::string text;            // empty when oversized
    bool oversized = false;
    size_t observed_bytes = 0;   // line length when oversized
  };

  // Runs on the loop thread for every delivered line; must not block.
  using LineHandler = std::function<void(const Line&)>;

  EventLoop(const EventLoopOptions& options, LineHandler on_line);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Binds 127.0.0.1:`port` (0 → kernel-assigned, see port()) and creates
  // the epoll/eventfd plumbing. Call once, before Run().
  [[nodiscard]] Status Listen(int port);

  // The bound port, valid after a successful Listen().
  int port() const { return port_; }

  // Runs the loop until Stop(). Call from the dedicated loop thread.
  void Run();

  // Stops accepting new connections and reading new requests; pending
  // responses still flush. Thread-safe, idempotent.
  void BeginDrain();

  // Asks Run() to exit after a bounded best-effort flush of pending
  // response bytes (implies BeginDrain). Thread-safe, idempotent.
  void Stop();

  // Queues the response for line `seq` of connection `conn` (no trailing
  // newline; the loop adds the frame delimiter). Thread-safe. A response
  // for a connection that already vanished is dropped and counted
  // (net.responses_dropped).
  void Send(uint64_t conn, uint64_t seq, std::string text);

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string in_buf;                    // partial-line bytes
    bool discarding = false;               // inside an oversized line
    size_t discarded = 0;                  // its measured length so far
    uint64_t next_seq = 0;                 // next line seq to assign
    uint64_t next_send = 0;                // next response seq to flush
    std::map<uint64_t, std::string> ready; // out-of-order responses
    std::string out;                       // bytes awaiting the kernel
    size_t out_pos = 0;
    bool peer_eof = false;
    bool want_write = false;               // current EPOLLOUT interest
  };

  struct Completion {
    uint64_t conn;
    uint64_t seq;
    std::string text;
  };

  // ---- loop-thread only ----
  void HandleAccept();
  void HandleReadable(Connection& conn);
  // True if the connection survived the flush (false: closed on error).
  bool FlushOut(Connection& conn);
  void ExtractLines(Connection& conn);
  void ReleaseReady(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConn(uint64_t id);
  void CloseIfFinished(uint64_t id);
  void DrainMailbox();
  void ApplyDrain();

  void WakeLoop();  // thread-safe

  EventLoopOptions options_;
  LineHandler on_line_;
  obs::Registry* registry_;  // never null; resolved in the ctor

  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd the mailbox writers signal
  int listener_ = -1;
  int port_ = 0;
  uint64_t next_conn_id_;
  std::map<uint64_t, Connection> conns_;  // loop-thread only
  bool drained_ = false;                  // ApplyDrain has run
  bool stopping_ = false;                 // Stop seen by the loop
  WallTimer stop_timer_;                  // started when stopping_ flips

  obs::Counter& accepted_;
  obs::Counter& conn_rejected_;
  obs::Counter& conn_closed_;
  obs::Counter& lines_in_;
  obs::Counter& responses_out_;
  obs::Counter& responses_dropped_;
  obs::Counter& partial_writes_;
  obs::Gauge& conns_gauge_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};

  // mailbox_mu_ protects everything declared after it (the class
  // convention the lock-discipline lint pass enforces).
  std::mutex mailbox_mu_;
  std::vector<Completion> mailbox_ EXEA_GUARDED_BY(mailbox_mu_);
};

}  // namespace exea::net

#endif  // EXEA_NET_EVENT_LOOP_H_
