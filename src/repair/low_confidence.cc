#include "repair/low_confidence.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace exea::repair {
namespace {

constexpr double kEps = 1e-9;

// Candidate(e1, A*) — Line 9: target entities sharing at least one aligned
// neighbour with e1, capped to the most similar `max_candidates`.
std::vector<kg::EntityId> CandidateTargets(
    kg::EntityId e1, const data::EaDataset& dataset,
    const explain::AlignmentContext& context,
    const emb::RankedSimilarity& ranked, size_t max_candidates) {
  // KG2 entities aligned with e1's KG1 neighbours.
  std::unordered_set<kg::EntityId> matched_neighbors2;
  for (const kg::AdjacentEdge& edge : dataset.kg1.Edges(e1)) {
    for (kg::EntityId t : context.AlignedTargets(edge.neighbor)) {
      matched_neighbors2.insert(t);
    }
  }
  if (matched_neighbors2.empty()) return {};

  // Targets (within the to-align space) adjacent to any matched neighbour,
  // scanned in descending-similarity order so the cap keeps the best.
  std::vector<kg::EntityId> candidates;
  const std::vector<emb::Candidate>& by_similarity =
      ranked.CandidatesFor(e1);
  for (const emb::Candidate& candidate : by_similarity) {
    if (candidates.size() >= max_candidates) break;
    for (const kg::AdjacentEdge& edge : dataset.kg2.Edges(candidate.target)) {
      if (matched_neighbors2.count(edge.neighbor) > 0) {
        candidates.push_back(candidate.target);
        break;
      }
    }
  }
  return candidates;
}

}  // namespace

LowConfidenceResult RepairLowConfidence(
    const kg::AlignmentSet& alignment, std::vector<kg::EntityId> unaligned,
    const kg::AlignmentSet& seeds, const emb::RankedSimilarity& ranked,
    const ConfidenceFn& confidence, const data::EaDataset& dataset,
    const LowConfidenceOptions& options) {
  LowConfidenceResult out;
  out.alignment = alignment;
  std::vector<kg::EntityId>& pending = unaligned;

  size_t last_len = 0;
  bool have_last_len = false;  // lastLen = -1 sentinel of the pseudocode
  while (out.iterations < options.max_iterations) {  // Line 2
    ++out.iterations;
    // Lines 3-4: drop low-confidence pairs.
    {
      explain::AlignmentContext context(&out.alignment, &seeds);
      std::vector<kg::AlignedPair> pairs = out.alignment.SortedPairs();
      for (const kg::AlignedPair& pair : pairs) {
        double conf = confidence(pair.source, pair.target, context);
        if (conf <= options.beta + kEps) {
          out.alignment.Remove(pair.source, pair.target);
          pending.push_back(pair.source);
          ++out.low_confidence_removed;
        }
      }
      std::sort(pending.begin(), pending.end());
      pending.erase(std::unique(pending.begin(), pending.end()),
                    pending.end());
    }
    // Lines 5-6: terminate when no progress.
    if (have_last_len && pending.size() >= last_len) break;
    last_len = pending.size();
    have_last_len = true;

    std::vector<kg::EntityId> still_unaligned;  // Line 7
    for (kg::EntityId e1 : pending) {           // Line 8
      explain::AlignmentContext context(&out.alignment, &seeds);
      std::vector<kg::EntityId> candidates = CandidateTargets(
          e1, dataset, context, ranked, options.max_candidates);  // Line 9
      // Lines 10-16: score and sort candidates.
      struct Scored {
        kg::EntityId target;
        double score;
      };
      std::vector<Scored> scored;
      scored.reserve(candidates.size());
      for (kg::EntityId candidate : candidates) {
        double conf = confidence(e1, candidate, context);
        if (conf <= options.beta + kEps) continue;  // prune low-confidence
        double score = conf + options.score_alpha * ranked.Sim(e1, candidate);
        scored.push_back({candidate, score});
      }
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.target < b.target;
                });

      bool aligned = false;
      size_t depth = std::min(options.top_k, scored.size());
      for (size_t j = 0; j < depth; ++j) {  // Line 17
        kg::EntityId e2 = scored[j].target;
        if (!out.alignment.HasTarget(e2)) {  // Lines 19-20
          out.alignment.Add(e1, e2);
          aligned = true;
          break;
        }
        // Lines 22-28: challenge the incumbent(s) by alignment score.
        // (Normally there is exactly one incumbent; when cr2 is ablated
        // the input alignment can still carry one-to-many conflicts, so we
        // challenge the best incumbent and displace all of them on a win.)
        std::vector<kg::EntityId> incumbents = out.alignment.SourcesOf(e2);
        EXEA_CHECK(!incumbents.empty());
        double incumbent_score = -1e9;
        for (kg::EntityId incumbent : incumbents) {
          double score = confidence(incumbent, e2, context) +
                         options.score_alpha * ranked.Sim(incumbent, e2);
          incumbent_score = std::max(incumbent_score, score);
        }
        if (scored[j].score > incumbent_score) {  // Line 26
          out.alignment.Add(e1, e2);
          for (kg::EntityId incumbent : incumbents) {
            out.alignment.Remove(incumbent, e2);
            still_unaligned.push_back(incumbent);
          }
          ++out.swaps;
          aligned = true;
          break;
        }
      }
      if (!aligned) still_unaligned.push_back(e1);  // Line 29
    }
    std::sort(still_unaligned.begin(), still_unaligned.end());
    still_unaligned.erase(
        std::unique(still_unaligned.begin(), still_unaligned.end()),
        still_unaligned.end());
    pending = std::move(still_unaligned);  // Line 30
    if (pending.empty()) break;
  }

  // Final greedy fallback: remaining unaligned sources vs free targets by
  // descending similarity.
  std::unordered_set<kg::EntityId> free_sources(pending.begin(),
                                                pending.end());
  if (!free_sources.empty()) {
    struct GreedyPair {
      kg::EntityId source;
      kg::EntityId target;
      float sim;
    };
    std::vector<GreedyPair> all;
    for (kg::EntityId e1 : pending) {
      for (const emb::Candidate& candidate : ranked.CandidatesFor(e1)) {
        if (out.alignment.HasTarget(candidate.target)) continue;
        all.push_back({e1, candidate.target, candidate.score});
      }
    }
    std::sort(all.begin(), all.end(),
              [](const GreedyPair& a, const GreedyPair& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                if (a.source != b.source) return a.source < b.source;
                return a.target < b.target;
              });
    for (const GreedyPair& pair : all) {
      if (free_sources.count(pair.source) == 0) continue;
      if (out.alignment.HasTarget(pair.target)) continue;
      out.alignment.Add(pair.source, pair.target);
      free_sources.erase(pair.source);
      ++out.final_greedy_matches;
    }
  }
  return out;
}

}  // namespace exea::repair
