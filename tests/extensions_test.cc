// Tests for the extension features: the NameAugmentedModel decorator
// (the paper's stated future-work direction) and iterative repair.

#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "emb/bootstrapping.h"
#include "emb/name_augmented.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "data/noise.h"
#include "repair/pipeline.h"
#include "repair/seed_cleaning.h"

namespace exea {
namespace {

class ExtensionFixture : public ::testing::Test {
 protected:
  static const data::EaDataset& Dataset() {
    static const data::EaDataset* dataset = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    return *dataset;
  }
};

TEST_F(ExtensionFixture, NameAugmentationImprovesAccuracy) {
  // Structure + names must beat structure alone (entity names correlate
  // with gold alignment by construction, like DBpedia labels do).
  std::unique_ptr<emb::EAModel> plain =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  plain->Train(Dataset());
  double plain_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*plain, Dataset())),
      Dataset().test_gold);

  auto augmented = std::make_unique<emb::NameAugmentedModel>(
      emb::MakeDefaultModel(emb::ModelKind::kMTransE), /*name_weight=*/0.5);
  augmented->Train(Dataset());
  double augmented_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*augmented, Dataset())),
      Dataset().test_gold);

  EXPECT_GT(augmented_accuracy, plain_accuracy);
}

TEST_F(ExtensionFixture, ZeroWeightReproducesBaseRanking) {
  std::unique_ptr<emb::EAModel> plain =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  plain->Train(Dataset());
  auto augmented = std::make_unique<emb::NameAugmentedModel>(
      emb::MakeDefaultModel(emb::ModelKind::kMTransE), /*name_weight=*/0.0);
  augmented->Train(Dataset());
  // Cosine similarities are invariant to row normalization, so the
  // greedy alignments must coincide.
  kg::AlignmentSet a =
      eval::GreedyAlign(eval::RankTestEntities(*plain, Dataset()));
  kg::AlignmentSet b =
      eval::GreedyAlign(eval::RankTestEntities(*augmented, Dataset()));
  EXPECT_EQ(a.SortedPairs(), b.SortedPairs());
}

TEST_F(ExtensionFixture, AugmentedModelKeepsEAModelContract) {
  auto augmented = std::make_unique<emb::NameAugmentedModel>(
      emb::MakeDefaultModel(emb::ModelKind::kMTransE), 0.4);
  augmented->Train(Dataset());
  EXPECT_EQ(augmented->name(), "MTransE+names");
  EXPECT_TRUE(augmented->HasRelationEmbeddings());
  // Relation embeddings padded to the augmented width.
  EXPECT_EQ(augmented->RelationEmbeddings(kg::KgSide::kSource).cols(),
            augmented->EntityEmbeddings(kg::KgSide::kSource).cols());
  // Clone round-trips the decoration.
  std::unique_ptr<emb::EAModel> clone = augmented->CloneUntrained();
  EXPECT_EQ(clone->name(), "MTransE+names");
}

TEST_F(ExtensionFixture, ExplainAndRepairWorkOnAugmentedModel) {
  // The whole point of the decorator: the model-agnostic core runs
  // unchanged on it.
  auto augmented = std::make_unique<emb::NameAugmentedModel>(
      emb::MakeDefaultModel(emb::ModelKind::kMTransE), 0.5);
  augmented->Train(Dataset());
  explain::ExeaExplainer explainer(Dataset(), *augmented,
                                   explain::ExeaConfig{});
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  repair::RepairReport report = pipeline.Run();
  EXPECT_GE(report.repaired_accuracy, report.base_accuracy);
  EXPECT_TRUE(report.repaired_alignment.IsOneToOne());
}

TEST_F(ExtensionFixture, IterativeRepairAtLeastMatchesSingleRound) {
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  explain::ExeaExplainer explainer(Dataset(), *model, explain::ExeaConfig{});
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  double single = pipeline.Run().repaired_accuracy;
  repair::RepairReport iterative = pipeline.RunIterative(3);
  EXPECT_GE(iterative.repaired_accuracy + 0.03, single);
  EXPECT_TRUE(iterative.repaired_alignment.IsOneToOne());
  // base_* fields refer to the raw model output.
  EXPECT_LT(iterative.base_accuracy, iterative.repaired_accuracy);
}

TEST_F(ExtensionFixture, IterativeRepairConvergesToFixedPoint) {
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  explain::ExeaExplainer explainer(Dataset(), *model, explain::ExeaConfig{});
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  repair::RepairReport a = pipeline.RunIterative(4);
  repair::RepairReport b = pipeline.RunIterative(6);
  // Extra rounds past convergence change nothing.
  EXPECT_EQ(a.repaired_alignment.SortedPairs(),
            b.repaired_alignment.SortedPairs());
}

TEST_F(ExtensionFixture, BootstrappingImprovesOrMatchesBase) {
  std::unique_ptr<emb::EAModel> prototype =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  prototype->Train(Dataset());
  double base_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*prototype, Dataset())),
      Dataset().test_gold);

  emb::BootstrapOptions options;
  options.rounds = 3;
  emb::BootstrapResult result =
      emb::Bootstrap(*prototype, Dataset(), options);
  ASSERT_NE(result.model, nullptr);
  EXPECT_EQ(result.rounds_run, 3u);
  double boot_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*result.model, Dataset())),
      Dataset().test_gold);
  EXPECT_GE(boot_accuracy + 0.03, base_accuracy)
      << "bootstrapping should not hurt";
  EXPECT_GT(boot_accuracy, base_accuracy - 1e-9)
      << "with clean pseudo-labels it should help on this dataset";
}

TEST_F(ExtensionFixture, BootstrapPromotesHighPrecisionPseudoSeeds) {
  std::unique_ptr<emb::EAModel> prototype =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  emb::BootstrapOptions options;
  options.rounds = 2;
  options.similarity_threshold = 0.7;
  emb::BootstrapResult result =
      emb::Bootstrap(*prototype, Dataset(), options);
  ASSERT_FALSE(result.pseudo_seeds.empty());
  size_t correct = 0;
  for (const kg::AlignedPair& pair : result.pseudo_seeds.SortedPairs()) {
    auto it = Dataset().gold.find(pair.source);
    if (it != Dataset().gold.end() && it->second == pair.target) ++correct;
  }
  double precision = static_cast<double>(correct) /
                     static_cast<double>(result.pseudo_seeds.size());
  EXPECT_GT(precision, 0.8)
      << "mutual-best + threshold promotion should be high precision";
}

TEST_F(ExtensionFixture, BootstrapSingleRoundEqualsPlainTraining) {
  std::unique_ptr<emb::EAModel> prototype =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  emb::BootstrapOptions options;
  options.rounds = 1;
  emb::BootstrapResult result =
      emb::Bootstrap(*prototype, Dataset(), options);
  std::unique_ptr<emb::EAModel> plain = prototype->CloneUntrained();
  plain->Train(Dataset());
  EXPECT_EQ(result.model->EntityEmbeddings(kg::KgSide::kSource).data(),
            plain->EntityEmbeddings(kg::KgSide::kSource).data());
  EXPECT_TRUE(result.pseudo_seeds.empty());
}

TEST_F(ExtensionFixture, SeedCleaningFlagsCorruptedSeeds) {
  // Corrupt 1/6 of the seeds, train, clean — the removed set should be
  // dominated by the corrupted pairs, and most corrupted pairs should be
  // caught.
  data::EaDataset noisy =
      data::CorruptSeedAlignment(Dataset(), 1.0 / 6.0, /*seed=*/21);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(noisy);
  explain::ExeaExplainer explainer(noisy, *model, explain::ExeaConfig{});
  kg::AlignmentSet results =
      eval::GreedyAlign(eval::RankTestEntities(*model, noisy));

  repair::SeedCleaningResult cleaned = repair::CleanSeeds(
      explainer, noisy.train, results, repair::SeedCleaningOptions{});
  ASSERT_FALSE(cleaned.removed.empty());
  EXPECT_EQ(cleaned.cleaned.size() + cleaned.removed.size(),
            noisy.train.size());
  EXPECT_EQ(cleaned.removed.size(), cleaned.removed_confidences.size());

  size_t corrupted_removed = 0;
  for (const kg::AlignedPair& pair : cleaned.removed) {
    if (Dataset().gold.at(pair.source) != pair.target) ++corrupted_removed;
  }
  double removal_precision = static_cast<double>(corrupted_removed) /
                             static_cast<double>(cleaned.removed.size());
  EXPECT_GT(removal_precision, 0.5)
      << "most removed seeds should be the corrupted ones";

  size_t total_corrupted = 0;
  size_t surviving_corrupted = 0;
  for (const kg::AlignedPair& pair : noisy.train.SortedPairs()) {
    if (Dataset().gold.at(pair.source) != pair.target) {
      ++total_corrupted;
      if (cleaned.cleaned.Contains(pair.source, pair.target)) {
        ++surviving_corrupted;
      }
    }
  }
  ASSERT_GT(total_corrupted, 0u);
  EXPECT_LT(surviving_corrupted, total_corrupted)
      << "cleaning must catch at least some corrupted seeds";
}

TEST_F(ExtensionFixture, SeedCleaningOnCleanSeedsIsConservative) {
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  explain::ExeaExplainer explainer(Dataset(), *model, explain::ExeaConfig{});
  kg::AlignmentSet results =
      eval::GreedyAlign(eval::RankTestEntities(*model, Dataset()));
  repair::SeedCleaningResult cleaned = repair::CleanSeeds(
      explainer, Dataset().train, results, repair::SeedCleaningOptions{});
  // Clean seeds: few removals (dropout can leave a handful unexplainable).
  EXPECT_LT(cleaned.removed.size(), Dataset().train.size() / 4);
}

TEST_F(ExtensionFixture, RetrainingOnCleanedSeedsRecoversAccuracy) {
  data::EaDataset noisy =
      data::CorruptSeedAlignment(Dataset(), 1.0 / 4.0, /*seed=*/22);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(noisy);
  double noisy_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*model, noisy)),
      noisy.test_gold);

  explain::ExeaExplainer explainer(noisy, *model, explain::ExeaConfig{});
  kg::AlignmentSet results =
      eval::GreedyAlign(eval::RankTestEntities(*model, noisy));
  repair::SeedCleaningResult cleaned = repair::CleanSeeds(
      explainer, noisy.train, results, repair::SeedCleaningOptions{});

  data::EaDataset cleaned_dataset = noisy;
  cleaned_dataset.train = cleaned.cleaned;
  std::unique_ptr<emb::EAModel> retrained = model->CloneUntrained();
  retrained->Train(cleaned_dataset);
  double cleaned_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*retrained, cleaned_dataset)),
      noisy.test_gold);
  EXPECT_GT(cleaned_accuracy + 0.02, noisy_accuracy)
      << "training on cleaned seeds should not be worse";
}

}  // namespace
}  // namespace exea
