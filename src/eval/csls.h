// CSLS (cross-domain similarity local scaling) re-scoring and alternative
// alignment-inference strategies.
//
// The paper's related work surveys inference variants beyond greedy NN:
// bidirectional kNN (MRAEA [11]) and holistic matching ([14], [30]); the
// repair pipeline competes with and composes with them. This module
// provides:
//   * CSLS — penalizes hub entities by subtracting the mean similarity of
//     each entity's k-nearest neighbourhood from raw cosine scores,
//   * stable matching (Gale-Shapley) — a holistic one-to-one assignment
//     in which no unmatched (source, target) pair prefers each other over
//     their assigned partners.

#ifndef EXEA_EVAL_CSLS_H_
#define EXEA_EVAL_CSLS_H_

#include "eval/inference.h"
#include "la/matrix.h"

namespace exea::eval {

// CSLS-adjusted similarity matrix:
//   csls(i, j) = 2 * cos(i, j) - r_src(i) - r_tgt(j)
// where r_src(i) is the mean similarity of source i to its k most similar
// targets and r_tgt(j) symmetric. `sim` is a raw similarity matrix
// (sources x targets).
la::Matrix CslsAdjust(const la::Matrix& sim, size_t k);

// Ranks test sources against test targets with CSLS-adjusted similarity.
RankedSimilarity RankTestEntitiesCsls(const emb::EAModel& model,
                                      const data::EaDataset& dataset,
                                      size_t k = 5);

// Stable-matching (Gale-Shapley, source-proposing) inference over a
// ranked similarity structure. The result is one-to-one; every source is
// matched when |sources| <= |targets|.
kg::AlignmentSet StableMatchAlign(const RankedSimilarity& ranked);

}  // namespace exea::eval

#endif  // EXEA_EVAL_CSLS_H_
