// Intra-TU taint cases: every way a wire number can reach a size, index
// or loop bound, plus the three idioms that make one safe — the checked
// parse, an EXEA_CHECK range guard, and an associative (map) subscript.
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "net/input.h"

namespace demo::serve {

void SizeFromWire(const std::string& raw, std::vector<int>& out) {
  std::string text = net::ReadField(raw, "count");
  // Positive (atoi-on-untrusted) and positive (taint-unchecked-sink):
  // the unparsed count sizes the buffer directly.
  int count = std::atoi(text.c_str());
  out.resize(count);
}

void SizeChecked(const std::string& raw, std::vector<int>& out) {
  std::string text = net::ReadField(raw, "count");
  int count = 0;
  // Negative: the configured sanitizer validates before the resize.
  if (!net::ParseInt32(text, 0, 100, &count)) return;
  out.resize(count);
}

int SumTo(const std::string& raw) {
  std::string text = net::ReadField(raw, "n");
  // Positive (atoi-on-untrusted): std::stoi truncates "7e9" to 7.
  int n = std::stoi(text);
  int total = 0;
  // Positive (taint-unchecked-sink): tainted loop bound.
  for (int i = 0; i < n; ++i) total += i;
  return total;
}

int SumChecked(const std::string& raw) {
  std::string text = net::ReadField(raw, "n");
  int n = text.empty() ? 0 : text[0] - '0';
  EXEA_CHECK(n >= 0 && n <= 64);
  int total = 0;
  // Negative: the EXEA_CHECK above range-validated n.
  for (int i = 0; i < n; ++i) total += i;
  return total;
}

int Pick(const std::string& raw, const std::vector<int>& table) {
  // Positive (atoi-on-untrusted) and positive (taint-unchecked-sink):
  // tainted container index.
  int idx = std::atoi(net::ReadField(raw, "idx").c_str());
  return table[idx];
}

int Lookup(const std::string& raw) {
  std::map<std::string, int> counts;
  std::string key = net::ReadField(raw, "key");
  // Negative: keying a map is an associative lookup, not a position.
  return counts[key];
}

void Trusted(const std::string& raw, std::vector<int>& out) {
  // exea-lint: allow(atoi-on-untrusted)
  int n = std::atoi(net::ReadField(raw, "n").c_str());
  // This size is bounded upstream by the framing layer.
  // exea-lint: allow(taint-unchecked-sink)
  out.resize(n);
}

}  // namespace demo::serve
