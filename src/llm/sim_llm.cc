#include "llm/sim_llm.h"

#include <algorithm>

#include "kg/name_encoder.h"
#include "util/string_util.h"

namespace exea::llm {
namespace {

uint64_t HashStrings(uint64_t seed, std::string_view a, std::string_view b) {
  // FNV-1a over seed || a || 0x1f || b, order-normalized so (a, b) and
  // (b, a) hash identically.
  if (b < a) std::swap(a, b);
  uint64_t h = 1469598103934665603ULL ^ seed;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0x1f;
    h *= 1099511628211ULL;
  };
  mix(a);
  mix(b);
  return h;
}

}  // namespace

bool SimulatedLLM::Hallucinate(std::string_view a, std::string_view b) const {
  if (options_.hallucination_rate <= 0.0) return false;
  uint64_t h = HashStrings(options_.seed, a, b);
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < options_.hallucination_rate;
}

bool SimulatedLLM::JudgeNamesEquivalent(std::string_view name1,
                                        std::string_view name2) const {
  std::string base1 = AsciiLower(kg::StripNamespace(name1));
  std::string base2 = AsciiLower(kg::StripNamespace(name2));
  bool verdict;
  if (options_.numeric_insensitive) {
    // The LLM cannot tell "Widget v300" from "Widget v400".
    verdict = StripDigits(base1) == StripDigits(base2);
  } else {
    verdict = base1 == base2;
  }
  if (Hallucinate(name1, name2)) verdict = !verdict;
  return verdict;
}

std::vector<std::pair<size_t, size_t>> SimulatedLLM::MatchTriples(
    const std::vector<NamedTriple>& side1,
    const std::vector<NamedTriple>& side2) const {
  std::vector<std::pair<size_t, size_t>> matches;
  std::vector<bool> used2(side2.size(), false);
  for (size_t i = 0; i < side1.size(); ++i) {
    for (size_t j = 0; j < side2.size(); ++j) {
      if (used2[j]) continue;
      const NamedTriple& t1 = side1[i];
      const NamedTriple& t2 = side2[j];
      bool heads = JudgeNamesEquivalent(t1.head, t2.head);
      bool tails = JudgeNamesEquivalent(t1.tail, t2.tail);
      bool relations = JudgeNamesEquivalent(t1.relation, t2.relation);
      if (heads && tails && relations) {
        matches.push_back({i, j});
        used2[j] = true;
        break;
      }
    }
  }
  return matches;
}

bool SimulatedLLM::VerifyClaim(std::string_view name1, std::string_view name2,
                               const std::vector<NamedTriple>& evidence1,
                               const std::vector<NamedTriple>& evidence2) const {
  // Primary signal: do the entity names refer to the same thing?
  bool names_agree = JudgeNamesEquivalent(name1, name2);
  // Secondary signal: evidence overlap — fraction of the smaller evidence
  // list that finds a counterpart on the other side.
  std::vector<std::pair<size_t, size_t>> matches =
      MatchTriples(evidence1, evidence2);
  size_t smaller = std::min(evidence1.size(), evidence2.size());
  double overlap = smaller == 0 ? 0.0
                                : static_cast<double>(matches.size()) /
                                      static_cast<double>(smaller);
  if (names_agree) {
    // Names agree: reject only when the evidence is clearly contradictory.
    return smaller == 0 || overlap >= 0.15;
  }
  // Names disagree: strong evidence overlap can still convince the LLM.
  return overlap >= 0.75 && smaller >= 2;
}

}  // namespace exea::llm
