// Source loading for exea_lint: reading files, blanking comments and
// string literals while preserving line/column structure, and mining
// waiver comments. Every later pass (lexical rules, the declaration
// indexer, the cross-TU analyses) works on the SourceFile produced here.

#ifndef EXEA_TOOLS_LINT_SOURCE_H_
#define EXEA_TOOLS_LINT_SOURCE_H_

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace lint {

// One scanned translation unit: the raw lines, the comment/string-stripped
// lines (same count, columns preserved), and per-line waivers.
struct SourceFile {
  std::string path;        // as reported in diagnostics
  bool is_header = false;
  bool in_src = false;     // under a src/ directory (not tools/, bench/)
  bool is_rng_impl = false;  // src/util/rng.* — exempt from raw-rng
  std::string module;      // src/<module>/..., "tools", "bench", or empty
  std::string src_rel;     // path relative to src/ for include resolution
  std::vector<std::string> raw;
  std::vector<std::string> code;  // comments and literals blanked out
  std::vector<std::set<std::string>> waivers;
};

bool IsIdentChar(char c);
bool HasSuffix(const std::string& s, const std::string& suffix);

// First whole-word occurrence of `word` in `line`, or npos.
size_t FindWord(const std::string& line, const std::string& word);

// Collects "exea-lint: allow(rule1, rule2)" waivers out of a comment.
void ParseWaivers(const std::string& comment, std::set<std::string>* out);

// Blanks comments, string literals, and char literals (preserving line
// structure and column positions) so the rule matchers never fire inside
// them. Comment text is mined for waivers before being dropped.
void StripToCode(SourceFile* file);

// Reads the whole file into one string (the unit the content hash and the
// warm-cache path work on); false when it cannot be read.
bool ReadFileContent(const std::filesystem::path& path, std::string* out);

// Fills the path-derived SourceFile fields (is_header, module, src_rel …)
// without touching the filesystem.
void ClassifyPath(const std::string& path_str, SourceFile* out);

void SplitLines(const std::string& content, std::vector<std::string>* out);

// ClassifyPath + SplitLines + StripToCode over already-read content.
void BuildSourceFile(const std::string& path_str, const std::string& content,
                     SourceFile* out);

// Reads and classifies one file; false when it cannot be read. The raw
// lines are split but StripToCode is NOT run (callers that hit the
// analysis cache skip it).
bool LoadFileRaw(const std::filesystem::path& path, SourceFile* out);

// LoadFileRaw + StripToCode.
bool LoadFile(const std::filesystem::path& path, SourceFile* out);

// Recursively collects .cc/.h files under `root` (or `root` itself when
// it is a regular file).
void CollectFiles(const std::filesystem::path& root,
                  std::vector<std::filesystem::path>* out);

// FNV-1a 64-bit over `data` — the content hash keying the analysis cache
// and baseline fingerprints.
uint64_t Fnv1a64(const std::string& data);
uint64_t Fnv1a64(const std::string& data, uint64_t seed);

// The path with everything before the last /src/, /tools/, or /bench/
// segment removed, so baselines and fingerprints agree between absolute
// and relative invocations ("a/b/src/net/x.cc" -> "src/net/x.cc").
std::string NormalizedRepoPath(const std::string& path);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_SOURCE_H_
