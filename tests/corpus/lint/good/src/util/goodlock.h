// The compliant twin of bad/src/util/badlock.h: mutex first, every member
// after it annotated, accessors lock before touching state, and the
// private helper declares its lock contract with EXEA_REQUIRES.
#ifndef EXEA_TESTS_CORPUS_LINT_GOOD_SRC_UTIL_GOODLOCK_H_
#define EXEA_TESTS_CORPUS_LINT_GOOD_SRC_UTIL_GOODLOCK_H_

#include <mutex>

namespace demo {

class Counter {
 public:
  long Peek() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  void Add(long delta) {
    std::lock_guard<std::mutex> lock(mu_);
    BumpLocked(delta);
  }

 private:
  void BumpLocked(long delta) EXEA_REQUIRES(mu_) { count_ += delta; }

  mutable std::mutex mu_;
  long count_ EXEA_GUARDED_BY(mu_) = 0;
};

}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_GOOD_SRC_UTIL_GOODLOCK_H_
