#include "util/handler.h"

namespace demo::util {

void Process(int fd) {
  // Reachable from Loop::Run through HandleEvent — the analyzer must
  // walk across this TU boundary and flag the poll.
  ::poll(nullptr, 0, fd);
}

void Finish(int fd) {
  // Identical call, but Finish is not reachable from the entry, so this
  // one must stay quiet.
  ::poll(nullptr, 0, fd);
}

void BlockingFetch(int fd) {
  ::poll(nullptr, 0, fd);
}

}  // namespace demo::util
