// Seeded violation: src/mystery/ is not declared in tools/layers.txt →
// layering (undeclared module).
#ifndef EXEA_TESTS_CORPUS_LINT_BAD_SRC_MYSTERY_WIDGET_H_
#define EXEA_TESTS_CORPUS_LINT_BAD_SRC_MYSTERY_WIDGET_H_

namespace demo {
struct Widget {};
}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_BAD_SRC_MYSTERY_WIDGET_H_
