// Bootstrapping (self-training) for EA — the technique of the paper's
// citation [14] (BootEA), whose non-bootstrapped variant is the evaluated
// AlignE model. The loop alternates training with pseudo-label expansion:
//
//   1. train the model on the current seed set;
//   2. infer alignment over the unaligned test entities;
//   3. promote mutually-best pairs whose similarity clears a threshold to
//      pseudo-seeds (editable: a later round may revoke a pseudo-seed if
//      its entities find better partners — BootEA's alignment editing);
//   4. repeat.
//
// Works with any EAModel (the factory clone keeps hyper-parameters).

#ifndef EXEA_EMB_BOOTSTRAPPING_H_
#define EXEA_EMB_BOOTSTRAPPING_H_

#include <memory>

#include "data/dataset.h"
#include "emb/model.h"

namespace exea::emb {

struct BootstrapOptions {
  size_t rounds = 3;
  // Pseudo-seed promotion: mutual-best pairs with similarity >= threshold.
  double similarity_threshold = 0.7;
  // Cap on pseudo-seeds added per round (highest-similarity first).
  size_t max_new_per_round = 200;
};

struct BootstrapResult {
  std::unique_ptr<EAModel> model;   // the final trained model
  kg::AlignmentSet pseudo_seeds;    // pseudo-labels active in the last round
  size_t rounds_run = 0;
  std::vector<size_t> promoted_per_round;
};

// Runs the loop starting from `prototype` (used via CloneUntrained; the
// prototype itself is not modified).
BootstrapResult Bootstrap(const EAModel& prototype,
                          const data::EaDataset& dataset,
                          const BootstrapOptions& options);

}  // namespace exea::emb

#endif  // EXEA_EMB_BOOTSTRAPPING_H_
