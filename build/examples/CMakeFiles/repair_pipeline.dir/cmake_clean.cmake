file(REMOVE_RECURSE
  "CMakeFiles/repair_pipeline.dir/repair_pipeline.cpp.o"
  "CMakeFiles/repair_pipeline.dir/repair_pipeline.cpp.o.d"
  "repair_pipeline"
  "repair_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
