file(REMOVE_RECURSE
  "libexea_data.a"
)
