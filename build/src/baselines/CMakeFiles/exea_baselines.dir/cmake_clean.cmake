file(REMOVE_RECURSE
  "CMakeFiles/exea_baselines.dir/anchor.cc.o"
  "CMakeFiles/exea_baselines.dir/anchor.cc.o.d"
  "CMakeFiles/exea_baselines.dir/ealime.cc.o"
  "CMakeFiles/exea_baselines.dir/ealime.cc.o.d"
  "CMakeFiles/exea_baselines.dir/eashapley.cc.o"
  "CMakeFiles/exea_baselines.dir/eashapley.cc.o.d"
  "CMakeFiles/exea_baselines.dir/exea_explainer_adapter.cc.o"
  "CMakeFiles/exea_baselines.dir/exea_explainer_adapter.cc.o.d"
  "CMakeFiles/exea_baselines.dir/exhaustive.cc.o"
  "CMakeFiles/exea_baselines.dir/exhaustive.cc.o.d"
  "CMakeFiles/exea_baselines.dir/explainer.cc.o"
  "CMakeFiles/exea_baselines.dir/explainer.cc.o.d"
  "CMakeFiles/exea_baselines.dir/lore.cc.o"
  "CMakeFiles/exea_baselines.dir/lore.cc.o.d"
  "CMakeFiles/exea_baselines.dir/perturbation.cc.o"
  "CMakeFiles/exea_baselines.dir/perturbation.cc.o.d"
  "libexea_baselines.a"
  "libexea_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
