#include "util/flags.h"

#include <limits>

#include "util/logging.h"
#include "util/parse.h"
#include "util/string_util.h"

namespace exea {

StatusOr<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("stray '--' argument");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      // find() returned a real position, so the split below stays in range
      // no matter what bytes argv carried.
      EXEA_CHECK(eq < body.size());
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // A flag with no following value (end of argv, or another flag next)
    // is a boolean switch: stored as "true" so Has()/GetString see it.
    if (i + 1 >= argc || StartsWith(argv[i + 1], "--")) {
      flags.values_[body] = "true";
      continue;
    }
    flags.values_[body] = argv[++i];
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  int64_t value = 0;
  if (!util::ParseInt64(it->second, std::numeric_limits<int64_t>::min(),
                        std::numeric_limits<int64_t>::max(), &value)
           .ok()) {
    return fallback;
  }
  return value;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double value = 0;
  if (!util::ParseDouble(it->second, std::numeric_limits<double>::lowest(),
                         std::numeric_limits<double>::max(), &value)
           .ok()) {
    return fallback;
  }
  return value;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace exea
