// SimilarityIndex: the search-strategy seam between "score a query
// against an embedding table" and "how that scan is executed".
//
// Two implementations:
//
//   * ExactIndex — today's dense top-k scan with the table's inverse
//     norms precomputed once at construction. Exact by definition; the
//     results are bit-identical to la::TopKByCosineAll at a fixed
//     EXEA_SIMD level.
//   * IvfIndex — an IVF-style cluster-pruned approximate index: a
//     k-means coarse quantizer partitions the table rows into posting
//     lists, a query probes its `nprobe` nearest centroids, and the
//     rows in the probed lists are re-ranked with the exact cosine
//     kernel. Recall is tunable via nprobe; nprobe == num_clusters
//     degenerates to the exact scan (same candidates, same comparator,
//     bit-identical output).
//
// Approximate results are permitted ONLY behind this interface: callers
// that opt into an IvfIndex accept that rows outside the probed lists
// are invisible to that query. Everything else (training, eval,
// repair) keeps calling the exact la::TopKByCosineAll entry points.
//
// Determinism: construction and queries are deterministic functions of
// (table bytes, options, EXEA_SIMD level) — k-means is seeded through
// exea::Rng, iteration counts are fixed, and assignment/probing ties
// break on the lower index. Same seed ⇒ byte-identical serialized
// index (pinned by index_test).
//
// Both index types borrow the table (and IvfIndex its trained data);
// the borrowed objects must outlive the index and must not be moved
// while it is alive — a Matrix move would leave the stored pointer
// dangling. serve::SnapshotModel owns all three with matching
// lifetimes.

#ifndef EXEA_LA_SIMILARITY_INDEX_H_
#define EXEA_LA_SIMILARITY_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "la/similarity.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace exea::la {

class SimilarityIndex {
 public:
  virtual ~SimilarityIndex() = default;

  // Stable strategy name ("exact", "ivf"); surfaced in align responses
  // and the serving stats op.
  virtual const char* name() const = 0;

  // Number of table rows this index searches over.
  virtual size_t size() const = 0;

  // For every row of `queries`, the top-k table rows by cosine, sorted
  // by ScoredLess (score desc, index asc). Result rows have
  // min(k, candidates) entries; an approximate index may consider fewer
  // candidates than the full table. queries.cols() must match the
  // table. Thread-safe for concurrent callers.
  virtual std::vector<std::vector<ScoredIndex>> TopKAll(
      const Matrix& queries, size_t k) const = 0;
};

// The exact dense scan behind the SimilarityIndex interface. Borrows
// `table`; precomputes inverse norms once.
class ExactIndex final : public SimilarityIndex {
 public:
  // `registry` receives index.* counters; nullptr → Registry::Global().
  explicit ExactIndex(const Matrix* table, obs::Registry* registry = nullptr);

  // Shard constructor: scans only rows [row_begin, row_end) but reports
  // GLOBAL row ids, so per-shard results over a disjoint partition
  // concatenate into the full-table ranking (see TopKRangeWithNorms).
  ExactIndex(const Matrix* table, size_t row_begin, size_t row_end,
             obs::Registry* registry = nullptr);

  const char* name() const override { return "exact"; }
  size_t size() const override;
  std::vector<std::vector<ScoredIndex>> TopKAll(const Matrix& queries,
                                                size_t k) const override;

 private:
  const Matrix* table_;
  size_t row_begin_;
  size_t row_end_;
  std::vector<float> inv_norms_;  // one per range row
  obs::Registry* registry_;
};

// Tuning knobs for IVF training and probing.
struct IvfOptions {
  // Coarse-quantizer size; 0 → ceil(sqrt(rows)), clamped to [1, rows].
  size_t num_clusters = 0;
  // Posting lists probed per query, clamped to [1, num_clusters].
  size_t nprobe = 8;
  // Fixed k-means refinement rounds (no convergence test: a data-
  // dependent stopping rule would make construction input-shape
  // fragile; a fixed count keeps it deterministic and predictable).
  size_t iterations = 10;
  // Seed for the exea::Rng that picks the initial centroids.
  uint64_t seed = 42;
};

// The trained, serializable part of an IVF index: a value type so
// serve::SnapshotBundle can carry it by copy/move independently of the
// table it was trained on.
struct IvfIndexData {
  Matrix centroids;                        // num_clusters x dim
  std::vector<std::vector<uint32_t>> lists;  // row ids per centroid, ascending
  uint32_t nprobe = 0;                     // default probe width at query time
  uint32_t iterations = 0;                 // provenance: training rounds
  uint64_t seed = 0;                       // provenance: init seed
  bool empty() const { return centroids.rows() == 0; }
};

// Trains the coarse quantizer over `table` (spherical k-means on
// L2-normalized rows). Deterministic in (table, options); zero-norm
// rows land in the list of the first centroid they tie with (index 0's
// bias is harmless — they score 0 against everything anyway).
IvfIndexData TrainIvfIndex(const Matrix& table, const IvfOptions& options);

// Restricts trained index data to the rows in [row_begin, row_end):
// centroids and probe width are shared, posting lists keep only the ids
// inside the range (still GLOBAL ids, still ascending). The result does
// not satisfy ValidateIvfIndexData's full-coverage contract — it is an
// internal shard view over already-validated data, consumed only by the
// sharded engine's per-shard IvfIndex.
IvfIndexData ShardIvfIndexData(const IvfIndexData& data, size_t row_begin,
                               size_t row_end);

// Structural validation of `data` against the table it claims to index:
// centroid/table dim match, every row id < table_rows, each row in
// exactly one list, sane nprobe. Everything Load* or ReadSnapshot
// accepts must pass this before a query runs.
[[nodiscard]] Status ValidateIvfIndexData(const IvfIndexData& data,
                                          size_t table_rows,
                                          size_t table_cols);

// Plain-text persistence, same %.9g discipline as matrix_io (byte-exact
// round trip, deterministic bytes for deterministic data).
[[nodiscard]] Status SaveIvfIndexData(const IvfIndexData& data,
                                      const std::string& path);
[[nodiscard]] StatusOr<IvfIndexData> LoadIvfIndexData(const std::string& path);

// Query-side view over a trained IvfIndexData and the table it indexes
// (both borrowed). Callers must have validated `data` against `table`.
class IvfIndex final : public SimilarityIndex {
 public:
  // `registry` receives index.* counters; nullptr → Registry::Global().
  IvfIndex(const Matrix* table, const IvfIndexData* data,
           obs::Registry* registry = nullptr);

  const char* name() const override { return "ivf"; }
  // Rows reachable through the posting lists — the whole table for
  // fully-validated data, the shard's slice for ShardIvfIndexData views.
  size_t size() const override;
  std::vector<std::vector<ScoredIndex>> TopKAll(const Matrix& queries,
                                                size_t k) const override;

  size_t num_clusters() const;
  size_t nprobe() const { return nprobe_; }
  // Overrides the persisted probe width (clamped to [1, num_clusters]).
  void set_nprobe(size_t nprobe);

 private:
  const Matrix* table_;
  const IvfIndexData* data_;
  std::vector<float> inv_norms_;
  size_t nprobe_;
  size_t indexed_rows_;
  obs::Registry* registry_;
};

// Scatter-gather composition over K child indexes built on disjoint row
// ranges of one table. TopKAll fans a batch out to every shard (on the
// calling thread's pool via util::ParallelFor — nested use inlines) and
// k-way merges per query with the canonical ScoredLess order. With
// exact shards the merge is bit-identical to the single-shard exact
// scan: ScoredLess is a strict total order, so every global top-k row
// survives its own shard's top-k and the re-sort reproduces the
// full-scan prefix exactly. With IVF shards each shard probes its own
// nprobe lists, so recall is >= the single IVF index but candidate sets
// may differ — the exactness contract is per-shard, not global.
//
// name() reports the children's common strategy name ("exact"/"ivf") so
// align responses stay byte-identical across shard counts; shard
// structure is surfaced through num_shards()/engine_status instead.
//
// When `metric_prefix` is non-empty, per-shard scan wall times are
// recorded into "span.<metric_prefix>.<i>" histograms and the merge into
// "span.<metric_prefix>.merge" (the serving engine passes
// "serve.shard").
class ShardedIndex final : public SimilarityIndex {
 public:
  // `shards` must be non-empty, built over disjoint ranges of one table,
  // and share a strategy name.
  ShardedIndex(std::vector<std::unique_ptr<SimilarityIndex>> shards,
               std::string metric_prefix = "",
               obs::Registry* registry = nullptr);

  const char* name() const override;
  size_t size() const override;  // sum of child sizes
  std::vector<std::vector<ScoredIndex>> TopKAll(const Matrix& queries,
                                                size_t k) const override;

  size_t num_shards() const { return shards_.size(); }
  const SimilarityIndex& shard(size_t i) const { return *shards_[i]; }

 private:
  std::vector<std::unique_ptr<SimilarityIndex>> shards_;
  std::string metric_prefix_;
  obs::Registry* registry_;
};

}  // namespace exea::la

#endif  // EXEA_LA_SIMILARITY_INDEX_H_
