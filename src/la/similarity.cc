#include "la/similarity.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace exea::la {
namespace {

// Precomputes per-row inverse norms; zero rows get 0 so their similarity
// collapses to 0 instead of NaN.
std::vector<float> RowInverseNorms(const Matrix& m) {
  std::vector<float> inv(m.rows());
  for (size_t i = 0; i < m.rows(); ++i) {
    float norm = Norm(m.Row(i), m.cols());
    inv[i] = norm > 1e-12f ? 1.0f / norm : 0.0f;
  }
  return inv;
}

bool ScoredLess(const ScoredIndex& a, const ScoredIndex& b) {
  // Descending score, ascending index.
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b) {
  EXEA_CHECK_EQ(a.cols(), b.cols());
  std::vector<float> inv_a = RowInverseNorms(a);
  std::vector<float> inv_b = RowInverseNorms(b);
  Matrix out(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      orow[j] = Dot(arow, b.Row(j), a.cols()) * inv_a[i] * inv_b[j];
    }
  }
  return out;
}

std::vector<ScoredIndex> TopKByCosine(const float* query, const Matrix& table,
                                      size_t k) {
  std::vector<ScoredIndex> scored;
  scored.reserve(table.rows());
  float qnorm = Norm(query, table.cols());
  float qinv = qnorm > 1e-12f ? 1.0f / qnorm : 0.0f;
  for (size_t j = 0; j < table.rows(); ++j) {
    const float* row = table.Row(j);
    float rnorm = Norm(row, table.cols());
    float rinv = rnorm > 1e-12f ? 1.0f / rnorm : 0.0f;
    scored.push_back(
        {static_cast<uint32_t>(j), Dot(query, row, table.cols()) * qinv * rinv});
  }
  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    ScoredLess);
  scored.resize(keep);
  return scored;
}

std::vector<std::vector<ScoredIndex>> TopKByCosineAll(const Matrix& queries,
                                                      const Matrix& table,
                                                      size_t k) {
  EXEA_CHECK_EQ(queries.cols(), table.cols());
  std::vector<float> inv_t = RowInverseNorms(table);
  std::vector<std::vector<ScoredIndex>> out(queries.rows());
  for (size_t i = 0; i < queries.rows(); ++i) {
    const float* q = queries.Row(i);
    float qnorm = Norm(q, queries.cols());
    float qinv = qnorm > 1e-12f ? 1.0f / qnorm : 0.0f;
    std::vector<ScoredIndex> scored;
    scored.reserve(table.rows());
    for (size_t j = 0; j < table.rows(); ++j) {
      scored.push_back({static_cast<uint32_t>(j),
                        Dot(q, table.Row(j), table.cols()) * qinv * inv_t[j]});
    }
    size_t keep = std::min(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                      ScoredLess);
    scored.resize(keep);
    out[i] = std::move(scored);
  }
  return out;
}

int64_t ArgMaxCosine(const float* query, const Matrix& table) {
  if (table.rows() == 0) return -1;
  std::vector<ScoredIndex> top = TopKByCosine(query, table, 1);
  return top.empty() ? -1 : static_cast<int64_t>(top[0].index);
}

}  // namespace exea::la
