#include "baselines/lore.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"
#include "util/rng.h"

namespace exea::baselines {
namespace {

struct Sample {
  std::vector<bool> mask;
  bool label = false;
};

// A tiny binary decision tree over boolean features (gini splitting).
struct TreeNode {
  int feature = -1;  // -1: leaf
  bool prediction = false;
  double importance = 0.0;  // gini gain at this split
  std::unique_ptr<TreeNode> if_present;  // feature == 1 branch
  std::unique_ptr<TreeNode> if_absent;   // feature == 0 branch
};

double Gini(size_t positives, size_t total) {
  if (total == 0) return 0.0;
  double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

std::unique_ptr<TreeNode> BuildTree(const std::vector<const Sample*>& samples,
                                    size_t num_features, size_t depth,
                                    const LoreOptions& options) {
  auto node = std::make_unique<TreeNode>();
  size_t positives = 0;
  for (const Sample* s : samples) positives += s->label ? 1 : 0;
  node->prediction = positives * 2 >= samples.size();
  if (depth == 0 || samples.size() < options.min_samples_split ||
      positives == 0 || positives == samples.size()) {
    return node;
  }
  double parent_gini = Gini(positives, samples.size());
  double best_gain = 1e-9;
  int best_feature = -1;
  for (size_t f = 0; f < num_features; ++f) {
    size_t present = 0;
    size_t present_pos = 0;
    for (const Sample* s : samples) {
      if (s->mask[f]) {
        ++present;
        present_pos += s->label ? 1 : 0;
      }
    }
    size_t absent = samples.size() - present;
    size_t absent_pos = positives - present_pos;
    if (present == 0 || absent == 0) continue;
    double weighted =
        (static_cast<double>(present) * Gini(present_pos, present) +
         static_cast<double>(absent) * Gini(absent_pos, absent)) /
        static_cast<double>(samples.size());
    double gain = parent_gini - weighted;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = static_cast<int>(f);
    }
  }
  if (best_feature < 0) return node;
  node->feature = best_feature;
  node->importance = best_gain;
  std::vector<const Sample*> present_samples;
  std::vector<const Sample*> absent_samples;
  for (const Sample* s : samples) {
    (s->mask[static_cast<size_t>(best_feature)] ? present_samples
                                                : absent_samples)
        .push_back(s);
  }
  node->if_present =
      BuildTree(present_samples, num_features, depth - 1, options);
  node->if_absent =
      BuildTree(absent_samples, num_features, depth - 1, options);
  return node;
}

// Features along the decision path of `instance` (root to leaf).
void DecisionPath(const TreeNode* node, const std::vector<bool>& instance,
                  std::vector<int>& path) {
  while (node != nullptr && node->feature >= 0) {
    path.push_back(node->feature);
    node = instance[static_cast<size_t>(node->feature)]
               ? node->if_present.get()
               : node->if_absent.get();
  }
}

void CollectImportance(const TreeNode* node, std::vector<double>& importance) {
  if (node == nullptr || node->feature < 0) return;
  importance[static_cast<size_t>(node->feature)] += node->importance;
  CollectImportance(node->if_present.get(), importance);
  CollectImportance(node->if_absent.get(), importance);
}

}  // namespace

ExplainerResult LoreExplainer::Explain(
    kg::EntityId e1, kg::EntityId e2,
    const std::vector<kg::Triple>& candidates1,
    const std::vector<kg::Triple>& candidates2, size_t budget) {
  size_t n1 = candidates1.size();
  size_t n = n1 + candidates2.size();
  if (n == 0) return {};
  Rng rng(options_.seed ^ (static_cast<uint64_t>(e1) << 32 | e2));

  double full_sim =
      embedder_->PerturbedSimilarity(e1, candidates1, e2, candidates2);
  double threshold = options_.threshold_ratio * full_sim;

  auto classify = [&](const std::vector<bool>& mask) {
    std::vector<kg::Triple> kept1;
    std::vector<kg::Triple> kept2;
    for (size_t i = 0; i < n1; ++i) {
      if (mask[i]) kept1.push_back(candidates1[i]);
    }
    for (size_t i = n1; i < n; ++i) {
      if (mask[i]) kept2.push_back(candidates2[i - n1]);
    }
    return embedder_->PerturbedSimilarity(e1, kept1, e2, kept2) >= threshold;
  };

  std::vector<bool> instance(n, true);  // the unperturbed neighbourhood

  // Genetic neighbourhood generation: two subpopulations, one selected for
  // label-preserving closeness to the instance, one for counterfactuals.
  auto hamming_closeness = [&](const std::vector<bool>& mask) {
    size_t same = 0;
    for (size_t i = 0; i < n; ++i) same += mask[i] == instance[i] ? 1 : 0;
    return static_cast<double>(same) / static_cast<double>(n);
  };
  auto fitness = [&](const Sample& s, bool want_positive) {
    bool satisfied = s.label == want_positive;
    return (satisfied ? 1.0 : 0.0) + 0.5 * hamming_closeness(s.mask);
  };

  std::vector<Sample> neighborhood;
  for (bool want_positive : {true, false}) {
    std::vector<Sample> population(options_.population);
    for (Sample& s : population) {
      s.mask.resize(n);
      for (size_t i = 0; i < n; ++i) s.mask[i] = rng.Bernoulli(0.5);
      s.label = classify(s.mask);
    }
    for (size_t g = 0; g < options_.generations; ++g) {
      // Tournament selection + uniform crossover + mutation.
      std::vector<Sample> next;
      next.reserve(population.size());
      auto tournament = [&]() -> const Sample& {
        const Sample& a = population[rng.UniformInt(population.size())];
        const Sample& b = population[rng.UniformInt(population.size())];
        return fitness(a, want_positive) >= fitness(b, want_positive) ? a : b;
      };
      while (next.size() < population.size()) {
        const Sample& mother = tournament();
        const Sample& father = tournament();
        Sample child;
        child.mask.resize(n);
        for (size_t i = 0; i < n; ++i) {
          child.mask[i] = rng.Bernoulli(0.5) ? mother.mask[i]
                                             : father.mask[i];
          if (rng.Bernoulli(options_.mutation_rate)) {
            child.mask[i] = !child.mask[i];
          }
        }
        child.label = classify(child.mask);
        next.push_back(std::move(child));
      }
      population = std::move(next);
    }
    neighborhood.insert(neighborhood.end(), population.begin(),
                        population.end());
  }
  // The instance itself is part of the neighbourhood.
  neighborhood.push_back({instance, classify(instance)});

  std::vector<const Sample*> sample_ptrs;
  sample_ptrs.reserve(neighborhood.size());
  for (const Sample& s : neighborhood) sample_ptrs.push_back(&s);
  std::unique_ptr<TreeNode> tree =
      BuildTree(sample_ptrs, n, options_.tree_depth, options_);

  // Scores: decision-path features first (by path order), then global tree
  // importance as tie-filler.
  std::vector<double> scores(n, 0.0);
  std::vector<double> importance(n, 0.0);
  CollectImportance(tree.get(), importance);
  for (size_t f = 0; f < n; ++f) scores[f] = importance[f];
  std::vector<int> path;
  DecisionPath(tree.get(), instance, path);
  double boost = static_cast<double>(n + path.size());
  for (int f : path) {
    scores[static_cast<size_t>(f)] += boost;
    boost -= 1.0;
  }
  return SelectTopTriples(candidates1, candidates2, scores, budget);
}

}  // namespace exea::baselines
