// Full EA-repair walkthrough: trains each of the four models on a
// benchmark, runs the three-stage ExEA repair pipeline, and reports the
// per-stage statistics and accuracy improvements (the Table III scenario
// as a narrative tool).
//
// Usage: repair_pipeline [BENCHMARK] [SCALE]

#include <cstdio>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "explain/exea.h"
#include "repair/diff.h"
#include "repair/pipeline.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace exea;
  SetMinLogLevel(LogLevel::kWarning);

  std::string benchmark_name = argc > 1 ? argv[1] : "ZH-EN";
  std::string scale_name = argc > 2 ? argv[2] : "small";
  data::EaDataset dataset =
      data::MakeBenchmark(data::BenchmarkFromName(benchmark_name),
                          data::ScaleFromName(scale_name));
  std::printf("%s (%s): %zu test pairs\n\n", dataset.name.c_str(),
              scale_name.c_str(), dataset.test.size());

  std::printf("%-10s %7s %7s %7s | %6s %6s %6s %6s %8s\n", "model", "base",
              "ExEA", "Δacc", "1:n", "swaps", "lowcf", "greedy", "time(s)");
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kAlignE,
        emb::ModelKind::kGcnAlign, emb::ModelKind::kDualAmn}) {
    std::unique_ptr<emb::EAModel> model = emb::MakeDefaultModel(kind);
    model->Train(dataset);

    explain::ExeaConfig config;
    explain::ExeaExplainer explainer(dataset, *model, config);
    repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
    WallTimer timer;
    repair::RepairReport report = pipeline.Run();
    std::printf("%-10s %7.3f %7.3f %+7.3f | %6zu %6zu %6zu %6zu %8.2f\n",
                model->name().c_str(), report.base_accuracy,
                report.repaired_accuracy, report.AccuracyGain(),
                report.one_to_many_conflicts, report.one_to_many_swaps,
                report.low_confidence_removed,
                report.greedy_fallback_matches, timer.ElapsedSeconds());
    repair::AlignmentDiff diff = repair::CompareAlignments(
        report.base_alignment, report.repaired_alignment, dataset.test_gold);
    std::printf("           edits: %s\n", diff.ToString().c_str());
  }
  return 0;
}
