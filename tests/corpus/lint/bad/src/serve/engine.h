// Part of the seeded layering fixture: the include target of the upward
// edge in util/upward.h, and one half of the include cycle with impl.h
// → include-cycle.
#ifndef EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_ENGINE_H_
#define EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_ENGINE_H_

#include "serve/impl.h"

#endif  // EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_ENGINE_H_
