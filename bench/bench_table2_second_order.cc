// Table II: explanation generation with candidate triples within the
// second order (2 hops), Dual-AMN only. EAShapley switches to its
// KernelSHAP estimator here, exactly as in the paper.
//
// Paper shape: ExEA stays high (> 0.92 everywhere) while every baseline
// drops sharply in the enlarged candidate space.

#include <cstdio>

#include "bench/common.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Table II — explanation generation, candidates within second order",
      "ExEA paper Table II (Section V-B3)");

  data::Scale scale = data::ScaleFromEnv();
  bench::ExplanationBenchOptions options;
  options.hops = 2;
  options.num_samples = bench::SamplesFromEnv(30);

  bench::Table table({"model", "dataset", "method", "fidelity", "sparsity"});
  for (data::Benchmark benchmark : data::AllBenchmarks()) {
    data::EaDataset dataset = data::MakeBenchmark(benchmark, scale);
    std::unique_ptr<emb::EAModel> model =
        bench::TrainModel(emb::ModelKind::kDualAmn, dataset);
    std::vector<bench::MethodResult> results =
        bench::RunExplanationBench(dataset, *model, options);
    for (const bench::MethodResult& row : results) {
      table.AddRow({model->name(), dataset.name, row.method,
                    bench::Table::Fmt(row.fidelity),
                    bench::Table::Fmt(row.sparsity)});
    }
    table.AddSeparator();
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table II, fidelity, Dual-AMN):\n"
      "  ZH-EN: EALime 0.391  EAShapley 0.449  Anchor 0.428  LORE 0.430  "
      "ExEA 0.921\n"
      "Expected shape: ExEA far ahead; baselines degrade vs Table I.\n");
  return 0;
}
