#ifndef CONC_UTIL_HANDLER_H_
#define CONC_UTIL_HANDLER_H_

namespace demo::util {

// Handles one ready event; runs on the loop thread.
void Process(int fd);

// Joins outstanding work; only ever called off the loop thread.
void Finish(int fd);

// Configured blocking in tools/lint_concurrency.txt.
void BlockingFetch(int fd);

}  // namespace demo::util

#endif  // CONC_UTIL_HANDLER_H_
