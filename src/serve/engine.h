// QueryEngine: the online half of the serving subsystem. Loads a snapshot
// bundle once, then answers per-entity / per-pair queries against the
// frozen pipeline state:
//
//   align(e)          — served alignment of a source entity plus the top-k
//                       embedding-similarity candidates (batched lookups
//                       run through la::TopKByCosineAll, which fans out on
//                       the process-wide util::ThreadPool),
//   explain(e1, e2)   — the ExEA matching subgraph + ADG for a pair,
//                       rendered to JSON; by far the expensive path, so
//                       results go through an LRU cache,
//   neighbors(e)      — the KG edges around an entity,
//   repair_status(e1, e2) — what the repair pipeline did to a pair.
//
// Explanations are generated with the same AlignmentContext the offline
// CLI uses (raw inference output + seed alignment), so a served `explain`
// response is byte-identical to the offline pipeline's answer for the same
// pair — serve_test pins this.
//
// Deadlines: every query takes a deadline (0 = none). The engine checks it
// at entry and again before each expensive stage; an expired deadline
// returns DEADLINE_EXCEEDED instead of blocking the request loop. A cached
// explanation is always served (the cache read is cheaper than the check
// is worth).

#ifndef EXEA_SERVE_ENGINE_H_
#define EXEA_SERVE_ENGINE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "explain/exea.h"
#include "serve/snapshot.h"
#include "util/check.h"
#include "util/timer.h"

namespace exea::serve {

struct EngineOptions {
  size_t explain_cache_capacity = 256;  // entries; 0 disables caching
  size_t top_k = 5;                     // candidates returned by align
};

// A per-request time budget. `seconds <= 0` means no deadline.
class Deadline {
 public:
  explicit Deadline(double seconds) : seconds_(seconds) {}
  static Deadline None() { return Deadline(0); }

  bool Expired() const {
    return seconds_ > 0 && timer_.ElapsedSeconds() > seconds_;
  }

 private:
  double seconds_;
  WallTimer timer_;
};

struct AlignResult {
  std::string source;
  // Served (repaired) targets; usually one, empty if the entity was never
  // aligned.
  std::vector<std::string> aligned;
  // Top-k KG2 entities by embedding cosine, descending.
  std::vector<std::pair<std::string, double>> candidates;
};

struct ExplainResult {
  std::string json;         // {"explanation":...,"adg":...}
  double confidence = 0.0;  // the ADG's Eq. (9) confidence
  bool cache_hit = false;
};

struct NeighborEdge {
  std::string relation;
  std::string neighbor;
  bool outgoing = true;
};

struct NeighborsResult {
  std::string entity;
  std::vector<NeighborEdge> edges;
};

struct RepairStatusResult {
  bool in_base = false;      // pair was in the raw inference output
  bool in_repaired = false;  // pair survived (or was added by) repair
  // "kept" | "removed" | "replaced" | "added" | "absent"
  std::string verdict;
  // Where the source is aligned after repair (context for removed/replaced).
  std::vector<std::string> repaired_targets;
};

struct EngineStats {
  uint64_t explain_cache_hits = 0;
  uint64_t explain_cache_misses = 0;
  size_t explain_cache_size = 0;
};

class QueryEngine {
 public:
  // Loads the bundle at `dir` (version + checksum verified) and builds the
  // explainer state once.
  [[nodiscard]] static StatusOr<std::unique_ptr<QueryEngine>> Open(
      const std::string& dir, const EngineOptions& options);

  // In-process construction from an already-loaded bundle (tests, benches).
  static std::unique_ptr<QueryEngine> FromBundle(
      std::unique_ptr<SnapshotBundle> bundle, const EngineOptions& options);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // `source` is a KG1 entity name. NOT_FOUND for unknown names.
  [[nodiscard]] StatusOr<AlignResult> Align(const std::string& source,
                              const Deadline& deadline) const;

  // Batched variant: one TopKByCosineAll dispatch for all sources (the
  // thread pool splits the rows), then per-source assembly.
  [[nodiscard]] StatusOr<std::vector<AlignResult>> AlignBatch(
      const std::vector<std::string>& sources, const Deadline& deadline) const;

  // `source` in KG1, `target` in KG2, both by name.
  [[nodiscard]] StatusOr<ExplainResult> Explain(const std::string& source,
                                  const std::string& target,
                                  const Deadline& deadline) const;

  // `side` is 1 (KG1) or 2 (KG2).
  [[nodiscard]]
  StatusOr<NeighborsResult> Neighbors(const std::string& entity, int side,
                                      const Deadline& deadline) const;

  [[nodiscard]]
  StatusOr<RepairStatusResult> RepairStatus(const std::string& source,
                                            const std::string& target,
                                            const Deadline& deadline) const;

  EngineStats stats() const;
  void ClearExplainCache();  // benches: measure the cold path repeatedly

  const SnapshotBundle& bundle() const { return *bundle_; }

 private:
  QueryEngine(std::unique_ptr<SnapshotBundle> bundle,
              const EngineOptions& options);

  [[nodiscard]]
  StatusOr<kg::EntityId> ResolveSource(const std::string& name) const;
  [[nodiscard]]
  StatusOr<kg::EntityId> ResolveTarget(const std::string& name) const;

  std::unique_ptr<SnapshotBundle> bundle_;
  EngineOptions options_;
  SnapshotModel model_;
  explain::ExeaExplainer explainer_;
  explain::AlignmentContext context_;

  // LRU cache over rendered explanations, keyed by (e1, e2). The list is
  // most-recent-first; the map points into it.
  struct CacheEntry {
    uint64_t key = 0;
    std::string json;
    double confidence = 0.0;
  };

  // Inserts a freshly rendered explanation and evicts over capacity.
  // Callers hold cache_mu_ (the "Locked" suffix convention).
  void InsertExplainCacheLocked(uint64_t key, const ExplainResult& result)
      const EXEA_REQUIRES(cache_mu_);

  // cache_mu_ protects everything declared after it (the class convention
  // the lock-discipline lint pass enforces).
  mutable std::mutex cache_mu_;
  mutable std::list<CacheEntry> cache_lru_ EXEA_GUARDED_BY(cache_mu_);
  mutable std::unordered_map<uint64_t, std::list<CacheEntry>::iterator>
      cache_index_ EXEA_GUARDED_BY(cache_mu_);
  mutable uint64_t cache_hits_ EXEA_GUARDED_BY(cache_mu_) = 0;
  mutable uint64_t cache_misses_ EXEA_GUARDED_BY(cache_mu_) = 0;
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_ENGINE_H_
