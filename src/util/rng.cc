#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace exea {

uint64_t Rng::Next() {
  // SplitMix64 step.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::UniformInt(uint64_t bound) {
  EXEA_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  EXEA_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; caches the second variate.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  if (k >= n) {
    Shuffle(indices);
    return indices;
  }
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace exea
