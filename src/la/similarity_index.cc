#include "la/similarity_index.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "la/simd.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace exea::la {
namespace {

// Same fixed-block grain as similarity.cc; see the determinism note
// there.
constexpr size_t kRowGrain = 16;

obs::Registry& Reg(obs::Registry* registry) {
  return registry != nullptr ? *registry : obs::Registry::Global();
}

// L2-normalized copy of `table` (zero rows stay zero).
Matrix NormalizedCopy(const Matrix& table) {
  std::vector<float> inv = RowInverseNorms(table);
  Matrix out(table.rows(), table.cols());
  util::ParallelFor(0, table.rows(), kRowGrain, [&](size_t i) {
    const float* src = table.Row(i);
    float* dst = out.Row(i);
    for (size_t c = 0; c < table.cols(); ++c) {
      dst[c] = src[c] * inv[i];
    }
  });
  return out;
}

// Argmax_c dot(row, centroid_c), ties to the lower centroid index.
size_t NearestCentroid(const float* row, const Matrix& centroids,
                       const SimdOps& ops) {
  size_t best = 0;
  float best_dot = ops.dot(row, centroids.Row(0), centroids.cols());
  for (size_t c = 1; c < centroids.rows(); ++c) {
    float d = ops.dot(row, centroids.Row(c), centroids.cols());
    if (d > best_dot) {
      best_dot = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// ExactIndex
// ---------------------------------------------------------------------------

ExactIndex::ExactIndex(const Matrix* table, obs::Registry* registry)
    : ExactIndex(table, 0, table != nullptr ? table->rows() : 0, registry) {}

ExactIndex::ExactIndex(const Matrix* table, size_t row_begin, size_t row_end,
                       obs::Registry* registry)
    : table_(table),
      row_begin_(row_begin),
      row_end_(row_end),
      inv_norms_(RowInverseNormsRange(*table, row_begin, row_end)),
      registry_(registry) {
  EXEA_CHECK(table != nullptr);
  EXEA_CHECK_LE(row_begin_, row_end_);
  EXEA_CHECK_LE(row_end_, table_->rows());
}

size_t ExactIndex::size() const { return row_end_ - row_begin_; }

std::vector<std::vector<ScoredIndex>> ExactIndex::TopKAll(
    const Matrix& queries, size_t k) const {
  obs::Span span(registry_, "la.index.exact.topk");
  EXEA_CHECK_EQ(queries.cols(), table_->cols());
  Reg(registry_).GetCounter("index.exact.queries").Increment(queries.rows());
  std::vector<std::vector<ScoredIndex>> out(queries.rows());
  util::ParallelFor(0, queries.rows(), kRowGrain, [&](size_t i) {
    out[i] = TopKRangeWithNorms(queries.Row(i), *table_, inv_norms_,
                                row_begin_, row_end_, k);
  });
  return out;
}

// ---------------------------------------------------------------------------
// IVF training
// ---------------------------------------------------------------------------

IvfIndexData TrainIvfIndex(const Matrix& table, const IvfOptions& options) {
  IvfIndexData data;
  size_t rows = table.rows();
  size_t dim = table.cols();
  if (rows == 0) return data;

  size_t k = options.num_clusters;
  if (k == 0) {
    k = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(rows))));
  }
  k = std::max<size_t>(1, std::min(k, rows));

  const SimdOps& ops = ActiveSimdOps();
  Matrix normalized = NormalizedCopy(table);

  // Seeded init: k distinct rows, taken in ascending id order so the
  // starting centroids do not depend on the sampler's output order.
  Rng rng(options.seed);
  std::vector<size_t> init = rng.SampleWithoutReplacement(rows, k);
  std::sort(init.begin(), init.end());
  Matrix centroids(k, dim);
  for (size_t c = 0; c < k; ++c) {
    const float* src = normalized.Row(init[c]);
    std::copy(src, src + dim, centroids.Row(c));
  }

  // Lloyd rounds: parallel deterministic assignment, serial centroid
  // accumulation (fixed order), spherical re-normalization. A cluster
  // that loses all members keeps its previous centroid.
  std::vector<size_t> assign(rows, 0);
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    util::ParallelFor(0, rows, kRowGrain, [&](size_t i) {
      assign[i] = NearestCentroid(normalized.Row(i), centroids, ops);
    });
    Matrix sums(k, dim);
    std::vector<size_t> members(k, 0);
    for (size_t i = 0; i < rows; ++i) {
      float* dst = sums.Row(assign[i]);
      const float* src = normalized.Row(i);
      for (size_t c = 0; c < dim; ++c) dst[c] += src[c];
      ++members[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (members[c] == 0) continue;
      float* row = sums.Row(c);
      float norm = std::sqrt(ops.dot(row, row, dim));
      if (norm <= 1e-12f) continue;
      float inv = 1.0f / norm;
      float* dst = centroids.Row(c);
      for (size_t d = 0; d < dim; ++d) dst[d] = row[d] * inv;
    }
  }

  // Final assignment builds the posting lists; ascending ids per list
  // by construction (canonical serialized form).
  util::ParallelFor(0, rows, kRowGrain, [&](size_t i) {
    assign[i] = NearestCentroid(normalized.Row(i), centroids, ops);
  });
  data.centroids = std::move(centroids);
  data.lists.assign(k, {});
  for (size_t i = 0; i < rows; ++i) {
    data.lists[assign[i]].push_back(static_cast<uint32_t>(i));
  }
  data.nprobe = static_cast<uint32_t>(
      std::max<size_t>(1, std::min(options.nprobe, k)));
  data.iterations = static_cast<uint32_t>(options.iterations);
  data.seed = options.seed;
  return data;
}

IvfIndexData ShardIvfIndexData(const IvfIndexData& data, size_t row_begin,
                               size_t row_end) {
  EXEA_CHECK_LE(row_begin, row_end);
  IvfIndexData shard;
  shard.centroids = data.centroids;
  shard.lists.assign(data.lists.size(), {});
  for (size_t c = 0; c < data.lists.size(); ++c) {
    for (uint32_t id : data.lists[c]) {
      if (id >= row_begin && id < row_end) shard.lists[c].push_back(id);
    }
  }
  shard.nprobe = data.nprobe;
  shard.iterations = data.iterations;
  shard.seed = data.seed;
  return shard;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

Status ValidateIvfIndexData(const IvfIndexData& data, size_t table_rows,
                            size_t table_cols) {
  if (data.empty()) {
    return Status::InvalidArgument("ivf index: no centroids");
  }
  if (data.centroids.cols() != table_cols) {
    std::ostringstream msg;
    msg << "ivf index: centroid dim " << data.centroids.cols()
        << " != table dim " << table_cols;
    return Status::InvalidArgument(msg.str());
  }
  if (data.lists.size() != data.centroids.rows()) {
    std::ostringstream msg;
    msg << "ivf index: " << data.lists.size() << " posting lists for "
        << data.centroids.rows() << " centroids";
    return Status::InvalidArgument(msg.str());
  }
  if (data.nprobe == 0 || data.nprobe > data.centroids.rows()) {
    std::ostringstream msg;
    msg << "ivf index: nprobe " << data.nprobe << " outside [1, "
        << data.centroids.rows() << "]";
    return Status::InvalidArgument(msg.str());
  }
  // Every table row in exactly one list, ascending within each list.
  std::vector<bool> seen(table_rows, false);
  size_t total = 0;
  for (size_t c = 0; c < data.lists.size(); ++c) {
    const std::vector<uint32_t>& list = data.lists[c];
    for (size_t p = 0; p < list.size(); ++p) {
      uint32_t id = list[p];
      if (id >= table_rows) {
        std::ostringstream msg;
        msg << "ivf index: list " << c << " references row " << id
            << " beyond table of " << table_rows;
        return Status::InvalidArgument(msg.str());
      }
      if (p > 0 && list[p - 1] >= id) {
        std::ostringstream msg;
        msg << "ivf index: list " << c << " not strictly ascending at row "
            << id;
        return Status::InvalidArgument(msg.str());
      }
      if (seen[id]) {
        std::ostringstream msg;
        msg << "ivf index: row " << id << " appears in more than one list";
        return Status::InvalidArgument(msg.str());
      }
      seen[id] = true;
      ++total;
    }
  }
  if (total != table_rows) {
    std::ostringstream msg;
    msg << "ivf index: lists cover " << total << " of " << table_rows
        << " table rows";
    return Status::InvalidArgument(msg.str());
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Persistence (same text discipline as matrix_io.cc)
// ---------------------------------------------------------------------------

Status SaveIvfIndexData(const IvfIndexData& data, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  size_t rows = 0;
  for (const auto& list : data.lists) rows += list.size();
  std::fprintf(out, "exea_ivf_index 1\n");
  std::fprintf(out, "%zu %zu %zu %" PRIu32 " %" PRIu32 " %" PRIu64 "\n",
               data.centroids.rows(), data.centroids.cols(), rows,
               data.nprobe, data.iterations, data.seed);
  for (size_t c = 0; c < data.centroids.rows(); ++c) {
    const float* row = data.centroids.Row(c);
    for (size_t d = 0; d < data.centroids.cols(); ++d) {
      std::fprintf(out, "%s%.9g", d == 0 ? "" : " ",
                   static_cast<double>(row[d]));
    }
    std::fprintf(out, "\n");
  }
  for (const auto& list : data.lists) {
    std::fprintf(out, "%zu", list.size());
    for (uint32_t id : list) std::fprintf(out, " %" PRIu32, id);
    std::fprintf(out, "\n");
  }
  bool ok = std::fflush(out) == 0;
  std::fclose(out);
  if (!ok) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<IvfIndexData> LoadIvfIndexData(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string magic;
  uint64_t version = 0;
  if (!(in >> magic >> version) || magic != "exea_ivf_index" || version != 1) {
    return Status::InvalidArgument("bad ivf index header in " + path);
  }
  size_t clusters = 0;
  size_t dim = 0;
  size_t rows = 0;
  IvfIndexData data;
  if (!(in >> clusters >> dim >> rows >> data.nprobe >> data.iterations >>
        data.seed)) {
    return Status::InvalidArgument("bad ivf index dimensions in " + path);
  }
  // Same pre-allocation guard as LoadMatrix: refuse absurd sizes before
  // allocating, with division so the product cannot wrap.
  constexpr uint64_t kMaxElements = 100'000'000;
  if (clusters == 0 || dim == 0 || clusters > kMaxElements ||
      dim > kMaxElements || clusters > kMaxElements / dim ||
      rows > kMaxElements) {
    std::ostringstream msg;
    msg << path << ": implausible ivf index shape " << clusters << "x" << dim
        << " over " << rows << " rows";
    return Status::InvalidArgument(msg.str());
  }
  data.centroids = Matrix(clusters, dim);
  for (size_t c = 0; c < clusters; ++c) {
    float* row = data.centroids.Row(c);
    for (size_t d = 0; d < dim; ++d) {
      if (!(in >> row[d])) {
        std::ostringstream msg;
        msg << path << ": truncated centroid " << c;
        return Status::InvalidArgument(msg.str());
      }
    }
  }
  data.lists.assign(clusters, {});
  size_t total = 0;
  for (size_t c = 0; c < clusters; ++c) {
    size_t len = 0;
    if (!(in >> len) || len > rows) {
      std::ostringstream msg;
      msg << path << ": bad posting list length for list " << c;
      return Status::InvalidArgument(msg.str());
    }
    data.lists[c].resize(len);
    for (size_t p = 0; p < len; ++p) {
      if (!(in >> data.lists[c][p])) {
        std::ostringstream msg;
        msg << path << ": truncated posting list " << c;
        return Status::InvalidArgument(msg.str());
      }
    }
    total += len;
  }
  if (total != rows) {
    std::ostringstream msg;
    msg << path << ": posting lists cover " << total << " rows, header says "
        << rows;
    return Status::InvalidArgument(msg.str());
  }
  return data;
}

// ---------------------------------------------------------------------------
// IvfIndex queries
// ---------------------------------------------------------------------------

IvfIndex::IvfIndex(const Matrix* table, const IvfIndexData* data,
                   obs::Registry* registry)
    : table_(table),
      data_(data),
      inv_norms_(RowInverseNorms(*table)),
      nprobe_(data->nprobe),
      indexed_rows_(0),
      registry_(registry) {
  EXEA_CHECK(table != nullptr);
  EXEA_CHECK(data != nullptr);
  EXEA_CHECK(!data->empty());
  nprobe_ = std::max<size_t>(1, std::min(nprobe_, num_clusters()));
  for (const auto& list : data_->lists) indexed_rows_ += list.size();
}

size_t IvfIndex::size() const { return indexed_rows_; }

size_t IvfIndex::num_clusters() const { return data_->centroids.rows(); }

void IvfIndex::set_nprobe(size_t nprobe) {
  nprobe_ = std::max<size_t>(1, std::min(nprobe, num_clusters()));
}

std::vector<std::vector<ScoredIndex>> IvfIndex::TopKAll(const Matrix& queries,
                                                        size_t k) const {
  obs::Span span(registry_, "la.index.ivf.topk");
  EXEA_CHECK_EQ(queries.cols(), table_->cols());
  const SimdOps& ops = ActiveSimdOps();
  size_t nq = queries.rows();

  // Stage 1 — probe: rank centroids per query, keep the nprobe nearest.
  // Centroid scoring reuses the exact top-k machinery, so probe order
  // ties break on the lower centroid id like every other ranking.
  std::vector<float> centroid_inv = RowInverseNorms(data_->centroids);
  std::vector<std::vector<ScoredIndex>> probes(nq);
  {
    obs::Span probe_span(registry_, "probe");
    util::ParallelFor(0, nq, kRowGrain, [&](size_t i) {
      probes[i] =
          TopKWithNorms(queries.Row(i), data_->centroids, centroid_inv,
                        nprobe_);
    });
  }

  // Stage 2 — re-rank: exact cosine over the union of probed lists.
  // The score expression matches TopKWithNorms bit for bit, so
  // nprobe == num_clusters reproduces ExactIndex output exactly.
  std::vector<std::vector<ScoredIndex>> out(nq);
  std::vector<size_t> scanned(nq, 0);
  {
    obs::Span rerank_span(registry_, "rerank");
    util::ParallelFor(0, nq, kRowGrain, [&](size_t i) {
      const float* query = queries.Row(i);
      float qnorm = std::sqrt(ops.dot(query, query, table_->cols()));
      float qinv = qnorm > 1e-12f ? 1.0f / qnorm : 0.0f;
      std::vector<ScoredIndex> scored;
      for (const ScoredIndex& probe : probes[i]) {
        for (uint32_t id : data_->lists[probe.index]) {
          scored.push_back(
              {id, ops.dot(query, table_->Row(id), table_->cols()) * qinv *
                       inv_norms_[id]});
        }
      }
      scanned[i] = scored.size();
      size_t keep = std::min(k, scored.size());
      std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                        ScoredLess);
      scored.resize(keep);
      out[i] = std::move(scored);
    });
  }

  obs::Registry& reg = Reg(registry_);
  reg.GetCounter("index.ivf.queries").Increment(nq);
  reg.GetCounter("index.recall_probe").Increment(nq * nprobe_);
  size_t candidates = 0;
  for (size_t s : scanned) candidates += s;
  reg.GetCounter("index.ivf.candidates").Increment(candidates);
  return out;
}

// ---------------------------------------------------------------------------
// ShardedIndex scatter-gather
// ---------------------------------------------------------------------------

ShardedIndex::ShardedIndex(std::vector<std::unique_ptr<SimilarityIndex>> shards,
                           std::string metric_prefix, obs::Registry* registry)
    : shards_(std::move(shards)),
      metric_prefix_(std::move(metric_prefix)),
      registry_(registry) {
  EXEA_CHECK(!shards_.empty());
  for (const auto& shard : shards_) {
    EXEA_CHECK(shard != nullptr);
    // A mixed fleet would make name() ambiguous and the merge contract
    // (per-shard exactness class) unclear; the engine never builds one.
    EXEA_CHECK_EQ(std::string(shard->name()), std::string(shards_[0]->name()));
  }
}

const char* ShardedIndex::name() const { return shards_[0]->name(); }

size_t ShardedIndex::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::vector<std::vector<ScoredIndex>> ShardedIndex::TopKAll(
    const Matrix& queries, size_t k) const {
  // Scatter: every shard scans the whole batch over its own row range.
  // Per-shard timings go to explicit histogram paths (not nested Spans)
  // so the metric name is stable no matter which thread runs the shard.
  std::vector<std::vector<std::vector<ScoredIndex>>> parts(shards_.size());
  util::ParallelFor(0, shards_.size(), /*grain=*/1, [&](size_t s) {
    WallTimer timer;
    parts[s] = shards_[s]->TopKAll(queries, k);
    if (!metric_prefix_.empty()) {
      Reg(registry_)
          .GetHistogram("span." + metric_prefix_ + "." + std::to_string(s))
          .Record(timer.ElapsedMillis());
    }
  });

  // Gather: concatenate the disjoint per-shard candidates and re-sort
  // with the canonical comparator. ScoredLess is a strict total order
  // (unique row ids break score ties), so for exact shards this prefix
  // is bit-identical to the single-shard full scan's.
  WallTimer merge_timer;
  std::vector<std::vector<ScoredIndex>> out(queries.rows());
  util::ParallelFor(0, queries.rows(), kRowGrain, [&](size_t i) {
    std::vector<ScoredIndex> merged;
    for (size_t s = 0; s < parts.size(); ++s) {
      merged.insert(merged.end(), parts[s][i].begin(), parts[s][i].end());
    }
    size_t keep = std::min(k, merged.size());
    std::partial_sort(merged.begin(), merged.begin() + keep, merged.end(),
                      ScoredLess);
    merged.resize(keep);
    out[i] = std::move(merged);
  });
  if (!metric_prefix_.empty()) {
    Reg(registry_)
        .GetHistogram("span." + metric_prefix_ + ".merge")
        .Record(merge_timer.ElapsedMillis());
  }
  return out;
}

}  // namespace exea::la
