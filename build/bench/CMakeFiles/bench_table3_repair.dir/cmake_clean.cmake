file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_repair.dir/bench_table3_repair.cc.o"
  "CMakeFiles/bench_table3_repair.dir/bench_table3_repair.cc.o.d"
  "bench_table3_repair"
  "bench_table3_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
