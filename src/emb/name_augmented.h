// NameAugmentedModel — the paper's stated future-work direction
// ("we plan to take the side features of entities into consideration",
// Section VII), implemented as a decorator over any structure-only
// EAModel: entity representations are extended with character-n-gram name
// embeddings, so similarity blends structural and textual signals.
//
// The decorator preserves the EAModel contract, so the entire
// explanation/repair stack works on it unchanged — which is exactly the
// point of the paper's model-agnostic design.

#ifndef EXEA_EMB_NAME_AUGMENTED_H_
#define EXEA_EMB_NAME_AUGMENTED_H_

#include <memory>
#include <string>

#include "emb/model.h"

namespace exea::emb {

class NameAugmentedModel : public EAModel {
 public:
  // Wraps (and owns) `base`. `name_weight` in [0, 1] controls the blend:
  // 0 reproduces the base model, 1 uses names only. The name-embedding
  // block is scaled so that cosine similarity decomposes as
  //   (1 - w) * structural_cos + w * name_cos
  // when both blocks are unit-normalized.
  NameAugmentedModel(std::unique_ptr<EAModel> base, double name_weight,
                     size_t name_dim = 64);

  std::string name() const override;
  void Train(const data::EaDataset& dataset) override;
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override;
  bool HasRelationEmbeddings() const override {
    return base_->HasRelationEmbeddings();
  }
  // Relation embeddings are zero-padded to the augmented entity width so
  // the Eq. (2) path-embedding contract (equal dimensionalities) holds.
  const la::Matrix& RelationEmbeddings(kg::KgSide side) const override;
  bool IsTranslationBased() const override {
    return base_->IsTranslationBased();
  }
  std::unique_ptr<EAModel> CloneUntrained() const override;

  const EAModel& base() const { return *base_; }

 private:
  la::Matrix Augment(const kg::KnowledgeGraph& graph,
                     const la::Matrix& structural) const;

  std::unique_ptr<EAModel> base_;
  double name_weight_;
  size_t name_dim_;
  la::Matrix augmented1_;
  la::Matrix augmented2_;
  la::Matrix padded_rel1_;
  la::Matrix padded_rel2_;
};

}  // namespace exea::emb

#endif  // EXEA_EMB_NAME_AUGMENTED_H_
