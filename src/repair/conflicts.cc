#include "repair/conflicts.h"

#include "util/logging.h"

namespace exea::repair {

RelationConflictChecker::RelationConflictChecker(
    const data::EaDataset& dataset, RelationAlignment relation_alignment,
    NegRuleSet rules1, NegRuleSet rules2)
    : dataset_(&dataset),
      relation_alignment_(std::move(relation_alignment)),
      rules1_(std::move(rules1)),
      rules2_(std::move(rules2)) {}

RelationConflictChecker RelationConflictChecker::Mine(
    const data::EaDataset& dataset, const emb::EAModel& model) {
  RelationAlignmentOptions options;
  return RelationConflictChecker(
      dataset, MineRelationAlignment(dataset, model, options),
      MineNegRules(dataset.kg1), MineNegRules(dataset.kg2));
}

namespace {

// Does `graph` contain an out-edge (head, other_rel, expected_tail) with a
// ¬sameAs rule between `cross_rel` and other_rel? That completes the
//   (head, cross_rel, y) ∧ (head, other_rel, z) ∧ rule → (y ¬sameAs z)
// inference with z == expected_tail.
bool RuleFires(const kg::KnowledgeGraph& graph, const NegRuleSet& rules,
               kg::EntityId head, kg::RelationId cross_rel,
               kg::EntityId expected_tail) {
  if (cross_rel == kg::kInvalidRelation) return false;
  for (const kg::AdjacentEdge& edge : graph.Edges(head)) {
    if (!edge.outgoing) continue;
    if (edge.neighbor != expected_tail) continue;
    if (edge.rel == cross_rel) continue;
    if (rules.Contains(cross_rel, edge.rel)) return true;
  }
  return false;
}

}  // namespace

std::vector<size_t> RelationConflictChecker::FindConflictingNeighbors(
    const explain::Explanation& explanation, const explain::Adg& adg) const {
  const kg::KnowledgeGraph& kg1 = dataset_->kg1;
  const kg::KnowledgeGraph& kg2 = dataset_->kg2;
  kg::EntityId e1 = adg.e1;
  kg::EntityId e2 = adg.e2;

  std::vector<size_t> conflicting;
  for (size_t n = 0; n < adg.neighbors.size(); ++n) {
    const explain::AdgNode& node = adg.neighbors[n];
    bool conflict = false;
    for (const explain::AdgEdge& edge : node.edges) {
      if (edge.influence != explain::EdgeInfluence::kStrong) continue;
      const explain::MatchedPathPair& match =
          explanation.matches[edge.match_index];
      EXEA_CHECK_EQ(match.p1.length(), 1u);
      EXEA_CHECK_EQ(match.p2.length(), 1u);
      const kg::PathStep& step1 = match.p1.steps[0];
      const kg::PathStep& step2 = match.p2.steps[0];
      kg::EntityId n1 = node.e1;
      kg::EntityId n2 = node.e2;

      // --- cross triples from the source-side triple into KG2 ------------
      kg::RelationId r2_cross = relation_alignment_.TargetOf(step1.rel);
      if (!step1.outgoing) {
        // KG1 triple (n1, r1, e1): cross triple (n2, r2_cross, e1). A KG2
        // edge (n2, r2'', e2) with rule(r2_cross, r2'') infers
        // (e1 ¬sameAs e2), contradicting the central pair.
        conflict |= RuleFires(kg2, rules2_, n2, r2_cross, e2);
      } else {
        // KG1 triple (e1, r1, n1): cross triple (e2, r2_cross, n2). A KG2
        // edge (e2, r2'', n2) with rule(r2_cross, r2'') infers
        // (n2 ¬sameAs n2), an internal contradiction implicating the node.
        conflict |= RuleFires(kg2, rules2_, e2, r2_cross, n2);
      }

      // --- cross triples from the target-side triple into KG1 ------------
      kg::RelationId r1_cross = relation_alignment_.SourceOf(step2.rel);
      if (!step2.outgoing) {
        // KG2 triple (n2, r2, e2): cross triple (n1, r1_cross, e2); a KG1
        // edge (n1, r1'', e1) with rule(r1_cross, r1'') infers
        // (e2 ¬sameAs e1).
        conflict |= RuleFires(kg1, rules1_, n1, r1_cross, e1);
      } else {
        conflict |= RuleFires(kg1, rules1_, e1, r1_cross, n1);
      }
      if (conflict) break;
    }
    if (conflict) conflicting.push_back(n);
  }
  return conflicting;
}

size_t RelationConflictChecker::PruneConflicts(
    const explain::Explanation& explanation, explain::Adg& adg,
    const explain::ExeaConfig& config) const {
  std::vector<size_t> conflicting =
      FindConflictingNeighbors(explanation, adg);
  // Erase from the back so indices stay valid.
  for (auto it = conflicting.rbegin(); it != conflicting.rend(); ++it) {
    adg.neighbors.erase(adg.neighbors.begin() +
                        static_cast<ptrdiff_t>(*it));
  }
  explain::RecomputeConfidence(adg, config);
  return conflicting.size();
}

}  // namespace exea::repair
