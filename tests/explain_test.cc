// Tests for the explanation core: Eq. (2) path embeddings, bidirectional
// mutual-best matching, ADG edge classification/weights (Eqs. (3)-(7)),
// the Eq. (8)/(9) confidence — including the Fig. 2 worked example — and
// the ExeaExplainer facade.

#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "explain/adg.h"
#include "explain/config.h"
#include "explain/exea.h"
#include "explain/matcher.h"
#include "explain/path_embedding.h"
#include "la/vector_ops.h"

namespace exea::explain {
namespace {

// ---------------------------------------------------------- path embedding

TEST(PathEmbeddingTest, SingleStepFormula) {
  la::Matrix ent(2, 2);
  ent.SetRow(0, {2, 4});
  ent.SetRow(1, {9, 9});  // terminal: excluded from the entity mean
  la::Matrix rel(1, 2);
  rel.SetRow(0, {1, -1});
  kg::RelationPath path;
  path.source = 0;
  path.steps.push_back({0, /*outgoing=*/true, 1});
  la::Vec p = PathEmbedding(path, ent, rel);
  ASSERT_EQ(p.size(), 4u);
  // n = 1: entity part = e_source; relation part = r.
  EXPECT_NEAR(p[0], 2.0f, 1e-6f);
  EXPECT_NEAR(p[1], 4.0f, 1e-6f);
  EXPECT_NEAR(p[2], 1.0f, 1e-6f);
  EXPECT_NEAR(p[3], -1.0f, 1e-6f);
}

TEST(PathEmbeddingTest, TwoStepAveragesInternalEntities) {
  la::Matrix ent(3, 1);
  ent.SetRow(0, {2});
  ent.SetRow(1, {4});
  ent.SetRow(2, {100});  // terminal, excluded
  la::Matrix rel(2, 1);
  rel.SetRow(0, {3});
  rel.SetRow(1, {5});
  kg::RelationPath path;
  path.source = 0;
  path.steps.push_back({0, true, 1});
  path.steps.push_back({1, true, 2});
  la::Vec p = PathEmbedding(path, ent, rel);
  // entity part = (e0 + e1)/2 = 3; relation part = (r0 + r1)/2 = 4.
  EXPECT_NEAR(p[0], 3.0f, 1e-6f);
  EXPECT_NEAR(p[1], 4.0f, 1e-6f);
}

TEST(PathEmbeddingTest, BackwardStepNegatesRelation) {
  la::Matrix ent(2, 1);
  ent.SetRow(0, {1});
  la::Matrix rel(1, 1);
  rel.SetRow(0, {7});
  kg::RelationPath forward;
  forward.source = 0;
  forward.steps.push_back({0, true, 1});
  kg::RelationPath backward;
  backward.source = 0;
  backward.steps.push_back({0, false, 1});
  EXPECT_NEAR(PathEmbedding(forward, ent, rel)[1], 7.0f, 1e-6f);
  EXPECT_NEAR(PathEmbedding(backward, ent, rel)[1], -7.0f, 1e-6f);
}

// ----------------------------------------------------------------- matcher

TEST(AlignmentContextTest, MergesSeedsAndResults) {
  kg::AlignmentSet result;
  result.Add(1, 10);
  kg::AlignmentSet seeds;
  seeds.Add(2, 20);
  AlignmentContext context(&result, &seeds);
  EXPECT_TRUE(context.AreAligned(1, 10));
  EXPECT_TRUE(context.AreAligned(2, 20));
  EXPECT_FALSE(context.AreAligned(1, 20));
  EXPECT_EQ(context.AlignedTargets(1), (std::vector<kg::EntityId>{10}));
  EXPECT_EQ(context.AlignedSources(20), (std::vector<kg::EntityId>{2}));
}

// Builds a PathsWithEmbeddings fixture from (target, embedding) pairs; all
// paths single-step from `source`.
PathsWithEmbeddings MakePaths(
    kg::EntityId source,
    const std::vector<std::pair<kg::EntityId, la::Vec>>& entries) {
  PathsWithEmbeddings out;
  for (const auto& [target, embedding] : entries) {
    kg::RelationPath path;
    path.source = source;
    path.steps.push_back({0, true, target});
    out.paths.push_back(path);
    out.embeddings.push_back(embedding);
  }
  return out;
}

TEST(MatcherTest, MutualBestPairsMatch) {
  // Side 1 paths to neighbours 10, 11; side 2 to 20, 21.
  // Alignment: 10<->20, 11<->21. Embeddings make (10,20) and (11,21)
  // mutually best.
  PathsWithEmbeddings side1 =
      MakePaths(1, {{10, {1, 0}}, {11, {0, 1}}});
  PathsWithEmbeddings side2 =
      MakePaths(2, {{20, {1, 0.1f}}, {21, {0.1f, 1}}});
  kg::AlignmentSet result;
  result.Add(10, 20);
  result.Add(11, 21);
  AlignmentContext context(&result, nullptr);
  Explanation e = MatchPaths(1, 2, side1, side2, context);
  ASSERT_EQ(e.matches.size(), 2u);
  EXPECT_EQ(e.matches[0].p1.target(), 10u);
  EXPECT_EQ(e.matches[0].p2.target(), 20u);
  EXPECT_EQ(e.matches[1].p1.target(), 11u);
  EXPECT_EQ(e.matches[1].p2.target(), 21u);
  EXPECT_EQ(e.triples1.size(), 2u);
  EXPECT_EQ(e.triples2.size(), 2u);
}

TEST(MatcherTest, UnalignedNeighborsNeverMatch) {
  PathsWithEmbeddings side1 = MakePaths(1, {{10, {1, 0}}});
  PathsWithEmbeddings side2 = MakePaths(2, {{20, {1, 0}}});
  AlignmentContext context(nullptr, nullptr);  // no alignment knowledge
  Explanation e = MatchPaths(1, 2, side1, side2, context);
  EXPECT_TRUE(e.empty());
}

TEST(MatcherTest, NonMutualBestRejected) {
  // Both side-1 paths prefer side-2 path A, but A prefers only one of
  // them; the loser stays unmatched.
  PathsWithEmbeddings side1 =
      MakePaths(1, {{10, {1, 0}}, {11, {0.9f, 0.1f}}});
  PathsWithEmbeddings side2 = MakePaths(2, {{20, {1, 0}}});
  kg::AlignmentSet result;
  result.Add(10, 20);
  result.Add(11, 20);
  AlignmentContext context(&result, nullptr);
  Explanation e = MatchPaths(1, 2, side1, side2, context);
  ASSERT_EQ(e.matches.size(), 1u);
  EXPECT_EQ(e.matches[0].p1.target(), 10u);
}

TEST(MatcherTest, SimilarityRecorded) {
  PathsWithEmbeddings side1 = MakePaths(1, {{10, {1, 0}}});
  PathsWithEmbeddings side2 = MakePaths(2, {{20, {1, 1}}});
  kg::AlignmentSet result;
  result.Add(10, 20);
  AlignmentContext context(&result, nullptr);
  Explanation e = MatchPaths(1, 2, side1, side2, context);
  ASSERT_EQ(e.matches.size(), 1u);
  EXPECT_NEAR(e.matches[0].similarity, 1.0f / std::sqrt(2.0f), 1e-5f);
}

// --------------------------------------------------------------------- ADG

// Fixture KGs for weight computation:
// KG1: (n1, r1, e1) — neighbour is head, so weight uses func-side logic.
// KG2: (n2, r2, e2).
struct AdgFixture {
  kg::KnowledgeGraph kg1;
  kg::KnowledgeGraph kg2;
  kg::EntityId e1, n1, e2, n2;
  kg::RelationId r1, r2;

  AdgFixture() {
    e1 = kg1.AddEntity("e1");
    n1 = kg1.AddEntity("n1");
    r1 = kg1.AddRelation("r1");
    kg1.AddTriple(n1, r1, e1);
    e2 = kg2.AddEntity("e2");
    n2 = kg2.AddEntity("n2");
    r2 = kg2.AddRelation("r2");
    kg2.AddTriple(n2, r2, e2);
  }

  // The explanation: one matched single-step path pair e1<-n1 / e2<-n2.
  Explanation MakeExplanation() const {
    Explanation e;
    e.e1 = e1;
    e.e2 = e2;
    MatchedPathPair match;
    match.p1.source = e1;
    match.p1.steps.push_back({r1, /*outgoing=*/false, n1});
    match.p2.source = e2;
    match.p2.steps.push_back({r2, /*outgoing=*/false, n2});
    match.similarity = 0.9f;
    e.matches.push_back(match);
    return e;
  }
};

TEST(AdgTest, PathWeightUsesFuncForIncoming) {
  AdgFixture fx;
  kg::RelationFunctionality func(fx.kg1);
  kg::RelationPath incoming;
  incoming.source = fx.e1;
  incoming.steps.push_back({fx.r1, false, fx.n1});
  EXPECT_DOUBLE_EQ(PathWeight(incoming, func), func.Func(fx.r1));
  kg::RelationPath outgoing;
  outgoing.source = fx.n1;
  outgoing.steps.push_back({fx.r1, true, fx.e1});
  EXPECT_DOUBLE_EQ(PathWeight(outgoing, func), func.InverseFunc(fx.r1));
}

TEST(AdgTest, PathWeightMultipliesSteps) {
  // Chain a -r-> b -r-> c where r has func/ifunc below 1.
  kg::KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddTriple("b", "r", "c");
  g.AddTriple("a", "r", "c");  // lowers ifunc: 3 triples, 3 tails... adjust
  g.AddTriple("x", "r", "b");  // duplicate tail b: ifunc = 3/4
  kg::RelationFunctionality func(g);
  kg::RelationPath path;
  path.source = g.FindEntity("a");
  path.steps.push_back({g.FindRelation("r"), true, g.FindEntity("b")});
  path.steps.push_back({g.FindRelation("r"), true, g.FindEntity("c")});
  double step = func.InverseFunc(g.FindRelation("r"));
  EXPECT_DOUBLE_EQ(PathWeight(path, func), step * step);
}

TEST(AdgTest, StrongEdgeClassificationAndWeight) {
  AdgFixture fx;
  kg::RelationFunctionality func1(fx.kg1);
  kg::RelationFunctionality func2(fx.kg2);
  ExeaConfig config;
  Explanation e = fx.MakeExplanation();
  Adg adg = BuildAdg(
      e, func1, func2, [](kg::EntityId, kg::EntityId) { return 1.0; },
      config);
  ASSERT_EQ(adg.neighbors.size(), 1u);
  ASSERT_EQ(adg.neighbors[0].edges.size(), 1u);
  const AdgEdge& edge = adg.neighbors[0].edges[0];
  EXPECT_EQ(edge.influence, EdgeInfluence::kStrong);
  // Eq. (5): min(func1(r1), func2(r2)) = min(1, 1) = 1.
  EXPECT_DOUBLE_EQ(edge.weight, 1.0);
  EXPECT_TRUE(adg.HasStrongEdge());
}

TEST(AdgTest, Figure2WorkedExample) {
  // The paper's Fig. 2: two strongly-influential neighbour nodes with
  // influences 0.960 and 0.937 and edge weights 0.759 and 0.757 give
  // c = sigmoid(0.960*0.759 + 0.937*0.757) = 0.808.
  Adg adg;
  AdgNode a;
  a.influence = 0.960;
  a.edges.push_back({EdgeInfluence::kStrong, 0.759, 0});
  AdgNode b;
  b.influence = 0.937;
  b.edges.push_back({EdgeInfluence::kStrong, 0.757, 1});
  adg.neighbors = {a, b};
  ExeaConfig config;
  RecomputeConfidence(adg, config);
  EXPECT_NEAR(adg.strong_sum, 0.960 * 0.759 + 0.937 * 0.757, 1e-9);
  EXPECT_NEAR(adg.confidence, 0.808, 0.001);
}

TEST(AdgTest, ModerateEdgeAlphaDiscount) {
  AdgFixture fx;
  // Make p2 a two-step path: e2 <- n2 <- m2.
  kg::EntityId m2 = fx.kg2.AddEntity("m2");
  fx.kg2.AddTriple(m2, fx.r2, fx.n2);
  kg::RelationFunctionality func1(fx.kg1);
  kg::RelationFunctionality func2(fx.kg2);
  Explanation e = fx.MakeExplanation();
  e.matches[0].p2.steps.push_back({fx.r2, false, m2});
  ExeaConfig config;
  config.alpha = 0.5;
  Adg adg = BuildAdg(
      e, func1, func2, [](kg::EntityId, kg::EntityId) { return 1.0; },
      config);
  ASSERT_EQ(adg.neighbors[0].edges.size(), 1u);
  const AdgEdge& edge = adg.neighbors[0].edges[0];
  EXPECT_EQ(edge.influence, EdgeInfluence::kModerate);
  double w1 = PathWeight(e.matches[0].p1, func1);
  double w2 = PathWeight(e.matches[0].p2, func2);
  EXPECT_DOUBLE_EQ(edge.weight, 0.5 * std::min(w1, w2));
  EXPECT_FALSE(adg.HasStrongEdge());
}

TEST(AdgTest, WeakEdgeFixedWeight) {
  AdgFixture fx;
  kg::EntityId m1 = fx.kg1.AddEntity("m1");
  fx.kg1.AddTriple(m1, fx.r1, fx.n1);
  kg::EntityId m2 = fx.kg2.AddEntity("m2");
  fx.kg2.AddTriple(m2, fx.r2, fx.n2);
  kg::RelationFunctionality func1(fx.kg1);
  kg::RelationFunctionality func2(fx.kg2);
  Explanation e = fx.MakeExplanation();
  e.matches[0].p1.steps.push_back({fx.r1, false, m1});
  e.matches[0].p2.steps.push_back({fx.r2, false, m2});
  ExeaConfig config;
  config.weak_weight = 0.07;
  Adg adg = BuildAdg(
      e, func1, func2, [](kg::EntityId, kg::EntityId) { return 1.0; },
      config);
  const AdgEdge& edge = adg.neighbors[0].edges[0];
  EXPECT_EQ(edge.influence, EdgeInfluence::kWeak);
  EXPECT_DOUBLE_EQ(edge.weight, 0.07);
}

TEST(AdgTest, AdaptiveConfidenceEquation9) {
  // theta = 1.0: strong sum below theta pulls in moderate edges; gamma
  // gates weak edges similarly.
  ExeaConfig config;
  config.theta = 1.0;
  config.gamma = 0.2;
  Adg adg;
  AdgNode node;
  node.influence = 1.0;
  node.edges.push_back({EdgeInfluence::kStrong, 0.5, 0});
  node.edges.push_back({EdgeInfluence::kModerate, 0.3, 1});
  node.edges.push_back({EdgeInfluence::kWeak, 0.1, 2});
  adg.neighbors = {node};
  RecomputeConfidence(adg, config);
  // c_s = 0.5 < 1.0 -> add c_m = 0.3; c_m >= gamma=0.2 -> skip c_w.
  EXPECT_NEAR(adg.confidence, la::Sigmoid(0.8), 1e-9);

  config.gamma = 0.4;  // now c_m < gamma -> add c_w too
  RecomputeConfidence(adg, config);
  EXPECT_NEAR(adg.confidence, la::Sigmoid(0.9), 1e-9);

  config.theta = 0.4;  // c_s >= theta -> strong only
  RecomputeConfidence(adg, config);
  EXPECT_NEAR(adg.confidence, la::Sigmoid(0.5), 1e-9);
}

TEST(AdgTest, NoEvidenceConfidenceIsHalf) {
  Adg adg;
  ExeaConfig config;
  RecomputeConfidence(adg, config);
  EXPECT_DOUBLE_EQ(adg.confidence, 0.5);
  EXPECT_FALSE(adg.HasStrongEdge());
}

TEST(AdgTest, RemoveNeighborRecomputes) {
  Adg adg;
  AdgNode a;
  a.influence = 1.0;
  a.edges.push_back({EdgeInfluence::kStrong, 1.0, 0});
  AdgNode b;
  b.influence = 1.0;
  b.edges.push_back({EdgeInfluence::kStrong, 2.0, 1});
  adg.neighbors = {a, b};
  ExeaConfig config;
  RecomputeConfidence(adg, config);
  double before = adg.confidence;
  RemoveNeighbor(adg, 1, config);
  EXPECT_EQ(adg.neighbors.size(), 1u);
  EXPECT_LT(adg.confidence, before);
  EXPECT_NEAR(adg.confidence, la::Sigmoid(1.0), 1e-9);
}

TEST(AdgTest, NodesMergeMatchesWithSameTerminals) {
  AdgFixture fx;
  // Add a second relation between the same pair of entities on each side.
  kg::RelationId s1 = fx.kg1.AddRelation("s1");
  fx.kg1.AddTriple(fx.n1, s1, fx.e1);
  kg::RelationId s2 = fx.kg2.AddRelation("s2");
  fx.kg2.AddTriple(fx.n2, s2, fx.e2);
  Explanation e = fx.MakeExplanation();
  MatchedPathPair second;
  second.p1.source = fx.e1;
  second.p1.steps.push_back({s1, false, fx.n1});
  second.p2.source = fx.e2;
  second.p2.steps.push_back({s2, false, fx.n2});
  e.matches.push_back(second);
  kg::RelationFunctionality func1(fx.kg1);
  kg::RelationFunctionality func2(fx.kg2);
  Adg adg = BuildAdg(
      e, func1, func2, [](kg::EntityId, kg::EntityId) { return 1.0; },
      ExeaConfig{});
  ASSERT_EQ(adg.neighbors.size(), 1u);  // merged into one node
  EXPECT_EQ(adg.neighbors[0].edges.size(), 2u);
}

// ------------------------------------------------------------ ExeaExplainer

class ExplainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    model_ = emb::MakeDefaultModel(emb::ModelKind::kMTransE).release();
    model_->Train(*dataset_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static data::EaDataset* dataset_;
  static emb::EAModel* model_;
};

data::EaDataset* ExplainerTest::dataset_ = nullptr;
emb::EAModel* ExplainerTest::model_ = nullptr;

TEST_F(ExplainerTest, ExplainsGoldPairsWithSeedContext) {
  ExeaConfig config;
  ExeaExplainer explainer(*dataset_, *model_, config);
  // Context: gold alignment (as if the model were perfect).
  kg::AlignmentSet gold_set;
  for (const auto& [s, t] : dataset_->gold) gold_set.Add(s, t);
  AlignmentContext context(&gold_set, &dataset_->train);
  size_t non_empty = 0;
  for (size_t i = 0; i < 20; ++i) {
    const kg::AlignedPair& pair = dataset_->test[i];
    Explanation e = explainer.Explain(pair.source, pair.target, context);
    EXPECT_EQ(e.e1, pair.source);
    EXPECT_FALSE(e.candidates1.empty());
    if (!e.empty()) ++non_empty;
    // Explanation triples must be candidate triples.
    std::set<kg::Triple> candidates(e.candidates1.begin(),
                                    e.candidates1.end());
    for (const kg::Triple& t : e.triples1) {
      EXPECT_TRUE(candidates.count(t) > 0 || e.matches.empty());
    }
  }
  EXPECT_GE(non_empty, 15u) << "gold pairs should usually be explainable";
}

TEST_F(ExplainerTest, GoldPairsBeatMismatchedPairsOnConfidence) {
  ExeaConfig config;
  ExeaExplainer explainer(*dataset_, *model_, config);
  kg::AlignmentSet gold_set;
  for (const auto& [s, t] : dataset_->gold) gold_set.Add(s, t);
  AlignmentContext context(&gold_set, &dataset_->train);
  double gold_sum = 0.0;
  double wrong_sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i + 1 < 30; i += 2) {
    const kg::AlignedPair& a = dataset_->test[i];
    const kg::AlignedPair& b = dataset_->test[i + 1];
    gold_sum += explainer.Confidence(a.source, a.target, context);
    wrong_sum += explainer.Confidence(a.source, b.target, context);
    ++count;
  }
  EXPECT_GT(gold_sum / count, wrong_sum / count);
}

TEST_F(ExplainerTest, HopsControlCandidateScope) {
  ExeaConfig one_hop;
  one_hop.hops = 1;
  ExeaConfig two_hop;
  two_hop.hops = 2;
  ExeaExplainer explainer1(*dataset_, *model_, one_hop);
  ExeaExplainer explainer2(*dataset_, *model_, two_hop);
  kg::AlignmentSet empty;
  AlignmentContext context(&empty, &dataset_->train);
  const kg::AlignedPair& pair = dataset_->test[0];
  Explanation e1 = explainer1.Explain(pair.source, pair.target, context);
  Explanation e2 = explainer2.Explain(pair.source, pair.target, context);
  EXPECT_GT(e2.candidates1.size(), e1.candidates1.size());
}

TEST_F(ExplainerTest, RelationEmbeddingFallbackForGcn) {
  // GCN-Align has no relation embeddings; the explainer must synthesize
  // Eq. (1) embeddings with matching dimensionality.
  std::unique_ptr<emb::EAModel> gcn =
      emb::MakeDefaultModel(emb::ModelKind::kGcnAlign);
  gcn->Train(*dataset_);
  ExeaExplainer explainer(*dataset_, *gcn, ExeaConfig{});
  EXPECT_EQ(explainer.relation_embeddings1().rows(),
            dataset_->kg1.num_relations());
  EXPECT_EQ(explainer.relation_embeddings1().cols(),
            gcn->EntityEmbeddings(kg::KgSide::kSource).cols());
}

TEST(ExeaConfigTest, BetaIsSigmoidTheta) {
  ExeaConfig config;
  config.theta = 0.0;
  EXPECT_DOUBLE_EQ(config.LowConfidenceBeta(), 0.5);
  config.theta = 1.0;
  EXPECT_NEAR(config.LowConfidenceBeta(), la::Sigmoid(1.0), 1e-12);
}

}  // namespace
}  // namespace exea::explain
