// Minimal leveled logging and CHECK macros.
//
// Logging goes to stderr. The minimum level can be raised globally (e.g.
// benches silence INFO). CHECK macros abort on violation and are used for
// programming errors; recoverable errors use Status (see status.h).

#ifndef EXEA_UTIL_LOGGING_H_
#define EXEA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace exea {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Sets / reads the global minimum level. Messages below it are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

// Accumulates one log line and emits it on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows streamed values when a message is compiled out / disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace exea

#define EXEA_LOG(severity)                                             \
  ::exea::internal_logging::LogMessage(::exea::LogLevel::k##severity,  \
                                       __FILE__, __LINE__)             \
      .stream()

#define EXEA_CHECK(cond)                                                    \
  if (cond) {                                                               \
  } else                                                                    \
    ::exea::internal_logging::LogMessage(::exea::LogLevel::kFatal,          \
                                         __FILE__, __LINE__)                \
            .stream()                                                       \
        << "Check failed: " #cond " "

#define EXEA_CHECK_OP(lhs, rhs, op)                 \
  EXEA_CHECK((lhs)op(rhs)) << "(" << (lhs) << " vs " << (rhs) << ") "

#define EXEA_CHECK_EQ(lhs, rhs) EXEA_CHECK_OP(lhs, rhs, ==)
#define EXEA_CHECK_NE(lhs, rhs) EXEA_CHECK_OP(lhs, rhs, !=)
#define EXEA_CHECK_LT(lhs, rhs) EXEA_CHECK_OP(lhs, rhs, <)
#define EXEA_CHECK_LE(lhs, rhs) EXEA_CHECK_OP(lhs, rhs, <=)
#define EXEA_CHECK_GT(lhs, rhs) EXEA_CHECK_OP(lhs, rhs, >)
#define EXEA_CHECK_GE(lhs, rhs) EXEA_CHECK_OP(lhs, rhs, >=)

// Checks that a Status expression is OK; logs the status on failure.
#define EXEA_CHECK_OK(expr)                              \
  do {                                                   \
    ::exea::Status exea_check_ok_status_ = (expr);       \
    EXEA_CHECK(exea_check_ok_status_.ok())               \
        << exea_check_ok_status_.ToString();             \
  } while (false)

#endif  // EXEA_UTIL_LOGGING_H_
