// Micro-benchmarks (google-benchmark) for the hot kernels of the
// framework: similarity top-k, path enumeration, Eq. (2) path embedding +
// matching, ADG construction/confidence, and relation-functionality
// computation. Not tied to a paper table; used to track kernel
// regressions.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "explain/exea.h"
#include "kg/functionality.h"
#include "kg/neighborhood.h"
#include "la/similarity.h"
#include "util/rng.h"

namespace {

using namespace exea;

// Shared fixture state (built once).
struct State {
  data::EaDataset dataset;
  std::unique_ptr<emb::EAModel> model;
  std::unique_ptr<explain::ExeaExplainer> explainer;
  kg::AlignmentSet aligned;

  State() {
    dataset = data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
    model = bench::TrainModel(emb::ModelKind::kMTransE, dataset);
    explainer = std::make_unique<explain::ExeaExplainer>(
        dataset, *model, explain::ExeaConfig{});
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
    aligned = eval::GreedyAlign(ranked);
  }
};

State& GetState() {
  static State* state = new State();
  return *state;
}

void BM_TopKCosine(benchmark::State& state) {
  Rng rng(1);
  la::Matrix table(512, 32);
  table.FillNormal(rng, 1.0f);
  la::Vec query(32);
  for (float& v : query) v = rng.UniformFloat(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::TopKByCosine(query.data(), table, 10));
  }
}
BENCHMARK(BM_TopKCosine);

void BM_CosineSimilarityMatrix(benchmark::State& state) {
  Rng rng(2);
  la::Matrix a(128, 32);
  la::Matrix b(128, 32);
  a.FillNormal(rng, 1.0f);
  b.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CosineSimilarityMatrix(a, b));
  }
}
BENCHMARK(BM_CosineSimilarityMatrix);

void BM_PathEnumeration(benchmark::State& state) {
  State& s = GetState();
  kg::PathEnumerationOptions options;
  options.max_length = 2;
  kg::EntityId e = s.dataset.test_sources[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(kg::EnumeratePaths(s.dataset.kg1, e, options));
  }
}
BENCHMARK(BM_PathEnumeration);

void BM_RelationFunctionality(benchmark::State& state) {
  State& s = GetState();
  for (auto _ : state) {
    kg::RelationFunctionality func(s.dataset.kg1);
    benchmark::DoNotOptimize(func.Func(0));
  }
}
BENCHMARK(BM_RelationFunctionality);

void BM_ExplainPair(benchmark::State& state) {
  State& s = GetState();
  explain::AlignmentContext context(&s.aligned, &s.dataset.train);
  const kg::AlignedPair& pair = s.dataset.test[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.explainer->Explain(pair.source, pair.target, context));
  }
}
BENCHMARK(BM_ExplainPair);

void BM_AdgConfidence(benchmark::State& state) {
  State& s = GetState();
  explain::AlignmentContext context(&s.aligned, &s.dataset.train);
  const kg::AlignedPair& pair = s.dataset.test[0];
  explain::Explanation explanation =
      s.explainer->Explain(pair.source, pair.target, context);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.explainer->BuildAdg(explanation));
  }
}
BENCHMARK(BM_AdgConfidence);

void BM_TriplesWithinTwoHops(benchmark::State& state) {
  State& s = GetState();
  kg::EntityId e = s.dataset.test_sources[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(kg::TriplesWithinHops(s.dataset.kg1, e, 2));
  }
}
BENCHMARK(BM_TriplesWithinTwoHops);

}  // namespace

BENCHMARK_MAIN();
