# Empty dependencies file for bench_table5_llm_explain.
# This may be replaced when dependencies are built.
