// Adagrad over an embedding table. Adagrad suits sparse embedding updates:
// rows are touched irregularly and per-coordinate step scaling removes the
// need for learning-rate schedules.

#ifndef EXEA_EMB_OPTIMIZER_H_
#define EXEA_EMB_OPTIMIZER_H_

#include <vector>

#include "la/matrix.h"

namespace exea::emb {

class AdagradTable {
 public:
  // Wraps `table` (not owned; must outlive this object).
  AdagradTable(la::Matrix* table, float learning_rate);

  // Applies one gradient step to row `row`: table[row] -= lr * g / sqrt(G).
  // `grad` must have table->cols() entries.
  void Update(size_t row, const float* grad);

  float learning_rate() const { return learning_rate_; }

 private:
  la::Matrix* table_;
  float learning_rate_;
  std::vector<float> accum_;  // per-parameter squared-gradient sums
};

}  // namespace exea::emb

#endif  // EXEA_EMB_OPTIMIZER_H_
