// Tests for the simulated-LLM module: the oracle's designed failure modes
// (numeric insensitivity, stable hallucination), the LLM explanation
// baselines, and the three verifiers of Table VI.

#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/synthetic.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "llm/llm_baselines.h"
#include "llm/sim_llm.h"
#include "llm/verification.h"

namespace exea::llm {
namespace {

SimulatedLlmOptions NoHallucination() {
  SimulatedLlmOptions options;
  options.hallucination_rate = 0.0;
  return options;
}

// ---------------------------------------------------------------- sim LLM

TEST(SimLlmTest, ExactNamesMatch) {
  SimulatedLLM llm(NoHallucination());
  EXPECT_TRUE(llm.JudgeNamesEquivalent("zh/Gadget", "en/Gadget"));
  EXPECT_FALSE(llm.JudgeNamesEquivalent("zh/Gadget", "en/Widget"));
}

TEST(SimLlmTest, NumericInsensitivityFlaw) {
  SimulatedLLM llm(NoHallucination());
  // The paper's GeForce-300-vs-400 failure: digit-only differences are
  // invisible to the LLM.
  EXPECT_TRUE(llm.JudgeNamesEquivalent("zh/Widget_v300", "en/Widget_v400"));
  SimulatedLlmOptions strict = NoHallucination();
  strict.numeric_insensitive = false;
  SimulatedLLM careful(strict);
  EXPECT_FALSE(
      careful.JudgeNamesEquivalent("zh/Widget_v300", "en/Widget_v400"));
}

TEST(SimLlmTest, HallucinationIsStableAndRateBounded) {
  SimulatedLlmOptions options;
  options.hallucination_rate = 0.2;
  SimulatedLLM llm(options);
  size_t flips = 0;
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    std::string a = "zh/Entity_" + std::to_string(i);
    std::string b = "en/Entity_" + std::to_string(i);
    bool first = llm.JudgeNamesEquivalent(a, b);
    // Stable: same answer every time.
    EXPECT_EQ(llm.JudgeNamesEquivalent(a, b), first);
    if (!first) ++flips;  // names match, so "false" means hallucinated
  }
  EXPECT_NEAR(static_cast<double>(flips) / kN, 0.2, 0.06);
}

TEST(SimLlmTest, HallucinationIsOrderSymmetric) {
  SimulatedLlmOptions options;
  options.hallucination_rate = 0.5;
  SimulatedLLM llm(options);
  for (int i = 0; i < 50; ++i) {
    std::string a = "zh/A" + std::to_string(i);
    std::string b = "en/B" + std::to_string(i);
    EXPECT_EQ(llm.JudgeNamesEquivalent(a, b),
              llm.JudgeNamesEquivalent(b, a));
  }
}

TEST(SimLlmTest, MatchTriplesMatchesEquivalentFacts) {
  SimulatedLLM llm(NoHallucination());
  std::vector<SimulatedLLM::NamedTriple> side1 = {
      {"zh/A", "zh/likes", "zh/B"},
      {"zh/A", "zh/knows", "zh/C"},
  };
  std::vector<SimulatedLLM::NamedTriple> side2 = {
      {"en/A", "en/knows", "en/C"},
      {"en/A", "en/likes", "en/B"},
      {"en/X", "en/likes", "en/Y"},
  };
  auto matches = llm.MatchTriples(side1, side2);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(matches[1], (std::pair<size_t, size_t>{1, 0}));
}

TEST(SimLlmTest, VerifyClaimAgreesOnCleanEvidence) {
  SimulatedLLM llm(NoHallucination());
  std::vector<SimulatedLLM::NamedTriple> e1 = {{"zh/A", "zh/r", "zh/B"}};
  std::vector<SimulatedLLM::NamedTriple> e2 = {{"en/A", "en/r", "en/B"}};
  EXPECT_TRUE(llm.VerifyClaim("zh/A", "en/A", e1, e2));
  EXPECT_FALSE(llm.VerifyClaim("zh/A", "en/Completely_Different", e1, {}));
}

// ----------------------------------------------------------- LLM baselines

class LlmBaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    model_ = emb::MakeDefaultModel(emb::ModelKind::kMTransE).release();
    model_->Train(*dataset_);
    embedder_ = new baselines::PerturbedEmbedder(*dataset_, *model_);
    llm_ = new SimulatedLLM();
  }
  static void TearDownTestSuite() {
    delete llm_;
    delete embedder_;
    delete model_;
    delete dataset_;
  }
  static data::EaDataset* dataset_;
  static emb::EAModel* model_;
  static baselines::PerturbedEmbedder* embedder_;
  static SimulatedLLM* llm_;
};

data::EaDataset* LlmBaselineFixture::dataset_ = nullptr;
emb::EAModel* LlmBaselineFixture::model_ = nullptr;
baselines::PerturbedEmbedder* LlmBaselineFixture::embedder_ = nullptr;
SimulatedLLM* LlmBaselineFixture::llm_ = nullptr;

TEST_F(LlmBaselineFixture, ToNamedTriplesRendersNames) {
  const kg::Triple& t = dataset_->kg1.triples()[0];
  auto named = ToNamedTriples(dataset_->kg1, {t});
  ASSERT_EQ(named.size(), 1u);
  EXPECT_EQ(named[0].head, dataset_->kg1.EntityName(t.head));
  EXPECT_EQ(named[0].relation, dataset_->kg1.RelationName(t.rel));
}

TEST_F(LlmBaselineFixture, ChatGptMatchFindsCounterpartTriples) {
  ChatGptMatch matcher(llm_, dataset_);
  const kg::AlignedPair& pair = dataset_->test[0];
  auto c1 = kg::TriplesWithinHops(dataset_->kg1, pair.source, 1);
  auto c2 = kg::TriplesWithinHops(dataset_->kg2, pair.target, 1);
  baselines::ExplainerResult result =
      matcher.Explain(pair.source, pair.target, c1, c2, 0);
  // Counterpart KGs share most triples by construction; matches expected.
  EXPECT_GT(result.TotalTriples(), 0u);
  EXPECT_EQ(result.triples1.size(), result.triples2.size());
}

TEST_F(LlmBaselineFixture, ChatGptPerturbRespectsBudget) {
  ChatGptPerturb perturb(llm_, dataset_, embedder_);
  const kg::AlignedPair& pair = dataset_->test[0];
  auto c1 = kg::TriplesWithinHops(dataset_->kg1, pair.source, 1);
  auto c2 = kg::TriplesWithinHops(dataset_->kg2, pair.target, 1);
  baselines::ExplainerResult result =
      perturb.Explain(pair.source, pair.target, c1, c2, 3);
  EXPECT_EQ(result.TotalTriples(), std::min<size_t>(3, c1.size() + c2.size()));
}

// -------------------------------------------------------------- verifiers

class VerifierFixture : public LlmBaselineFixture {
 protected:
  // Builds verification cases: first `n` correct pairs and `n` wrong pairs
  // (cyclically shifted targets).
  static void BuildCases(size_t n, std::vector<kg::AlignedPair>& pairs,
                         std::vector<bool>& gold) {
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back(dataset_->test[i]);
      gold.push_back(true);
    }
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back({dataset_->test[i].source,
                       dataset_->test[(i + 7) % dataset_->test.size()].target});
      gold.push_back(false);
    }
  }
};

TEST_F(VerifierFixture, ChatGptVerifierBeatsChance) {
  ChatGptVerifier verifier(llm_, dataset_);
  std::vector<kg::AlignedPair> pairs;
  std::vector<bool> gold;
  BuildCases(30, pairs, gold);
  std::vector<bool> predicted;
  for (const kg::AlignedPair& pair : pairs) {
    predicted.push_back(verifier.Verify(pair.source, pair.target));
  }
  eval::BinaryClassificationResult result =
      eval::EvaluateBinary(predicted, gold);
  EXPECT_GT(result.f1, 0.6);
}

TEST_F(VerifierFixture, ExeaVerifierBeatsChance) {
  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(*dataset_, *model_, config);
  kg::AlignmentSet gold_alignment;
  for (const auto& [s, t] : dataset_->gold) gold_alignment.Add(s, t);
  explain::AlignmentContext context(&gold_alignment, &dataset_->train);
  ExeaVerifier verifier(&explainer, &context);
  std::vector<kg::AlignedPair> pairs;
  std::vector<bool> gold;
  BuildCases(30, pairs, gold);
  std::vector<bool> predicted;
  for (const kg::AlignedPair& pair : pairs) {
    predicted.push_back(verifier.Verify(pair.source, pair.target));
  }
  eval::BinaryClassificationResult result =
      eval::EvaluateBinary(predicted, gold);
  EXPECT_GT(result.f1, 0.6);
}

TEST_F(VerifierFixture, FusionIsAtLeastAsGoodAsEither) {
  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(*dataset_, *model_, config);
  kg::AlignmentSet gold_alignment;
  for (const auto& [s, t] : dataset_->gold) gold_alignment.Add(s, t);
  explain::AlignmentContext context(&gold_alignment, &dataset_->train);
  ExeaVerifier exea(&explainer, &context);
  ChatGptVerifier chatgpt(llm_, dataset_);
  FusionVerifier fusion(&chatgpt, &exea, model_);

  std::vector<kg::AlignedPair> pairs;
  std::vector<bool> gold;
  BuildCases(40, pairs, gold);
  std::vector<bool> p_exea;
  std::vector<bool> p_chatgpt;
  std::vector<bool> p_fusion;
  for (const kg::AlignedPair& pair : pairs) {
    p_exea.push_back(exea.Verify(pair.source, pair.target));
    p_chatgpt.push_back(chatgpt.Verify(pair.source, pair.target));
    p_fusion.push_back(fusion.Verify(pair.source, pair.target));
  }
  double f_exea = eval::EvaluateBinary(p_exea, gold).f1;
  double f_chatgpt = eval::EvaluateBinary(p_chatgpt, gold).f1;
  double f_fusion = eval::EvaluateBinary(p_fusion, gold).f1;
  EXPECT_GE(f_fusion + 0.03, f_exea);
  EXPECT_GE(f_fusion + 0.03, f_chatgpt);
}

TEST_F(VerifierFixture, ChatGptConfusedByNumericSiblings) {
  // Pair a family member with a *different* member's counterpart: names
  // differ only in digits, so the LLM (numeric-insensitive) tends to
  // accept; the structural verifier is the one that can catch these.
  data::SyntheticOptions options =
      data::BenchmarkOptions(data::Benchmark::kZhEn, data::Scale::kTiny);
  kg::EntityId member0 = dataset_->kg1.FindEntity(
      options.kg1_prefix + "/" + data::FamilyEntityBaseName(0, 0));
  kg::EntityId wrong_counterpart = dataset_->kg2.FindEntity(
      options.kg2_prefix + "/" + data::FamilyEntityBaseName(0, 2));
  ASSERT_NE(member0, kg::kInvalidEntity);
  ASSERT_NE(wrong_counterpart, kg::kInvalidEntity);
  SimulatedLLM clean{NoHallucination()};
  ChatGptVerifier verifier(&clean, dataset_);
  EXPECT_TRUE(verifier.Verify(member0, wrong_counterpart))
      << "the simulated LLM should exhibit the numeric-sibling failure";
}

}  // namespace
}  // namespace exea::llm
