// Serialization of explanations and ADGs for downstream consumption:
// Graphviz DOT (visual inspection, the paper's Fig. 2/Fig. 5 style) and a
// small hand-rolled JSON (machine consumption; no third-party JSON
// dependency is available offline).

#ifndef EXEA_EXPLAIN_EXPORT_H_
#define EXEA_EXPLAIN_EXPORT_H_

#include <string>

#include "explain/adg.h"
#include "explain/explanation.h"
#include "kg/graph.h"

namespace exea::explain {

// Graphviz DOT of the semantic matching subgraph: KG1 triples on the left
// cluster, KG2 triples on the right, dashed edges linking matched
// neighbour pairs.
std::string ExplanationToDot(const Explanation& explanation,
                             const kg::KnowledgeGraph& kg1,
                             const kg::KnowledgeGraph& kg2);

// Graphviz DOT of an ADG: the central pair plus neighbour nodes, edges
// labelled with influence class and weight.
std::string AdgToDot(const Adg& adg, const kg::KnowledgeGraph& kg1,
                     const kg::KnowledgeGraph& kg2);

// JSON object with the pair, matched triples (named), candidate counts,
// and per-match path similarity.
std::string ExplanationToJson(const Explanation& explanation,
                              const kg::KnowledgeGraph& kg1,
                              const kg::KnowledgeGraph& kg2);

// JSON object with the central pair, per-neighbour influence and edges,
// the Eq. (9) aggregates, and the confidence.
std::string AdgToJson(const Adg& adg, const kg::KnowledgeGraph& kg1,
                      const kg::KnowledgeGraph& kg2);

// Escapes a string for embedding in JSON / DOT double quotes.
std::string EscapeForQuotes(const std::string& raw);

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_EXPORT_H_
