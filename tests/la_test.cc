// Unit tests for the linear-algebra layer: vector kernels, Matrix,
// SparseMatrix, similarity search, and the ridge-regression solver.

#include <cmath>

#include <gtest/gtest.h>

#include "la/linreg.h"
#include "la/matrix.h"
#include "la/similarity.h"
#include "la/sparse.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace exea::la {
namespace {

constexpr float kTol = 1e-5f;

// ------------------------------------------------------------ vector ops

TEST(VectorOpsTest, Dot) {
  Vec a{1, 2, 3};
  Vec b{4, 5, 6};
  EXPECT_NEAR(Dot(a, b), 32.0f, kTol);
}

TEST(VectorOpsTest, Norm) {
  Vec a{3, 4};
  EXPECT_NEAR(Norm(a), 5.0f, kTol);
}

TEST(VectorOpsTest, SquaredDistance) {
  Vec a{1, 1};
  Vec b{4, 5};
  EXPECT_NEAR(SquaredDistance(a, b), 25.0f, kTol);
}

TEST(VectorOpsTest, CosineParallel) {
  Vec a{1, 2, 3};
  Vec b{2, 4, 6};
  EXPECT_NEAR(Cosine(a, b), 1.0f, kTol);
}

TEST(VectorOpsTest, CosineOrthogonal) {
  Vec a{1, 0};
  Vec b{0, 1};
  EXPECT_NEAR(Cosine(a, b), 0.0f, kTol);
}

TEST(VectorOpsTest, CosineOpposite) {
  Vec a{1, 1};
  Vec b{-1, -1};
  EXPECT_NEAR(Cosine(a, b), -1.0f, kTol);
}

TEST(VectorOpsTest, CosineZeroVectorIsZero) {
  Vec a{0, 0};
  Vec b{1, 1};
  EXPECT_EQ(Cosine(a, b), 0.0f);
}

TEST(VectorOpsTest, Axpy) {
  Vec a{1, 2};
  Vec b{10, 20};
  Axpy(0.5f, b, a);
  EXPECT_NEAR(a[0], 6.0f, kTol);
  EXPECT_NEAR(a[1], 12.0f, kTol);
}

TEST(VectorOpsTest, NormalizeL2) {
  Vec a{3, 4};
  NormalizeL2(a);
  EXPECT_NEAR(Norm(a), 1.0f, kTol);
  EXPECT_NEAR(a[0], 0.6f, kTol);
}

TEST(VectorOpsTest, NormalizeZeroVectorUnchanged) {
  Vec a{0, 0, 0};
  NormalizeL2(a);
  EXPECT_EQ(a[0], 0.0f);
}

TEST(VectorOpsTest, AddSubConcat) {
  Vec a{1, 2};
  Vec b{3, 5};
  Vec sum = Add(a, b);
  Vec diff = Sub(b, a);
  Vec cat = Concat(a, b);
  EXPECT_EQ(sum[1], 7.0f);
  EXPECT_EQ(diff[0], 2.0f);
  ASSERT_EQ(cat.size(), 4u);
  EXPECT_EQ(cat[2], 3.0f);
}

TEST(VectorOpsTest, SigmoidValues) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-9);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-9);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-9);
  EXPECT_NEAR(Sigmoid(1.0) + Sigmoid(-1.0), 1.0, 1e-9);
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, ShapeAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0f;
  EXPECT_EQ(m.At(1, 2), 5.0f);
  EXPECT_EQ(m.Row(1)[2], 5.0f);
}

TEST(MatrixTest, RowCopyAndSetRow) {
  Matrix m(2, 2);
  m.SetRow(0, {1, 2});
  Vec row = m.RowCopy(0);
  EXPECT_EQ(row[1], 2.0f);
}

TEST(MatrixTest, FillNormalStatistics) {
  Rng rng(5);
  Matrix m(50, 40);
  m.FillNormal(rng, 2.0f);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float v : m.data()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  double n = static_cast<double>(m.data().size());
  EXPECT_NEAR(sum / n, 0.0, 0.15);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.4);
}

TEST(MatrixTest, NormalizeRows) {
  Matrix m(3, 4);
  Rng rng(6);
  m.FillUniform(rng, 0.5f, 2.0f);
  m.NormalizeRowsL2();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(Norm(m.Row(r), 4), 1.0f, kTol);
  }
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2);
  a.SetRow(0, {1, 2});
  a.SetRow(1, {3, 4});
  Matrix b(2, 2);
  b.SetRow(0, {5, 6});
  b.SetRow(1, {7, 8});
  Matrix c = a.MatMul(b);
  EXPECT_NEAR(c.At(0, 0), 19.0f, kTol);
  EXPECT_NEAR(c.At(0, 1), 22.0f, kTol);
  EXPECT_NEAR(c.At(1, 0), 43.0f, kTol);
  EXPECT_NEAR(c.At(1, 1), 50.0f, kTol);
}

TEST(MatrixTest, Transposed) {
  Matrix a(2, 3);
  a.SetRow(0, {1, 2, 3});
  a.SetRow(1, {4, 5, 6});
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.At(2, 1), 6.0f);
}

TEST(MatrixTest, AddScaledAndFrobenius) {
  Matrix a(1, 2);
  a.SetRow(0, {3, 4});
  Matrix b(1, 2);
  b.SetRow(0, {1, 1});
  a.AddScaled(b, 2.0f);
  EXPECT_EQ(a.At(0, 0), 5.0f);
  Matrix c(1, 2);
  c.SetRow(0, {3, 4});
  EXPECT_NEAR(c.FrobeniusNorm(), 5.0f, kTol);
}

// ---------------------------------------------------------------- Sparse

TEST(SparseTest, MultiplyMatchesDense) {
  SparseMatrix s(3, 3);
  s.Add(0, 1, 2.0f);
  s.Add(1, 0, 1.0f);
  s.Add(2, 2, 3.0f);
  s.Add(0, 1, 0.5f);  // duplicate accumulates
  s.Finalize();
  EXPECT_EQ(s.nnz(), 3u);

  Matrix x(3, 2);
  x.SetRow(0, {1, 2});
  x.SetRow(1, {3, 4});
  x.SetRow(2, {5, 6});
  Matrix y = s.Multiply(x);
  EXPECT_NEAR(y.At(0, 0), 2.5f * 3, kTol);
  EXPECT_NEAR(y.At(0, 1), 2.5f * 4, kTol);
  EXPECT_NEAR(y.At(1, 0), 1.0f, kTol);
  EXPECT_NEAR(y.At(2, 1), 18.0f, kTol);
}

TEST(SparseTest, TransposedMultiplyMatchesDenseTranspose) {
  Rng rng(8);
  SparseMatrix s(4, 5);
  Matrix dense(4, 5);
  for (int i = 0; i < 8; ++i) {
    size_t r = rng.UniformInt(4);
    size_t c = rng.UniformInt(5);
    float v = rng.UniformFloat(-1, 1);
    s.Add(r, c, v);
    dense.At(r, c) += v;
  }
  s.Finalize();
  Matrix x(4, 3);
  x.FillNormal(rng, 1.0f);
  Matrix via_sparse = s.MultiplyTransposed(x);
  Matrix via_dense = dense.Transposed().MatMul(x);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(via_sparse.At(r, c), via_dense.At(r, c), 1e-4f);
    }
  }
}

// ------------------------------------------------------------ similarity

TEST(SimilarityTest, CosineMatrixValues) {
  Matrix a(2, 2);
  a.SetRow(0, {1, 0});
  a.SetRow(1, {0, 2});
  Matrix b(2, 2);
  b.SetRow(0, {1, 0});
  b.SetRow(1, {1, 1});
  Matrix sim = CosineSimilarityMatrix(a, b);
  EXPECT_NEAR(sim.At(0, 0), 1.0f, kTol);
  EXPECT_NEAR(sim.At(0, 1), 1.0f / std::sqrt(2.0f), kTol);
  EXPECT_NEAR(sim.At(1, 0), 0.0f, kTol);
}

TEST(SimilarityTest, TopKOrderedDescending) {
  Matrix table(4, 2);
  table.SetRow(0, {1, 0});
  table.SetRow(1, {0.9f, 0.1f});
  table.SetRow(2, {0, 1});
  table.SetRow(3, {-1, 0});
  Vec query{1, 0};
  std::vector<ScoredIndex> top = TopKByCosine(query.data(), table, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 0u);
  EXPECT_EQ(top[1].index, 1u);
  EXPECT_EQ(top[2].index, 2u);
  EXPECT_GE(top[0].score, top[1].score);
  EXPECT_GE(top[1].score, top[2].score);
}

TEST(SimilarityTest, TopKClampsToTableSize) {
  Matrix table(2, 2);
  table.SetRow(0, {1, 0});
  table.SetRow(1, {0, 1});
  Vec query{1, 1};
  EXPECT_EQ(TopKByCosine(query.data(), table, 10).size(), 2u);
}

TEST(SimilarityTest, ArgMaxCosine) {
  Matrix table(3, 2);
  table.SetRow(0, {0, 1});
  table.SetRow(1, {1, 1});
  table.SetRow(2, {1, 0});
  Vec query{1, 0};
  EXPECT_EQ(ArgMaxCosine(query.data(), table), 2);
}

// Pins the ScoredLess ordering contract (score desc, index asc) that
// similarity.cc, ExactIndex, and IvfIndex all sort by: duplicate table
// rows tie exactly, and ties must come back in ascending index order.
// The IVF degenerate-to-exact guarantee (index_test) depends on this
// being a strict total order — do not weaken it to score-only.
TEST(SimilarityTest, TopKTieBreakIsAscendingIndexAmongEqualScores) {
  Matrix table(5, 3);
  table.SetRow(0, {0, 1, 0});
  table.SetRow(1, {2, 0, 0});  // duplicate direction of rows 3 and 4
  table.SetRow(2, {0, 0, 1});
  table.SetRow(3, {2, 0, 0});
  table.SetRow(4, {2, 0, 0});
  Vec query{1, 0, 0};
  std::vector<ScoredIndex> top = TopKByCosine(query.data(), table, 5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].index, 1u);
  EXPECT_EQ(top[1].index, 3u);
  EXPECT_EQ(top[2].index, 4u);
  EXPECT_EQ(top[0].score, top[1].score);
  EXPECT_EQ(top[1].score, top[2].score);
  // ScoredLess itself: score wins first, index only breaks exact ties.
  EXPECT_TRUE(ScoredLess({3, 0.5f}, {9, 0.4f}));
  EXPECT_TRUE(ScoredLess({3, 0.5f}, {4, 0.5f}));
  EXPECT_FALSE(ScoredLess({4, 0.5f}, {3, 0.5f}));
  EXPECT_FALSE(ScoredLess({3, 0.5f}, {3, 0.5f}));
}

TEST(SimilarityTest, TopKAllMatchesSingle) {
  Rng rng(12);
  Matrix queries(3, 4);
  Matrix table(6, 4);
  queries.FillNormal(rng, 1.0f);
  table.FillNormal(rng, 1.0f);
  auto all = TopKByCosineAll(queries, table, 2);
  ASSERT_EQ(all.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    auto single = TopKByCosine(queries.Row(i), table, 2);
    ASSERT_EQ(all[i].size(), 2u);
    EXPECT_EQ(all[i][0].index, single[0].index);
    EXPECT_EQ(all[i][1].index, single[1].index);
  }
}

// ---------------------------------------------------------------- linreg

TEST(LinregTest, SolveSpdIdentity) {
  std::vector<double> a{1, 0, 0, 1};
  std::vector<double> b{3, 4};
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-9);
  EXPECT_NEAR((*x)[1], 4.0, 1e-9);
}

TEST(LinregTest, SolveSpdKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  std::vector<double> a{4, 2, 2, 3};
  std::vector<double> b{10, 9};
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.5, 1e-9);
  EXPECT_NEAR((*x)[1], 2.0, 1e-9);
}

TEST(LinregTest, SolveSpdRejectsIndefinite) {
  std::vector<double> a{0, 1, 1, 0};
  std::vector<double> b{1, 1};
  EXPECT_FALSE(SolveSpd(a, b).ok());
}

TEST(LinregTest, RecoversPlantedLinearModel) {
  // y = 2*x0 - 3*x1 + 1 with noise-free samples.
  Rng rng(21);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 40; ++i) {
    double x0 = rng.UniformDouble();
    double x1 = rng.UniformDouble();
    rows.push_back({x0, x1});
    targets.push_back(2 * x0 - 3 * x1 + 1);
  }
  auto model = FitWeightedRidge(rows, targets, {}, RidgeOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights[0], 2.0, 1e-3);
  EXPECT_NEAR(model->weights[1], -3.0, 1e-3);
  EXPECT_NEAR(model->intercept, 1.0, 1e-3);
  EXPECT_NEAR(Predict(*model, {0.5, 0.5}), 0.5, 1e-3);
}

TEST(LinregTest, SampleWeightsFocusFit) {
  // Two inconsistent clusters; weights select which one the fit matches.
  std::vector<std::vector<double>> rows = {{0.0}, {1.0}, {0.0}, {1.0}};
  std::vector<double> targets = {0.0, 1.0, 5.0, 4.0};
  std::vector<double> low_weight_second = {1.0, 1.0, 1e-6, 1e-6};
  auto model =
      FitWeightedRidge(rows, targets, low_weight_second, RidgeOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights[0], 1.0, 1e-2);
  EXPECT_NEAR(model->intercept, 0.0, 1e-2);
}

TEST(LinregTest, RejectsShapeMismatches) {
  EXPECT_FALSE(FitWeightedRidge({}, {}, {}, RidgeOptions{}).ok());
  EXPECT_FALSE(
      FitWeightedRidge({{1.0}}, {1.0, 2.0}, {}, RidgeOptions{}).ok());
  EXPECT_FALSE(
      FitWeightedRidge({{1.0}, {1.0, 2.0}}, {1.0, 2.0}, {}, RidgeOptions{})
          .ok());
}

TEST(LinregTest, NoInterceptOption) {
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> targets = {2.0, 4.0, 6.0};
  RidgeOptions options;
  options.fit_intercept = false;
  auto model = FitWeightedRidge(rows, targets, {}, options);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights[0], 2.0, 1e-3);
  EXPECT_EQ(model->intercept, 0.0);
}

}  // namespace
}  // namespace exea::la
