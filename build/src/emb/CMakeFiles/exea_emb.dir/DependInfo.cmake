
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emb/aligne.cc" "src/emb/CMakeFiles/exea_emb.dir/aligne.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/aligne.cc.o.d"
  "/root/repo/src/emb/bootstrapping.cc" "src/emb/CMakeFiles/exea_emb.dir/bootstrapping.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/bootstrapping.cc.o.d"
  "/root/repo/src/emb/dual_amn.cc" "src/emb/CMakeFiles/exea_emb.dir/dual_amn.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/dual_amn.cc.o.d"
  "/root/repo/src/emb/gcn_align.cc" "src/emb/CMakeFiles/exea_emb.dir/gcn_align.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/gcn_align.cc.o.d"
  "/root/repo/src/emb/model.cc" "src/emb/CMakeFiles/exea_emb.dir/model.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/model.cc.o.d"
  "/root/repo/src/emb/model_factory.cc" "src/emb/CMakeFiles/exea_emb.dir/model_factory.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/model_factory.cc.o.d"
  "/root/repo/src/emb/mtranse.cc" "src/emb/CMakeFiles/exea_emb.dir/mtranse.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/mtranse.cc.o.d"
  "/root/repo/src/emb/name_augmented.cc" "src/emb/CMakeFiles/exea_emb.dir/name_augmented.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/name_augmented.cc.o.d"
  "/root/repo/src/emb/negative_sampling.cc" "src/emb/CMakeFiles/exea_emb.dir/negative_sampling.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/negative_sampling.cc.o.d"
  "/root/repo/src/emb/optimizer.cc" "src/emb/CMakeFiles/exea_emb.dir/optimizer.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/optimizer.cc.o.d"
  "/root/repo/src/emb/relation_embedding.cc" "src/emb/CMakeFiles/exea_emb.dir/relation_embedding.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/relation_embedding.cc.o.d"
  "/root/repo/src/emb/rotate_align.cc" "src/emb/CMakeFiles/exea_emb.dir/rotate_align.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/rotate_align.cc.o.d"
  "/root/repo/src/emb/transe_common.cc" "src/emb/CMakeFiles/exea_emb.dir/transe_common.cc.o" "gcc" "src/emb/CMakeFiles/exea_emb.dir/transe_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/exea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/exea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
