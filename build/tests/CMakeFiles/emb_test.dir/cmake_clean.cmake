file(REMOVE_RECURSE
  "CMakeFiles/emb_test.dir/emb_test.cc.o"
  "CMakeFiles/emb_test.dir/emb_test.cc.o.d"
  "emb_test"
  "emb_test.pdb"
  "emb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
