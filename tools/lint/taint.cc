#include "lint/taint.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>

#include "lint/index.h"

namespace lint {

namespace fs = std::filesystem;

namespace {

// ------------------------------------------------------------ lexing

// Type spellings and storage keywords that appear inside expressions but
// never name a value that could carry taint.
bool IsTypeWord(const std::string& ident) {
  static const char* const kWords[] = {
      "void",     "int",      "bool",      "char",     "float",
      "double",   "long",     "short",     "unsigned", "signed",
      "auto",     "const",    "constexpr", "static",   "mutable",
      "volatile", "size_t",   "int8_t",    "int16_t",  "int32_t",
      "int64_t",  "uint8_t",  "uint16_t",  "uint32_t", "uint64_t",
      "ssize_t",  "ptrdiff_t"};
  for (const char* w : kWords) {
    if (ident == w) return true;
  }
  return false;
}

// Methods whose result describes the container rather than exposing its
// contents: x.size() tells you how big x is, not what x holds, so taint
// does not flow through the receiver. begin()/end() yield iterator
// identity, which the pass likewise treats as taint-free.
bool IsMeasureMethod(const std::string& ident) {
  static const char* const kWords[] = {"size",   "length", "count",
                                       "empty",  "capacity", "ok",
                                       "begin",  "end",    "cbegin",
                                       "cend",   "max_size"};
  for (const char* w : kWords) {
    if (ident == w) return true;
  }
  return false;
}

bool IsAllCapsIdent(const std::string& ident) {
  bool has_alpha = false;
  for (char c : ident) {
    if (c >= 'a' && c <= 'z') return false;
    if ((c >= 'A' && c <= 'Z')) has_alpha = true;
  }
  return has_alpha;
}

// Identifiers that can carry a value through `expr`: skips numeric
// literals, keywords, type spellings, ALL_CAPS macros, call names, and
// the whole receiver chain of size()-like measure methods (so
// `result.candidates.size()` contributes nothing — the count describes
// the container, not its contents).
void CollectIdents(const std::string& expr, std::vector<std::string>* out) {
  size_t i = 0;
  // Index into *out where the current `a.b->c` member chain started, or
  // npos when no chain is active — a measure call pops the whole chain.
  size_t chain_start = std::string::npos;
  bool member_next = false;  // next ident is reached via . or ->
  while (i < expr.size()) {
    if (!IsIdentChar(expr[i])) {
      if (expr[i] == ' ') {
        ++i;
      } else if (expr[i] == '.') {
        member_next = true;
        ++i;
      } else if (expr[i] == '-' && i + 1 < expr.size() &&
                 expr[i + 1] == '>') {
        member_next = true;
        i += 2;
      } else {
        member_next = false;
        chain_start = std::string::npos;
        ++i;
      }
      continue;
    }
    size_t b = i;
    while (i < expr.size() && IsIdentChar(expr[i])) ++i;
    std::string ident = expr.substr(b, i - b);
    bool member_access = member_next;
    member_next = false;
    if (ident[0] >= '0' && ident[0] <= '9') {  // numeric literal
      chain_start = std::string::npos;
      continue;
    }
    size_t after = i;
    while (after < expr.size() && expr[after] == ' ') ++after;
    bool is_call = after < expr.size() && expr[after] == '(';
    if (is_call) {
      if (member_access && IsMeasureMethod(ident) &&
          chain_start != std::string::npos) {
        out->resize(chain_start);
      }
      chain_start = std::string::npos;
      continue;
    }
    if (IsCallNoise(ident) || IsTypeWord(ident) || IsAllCapsIdent(ident)) {
      chain_start = std::string::npos;
      continue;
    }
    if (!member_access || chain_start == std::string::npos) {
      chain_start = out->size();
    }
    out->push_back(std::move(ident));
  }
}

// Splits the contents of a balanced group on top-level commas.
std::vector<std::string> SplitTopLevel(const std::string& text, char sep) {
  std::vector<std::string> out;
  int paren = 0, angle = 0, bracket = 0, brace = 0;
  size_t begin = 0;
  for (size_t k = 0; k < text.size(); ++k) {
    char c = text[k];
    if (c == '(') ++paren;
    else if (c == ')') --paren;
    else if (c == '<') ++angle;
    else if (c == '>' && angle > 0) --angle;
    else if (c == '[') ++bracket;
    else if (c == ']') --bracket;
    else if (c == '{') ++brace;
    else if (c == '}') --brace;
    else if (c == sep && paren == 0 && angle == 0 && bracket == 0 &&
             brace == 0) {
      out.push_back(text.substr(begin, k - begin));
      begin = k + 1;
    }
  }
  out.push_back(text.substr(begin));
  return out;
}

// Base names of every call inside `text` (helper for assignment facts and
// per-argument severing).
void CollectCallNames(const std::string& text, std::vector<std::string>* out);

// The ::-chain ending right before `at` and its start offset.
std::string ChainBefore(const std::string& s, size_t at, size_t* begin) {
  size_t b = at;
  while (b > 0) {
    if (IsIdentChar(s[b - 1])) {
      --b;
    } else if (b >= 2 && s[b - 1] == ':' && s[b - 2] == ':') {
      b -= 2;
    } else {
      break;
    }
  }
  *begin = b;
  return s.substr(b, at - b);
}

void CollectCallNames(const std::string& text, std::vector<std::string>* out) {
  for (size_t k = 0; k < text.size(); ++k) {
    if (text[k] != '(' || k == 0 || !IsIdentChar(text[k - 1])) continue;
    size_t begin = 0;
    std::string chain = ChainBefore(text, k, &begin);
    size_t sep = chain.rfind("::");
    std::string base =
        sep == std::string::npos ? chain : chain.substr(sep + 2);
    if (!base.empty() && !IsCallNoise(base)) out->push_back(std::move(base));
  }
}

// --------------------------------------------------- statement sweep

class FactCollector {
 public:
  FactCollector(const SourceFile& file, FileSummary* out)
      : file_(file), out_(out) {}

  void Run() {
    BuildFnMap();
    // Accumulate outer statements exactly like the indexer: whitespace
    // collapsed, terminated by ';' at paren depth 0 or by a brace event.
    std::string stmt;
    size_t stmt_line = 0, stmt_col = 1;
    int paren = 0;
    bool continued_directive = false;
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      if (continued_directive) {
        continued_directive =
            !file_.raw[li].empty() && file_.raw[li].back() == '\\';
        continue;
      }
      size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') {
        continued_directive =
            !file_.raw[li].empty() && file_.raw[li].back() == '\\';
        continue;
      }
      for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '(') ++paren;
        if (c == ')' && paren > 0) --paren;
        bool terminator =
            (c == ';' && paren == 0) || c == '{' || c == '}';
        if (terminator) {
          ProcessStatement(stmt, stmt_line, stmt_col);
          stmt.clear();
          stmt_line = 0;
          paren = 0;
          continue;
        }
        if (c != ' ' && c != '\t') {
          if (stmt.empty()) {
            stmt_line = li + 1;
            stmt_col = i + 1;
          }
          stmt.push_back(c);
        } else if (!stmt.empty() && stmt.back() != ' ') {
          stmt.push_back(' ');
        }
      }
      if (!stmt.empty() && stmt.back() != ' ') stmt.push_back(' ');
    }
    ProcessStatement(stmt, stmt_line, stmt_col);
  }

 private:
  // Innermost function definition whose body spans `line` (1-based).
  void BuildFnMap() {
    const auto& decls = out_->decls;
    for (size_t di = 0; di < decls.size(); ++di) {
      const FnDecl& d = decls[di];
      if (!d.is_definition || d.body_begin == 0) continue;
      size_t end = d.body_end == 0 ? file_.code.size() : d.body_end;
      for (size_t l = d.body_begin; l <= end && l <= file_.code.size();
           ++l) {
        auto it = fn_of_line_.find(l);
        if (it == fn_of_line_.end() ||
            decls[it->second].body_begin < d.body_begin) {
          fn_of_line_[l] = static_cast<int>(di);
        }
      }
    }
  }

  int FnOf(size_t line) const {
    auto it = fn_of_line_.find(line);
    return it == fn_of_line_.end() ? -1 : it->second;
  }

  void ProcessStatement(const std::string& raw_stmt, size_t line,
                        size_t col) {
    std::string stmt = raw_stmt;
    size_t b = stmt.find_first_not_of(" ");
    if (b == std::string::npos) return;
    if (b > 0) stmt = stmt.substr(b);
    int fn = FnOf(line);

    // EXEA_CHECK(...)/EXEA_DCHECK_GE(...): everything the assertion
    // mentions is range-validated from here on.
    if (stmt.rfind("EXEA_CHECK", 0) == 0 ||
        stmt.rfind("EXEA_DCHECK", 0) == 0) {
      size_t open = stmt.find('(');
      size_t close = stmt.rfind(')');
      if (open != std::string::npos && close != std::string::npos &&
          close > open) {
        TaintGuard guard;
        CollectIdents(stmt.substr(open + 1, close - open - 1),
                      &guard.idents);
        guard.line = line;
        guard.fn = fn;
        if (!guard.idents.empty()) {
          out_->taint_guards.push_back(std::move(guard));
        }
      }
      return;
    }

    std::string lhs = AssignTarget(stmt);
    CollectCalls(stmt, lhs, line, col, fn);
    CollectAssign(stmt, lhs, line, col, fn);
    CollectIndexSinks(stmt, line, col, fn);
    CollectLoopBound(stmt, line, col, fn);
    CollectAssocDecls(stmt);
  }

  // `std::map<...> name` / `std::unordered_map<...> name`: remember the
  // declared name so subscripts keyed on it read as associative lookups.
  void CollectAssocDecls(const std::string& stmt) {
    for (const char* t : {"std::map<", "std::unordered_map<"}) {
      size_t at = stmt.find(t);
      while (at != std::string::npos) {
        size_t k = at + std::strlen(t);
        int depth = 1;
        for (; k < stmt.size() && depth > 0; ++k) {
          if (stmt[k] == '<') ++depth;
          if (stmt[k] == '>') --depth;
        }
        while (k < stmt.size() && (stmt[k] == ' ' || stmt[k] == '&')) ++k;
        size_t name_end = k;
        while (name_end < stmt.size() && IsIdentChar(stmt[name_end])) {
          ++name_end;
        }
        if (name_end > k) {
          out_->taint_assoc.push_back(stmt.substr(k, name_end - k));
        }
        at = stmt.find(t, name_end);
      }
    }
  }

  // The variable a statement writes: the left side of a top-level '='
  // (or compound assignment), or "return" for return statements, or "".
  // Member writes (a.b = x, a->b = x) taint the base object; plain and
  // declaration writes take the last identifier before the '='.
  static std::string AssignTarget(const std::string& stmt) {
    if (stmt.rfind("return ", 0) == 0 || stmt == "return") return "return";
    int paren = 0, bracket = 0, brace = 0;
    size_t eq = std::string::npos;
    for (size_t k = 0; k < stmt.size(); ++k) {
      char c = stmt[k];
      if (c == '(') ++paren;
      else if (c == ')') --paren;
      else if (c == '[') ++bracket;
      else if (c == ']') --bracket;
      else if (c == '{') ++brace;
      else if (c == '}') --brace;
      else if (c == '=' && paren == 0 && bracket == 0 && brace == 0) {
        if (k + 1 < stmt.size() && stmt[k + 1] == '=') {
          ++k;
          continue;
        }
        if (k > 0 && std::string("=<>!").find(stmt[k - 1]) !=
                         std::string::npos) {
          continue;
        }
        eq = k;
        break;
      }
    }
    if (eq == std::string::npos) return "";
    std::string head = stmt.substr(0, eq);
    // Compound assignment: strip the operator char (+=, -=, ...).
    while (!head.empty() &&
           std::string("+-*/%&|^ ").find(head.back()) != std::string::npos) {
      head.pop_back();
    }
    // Array-element writes name the array: drop trailing [...] groups.
    while (!head.empty() && head.back() == ']') {
      int depth = 0;
      size_t k = head.size();
      while (k > 0) {
        --k;
        if (head[k] == ']') ++depth;
        if (head[k] == '[' && --depth == 0) break;
      }
      head.resize(k);
      while (!head.empty() && head.back() == ' ') head.pop_back();
    }
    bool member = head.find('.') != std::string::npos ||
                  head.find("->") != std::string::npos;
    std::vector<std::string> idents;
    CollectIdents(head, &idents);
    if (idents.empty()) return "";
    return member ? idents.front() : idents.back();
  }

  // True when the (name, line) pair is a function declaration the indexer
  // recorded — a definition header like `bool Read(std::istream& in)` must
  // not be mistaken for a call of Read binding its own parameter types.
  bool IsDeclHeader(const std::string& base, size_t line) const {
    for (const FnDecl& d : out_->decls) {
      if (d.name == base && d.line == line) return true;
    }
    return false;
  }

  void CollectCalls(const std::string& stmt, const std::string& lhs,
                    size_t line, size_t col, int fn) {
    for (size_t k = 0; k < stmt.size(); ++k) {
      if (stmt[k] != '(' || k == 0 || !IsIdentChar(stmt[k - 1])) continue;
      size_t begin = 0;
      std::string chain = ChainBefore(stmt, k, &begin);
      if (chain.empty()) continue;
      size_t sep = chain.rfind("::");
      std::string base =
          sep == std::string::npos ? chain : chain.substr(sep + 2);
      if (base.empty() || IsCallNoise(base) || IsTypeWord(base)) continue;
      if (IsDeclHeader(base, line)) continue;
      // Balanced argument group.
      int depth = 0;
      size_t close = k;
      for (; close < stmt.size(); ++close) {
        if (stmt[close] == '(') ++depth;
        if (stmt[close] == ')' && --depth == 0) break;
      }
      if (close >= stmt.size()) continue;
      std::string args_text = stmt.substr(k + 1, close - k - 1);
      TaintCall call;
      call.name = base;
      call.lhs = lhs;
      call.line = line;
      call.col = col;
      call.fn = fn;
      if (args_text.find_first_not_of(" ") != std::string::npos) {
        for (const std::string& piece : SplitTopLevel(args_text, ',')) {
          std::vector<std::string> idents;
          CollectIdents(piece, &idents);
          call.args.push_back(std::move(idents));
          std::vector<std::string> nested;
          CollectCallNames(piece, &nested);
          call.arg_calls.push_back(std::move(nested));
        }
      }
      // `Type name(args)` construction: the type is the callee that
      // matters (Deadline deadline(ms) is a call of Deadline). Emit an
      // extra fact under the type's name when one precedes the called
      // identifier directly.
      size_t before = begin;
      while (before > 0 && stmt[before - 1] == ' ') --before;
      if (before > 0 && IsIdentChar(stmt[before - 1])) {
        size_t tbegin = 0;
        std::string type_chain = ChainBefore(stmt, before, &tbegin);
        size_t tsep = type_chain.rfind("::");
        std::string type_base = tsep == std::string::npos
                                    ? type_chain
                                    : type_chain.substr(tsep + 2);
        if (!type_base.empty() && type_base[0] >= 'A' &&
            type_base[0] <= 'Z' && !IsAllCapsIdent(type_base) &&
            !IsCallNoise(type_base)) {
          TaintCall ctor = call;
          ctor.name = type_base;
          // The constructed variable is the assignment target.
          ctor.lhs = base;
          out_->taint_calls.push_back(std::move(ctor));
        }
      }
      out_->taint_calls.push_back(std::move(call));
      k = close;
    }
  }

  void CollectAssign(const std::string& stmt, const std::string& lhs,
                     size_t line, size_t col, int fn) {
    if (lhs.empty()) return;
    std::string rhs_text;
    if (lhs == "return") {
      rhs_text = stmt.size() > 7 ? stmt.substr(7) : "";
    } else {
      // Everything right of the top-level '=' AssignTarget found.
      int paren = 0, bracket = 0, brace = 0;
      for (size_t k = 0; k < stmt.size(); ++k) {
        char c = stmt[k];
        if (c == '(') ++paren;
        else if (c == ')') --paren;
        else if (c == '[') ++bracket;
        else if (c == ']') --bracket;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        else if (c == '=' && paren == 0 && bracket == 0 && brace == 0) {
          if (k + 1 < stmt.size() && stmt[k + 1] == '=') {
            ++k;
            continue;
          }
          if (k > 0 && std::string("=<>!").find(stmt[k - 1]) !=
                           std::string::npos) {
            continue;
          }
          rhs_text = stmt.substr(k + 1);
          break;
        }
      }
    }
    if (rhs_text.empty()) return;
    TaintAssign assign;
    assign.lhs = lhs;
    CollectIdents(rhs_text, &assign.rhs);
    CollectCallNames(rhs_text, &assign.calls);
    if (assign.rhs.empty() && assign.calls.empty()) return;
    assign.line = line;
    assign.col = col;
    assign.fn = fn;
    out_->taint_assigns.push_back(std::move(assign));
  }

  void CollectIndexSinks(const std::string& stmt, size_t line, size_t col,
                         int fn) {
    for (size_t k = 0; k < stmt.size(); ++k) {
      if (stmt[k] != '[') continue;
      size_t before = k;
      while (before > 0 && stmt[before - 1] == ' ') --before;
      if (before == 0) continue;
      char prev = stmt[before - 1];
      if (!IsIdentChar(prev) && prev != ')' && prev != ']') continue;
      int depth = 0;
      size_t close = k;
      for (; close < stmt.size(); ++close) {
        if (stmt[close] == '[') ++depth;
        if (stmt[close] == ']' && --depth == 0) break;
      }
      if (close >= stmt.size()) continue;
      TaintSink sink;
      sink.kind = "index";
      size_t bb = before;
      while (bb > 0 && IsIdentChar(stmt[bb - 1])) --bb;
      sink.base = stmt.substr(bb, before - bb);
      CollectIdents(stmt.substr(k + 1, close - k - 1), &sink.idents);
      if (!sink.idents.empty()) {
        sink.line = line;
        sink.col = col;
        sink.fn = fn;
        out_->taint_sinks.push_back(std::move(sink));
      }
      k = close;
    }
  }

  // Splits a condition on top-level && and ||.
  static std::vector<std::string> SplitClauses(const std::string& cond) {
    std::vector<std::string> out;
    int paren = 0, bracket = 0;
    size_t begin = 0;
    for (size_t k = 0; k + 1 < cond.size(); ++k) {
      char c = cond[k];
      if (c == '(') ++paren;
      else if (c == ')') --paren;
      else if (c == '[') ++bracket;
      else if (c == ']') --bracket;
      else if (paren == 0 && bracket == 0 &&
               ((c == '&' && cond[k + 1] == '&') ||
                (c == '|' && cond[k + 1] == '|'))) {
        out.push_back(cond.substr(begin, k - begin));
        begin = k + 2;
        ++k;
      }
    }
    out.push_back(cond.substr(begin));
    return out;
  }

  // A top-level <, <=, >, >=, or != comparison (not inside a nested call).
  static bool HasRelational(const std::string& clause) {
    int paren = 0;
    for (size_t k = 0; k < clause.size(); ++k) {
      char c = clause[k];
      if (c == '(') ++paren;
      else if (c == ')') --paren;
      if (paren != 0) continue;
      if (c == '<' || c == '>') {
        // Skip -> member access and << / >> shifts.
        if (k > 0 && clause[k - 1] == '-') continue;
        if (k + 1 < clause.size() && clause[k + 1] == c) continue;
        if (k > 0 && clause[k - 1] == c) continue;
        return true;
      }
      if (c == '!' && k + 1 < clause.size() && clause[k + 1] == '=') {
        return true;
      }
    }
    return false;
  }

  void CollectLoopBound(const std::string& stmt, size_t line, size_t col,
                        int fn) {
    std::string cond;
    if (stmt.rfind("for ", 0) == 0 || stmt.rfind("for(", 0) == 0) {
      size_t open = stmt.find('(');
      if (open == std::string::npos) return;
      int depth = 0;
      size_t close = open;
      for (; close < stmt.size(); ++close) {
        if (stmt[close] == '(') ++depth;
        if (stmt[close] == ')' && --depth == 0) break;
      }
      if (close >= stmt.size()) return;
      std::string head = stmt.substr(open + 1, close - open - 1);
      std::vector<std::string> parts = SplitTopLevel(head, ';');
      if (parts.size() < 2) return;  // range-for or irregular loop
      cond = parts[1];
    } else if (stmt.rfind("while ", 0) == 0 || stmt.rfind("while(", 0) == 0) {
      size_t open = stmt.find('(');
      size_t close = stmt.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close <= open) {
        return;
      }
      cond = stmt.substr(open + 1, close - open - 1);
    } else {
      return;
    }
    // Only relational clauses carry a *bound* (`i < n`, `sent != total`).
    // A plain predicate condition (`while (in.get(c))`) or scanning a
    // character out of a string is not an attacker-sized iteration count.
    TaintSink sink;
    sink.kind = "loop-bound";
    for (const std::string& clause : SplitClauses(cond)) {
      if (!HasRelational(clause)) continue;
      CollectIdents(clause, &sink.idents);
    }
    if (sink.idents.empty()) return;
    sink.line = line;
    sink.col = col;
    sink.fn = fn;
    out_->taint_sinks.push_back(std::move(sink));
  }

  const SourceFile& file_;
  FileSummary* out_;
  std::map<size_t, int> fn_of_line_;
};

// ------------------------------------------------------- propagation

struct VarKey {
  size_t fi;
  int fn;
  std::string var;
  bool operator<(const VarKey& other) const {
    if (fi != other.fi) return fi < other.fi;
    if (fn != other.fn) return fn < other.fn;
    return var < other.var;
  }
};

class TaintPass {
 public:
  TaintPass(const std::vector<FileAnalysis>& files, const TaintConfig& config)
      : files_(files), config_(config) {}

  std::vector<Diagnostic> Run() {
    BuildClosures();
    BuildDefs();
    PruneAssignRhs();
    SeedSanitized();
    Propagate();
    ReportSinks();
    std::sort(diags_.begin(), diags_.end());
    diags_.erase(std::unique(diags_.begin(), diags_.end(),
                             [](const Diagnostic& a, const Diagnostic& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.col == b.col && a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 diags_.end());
    return std::move(diags_);
  }

 private:
  void Report(size_t fi, size_t line, size_t col,
              const std::string& message) {
    if (line >= 1 && Waived(files_[fi], line, "taint-unchecked-sink")) return;
    diags_.push_back(
        {files_[fi].path, line, col, "taint-unchecked-sink", message, false});
  }

  // Include closures — same construction as the global pass; visibility
  // of a definition to a caller is scoped to them.
  size_t ResolveInclude(size_t fi, const std::string& target) const {
    std::string key = target;
    if (target.find('/') == std::string::npos &&
        !files_[fi].src_rel.empty()) {
      size_t dir = files_[fi].src_rel.rfind('/');
      key = dir == std::string::npos
                ? target
                : files_[fi].src_rel.substr(0, dir + 1) + target;
    }
    auto it = key_to_file_.find(key);
    return it == key_to_file_.end() ? std::string::npos : it->second;
  }

  void BuildClosures() {
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      if (!files_[fi].src_rel.empty()) key_to_file_[files_[fi].src_rel] = fi;
    }
    closed_.resize(files_.size());
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      std::set<size_t> seen{fi};
      std::deque<size_t> queue{fi};
      while (!queue.empty()) {
        size_t cur = queue.front();
        queue.pop_front();
        for (const IncludeFact& inc : files_[cur].summary.includes) {
          size_t to = ResolveInclude(cur, inc.target);
          if (to != std::string::npos && seen.insert(to).second) {
            queue.push_back(to);
          }
        }
      }
      closed_[fi] = std::move(seen);
    }
  }

  void BuildDefs() {
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      const auto& decls = files_[fi].summary.decls;
      for (size_t di = 0; di < decls.size(); ++di) {
        if (decls[di].is_definition) defs_[decls[di].name].push_back({fi, di});
      }
    }
  }

  static bool QnameMatches(const std::string& qname, const std::string& pat) {
    std::string p = pat;
    if (p.rfind("::", 0) == 0) p = p.substr(2);
    if (qname == p) return true;
    return HasSuffix(qname, "::" + p);
  }

  // Definitions a call of `name` from file `fi` can reach: the definition
  // (or a same-qname declaration) must be visible in fi's include closure.
  void ResolveCall(size_t fi, const std::string& name,
                   std::vector<std::pair<size_t, size_t>>* out) const {
    auto it = defs_.find(name);
    if (it == defs_.end()) return;
    for (const auto& [dfi, ddi] : it->second) {
      const FnDecl& def = files_[dfi].summary.decls[ddi];
      bool visible = closed_[fi].count(dfi) > 0;
      if (!visible) {
        for (size_t ci : closed_[fi]) {
          for (const FnDecl& d : files_[ci].summary.decls) {
            if (!d.is_definition && d.qname == def.qname) {
              visible = true;
              break;
            }
          }
          if (visible) break;
        }
      }
      if (visible) out->push_back({dfi, ddi});
    }
  }

  // `model = ModelFromFlags(flags)` names `flags` on the right-hand side,
  // but when the callee's definition is resolvable its computed
  // return-taint governs what flows into `model` — the blanket
  // args-flow-into-result rule is only for opaque externals (atoi). Drop
  // resolvable calls' argument identifiers from each assignment's rhs
  // once, up front; the inter-procedural return binding covers them.
  void PruneAssignRhs() {
    pruned_.resize(files_.size());
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      const FileSummary& sum = files_[fi].summary;
      pruned_[fi].reserve(sum.taint_assigns.size());
      for (const TaintAssign& a : sum.taint_assigns) {
        std::set<std::string> bound;
        for (const TaintCall& c : sum.taint_calls) {
          if (c.fn != a.fn || c.line != a.line || c.lhs != a.lhs) continue;
          std::vector<std::pair<size_t, size_t>> targets;
          ResolveCall(fi, c.name, &targets);
          if (targets.empty()) continue;
          for (const auto& arg : c.args) bound.insert(arg.begin(), arg.end());
        }
        std::vector<std::string> kept;
        for (const std::string& ident : a.rhs) {
          if (bound.count(ident) == 0) kept.push_back(ident);
        }
        pruned_[fi].push_back(std::move(kept));
      }
    }
  }

  void SeedSanitized() {
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      for (const TaintGuard& g : files_[fi].summary.taint_guards) {
        for (const std::string& ident : g.idents) {
          sanitized_.insert({fi, g.fn, ident});
        }
      }
      for (const TaintCall& c : files_[fi].summary.taint_calls) {
        if (config_.sanitizers.count(c.name) == 0) continue;
        if (!c.lhs.empty()) sanitized_.insert({fi, c.fn, c.lhs});
        for (const auto& arg : c.args) {
          for (const std::string& ident : arg) {
            sanitized_.insert({fi, c.fn, ident});
          }
        }
      }
    }
  }

  bool IsTainted(size_t fi, int fn, const std::string& var) const {
    return tainted_.count({fi, fn, var}) > 0;
  }

  // Whether `name` is declared with a map type anywhere in fi's include
  // closure (flags.cc subscripting the values_ map declared in flags.h).
  bool IsAssoc(size_t fi, const std::string& name) const {
    for (size_t ci : closed_[fi]) {
      const auto& assoc = files_[ci].summary.taint_assoc;
      if (std::find(assoc.begin(), assoc.end(), name) != assoc.end()) {
        return true;
      }
    }
    return false;
  }

  bool ArgSevered(const std::vector<std::string>& nested_calls) const {
    for (const std::string& callee : nested_calls) {
      if (config_.sanitizers.count(callee) > 0 ||
          config_.barriers.count(callee) > 0) {
        return true;
      }
    }
    return false;
  }

  // Marks (fi, fn, var) tainted with the given flow chain unless it is
  // sanitized or already tainted. Returns whether anything changed.
  bool Taint(size_t fi, int fn, const std::string& var,
             const std::string& chain) {
    VarKey key{fi, fn, var};
    if (sanitized_.count(key) > 0) return false;
    return tainted_.emplace(std::move(key), chain).second;
  }

  const std::string& ChainOf(size_t fi, int fn,
                             const std::string& var) const {
    static const std::string kEmpty;
    auto it = tainted_.find({fi, fn, var});
    return it == tainted_.end() ? kEmpty : it->second;
  }

  // Appends " -> step" while the printed chain stays readable; the
  // propagation itself is never truncated.
  static std::string Extend(const std::string& chain,
                            const std::string& step) {
    if (std::count(chain.begin(), chain.end(), '>') >= 8) return chain;
    return chain + " -> " + step;
  }

  std::string FnName(size_t fi, int fn) const {
    if (fn < 0 ||
        static_cast<size_t>(fn) >= files_[fi].summary.decls.size()) {
      return "<file>";
    }
    return files_[fi].summary.decls[fn].name;
  }

  void Propagate() {
    // Flow-insensitive fixpoint: cheap because the fact tables are small.
    // Sanitized variables never re-taint — an EXEA_CHECK anywhere in the
    // function covers the whole function (a documented approximation).
    bool changed = true;
    int rounds = 0;
    while (changed && ++rounds < 64) {
      changed = false;
      for (size_t fi = 0; fi < files_.size(); ++fi) {
        const FileSummary& sum = files_[fi].summary;
        // Seed: configured tainted parameters of matching definitions.
        for (const auto& [fn_pat, param] : config_.tainted_params) {
          for (size_t di = 0; di < sum.decls.size(); ++di) {
            const FnDecl& d = sum.decls[di];
            if (!d.is_definition || !QnameMatches(d.qname, fn_pat)) continue;
            for (const std::string& p : d.params) {
              if (p == param) {
                changed |= Taint(fi, static_cast<int>(di), p,
                                 "param '" + param + "' of " + d.name);
              }
            }
          }
        }
        for (const TaintCall& c : sum.taint_calls) {
          // Seed: source calls taint their result (and arguments).
          auto src = config_.sources.find(c.name);
          if (src != config_.sources.end()) {
            const SourceSpec& spec = src->second;
            std::string origin = "'" + c.name + "'";
            if (spec.ret && !c.lhs.empty()) {
              changed |= Taint(fi, c.fn, c.lhs, origin);
            }
            for (size_t a = 0; a < c.args.size(); ++a) {
              if (!spec.all_args &&
                  spec.arg_indices.count(static_cast<int>(a)) == 0) {
                continue;
              }
              for (const std::string& ident : c.args[a]) {
                changed |= Taint(fi, c.fn, ident, origin);
              }
            }
          }
          if (config_.sanitizers.count(c.name) > 0 ||
              config_.barriers.count(c.name) > 0) {
            continue;
          }
          // Inter-procedural: bind tainted arguments to parameters and
          // carry return-taint back to the call's result.
          std::vector<std::pair<size_t, size_t>> targets;
          ResolveCall(fi, c.name, &targets);
          for (const auto& [dfi, ddi] : targets) {
            const FnDecl& def = files_[dfi].summary.decls[ddi];
            size_t n = std::min(c.args.size(), def.params.size());
            for (size_t a = 0; a < n; ++a) {
              if (def.params[a].empty()) continue;
              // A sanitizing or barrier call inside the argument
              // expression severs this binding (Foo(flags.GetInt(...))).
              if (a < c.arg_calls.size() && ArgSevered(c.arg_calls[a])) {
                continue;
              }
              for (const std::string& ident : c.args[a]) {
                if (!IsTainted(fi, c.fn, ident)) continue;
                changed |= Taint(
                    dfi, static_cast<int>(ddi), def.params[a],
                    Extend(ChainOf(fi, c.fn, ident),
                           def.name + ":" + def.params[a]));
              }
            }
            if (!c.lhs.empty() &&
                IsTainted(dfi, static_cast<int>(ddi), "return")) {
              changed |= Taint(
                  fi, c.fn, c.lhs,
                  Extend(ChainOf(dfi, static_cast<int>(ddi), "return"),
                         FnName(fi, c.fn) + ":" + c.lhs));
            }
          }
        }
        // Intra-procedural: assignments move taint right to left unless
        // the statement runs a sanitizing parse or a barrier call (the
        // result of an error-Status factory is not untrusted data).
        for (size_t ai = 0; ai < sum.taint_assigns.size(); ++ai) {
          const TaintAssign& a = sum.taint_assigns[ai];
          bool severed = false;
          for (const std::string& callee : a.calls) {
            if (config_.sanitizers.count(callee) > 0 ||
                config_.barriers.count(callee) > 0) {
              severed = true;
            }
          }
          if (severed) continue;
          // A ret-source anywhere in the statement taints the target even
          // through an opaque wrapper: `idx = atoi(ReadField(...))`.
          for (const std::string& callee : a.calls) {
            auto src = config_.sources.find(callee);
            if (src != config_.sources.end() && src->second.ret) {
              changed |= Taint(fi, a.fn, a.lhs, "'" + callee + "'");
            }
          }
          for (const std::string& ident : pruned_[fi][ai]) {
            if (!IsTainted(fi, a.fn, ident)) continue;
            std::string step =
                a.lhs == "return" ? FnName(fi, a.fn) + ":return"
                                  : FnName(fi, a.fn) + ":" + a.lhs;
            changed |= Taint(fi, a.fn, a.lhs,
                             Extend(ChainOf(fi, a.fn, ident), step));
            break;
          }
        }
      }
    }
  }

  void ReportSinks() {
    const char* advice =
        "; add an EXEA_CHECK range guard or parse with exea::util::Parse*";
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      const FileSummary& sum = files_[fi].summary;
      for (const TaintCall& c : sum.taint_calls) {
        auto it = config_.sinks.find(c.name);
        if (it == config_.sinks.end()) continue;
        bool any_arg = it->second.count(-1) > 0;
        for (size_t a = 0; a < c.args.size(); ++a) {
          if (!any_arg && it->second.count(static_cast<int>(a)) == 0) {
            continue;
          }
          // buf.resize(util::ParseInt32-checked value) is the repaired
          // idiom — a sanitizer inside the argument clears the sink.
          if (a < c.arg_calls.size() && ArgSevered(c.arg_calls[a])) {
            continue;
          }
          for (const std::string& ident : c.args[a]) {
            if (!IsTainted(fi, c.fn, ident) ||
                sanitized_.count({fi, c.fn, ident}) > 0) {
              continue;
            }
            Report(fi, c.line, c.col,
                   "untrusted value reaches sink '" + c.name + "' (flow: " +
                       Extend(ChainOf(fi, c.fn, ident), c.name + "()") +
                       ")" + advice);
          }
        }
      }
      for (const TaintSink& s : sum.taint_sinks) {
        const char* what = s.kind == "index" ? "container index"
                                             : "loop bound";
        // Keying a declared map is an associative lookup — a hostile key
        // selects (or creates) one slot, it cannot index out of range.
        if (s.kind == "index" && !s.base.empty() && IsAssoc(fi, s.base)) {
          continue;
        }
        for (const std::string& ident : s.idents) {
          if (!IsTainted(fi, s.fn, ident) ||
              sanitized_.count({fi, s.fn, ident}) > 0) {
            continue;
          }
          Report(fi, s.line, s.col,
                 std::string("untrusted value reaches ") + what +
                     " (flow: " +
                     Extend(ChainOf(fi, s.fn, ident),
                            std::string(what) + " '" + ident + "'") +
                     ")" + advice);
        }
      }
    }
  }

  const std::vector<FileAnalysis>& files_;
  const TaintConfig& config_;
  std::map<std::string, size_t> key_to_file_;
  std::vector<std::set<size_t>> closed_;
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> defs_;
  // [file][assignment index] -> rhs identifiers minus resolvable-call args.
  std::vector<std::vector<std::vector<std::string>>> pruned_;
  std::map<VarKey, std::string> tainted_;
  std::set<VarKey> sanitized_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

// Whole-string non-negative integer (the lint library is dependency-free,
// so this mirrors util::ParseInt32 with std::from_chars directly).
static bool ParseIndex(const std::string& text, int* out) {
  if (text.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size() && *out >= 0;
}

bool ParseTaint(const fs::path& path, TaintConfig* config,
                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path.generic_string();
    return false;
  }
  config->path = path.generic_string();
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string kind;
    if (!(words >> kind)) continue;
    auto fail = [&](const std::string& what) {
      *error = path.generic_string() + ":" + std::to_string(lineno) + ": " +
               what;
      return false;
    };
    if (kind == "source") {
      std::string name, mode;
      if (!(words >> name >> mode) ||
          (mode != "ret" && mode != "args" && mode != "arg")) {
        return fail("directive 'source' wants <name> ret|args|arg <i>...");
      }
      SourceSpec& spec = config->sources[name];
      if (mode == "ret") {
        spec.ret = true;
      } else if (mode == "args") {
        spec.all_args = true;
      } else {
        std::string idx;
        size_t added = 0;
        int value = 0;
        while (words >> idx) {
          if (!ParseIndex(idx, &value)) {
            return fail("source argument index must be a number, got '" +
                        idx + "'");
          }
          spec.arg_indices.insert(value);
          ++added;
        }
        if (added == 0) {
          return fail("directive 'source ... arg' lists no indices");
        }
      }
    } else if (kind == "tainted-param") {
      std::string fn, param;
      if (!(words >> fn >> param)) {
        return fail("directive 'tainted-param' wants <fn> <param>");
      }
      config->tainted_params.emplace_back(fn, param);
    } else if (kind == "sanitizer" || kind == "barrier") {
      std::string name;
      size_t added = 0;
      while (words >> name) {
        if (kind == "sanitizer") {
          config->sanitizers.insert(name);
        } else {
          config->barriers.insert(name);
        }
        ++added;
      }
      if (added == 0) {
        return fail("directive '" + kind + "' names no functions");
      }
    } else if (kind == "sink") {
      std::string name, idx;
      if (!(words >> name >> idx)) {
        return fail("directive 'sink' wants <name> <argidx|*>");
      }
      int value = 0;
      do {
        if (idx == "*") {
          config->sinks[name].insert(-1);
        } else if (ParseIndex(idx, &value)) {
          config->sinks[name].insert(value);
        } else {
          return fail("sink argument index must be a number or '*', got '" +
                      idx + "'");
        }
      } while (words >> idx);
    } else {
      return fail("unknown directive '" + kind +
                  "' (want source/tainted-param/sanitizer/barrier/sink)");
    }
  }
  config->loaded = true;
  return true;
}

void CollectTaintFacts(const SourceFile& file, FileSummary* summary) {
  FactCollector collector(file, summary);
  collector.Run();
}

std::vector<Diagnostic> RunTaintPass(const std::vector<FileAnalysis>& files,
                                     const TaintConfig& config) {
  TaintPass pass(files, config);
  return pass.Run();
}

}  // namespace lint
