# Empty compiler generated dependencies file for rotate_test.
# This may be replaced when dependencies are built.
