// Downward include (serve → util) — legal under the declared order, so
// this file must scan clean.
#ifndef EXEA_TESTS_CORPUS_LINT_GOOD_SRC_SERVE_QUERY_H_
#define EXEA_TESTS_CORPUS_LINT_GOOD_SRC_SERVE_QUERY_H_

#include "util/base.h"

namespace demo {
struct Query : Base {};
}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_GOOD_SRC_SERVE_QUERY_H_
