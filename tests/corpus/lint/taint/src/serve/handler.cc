#include "serve/handler.h"

#include <cstdlib>

#include "net/input.h"

namespace demo::serve {

void HandleRequest(const std::string& raw) {
  std::string field = net::ReadField(raw, "len");
  // Positive (atoi-on-untrusted): atoi silently accepts "12junk".
  int len = std::atoi(field.c_str());
  std::vector<int> buf;
  // The tainted length crosses into net::Prepare, whose resize is the
  // sink — the finding lands in input.cc with the full chain.
  net::Prepare(buf, len);
}

void Route(const std::string& wire, std::vector<int>& out) {
  // Positive: `wire` starts tainted (configured tainted-param); a byte
  // of it becomes a size without any range check.
  int hops = wire.empty() ? 0 : wire[0] - '0';
  out.resize(hops);
}

}  // namespace demo::serve
