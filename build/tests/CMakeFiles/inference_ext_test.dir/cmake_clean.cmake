file(REMOVE_RECURSE
  "CMakeFiles/inference_ext_test.dir/inference_ext_test.cc.o"
  "CMakeFiles/inference_ext_test.dir/inference_ext_test.cc.o.d"
  "inference_ext_test"
  "inference_ext_test.pdb"
  "inference_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
