// EAShapley — Shapley-value feature attribution for EA (Section V-B1).
//
// Two estimators, matching the paper's setup:
//   * first-order candidates: Monte-Carlo permutation sampling of the
//     marginal contribution of each triple (accurate but O(perms * n)
//     model evaluations);
//   * second-order candidates: KernelSHAP — a weighted linear regression
//     with the Shapley kernel of Eq. (12) over sampled coalitions.
// The value function v(S) is the reconstructed-pair similarity under the
// coalition's kept triples.

#ifndef EXEA_BASELINES_EASHAPLEY_H_
#define EXEA_BASELINES_EASHAPLEY_H_

#include <cstdint>

#include "baselines/explainer.h"
#include "baselines/perturbation.h"

namespace exea::baselines {

enum class ShapleyEstimator {
  kMonteCarlo,  // permutation sampling (first-order protocol)
  kKernelShap,  // Shapley-kernel regression (second-order protocol)
};

class EAShapley : public Explainer {
 public:
  EAShapley(const PerturbedEmbedder* embedder, ShapleyEstimator estimator,
            size_t num_samples = 96, uint64_t seed = 13)
      : embedder_(embedder),
        estimator_(estimator),
        num_samples_(num_samples),
        seed_(seed) {}

  std::string name() const override { return "EAShapley"; }

  ExplainerResult Explain(kg::EntityId e1, kg::EntityId e2,
                          const std::vector<kg::Triple>& candidates1,
                          const std::vector<kg::Triple>& candidates2,
                          size_t budget) override;

  // Raw attribution scores (exposed for tests of Shapley axioms).
  std::vector<double> AttributionScores(
      kg::EntityId e1, kg::EntityId e2,
      const std::vector<kg::Triple>& candidates1,
      const std::vector<kg::Triple>& candidates2);

 private:
  const PerturbedEmbedder* embedder_;
  ShapleyEstimator estimator_;
  size_t num_samples_;
  uint64_t seed_;
};

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_EASHAPLEY_H_
