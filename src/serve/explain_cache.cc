#include "serve/explain_cache.h"

#include <utility>

namespace exea::serve {

bool ExplainLruCache::Get(const Key& key, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  if (out != nullptr) *out = it->second->entry;
  return true;
}

void ExplainLruCache::Put(const Key& key, Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent renderers of the same key race to this path; the entry
    // they produced is identical (rendering is deterministic), but the
    // key was just used — refresh it and move it to the front.
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, std::move(entry)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  UpdateGaugeLocked();
}

size_t ExplainLruCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void ExplainLruCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  UpdateGaugeLocked();
}

std::vector<ExplainLruCache::Key> ExplainLruCache::KeysMostRecentFirst() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Key> keys;
  keys.reserve(lru_.size());
  for (const Node& node : lru_) keys.push_back(node.key);
  return keys;
}

}  // namespace exea::serve
