// Tests for the persistence layers and the flag parser: matrix I/O,
// dataset directory I/O, and Flags.

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/dataset_io.h"
#include "kg/kg_io.h"
#include "la/matrix_io.h"
#include "util/flags.h"
#include "util/rng.h"

namespace exea {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("exea_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------- matrix

TEST_F(IoTest, MatrixRoundTripExact) {
  Rng rng(4);
  la::Matrix m(7, 5);
  m.FillNormal(rng, 1.5f);
  std::string path = (dir_ / "m.txt").string();
  ASSERT_TRUE(la::SaveMatrix(m, path).ok());
  auto loaded = la::LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->rows(), 7u);
  ASSERT_EQ(loaded->cols(), 5u);
  for (size_t i = 0; i < m.data().size(); ++i) {
    EXPECT_EQ(m.data()[i], loaded->data()[i]) << "lossy at " << i;
  }
}

TEST_F(IoTest, MatrixEmptyRoundTrip) {
  la::Matrix m(0, 0);
  std::string path = (dir_ / "empty.txt").string();
  ASSERT_TRUE(la::SaveMatrix(m, path).ok());
  auto loaded = la::LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0u);
}

TEST_F(IoTest, MatrixLoadRejectsTruncation) {
  std::string path = (dir_ / "bad.txt").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("2 3\n1 2 3\n4 5\n", f);  // second row short
  std::fclose(f);
  auto loaded = la::LoadMatrix(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, MatrixLoadRejectsGarbledHeader) {
  std::string path = (dir_ / "garbled.txt").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("banana split\n1 2 3\n", f);
  std::fclose(f);
  auto loaded = la::LoadMatrix(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, MatrixLoadRejectsImplausibleDimensions) {
  // A corrupted header must fail cleanly, not attempt a huge allocation.
  std::string path = (dir_ / "huge.txt").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("999999999 999999999\n", f);
  std::fclose(f);
  auto loaded = la::LoadMatrix(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, MatrixLoadRejectsNonNumericPayload) {
  std::string path = (dir_ / "junk.txt").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("2 2\n1 2\nx y\n", f);
  std::fclose(f);
  auto loaded = la::LoadMatrix(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, MatrixLoadMissingFile) {
  auto loaded = la::LoadMatrix((dir_ / "absent.txt").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// --------------------------------------------------------------- dataset

TEST_F(IoTest, DatasetRoundTripPreservesEverything) {
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  ASSERT_TRUE(data::SaveDataset(original, dir_.string()).ok());
  auto loaded = data::LoadDataset(dir_.string(), "roundtrip");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, "roundtrip");
  EXPECT_EQ(loaded->kg1.num_triples(), original.kg1.num_triples());
  EXPECT_EQ(loaded->kg2.num_triples(), original.kg2.num_triples());
  EXPECT_EQ(loaded->train.size(), original.train.size());
  EXPECT_EQ(loaded->test.size(), original.test.size());
  // Name-level equivalence of the gold map (ids may be re-interned).
  for (const auto& [source, target] : original.gold) {
    kg::EntityId source2 =
        loaded->kg1.FindEntity(original.kg1.EntityName(source));
    ASSERT_NE(source2, kg::kInvalidEntity);
    EXPECT_EQ(loaded->kg2.EntityName(loaded->gold.at(source2)),
              original.kg2.EntityName(target));
  }
}

TEST_F(IoTest, DatasetLoadRejectsTrainTestOverlap) {
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  ASSERT_TRUE(data::SaveDataset(original, dir_.string()).ok());
  // Append a train pair into the test file.
  kg::AlignedPair train_pair = original.train.SortedPairs()[0];
  std::FILE* f =
      std::fopen((dir_ / "test_links.tsv").string().c_str(), "a");
  std::fprintf(f, "%s\t%s\n",
               original.kg1.EntityName(train_pair.source).c_str(),
               original.kg2.EntityName(train_pair.target).c_str());
  std::fclose(f);
  auto loaded = data::LoadDataset(dir_.string(), "bad");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(IoTest, DatasetLoadMissingFileFails) {
  auto loaded = data::LoadDataset(dir_.string(), "missing");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, DatasetLoadRejectsGarbledTriples) {
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  ASSERT_TRUE(data::SaveDataset(original, dir_.string()).ok());
  std::FILE* f =
      std::fopen((dir_ / "kg1_triples.tsv").string().c_str(), "a");
  std::fputs("only_two\tfields\n", f);
  std::fclose(f);
  auto loaded = data::LoadDataset(dir_.string(), "garbled");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, DatasetLoadRejectsUnknownLinkEntity) {
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  ASSERT_TRUE(data::SaveDataset(original, dir_.string()).ok());
  std::FILE* f =
      std::fopen((dir_ / "train_links.tsv").string().c_str(), "a");
  std::fputs("zh/Ghost\ten/Ghost\n", f);
  std::fclose(f);
  auto loaded = data::LoadDataset(dir_.string(), "ghost");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------- dictionary-pinned load

TEST_F(IoTest, DictionaryRoundTripPreservesIdOrder) {
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::string path = (dir_ / "entities.tsv").string();
  ASSERT_TRUE(
      kg::SaveDictionary(original.kg1.entity_dictionary(), path).ok());
  auto names = kg::LoadDictionaryNames(path);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), original.kg1.num_entities());
  for (kg::EntityId e = 0; e < original.kg1.num_entities(); ++e) {
    EXPECT_EQ((*names)[e], original.kg1.EntityName(e));
  }
}

TEST_F(IoTest, DictionaryPinnedLoadReproducesIds) {
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  ASSERT_TRUE(data::SaveDataset(original, dir_.string()).ok());
  data::DatasetDictionaries dicts;
  for (kg::EntityId e = 0; e < original.kg1.num_entities(); ++e) {
    dicts.entities1.push_back(original.kg1.EntityName(e));
  }
  for (kg::RelationId r = 0; r < original.kg1.num_relations(); ++r) {
    dicts.relations1.push_back(original.kg1.RelationName(r));
  }
  for (kg::EntityId e = 0; e < original.kg2.num_entities(); ++e) {
    dicts.entities2.push_back(original.kg2.EntityName(e));
  }
  for (kg::RelationId r = 0; r < original.kg2.num_relations(); ++r) {
    dicts.relations2.push_back(original.kg2.RelationName(r));
  }
  auto loaded = data::LoadDataset(dir_.string(), "pinned", dicts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Every id maps to the same name as in the generating dataset — the
  // property the snapshot bundle's embedding matrices depend on.
  for (kg::EntityId e = 0; e < original.kg1.num_entities(); ++e) {
    ASSERT_EQ(loaded->kg1.EntityName(e), original.kg1.EntityName(e));
  }
  for (kg::EntityId e = 0; e < original.kg2.num_entities(); ++e) {
    ASSERT_EQ(loaded->kg2.EntityName(e), original.kg2.EntityName(e));
  }
}

TEST_F(IoTest, DictionaryPinnedLoadRejectsOutOfDictionaryNames) {
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  ASSERT_TRUE(data::SaveDataset(original, dir_.string()).ok());
  data::DatasetDictionaries dicts;
  // Omit the last KG1 entity: the triple files now mention a name the
  // dictionary does not pin, which must fail rather than silently extend
  // the id space past the embedding rows.
  for (kg::EntityId e = 0; e + 1 < original.kg1.num_entities(); ++e) {
    dicts.entities1.push_back(original.kg1.EntityName(e));
  }
  for (kg::RelationId r = 0; r < original.kg1.num_relations(); ++r) {
    dicts.relations1.push_back(original.kg1.RelationName(r));
  }
  for (kg::EntityId e = 0; e < original.kg2.num_entities(); ++e) {
    dicts.entities2.push_back(original.kg2.EntityName(e));
  }
  for (kg::RelationId r = 0; r < original.kg2.num_relations(); ++r) {
    dicts.relations2.push_back(original.kg2.RelationName(r));
  }
  auto loaded = data::LoadDataset(dir_.string(), "short", dicts);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------- flags

StatusOr<Flags> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesPairsAndPositionals) {
  auto flags = ParseArgs({"align", "--dir", "/tmp/x", "--epochs", "40"});
  ASSERT_TRUE(flags.ok());
  ASSERT_EQ(flags->positional().size(), 1u);
  EXPECT_EQ(flags->positional()[0], "align");
  EXPECT_EQ(flags->GetString("dir", ""), "/tmp/x");
  EXPECT_EQ(flags->GetInt("epochs", 0), 40);
  EXPECT_EQ(flags->GetInt("missing", 7), 7);
  EXPECT_TRUE(flags->Has("dir"));
  EXPECT_FALSE(flags->Has("nope"));
}

TEST(FlagsTest, EqualsSyntax) {
  auto flags = ParseArgs({"--alpha=0.25", "--name=x=y"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("alpha", 0), 0.25);
  EXPECT_EQ(flags->GetString("name", ""), "x=y");
}

TEST(FlagsTest, ValuelessFlagIsBooleanSwitch) {
  auto flags = ParseArgs({"--verbalize", "--limit", "5", "--no-cr1"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("verbalize"));
  EXPECT_EQ(flags->GetString("verbalize", ""), "true");
  EXPECT_TRUE(flags->Has("no-cr1"));
  EXPECT_EQ(flags->GetInt("limit", 0), 5);
}

TEST(FlagsTest, StrayDoubleDashFails) {
  EXPECT_FALSE(ParseArgs({"--"}).ok());
}

TEST(FlagsTest, LaterValueWins) {
  auto flags = ParseArgs({"--k", "1", "--k", "2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("k", 0), 2);
}

}  // namespace
}  // namespace exea
