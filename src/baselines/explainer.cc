#include "baselines/explainer.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace exea::baselines {

ExplainerResult SelectTopTriples(const std::vector<kg::Triple>& candidates1,
                                 const std::vector<kg::Triple>& candidates2,
                                 const std::vector<double>& scores,
                                 size_t budget) {
  size_t total = candidates1.size() + candidates2.size();
  EXEA_CHECK_EQ(scores.size(), total);
  std::vector<size_t> order(total);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  ExplainerResult out;
  size_t keep = std::min(budget, total);
  for (size_t i = 0; i < keep; ++i) {
    size_t idx = order[i];
    if (idx < candidates1.size()) {
      out.triples1.push_back(candidates1[idx]);
    } else {
      out.triples2.push_back(candidates2[idx - candidates1.size()]);
    }
  }
  std::sort(out.triples1.begin(), out.triples1.end());
  std::sort(out.triples2.begin(), out.triples2.end());
  return out;
}

}  // namespace exea::baselines
