// MTransE (Chen et al., IJCAI 2017): the pioneering translation-based EA
// model. Each KG is embedded with TransE; a calibration loss pulls seed
// pairs together so both KGs share one vector space.
//
// Faithfulness note: the original paper offers three cross-KG techniques
// (distance calibration, translation vectors, linear transforms); this
// implementation uses the shared-space calibration variant, which is the
// one the benchmarking study (OpenEA) found strongest and the one whose
// output the explanation framework consumes (a single similarity space).

#ifndef EXEA_EMB_MTRANSE_H_
#define EXEA_EMB_MTRANSE_H_

#include <memory>
#include <string>

#include "emb/model.h"

namespace exea::emb {

class MTransE : public EAModel {
 public:
  explicit MTransE(const TrainConfig& config) : config_(config) {}

  std::string name() const override { return "MTransE"; }
  void Train(const data::EaDataset& dataset) override;
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override;
  bool HasRelationEmbeddings() const override { return true; }
  const la::Matrix& RelationEmbeddings(kg::KgSide side) const override;
  std::unique_ptr<EAModel> CloneUntrained() const override {
    return std::make_unique<MTransE>(config_);
  }

 private:
  TrainConfig config_;
  la::Matrix ent1_, ent2_;
  la::Matrix rel1_, rel2_;
};

}  // namespace exea::emb

#endif  // EXEA_EMB_MTRANSE_H_
