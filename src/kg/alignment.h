// Alignment containers.
//
// An AlignmentSet is a mutable set of (source entity, target entity) pairs
// with bidirectional lookup. It is deliberately *not* constrained to be
// one-to-one: raw model output can contain one-to-many conflicts, and the
// repair pipeline's whole job is to detect and remove them.

#ifndef EXEA_KG_ALIGNMENT_H_
#define EXEA_KG_ALIGNMENT_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/types.h"

namespace exea::kg {

struct AlignedPair {
  EntityId source = kInvalidEntity;
  EntityId target = kInvalidEntity;

  friend bool operator==(const AlignedPair& a, const AlignedPair& b) {
    return a.source == b.source && a.target == b.target;
  }
  friend bool operator<(const AlignedPair& a, const AlignedPair& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  }
};

struct AlignedPairHash {
  size_t operator()(const AlignedPair& p) const {
    return (static_cast<uint64_t>(p.source) << 32 | p.target) *
           0x9E3779B97F4A7C15ULL >> 16;
  }
};

class AlignmentSet {
 public:
  AlignmentSet() = default;

  // Adds (source, target); returns false if the exact pair already exists.
  bool Add(EntityId source, EntityId target);

  // Removes (source, target); returns false if absent.
  bool Remove(EntityId source, EntityId target);

  bool Contains(EntityId source, EntityId target) const;

  // Whether any pair mentions this source (resp. target) entity.
  bool HasSource(EntityId source) const;
  bool HasTarget(EntityId target) const;

  // Targets aligned with `source` (usually 0 or 1; >1 before one-to-many
  // repair). Deterministic (sorted) order.
  std::vector<EntityId> TargetsOf(EntityId source) const;
  std::vector<EntityId> SourcesOf(EntityId target) const;

  // The unique counterpart, or kInvalidEntity if there are 0 or >1.
  EntityId UniqueTargetOf(EntityId source) const;
  EntityId UniqueSourceOf(EntityId target) const;

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  // All pairs in deterministic (sorted) order.
  std::vector<AlignedPair> SortedPairs() const;

  // True if no target has more than one source and vice versa.
  bool IsOneToOne() const;

 private:
  std::unordered_set<AlignedPair, AlignedPairHash> pairs_;
  std::unordered_map<EntityId, std::unordered_set<EntityId>> by_source_;
  std::unordered_map<EntityId, std::unordered_set<EntityId>> by_target_;
};

// Fraction of `predicted` pairs that appear in `gold` (the paper's EA
// accuracy: correct pairs / total gold pairs). `gold_size` defaults to the
// gold map size.
double AlignmentAccuracy(
    const AlignmentSet& predicted,
    const std::unordered_map<EntityId, EntityId>& gold_source_to_target);

}  // namespace exea::kg

#endif  // EXEA_KG_ALIGNMENT_H_
