file(REMOVE_RECURSE
  "libexea_util.a"
)
