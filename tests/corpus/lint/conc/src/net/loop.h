// Event-loop fixture: Run() is the entry configured in
// tools/lint_concurrency.txt; everything it reaches must stay
// nonblocking.
#ifndef CONC_NET_LOOP_H_
#define CONC_NET_LOOP_H_

namespace demo::net {

class Loop {
 public:
  void Run();
  void Shutdown();

 private:
  void HandleEvent();
  int fd_ = -1;
};

}  // namespace demo::net

#endif  // CONC_NET_LOOP_H_
