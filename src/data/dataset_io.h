// Directory-based persistence for EA datasets in the DBP15K/OpenEA file
// layout:
//   <dir>/kg1_triples.tsv      head \t relation \t tail
//   <dir>/kg2_triples.tsv
//   <dir>/train_links.tsv      source_entity \t target_entity
//   <dir>/test_links.tsv
//   <dir>/attr_triples_1.tsv   entity \t attribute \t value   (optional)
//   <dir>/attr_triples_2.tsv                                  (optional)
//
// LoadDataset reconstructs gold from train + test links (the synthetic
// generator's full gold map equals their union). Attribute files are
// loaded when present and skipped otherwise.

#ifndef EXEA_DATA_DATASET_IO_H_
#define EXEA_DATA_DATASET_IO_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace exea::data {

// Writes the four files into `dir` (which must already exist).
[[nodiscard]]
Status SaveDataset(const EaDataset& dataset, const std::string& dir);

// Loads a dataset previously written by SaveDataset (or hand-assembled in
// the same layout). `name` becomes the dataset's display name.
[[nodiscard]] StatusOr<EaDataset> LoadDataset(const std::string& dir,
                                const std::string& name);

// Pre-interned entity/relation name lists (in id order) for both KGs.
// Captured at save time from the live graphs, they pin the dense id
// spaces across a round trip: LoadDataset by itself interns names in
// triple-file order, which need not match the order the original graphs
// interned them in.
struct DatasetDictionaries {
  std::vector<std::string> entities1;
  std::vector<std::string> relations1;
  std::vector<std::string> entities2;
  std::vector<std::string> relations2;
};

// As LoadDataset, but interns `dicts` into the two graphs first so every
// entity/relation keeps its original id. Triples may not mention names
// outside the dictionaries (fails with INVALID_ARGUMENT). The serving
// snapshot loader uses this to keep embedding-matrix rows aligned with
// entity ids.
[[nodiscard]] StatusOr<EaDataset> LoadDataset(const std::string& dir,
                                const std::string& name,
                                const DatasetDictionaries& dicts);

}  // namespace exea::data

#endif  // EXEA_DATA_DATASET_IO_H_
