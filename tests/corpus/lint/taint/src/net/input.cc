#include "net/input.h"

namespace demo::net {

std::string ReadField(const std::string& raw, const std::string& key) {
  size_t at = raw.find(key + "=");
  if (at == std::string::npos) return "";
  size_t begin = at + key.size() + 1;
  size_t end = raw.find(';', begin);
  return raw.substr(begin, end - begin);
}

void Prepare(std::vector<int>& buf, int n) {
  // Positive: `n` is bound to a tainted argument in serve/handler.cc —
  // the cross-TU chain ReadField -> HandleRequest -> Prepare ends in an
  // attacker-sized allocation.
  buf.resize(n);
}

bool ParseInt32(const std::string& text, int lo, int hi, int* out) {
  if (text.empty()) return false;
  long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > hi) return false;
  }
  if (value < lo) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace demo::net
