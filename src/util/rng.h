// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed and owns
// its own Rng instance, so results are reproducible run-to-run and
// independent of evaluation order. The generator is SplitMix64 — fast,
// well-distributed, and trivially seedable.

#ifndef EXEA_UTIL_RNG_H_
#define EXEA_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace exea {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  // Standard normal via Box-Muller.
  double Normal();

  // True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples `k` distinct indices from [0, n). If k >= n, returns all of
  // [0, n) in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Derives an independent child generator; used to give each component a
  // decorrelated stream from one top-level seed.
  Rng Fork();

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace exea

#endif  // EXEA_UTIL_RNG_H_
