// Tests for the alignment-audit subsystem: batch explanation, suspect
// flagging, ordering, and explanation verbalization.

#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "explain/audit.h"
#include "explain/exea.h"

namespace exea::explain {
namespace {

class AuditFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    model_ = emb::MakeDefaultModel(emb::ModelKind::kMTransE).release();
    model_->Train(*dataset_);
    explainer_ = new ExeaExplainer(*dataset_, *model_, ExeaConfig{});
    aligned_ = new kg::AlignmentSet(
        eval::GreedyAlign(eval::RankTestEntities(*model_, *dataset_)));
  }
  static void TearDownTestSuite() {
    delete aligned_;
    delete explainer_;
    delete model_;
    delete dataset_;
  }

  static data::EaDataset* dataset_;
  static emb::EAModel* model_;
  static ExeaExplainer* explainer_;
  static kg::AlignmentSet* aligned_;
};

data::EaDataset* AuditFixture::dataset_ = nullptr;
emb::EAModel* AuditFixture::model_ = nullptr;
ExeaExplainer* AuditFixture::explainer_ = nullptr;
kg::AlignmentSet* AuditFixture::aligned_ = nullptr;

TEST_F(AuditFixture, AuditsEveryPair) {
  AuditReport report =
      AuditAlignment(*explainer_, *aligned_, dataset_->train);
  EXPECT_EQ(report.entries.size(), aligned_->size());
  size_t histogram_total = 0;
  for (size_t count : report.confidence_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, report.entries.size());
  EXPECT_GT(report.mean_confidence, 0.0);
  EXPECT_LT(report.mean_confidence, 1.0);
}

TEST_F(AuditFixture, SuspectsComeFirst) {
  AuditReport report =
      AuditAlignment(*explainer_, *aligned_, dataset_->train);
  // Flag counts must be non-increasing across the ordering.
  for (size_t i = 1; i < report.entries.size(); ++i) {
    EXPECT_GE(report.entries[i - 1].flags.size(),
              report.entries[i].flags.size());
  }
  // suspect_count matches the entry flags.
  size_t suspects = 0;
  for (const AuditEntry& entry : report.entries) {
    if (entry.suspect()) ++suspects;
  }
  EXPECT_EQ(report.suspect_count, suspects);
}

TEST_F(AuditFixture, SuspectsAreDisproportionatelyWrong) {
  // The whole point of auditing: flagged pairs should be wrong far more
  // often than clean pairs.
  AuditReport report =
      AuditAlignment(*explainer_, *aligned_, dataset_->train);
  size_t suspect_wrong = 0;
  size_t suspect_total = 0;
  size_t clean_wrong = 0;
  size_t clean_total = 0;
  for (const AuditEntry& entry : report.entries) {
    auto it = dataset_->gold.find(entry.source);
    bool wrong = it == dataset_->gold.end() || it->second != entry.target;
    if (entry.suspect()) {
      ++suspect_total;
      suspect_wrong += wrong ? 1 : 0;
    } else {
      ++clean_total;
      clean_wrong += wrong ? 1 : 0;
    }
  }
  ASSERT_GT(suspect_total, 0u);
  ASSERT_GT(clean_total, 0u);
  double suspect_error = static_cast<double>(suspect_wrong) /
                         static_cast<double>(suspect_total);
  double clean_error =
      static_cast<double>(clean_wrong) / static_cast<double>(clean_total);
  EXPECT_GT(suspect_error, clean_error + 0.2)
      << "suspect error " << suspect_error << " vs clean " << clean_error;
}

TEST_F(AuditFixture, ContestedTargetsAreFlagged) {
  AuditReport report =
      AuditAlignment(*explainer_, *aligned_, dataset_->train);
  for (const AuditEntry& entry : report.entries) {
    bool contested = aligned_->SourcesOf(entry.target).size() > 1;
    bool flagged = false;
    for (AuditFlag flag : entry.flags) {
      flagged |= flag == AuditFlag::kTargetContested;
    }
    EXPECT_EQ(contested, flagged);
  }
}

TEST_F(AuditFixture, VerbalizationMentionsEntitiesAndEvidence) {
  AlignmentContext context(aligned_, &dataset_->train);
  for (const kg::AlignedPair& pair : dataset_->test) {
    Explanation explanation =
        explainer_->Explain(pair.source, pair.target, context);
    if (explanation.empty()) continue;
    Adg adg = explainer_->BuildAdg(explanation);
    std::string text =
        VerbalizeExplanation(explanation, adg, dataset_->kg1, dataset_->kg2);
    EXPECT_NE(text.find(dataset_->kg1.EntityName(pair.source)),
              std::string::npos);
    EXPECT_NE(text.find(dataset_->kg2.EntityName(pair.target)),
              std::string::npos);
    EXPECT_NE(text.find("evidence"), std::string::npos);
    return;
  }
  FAIL() << "no explainable pair found";
}

TEST_F(AuditFixture, VerbalizationHandlesEmptyExplanation) {
  Explanation empty;
  empty.e1 = dataset_->test[0].source;
  empty.e2 = dataset_->test[0].target;
  Adg adg;
  adg.e1 = empty.e1;
  adg.e2 = empty.e2;
  std::string text =
      VerbalizeExplanation(empty, adg, dataset_->kg1, dataset_->kg2);
  EXPECT_NE(text.find("No matching structure"), std::string::npos);
}

TEST(AuditFlagTest, NamesAreStable) {
  EXPECT_STREQ(AuditFlagName(AuditFlag::kNoMatches), "no-matches");
  EXPECT_STREQ(AuditFlagName(AuditFlag::kLowConfidence), "low-confidence");
  EXPECT_STREQ(AuditFlagName(AuditFlag::kNoStrongSupport),
               "no-strong-support");
  EXPECT_STREQ(AuditFlagName(AuditFlag::kTargetContested),
               "target-contested");
}

}  // namespace
}  // namespace exea::explain
