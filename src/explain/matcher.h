// Bidirectional semantic path matching (paper Section III-A, step 2).
//
// Given the enumerated relation paths of the two entities (with their
// Eq. (2) embeddings), the matcher
//   1. keeps only paths whose terminal neighbour has an aligned counterpart
//      among the other side's terminals ("match neighbour entities" —
//      alignment meaning: predicted by the model or in the seed set),
//   2. finds mutually-best path pairs by cosine similarity, restricted to
//      pairs whose terminals are aligned with each other,
//   3. emits the matched pairs and the union of their triples as the
//      semantic matching subgraph.

#ifndef EXEA_EXPLAIN_MATCHER_H_
#define EXEA_EXPLAIN_MATCHER_H_

#include <vector>

#include "explain/explanation.h"
#include "kg/alignment.h"
#include "kg/neighborhood.h"
#include "la/vector_ops.h"

namespace exea::explain {

// The alignment knowledge available when matching neighbours: the model's
// current (possibly repaired) results plus the seed alignment. Pointers are
// not owned and must outlive the context.
class AlignmentContext {
 public:
  AlignmentContext(const kg::AlignmentSet* result,
                   const kg::AlignmentSet* seeds)
      : result_(result), seeds_(seeds) {}

  bool AreAligned(kg::EntityId e1, kg::EntityId e2) const {
    return (seeds_ != nullptr && seeds_->Contains(e1, e2)) ||
           (result_ != nullptr && result_->Contains(e1, e2));
  }

  // All targets aligned with `source` across both sets (sorted, deduped).
  std::vector<kg::EntityId> AlignedTargets(kg::EntityId source) const;

  // All sources aligned with `target` across both sets (sorted, deduped).
  std::vector<kg::EntityId> AlignedSources(kg::EntityId target) const;

 private:
  const kg::AlignmentSet* result_;
  const kg::AlignmentSet* seeds_;
};

// Paths from one entity plus their Eq. (2) embeddings (parallel arrays).
struct PathsWithEmbeddings {
  std::vector<kg::RelationPath> paths;
  std::vector<la::Vec> embeddings;
};

// Runs steps 1-3 above. The result's candidate lists are left empty; the
// facade fills them in.
Explanation MatchPaths(kg::EntityId e1, kg::EntityId e2,
                       const PathsWithEmbeddings& side1,
                       const PathsWithEmbeddings& side2,
                       const AlignmentContext& context);

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_MATCHER_H_
