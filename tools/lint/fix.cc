#include "lint/fix.h"

#include <algorithm>
#include <fstream>
#include <string>

#include "lint/analysis.h"
#include "lint/local_rules.h"
#include "lint/source.h"

namespace lint {

namespace {

// One pending edit on a raw line; edits are applied right-to-left so
// earlier columns stay valid.
struct Edit {
  size_t line = 0;   // 1-based
  size_t col = 0;    // 1-based
  bool is_waiver = false;
};

// Rewrites the lax waiver span starting at `at` (0-based index of the
// "exea-lint" tag) into the canonical spelling. Returns false when the
// expected span is not found (the file changed under us — skip).
bool NormalizeWaiver(std::string* line, size_t at) {
  const std::string kTag = "exea-lint";
  if (line->compare(at, kTag.size(), kTag) != 0) return false;
  size_t i = at + kTag.size();
  while (i < line->size() && ((*line)[i] == ' ' || (*line)[i] == '\t')) ++i;
  if (i < line->size() && (*line)[i] == ':') ++i;
  while (i < line->size() && ((*line)[i] == ' ' || (*line)[i] == '\t')) ++i;
  if (line->compare(i, 5, "allow") != 0) return false;
  i += 5;
  while (i < line->size() && ((*line)[i] == ' ' || (*line)[i] == '\t')) ++i;
  if (i >= line->size() || (*line)[i] != '(') return false;
  line->replace(at, i + 1 - at, "exea-lint: allow(");
  return true;
}

}  // namespace

FixStats ApplyFixes(const std::vector<std::filesystem::path>& files,
                    const ConcurrencyConfig& conc) {
  FixStats stats;
  for (const std::filesystem::path& path : files) {
    SourceFile file;
    if (!LoadFile(path, &file)) {
      ++stats.files_failed;
      continue;
    }
    FileAnalysis analysis = AnalyzeFile(file, conc);
    std::vector<Edit> edits;
    for (const Diagnostic& d : analysis.local) {
      if (d.rule == "nodiscard-status") {
        edits.push_back({d.line, d.col, false});
      } else if (d.rule == "waiver-format") {
        edits.push_back({d.line, d.col, true});
      }
    }
    if (edits.empty()) continue;
    // Right-to-left within a line keeps earlier columns stable.
    std::sort(edits.begin(), edits.end(), [](const Edit& a, const Edit& b) {
      if (a.line != b.line) return a.line < b.line;
      return a.col > b.col;
    });
    std::vector<std::string> lines = file.raw;
    size_t applied = 0;
    for (const Edit& e : edits) {
      if (e.line < 1 || e.line > lines.size() || e.col < 1) continue;
      std::string& line = lines[e.line - 1];
      if (e.col - 1 > line.size()) continue;
      if (e.is_waiver) {
        if (NormalizeWaiver(&line, e.col - 1)) {
          ++stats.waivers_normalized;
          ++applied;
        }
      } else {
        line.insert(e.col - 1, "[[nodiscard]] ");
        ++stats.nodiscard_inserted;
        ++applied;
      }
    }
    if (applied == 0) continue;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      ++stats.files_failed;
      continue;
    }
    for (const std::string& line : lines) out << line << "\n";
    if (!out.good()) {
      ++stats.files_failed;
      continue;
    }
    ++stats.files_changed;
  }
  return stats;
}

}  // namespace lint
