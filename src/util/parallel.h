// Deterministic data-parallel loops over index ranges.
//
// ParallelFor partitions [begin, end) into fixed blocks of `grain` indices
// and executes them on a process-wide worker pool. The partition depends
// only on (begin, end, grain) — never on the worker count — so any code
// whose blocks write disjoint outputs (or whose per-block results are
// merged serially in block order) produces bit-identical results at every
// thread count, including the serial path.
//
// The worker count is a process-wide knob (SetThreadCount), defaulting to
// std::thread::hardware_concurrency(). A count of 1 forces every loop to
// run inline on the calling thread with no pool involvement. Nested
// ParallelFor calls (from inside a loop body) always run inline, so
// library layers can parallelize without coordinating who owns the pool.
//
// Exceptions thrown by a body are caught on the executing thread and the
// first one is rethrown on the calling thread after all blocks settle;
// remaining blocks are skipped on a best-effort basis.

#ifndef EXEA_UTIL_PARALLEL_H_
#define EXEA_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace exea::util {

// Sets the process-wide worker count. 0 restores the hardware default.
// Takes effect for every subsequent ParallelFor; the shared pool is
// re-created lazily when the count changes.
void SetThreadCount(size_t n);

// The effective worker count ParallelFor will use (always >= 1).
size_t ThreadCount();

// Runs fn(i) for every i in [begin, end), `grain` indices per task.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn);

// Runs fn(block_begin, block_end) for every block of the fixed partition.
// Use this variant to reuse per-task scratch buffers or to accumulate
// per-block partial results (merge them serially in block order to keep
// determinism).
void ParallelForBlocks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t)>& fn);

}  // namespace exea::util

#endif  // EXEA_UTIL_PARALLEL_H_
