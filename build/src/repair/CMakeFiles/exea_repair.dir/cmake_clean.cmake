file(REMOVE_RECURSE
  "CMakeFiles/exea_repair.dir/conflicts.cc.o"
  "CMakeFiles/exea_repair.dir/conflicts.cc.o.d"
  "CMakeFiles/exea_repair.dir/diff.cc.o"
  "CMakeFiles/exea_repair.dir/diff.cc.o.d"
  "CMakeFiles/exea_repair.dir/low_confidence.cc.o"
  "CMakeFiles/exea_repair.dir/low_confidence.cc.o.d"
  "CMakeFiles/exea_repair.dir/neg_rules.cc.o"
  "CMakeFiles/exea_repair.dir/neg_rules.cc.o.d"
  "CMakeFiles/exea_repair.dir/one_to_many.cc.o"
  "CMakeFiles/exea_repair.dir/one_to_many.cc.o.d"
  "CMakeFiles/exea_repair.dir/pipeline.cc.o"
  "CMakeFiles/exea_repair.dir/pipeline.cc.o.d"
  "CMakeFiles/exea_repair.dir/relation_alignment.cc.o"
  "CMakeFiles/exea_repair.dir/relation_alignment.cc.o.d"
  "CMakeFiles/exea_repair.dir/seed_cleaning.cc.o"
  "CMakeFiles/exea_repair.dir/seed_cleaning.cc.o.d"
  "libexea_repair.a"
  "libexea_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
