#include "eval/csls.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_map>

#include "la/simd.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace exea::eval {
namespace {

// Mean of the k largest values of a row/column slice.
double MeanTopK(std::vector<float>& values, size_t k) {
  size_t keep = std::min(k, values.size());
  if (keep == 0) return 0.0;
  std::partial_sort(values.begin(),
                    values.begin() + static_cast<ptrdiff_t>(keep),
                    values.end(), std::greater<float>());
  double sum = 0.0;
  for (size_t i = 0; i < keep; ++i) sum += values[i];
  return sum / static_cast<double>(keep);
}

}  // namespace

la::Matrix CslsAdjust(const la::Matrix& sim, size_t k) {
  obs::Span span("eval.csls_adjust");
  EXEA_CHECK_GE(k, 1u);
  size_t n1 = sim.rows();
  size_t n2 = sim.cols();
  constexpr size_t kGrain = 16;
  // Each r_src / r_tgt / out entry is written by exactly one fixed block,
  // so every pass is bit-identical to the serial order (--threads=1).
  std::vector<double> r_src(n1, 0.0);
  std::vector<double> r_tgt(n2, 0.0);
  util::ParallelForBlocks(0, n1, kGrain, [&](size_t s, size_t e) {
    std::vector<float> scratch;  // per-block so blocks never share state
    for (size_t i = s; i < e; ++i) {
      scratch.assign(sim.Row(i), sim.Row(i) + n2);
      r_src[i] = MeanTopK(scratch, k);
    }
  });
  util::ParallelForBlocks(0, n2, kGrain, [&](size_t s, size_t e) {
    std::vector<float> scratch(n1);
    for (size_t j = s; j < e; ++j) {
      for (size_t i = 0; i < n1; ++i) scratch[i] = sim.At(i, j);
      r_tgt[j] = MeanTopK(scratch, k);
    }
  });
  la::Matrix out(n1, n2);
  const la::SimdOps& ops = la::ActiveSimdOps();
  util::ParallelFor(0, n1, kGrain, [&](size_t i) {
    ops.csls_adjust_row(sim.Row(i), r_src[i], r_tgt.data(), out.Row(i), n2);
  });
  return out;
}

RankedSimilarity RankTestEntitiesCsls(const emb::EAModel& model,
                                      const data::EaDataset& dataset,
                                      size_t k) {
  RankedSimilarity raw = RankTestEntities(model, dataset);
  return RankedSimilarity(CslsAdjust(raw.similarity_matrix(), k),
                          raw.sources(), raw.targets());
}

kg::AlignmentSet StableMatchAlign(const RankedSimilarity& ranked) {
  const std::vector<kg::EntityId>& sources = ranked.sources();
  // Gale-Shapley, source-proposing. Targets accept the best proposal seen
  // so far (by similarity, ties broken by lower source id).
  std::unordered_map<kg::EntityId, size_t> next_proposal;
  std::unordered_map<kg::EntityId, kg::EntityId> engaged_to;  // target -> src
  std::deque<kg::EntityId> free_sources(sources.begin(), sources.end());

  auto prefers = [&ranked](kg::EntityId target, kg::EntityId challenger,
                           kg::EntityId incumbent) {
    double challenger_sim = ranked.Sim(challenger, target);
    double incumbent_sim = ranked.Sim(incumbent, target);
    if (challenger_sim != incumbent_sim) {
      return challenger_sim > incumbent_sim;
    }
    return challenger < incumbent;
  };

  while (!free_sources.empty()) {
    kg::EntityId source = free_sources.front();
    free_sources.pop_front();
    const std::vector<Candidate>& candidates = ranked.CandidatesFor(source);
    size_t& cursor = next_proposal[source];
    bool matched = false;
    while (cursor < candidates.size()) {
      kg::EntityId target = candidates[cursor++].target;
      auto it = engaged_to.find(target);
      if (it == engaged_to.end()) {
        engaged_to[target] = source;
        matched = true;
        break;
      }
      if (prefers(target, source, it->second)) {
        free_sources.push_back(it->second);
        it->second = source;
        matched = true;
        break;
      }
    }
    // A source that exhausted its list stays unmatched.
    (void)matched;
  }

  kg::AlignmentSet out;
  for (const auto& [target, source] : engaged_to) {
    out.Add(source, target);
  }
  return out;
}

}  // namespace exea::eval
