file(REMOVE_RECURSE
  "CMakeFiles/exea_bench_common.dir/common.cc.o"
  "CMakeFiles/exea_bench_common.dir/common.cc.o.d"
  "libexea_bench_common.a"
  "libexea_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
