// Drives the exea_lint binary against the seeded fixtures under
// tests/corpus/lint/: the bad/ tree must trip every rule (nonzero exit),
// the good/ tree and the real repository must scan clean. Together these
// pin both directions of the checker — it finds what it claims to find,
// and it does not cry wolf on the code we actually ship.

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace {

// Runs `exea_lint <args>`, captures stdout, returns the exit code.
int RunLint(const std::string& args, std::string* output) {
  std::string command = std::string(EXEA_LINT_PATH) + " " + args;
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot run " << command;
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(LintTest, SeededViolationsTripEveryRule) {
  std::string output;
  int exit_code =
      RunLint("--root " + std::string(EXEA_LINT_FIXTURE_DIR) + "/bad",
              &output);
  EXPECT_EQ(exit_code, 1) << output;
  for (const char* rule :
       {"nodiscard-status", "discarded-status", "raw-rng", "raw-new-delete",
        "cout-logging"}) {
    EXPECT_NE(output.find(rule), std::string::npos)
        << "rule " << rule << " did not fire; output:\n" << output;
  }
  // Diagnostics carry a clickable file:line: prefix.
  EXPECT_NE(output.find("violations.cc:"), std::string::npos) << output;
  EXPECT_NE(output.find("violations.h:"), std::string::npos) << output;
}

TEST(LintTest, CleanFixtureScansClean) {
  std::string output;
  int exit_code =
      RunLint("--root " + std::string(EXEA_LINT_FIXTURE_DIR) + "/good",
              &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_EQ(output, "") << output;
}

TEST(LintTest, RepositoryScansClean) {
  std::string output;
  int exit_code =
      RunLint("--root " + std::string(EXEA_REPO_ROOT), &output);
  EXPECT_EQ(exit_code, 0) << "the repository no longer lints clean:\n"
                          << output;
}

TEST(LintTest, HelpExitsZero) {
  std::string output;
  EXPECT_EQ(RunLint("--help", &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos) << output;
}

TEST(LintTest, MissingInputIsAnIoError) {
  std::string output;
  EXPECT_EQ(RunLint("--root /nonexistent-exea-lint-fixture", &output), 2);
}

}  // namespace
