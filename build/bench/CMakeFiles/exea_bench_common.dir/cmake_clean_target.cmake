file(REMOVE_RECURSE
  "libexea_bench_common.a"
)
