#include "kg/alignment.h"

#include <algorithm>

namespace exea::kg {

bool AlignmentSet::Add(EntityId source, EntityId target) {
  if (!pairs_.insert({source, target}).second) return false;
  by_source_[source].insert(target);
  by_target_[target].insert(source);
  return true;
}

bool AlignmentSet::Remove(EntityId source, EntityId target) {
  if (pairs_.erase({source, target}) == 0) return false;
  auto src_it = by_source_.find(source);
  src_it->second.erase(target);
  if (src_it->second.empty()) by_source_.erase(src_it);
  auto tgt_it = by_target_.find(target);
  tgt_it->second.erase(source);
  if (tgt_it->second.empty()) by_target_.erase(tgt_it);
  return true;
}

bool AlignmentSet::Contains(EntityId source, EntityId target) const {
  return pairs_.count({source, target}) > 0;
}

bool AlignmentSet::HasSource(EntityId source) const {
  return by_source_.count(source) > 0;
}

bool AlignmentSet::HasTarget(EntityId target) const {
  return by_target_.count(target) > 0;
}

std::vector<EntityId> AlignmentSet::TargetsOf(EntityId source) const {
  std::vector<EntityId> out;
  auto it = by_source_.find(source);
  if (it != by_source_.end()) {
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
  }
  return out;
}

std::vector<EntityId> AlignmentSet::SourcesOf(EntityId target) const {
  std::vector<EntityId> out;
  auto it = by_target_.find(target);
  if (it != by_target_.end()) {
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
  }
  return out;
}

EntityId AlignmentSet::UniqueTargetOf(EntityId source) const {
  auto it = by_source_.find(source);
  if (it == by_source_.end() || it->second.size() != 1) {
    return kInvalidEntity;
  }
  return *it->second.begin();
}

EntityId AlignmentSet::UniqueSourceOf(EntityId target) const {
  auto it = by_target_.find(target);
  if (it == by_target_.end() || it->second.size() != 1) {
    return kInvalidEntity;
  }
  return *it->second.begin();
}

std::vector<AlignedPair> AlignmentSet::SortedPairs() const {
  std::vector<AlignedPair> out(pairs_.begin(), pairs_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool AlignmentSet::IsOneToOne() const {
  for (const auto& [source, targets] : by_source_) {
    if (targets.size() > 1) return false;
  }
  for (const auto& [target, sources] : by_target_) {
    if (sources.size() > 1) return false;
  }
  return true;
}

double AlignmentAccuracy(
    const AlignmentSet& predicted,
    const std::unordered_map<EntityId, EntityId>& gold_source_to_target) {
  if (gold_source_to_target.empty()) return 0.0;
  size_t correct = 0;
  for (const auto& [source, target] : gold_source_to_target) {
    if (predicted.Contains(source, target)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(gold_source_to_target.size());
}

}  // namespace exea::kg
