file(REMOVE_RECURSE
  "CMakeFiles/exea_kg.dir/alignment.cc.o"
  "CMakeFiles/exea_kg.dir/alignment.cc.o.d"
  "CMakeFiles/exea_kg.dir/attributes.cc.o"
  "CMakeFiles/exea_kg.dir/attributes.cc.o.d"
  "CMakeFiles/exea_kg.dir/dictionary.cc.o"
  "CMakeFiles/exea_kg.dir/dictionary.cc.o.d"
  "CMakeFiles/exea_kg.dir/functionality.cc.o"
  "CMakeFiles/exea_kg.dir/functionality.cc.o.d"
  "CMakeFiles/exea_kg.dir/graph.cc.o"
  "CMakeFiles/exea_kg.dir/graph.cc.o.d"
  "CMakeFiles/exea_kg.dir/kg_io.cc.o"
  "CMakeFiles/exea_kg.dir/kg_io.cc.o.d"
  "CMakeFiles/exea_kg.dir/name_encoder.cc.o"
  "CMakeFiles/exea_kg.dir/name_encoder.cc.o.d"
  "CMakeFiles/exea_kg.dir/neighborhood.cc.o"
  "CMakeFiles/exea_kg.dir/neighborhood.cc.o.d"
  "CMakeFiles/exea_kg.dir/stats.cc.o"
  "CMakeFiles/exea_kg.dir/stats.cc.o.d"
  "libexea_kg.a"
  "libexea_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
