#include "explain/exea.h"

#include "emb/relation_embedding.h"
#include "explain/path_embedding.h"
#include "obs/span.h"
#include "util/logging.h"

namespace exea::explain {

ExeaExplainer::ExeaExplainer(const data::EaDataset& dataset,
                             const emb::EAModel& model,
                             const ExeaConfig& config)
    : dataset_(&dataset),
      model_(&model),
      config_(config),
      func1_(dataset.kg1),
      func2_(dataset.kg2) {
  const la::Matrix& ent1 = model.EntityEmbeddings(kg::KgSide::kSource);
  const la::Matrix& ent2 = model.EntityEmbeddings(kg::KgSide::kTarget);
  if (model.HasRelationEmbeddings()) {
    rel1_ = model.RelationEmbeddings(kg::KgSide::kSource);
    rel2_ = model.RelationEmbeddings(kg::KgSide::kTarget);
  } else {
    // GCN-style models: fall back to Eq. (1).
    rel1_ = emb::TranslationRelationEmbeddings(dataset.kg1, ent1);
    rel2_ = emb::TranslationRelationEmbeddings(dataset.kg2, ent2);
  }
}

const PathsWithEmbeddings& ExeaExplainer::PathsFor(kg::KgSide side,
                                                   kg::EntityId e) const {
  auto& cache = side == kg::KgSide::kSource ? cache1_ : cache2_;
  auto it = cache.find(e);
  if (it != cache.end()) return it->second;

  const kg::KnowledgeGraph& graph =
      side == kg::KgSide::kSource ? dataset_->kg1 : dataset_->kg2;
  const la::Matrix& ent = model_->EntityEmbeddings(side);
  const la::Matrix& rel = side == kg::KgSide::kSource ? rel1_ : rel2_;

  kg::PathEnumerationOptions options;
  options.max_length = config_.hops;
  options.max_paths = config_.max_paths_per_entity;
  options.max_branch = config_.max_branch;

  PathsWithEmbeddings entry;
  entry.paths = kg::EnumeratePaths(graph, e, options);
  entry.embeddings.reserve(entry.paths.size());
  for (const kg::RelationPath& path : entry.paths) {
    entry.embeddings.push_back(PathEmbedding(path, ent, rel));
  }
  return cache.emplace(e, std::move(entry)).first->second;
}

Explanation ExeaExplainer::Explain(kg::EntityId e1, kg::EntityId e2,
                                   const AlignmentContext& context) const {
  obs::Span span("exea.explain");
  // Entity ids arrive from callers that resolved untrusted names; pin the
  // range before they select adjacency lists and embedding rows.
  EXEA_CHECK(e1 < dataset_->kg1.num_entities());
  EXEA_CHECK(e2 < dataset_->kg2.num_entities());
  const PathsWithEmbeddings* side1;
  const PathsWithEmbeddings* side2;
  {
    obs::Span paths_span("paths");
    side1 = &PathsFor(kg::KgSide::kSource, e1);
    side2 = &PathsFor(kg::KgSide::kTarget, e2);
  }
  Explanation explanation;
  {
    obs::Span match_span("match");
    explanation = MatchPaths(e1, e2, *side1, *side2, context);
  }
  {
    obs::Span candidates_span("candidates");
    explanation.candidates1 =
        kg::TriplesWithinHops(dataset_->kg1, e1, config_.hops);
    explanation.candidates2 =
        kg::TriplesWithinHops(dataset_->kg2, e2, config_.hops);
  }
  return explanation;
}

Adg ExeaExplainer::BuildAdg(const Explanation& explanation) const {
  obs::Span span("exea.adg");
  return explain::BuildAdg(
      explanation, func1_, func2_,
      [this](kg::EntityId a, kg::EntityId b) {
        return model_->Similarity(a, b);
      },
      config_);
}

double ExeaExplainer::Confidence(kg::EntityId e1, kg::EntityId e2,
                                 const AlignmentContext& context) const {
  return BuildAdg(Explain(e1, e2, context)).confidence;
}

}  // namespace exea::explain
