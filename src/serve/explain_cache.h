// The LRU cache over rendered explanations, extracted from QueryEngine so
// its recency discipline is unit-testable in isolation. Internally
// synchronized; keys are (snapshot epoch, packed (e1, e2) pair).
//
// The epoch component is the stale-explanation guard: entity ids are only
// meaningful relative to one snapshot version, so a key minted against
// epoch N can never satisfy a lookup from epoch N+1 even if a laggard
// renderer Puts it after the swap's Clear() already ran (the
// clear-then-late-Put race that a pair-only key would lose).
//
// Both operations maintain recency:
//   Get  — a hit moves the entry to the front.
//   Put  — a new key is inserted at the front (evicting from the back
//          over capacity); an existing key is refreshed and moved to the
//          front. The promote-on-existing-Put matters under concurrency:
//          two threads can miss on the same key and both render; the
//          second Put used to return without touching recency, leaving a
//          just-used entry parked at its stale position — first in line
//          for eviction.
//
// When constructed with a gauge, the cache keeps it equal to size()
// under its own mutex at every mutation. The engine used to set the
// gauge from outside after Put returned, which raced: two concurrent
// Puts could both read a pre-eviction size, and Clear()-after-swap
// never updated it at all (the serve.explain_cache.size drift bug).

#ifndef EXEA_SERVE_EXPLAIN_CACHE_H_
#define EXEA_SERVE_EXPLAIN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace exea::serve {

class ExplainLruCache {
 public:
  struct Key {
    uint64_t epoch = 0;
    uint64_t pair = 0;
    bool operator==(const Key& other) const {
      return epoch == other.epoch && pair == other.pair;
    }
  };

  struct Entry {
    std::string json;
    double confidence = 0.0;
  };

  // `capacity` 0 disables the cache: Get always misses, Put drops.
  // `size_gauge` (may be nullptr) tracks size() across every mutation.
  explicit ExplainLruCache(size_t capacity, obs::Gauge* size_gauge = nullptr)
      : capacity_(capacity), size_gauge_(size_gauge) {}

  ExplainLruCache(const ExplainLruCache&) = delete;
  ExplainLruCache& operator=(const ExplainLruCache&) = delete;

  // On hit copies the entry into `out` (may be nullptr to probe),
  // promotes it to most-recent, and returns true.
  bool Get(const Key& key, Entry* out);

  // Inserts or refreshes `key` as the most-recent entry, then evicts
  // least-recent entries down to capacity.
  void Put(const Key& key, Entry entry);

  size_t size() const;
  void Clear();

  // Keys in recency order, most recent first. For tests pinning the
  // eviction order.
  std::vector<Key> KeysMostRecentFirst() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // splitmix-style fold; epoch and pair both land in the low bits.
      uint64_t h = key.pair + 0x9e3779b97f4a7c15ULL * (key.epoch + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };

  struct Node {
    Key key;
    Entry entry;
  };

  void UpdateGaugeLocked() EXEA_REQUIRES(mu_) {
    if (size_gauge_ != nullptr) {
      size_gauge_->Set(static_cast<double>(lru_.size()));
    }
  }

  size_t capacity_;
  obs::Gauge* size_gauge_;

  // mu_ protects everything declared after it (the class convention the
  // lock-discipline lint pass enforces). The list is most-recent-first;
  // the map points into it.
  mutable std::mutex mu_;
  std::list<Node> lru_ EXEA_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Node>::iterator, KeyHash>
      index_ EXEA_GUARDED_BY(mu_);
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_EXPLAIN_CACHE_H_
