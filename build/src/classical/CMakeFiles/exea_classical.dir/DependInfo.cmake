
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classical/paris.cc" "src/classical/CMakeFiles/exea_classical.dir/paris.cc.o" "gcc" "src/classical/CMakeFiles/exea_classical.dir/paris.cc.o.d"
  "/root/repo/src/classical/similarity_flooding.cc" "src/classical/CMakeFiles/exea_classical.dir/similarity_flooding.cc.o" "gcc" "src/classical/CMakeFiles/exea_classical.dir/similarity_flooding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/exea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/exea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
