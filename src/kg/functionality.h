// PARIS-style relation functionality and inverse functionality.
//
// The functionality of a relation r measures how close r is to a function
// head -> tail:
//   func(r)  = #distinct heads appearing with r / #triples with r
//   ifunc(r) = #distinct tails appearing with r / #triples with r
// Both are in (0, 1]; 1 means each head (resp. tail) appears exactly once.
// These scores drive the ADG edge weights (Eqs. (3)-(5) in the paper).

#ifndef EXEA_KG_FUNCTIONALITY_H_
#define EXEA_KG_FUNCTIONALITY_H_

#include <vector>

#include "kg/graph.h"

namespace exea::kg {

class RelationFunctionality {
 public:
  // Computes scores for every relation of `graph`. Relations with no
  // triples get functionality 0.
  explicit RelationFunctionality(const KnowledgeGraph& graph);

  double Func(RelationId r) const;
  double InverseFunc(RelationId r) const;

  size_t num_relations() const { return func_.size(); }

 private:
  std::vector<double> func_;
  std::vector<double> ifunc_;
};

}  // namespace exea::kg

#endif  // EXEA_KG_FUNCTIONALITY_H_
