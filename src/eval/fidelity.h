// The fidelity evaluation protocol (paper Section V-B2).
//
// For a set of correctly-predicted pairs, each explanation method selects a
// triple subset T' of the candidate triples T around the pair. We remove
// the non-explanation candidates (T - T') from both KGs, retrain the model
// from scratch on the reduced dataset, and measure how many of the sampled
// pairs are still predicted. Fidelity = fraction preserved.
//
// Protocol note (also recorded in DESIGN.md): the removals of all sampled
// pairs are batched into one reduced dataset and one retraining run — the
// standard batched variant; retraining once per sample is computationally
// out of reach of the paper's own time budget as well.

#ifndef EXEA_EVAL_FIDELITY_H_
#define EXEA_EVAL_FIDELITY_H_

#include <vector>

#include "data/dataset.h"
#include "emb/model.h"
#include "kg/types.h"

namespace exea::eval {

// One sampled pair: the candidate triples offered to the explainer and the
// explanation it selected, per KG side.
struct FidelitySample {
  kg::EntityId e1 = kg::kInvalidEntity;
  kg::EntityId e2 = kg::kInvalidEntity;
  std::vector<kg::Triple> candidates1;
  std::vector<kg::Triple> candidates2;
  std::vector<kg::Triple> explanation1;
  std::vector<kg::Triple> explanation2;

  size_t CandidateCount() const {
    return candidates1.size() + candidates2.size();
  }
  size_t ExplanationCount() const {
    return explanation1.size() + explanation2.size();
  }
};

struct FidelityResult {
  double fidelity = 0.0;  // fraction of samples still predicted
  double sparsity = 0.0;  // mean Eq. (13) sparsity over samples
  size_t num_samples = 0;
};

// Runs the protocol: builds the reduced dataset, retrains a clone of
// `model`, re-infers, and checks each sample's prediction. Triples that
// appear in *any* sample's explanation are never removed.
FidelityResult EvaluateFidelity(const data::EaDataset& dataset,
                                const emb::EAModel& model,
                                const std::vector<FidelitySample>& samples);

}  // namespace exea::eval

#endif  // EXEA_EVAL_FIDELITY_H_
