#include "data/kfold.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace exea::data {
namespace {

std::string FoldSuffix(size_t fold, size_t k) {
  return " [fold " + std::to_string(fold + 1) + "/" + std::to_string(k) +
         "]";
}

}  // namespace

std::vector<EaDataset> KFoldSplits(const EaDataset& dataset, size_t k,
                                   uint64_t seed) {
  EXEA_CHECK_GE(k, 2u);
  std::vector<std::pair<kg::EntityId, kg::EntityId>> pairs(
      dataset.gold.begin(), dataset.gold.end());
  std::sort(pairs.begin(), pairs.end());  // determinism before shuffling
  EXEA_CHECK_GE(pairs.size(), k);
  Rng rng(seed);
  rng.Shuffle(pairs);

  std::vector<EaDataset> folds;
  folds.reserve(k);
  for (size_t fold = 0; fold < k; ++fold) {
    EaDataset out;
    out.name = dataset.name + FoldSuffix(fold, k);
    out.kg1 = dataset.kg1;
    out.kg2 = dataset.kg2;
    out.attrs1 = dataset.attrs1;
    out.attrs2 = dataset.attrs2;
    out.gold = dataset.gold;
    // Fold boundaries: pair i belongs to fold (i % k) so sizes differ by
    // at most one.
    for (size_t i = 0; i < pairs.size(); ++i) {
      const auto& [source, target] = pairs[i];
      if (i % k == fold) {
        out.test.push_back({source, target});
      } else {
        out.train.Add(source, target);
      }
    }
    std::sort(out.test.begin(), out.test.end());
    for (const kg::AlignedPair& pair : out.test) {
      out.test_sources.push_back(pair.source);
      out.test_gold[pair.source] = pair.target;
    }
    ValidateDataset(out);
    folds.push_back(std::move(out));
  }
  return folds;
}

FoldStats Summarize(const std::vector<double>& values) {
  FoldStats stats;
  if (values.empty()) return stats;
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      sq += (v - stats.mean) * (v - stats.mean);
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return stats;
}

}  // namespace exea::data
