#include "lint/config.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "lint/source.h"

namespace lint {

namespace fs = std::filesystem;

bool ParseLayers(const fs::path& path, LayerGraph* graph, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path.generic_string();
    return false;
  }
  std::map<std::string, std::set<std::string>> direct;  // m -> directly below
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> chain;
    std::string token;
    std::istringstream parts(line);
    while (std::getline(parts, token, '<')) {
      size_t b = token.find_first_not_of(" \t");
      if (b == std::string::npos) {
        if (!chain.empty() || !token.empty()) {
          // "a < " or "< b": an empty side of a '<' is malformed.
          if (line.find('<') != std::string::npos) {
            *error = path.generic_string() + ":" + std::to_string(lineno) +
                     ": malformed chain (empty module name)";
            return false;
          }
        }
        continue;
      }
      size_t e = token.find_last_not_of(" \t");
      std::string name = token.substr(b, e - b + 1);
      for (char c : name) {
        if (!IsIdentChar(c)) {
          *error = path.generic_string() + ":" + std::to_string(lineno) +
                   ": bad module name '" + name + "'";
          return false;
        }
      }
      chain.push_back(name);
    }
    for (const std::string& name : chain) graph->modules.insert(name);
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      direct[chain[i + 1]].insert(chain[i]);  // chain[i] is below chain[i+1]
    }
  }

  // Transitive closure by DFS, detecting cycles (gray = on the stack).
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  // Explicit recursion via a lambda would need std::function; a worklist
  // DFS keeps the tool dependency-free and the chain reconstructable.
  struct Frame {
    std::string node;
    std::vector<std::string> pending;
  };
  for (const std::string& start : graph->modules) {
    if (color[start] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back({start, {direct[start].begin(), direct[start].end()}});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& top = frames.back();
      if (top.pending.empty()) {
        color[top.node] = 2;
        // Fold the finished node's closure into its parent.
        graph->below[top.node].insert(direct[top.node].begin(),
                                      direct[top.node].end());
        for (const std::string& d : direct[top.node]) {
          graph->below[top.node].insert(graph->below[d].begin(),
                                        graph->below[d].end());
        }
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      std::string next = top.pending.back();
      top.pending.pop_back();
      if (color[next] == 1) {
        // Cycle: report the chain from `next` back to itself.
        std::string chain = next;
        bool in_cycle = false;
        for (const std::string& n : stack) {
          if (n == next) in_cycle = true;
          if (in_cycle && n != next) chain += " < " + n;
        }
        chain += " < " + next;
        *error = path.generic_string() + ": cycle in declared layering: " +
                 chain;
        return false;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.push_back(next);
        frames.push_back({next, {direct[next].begin(), direct[next].end()}});
      }
    }
  }
  return true;
}

void ConcurrencyConfig::AddDefaults() {
  for (const char* b :
       {"read", "write", "send", "recv", "accept", "accept4", "connect",
        "poll", "select", "system", "popen", "sleep_for", "sleep_until",
        "wait", "wait_for", "wait_until"}) {
    blocking.insert(b);
  }
  for (const char* a :
       {"socket", "accept", "accept4", "epoll_create1", "eventfd"}) {
    acquire.insert(a);
  }
}

bool ParseConcurrency(const fs::path& path, ConcurrencyConfig* config,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path.generic_string();
    return false;
  }
  config->path = path.generic_string();
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string kind;
    if (!(words >> kind)) continue;
    std::set<std::string>* target = nullptr;
    if (kind == "entry") {
      target = &config->entries;
    } else if (kind == "blocking") {
      target = &config->blocking;
    } else if (kind == "safe") {
      target = &config->safe;
    } else if (kind == "acquire") {
      target = &config->acquire;
    } else {
      *error = path.generic_string() + ":" + std::to_string(lineno) +
               ": unknown directive '" + kind +
               "' (want entry/blocking/safe/acquire)";
      return false;
    }
    std::string name;
    size_t added = 0;
    while (words >> name) {
      target->insert(name);
      ++added;
    }
    if (added == 0) {
      *error = path.generic_string() + ":" + std::to_string(lineno) +
               ": directive '" + kind + "' names no functions";
      return false;
    }
  }
  config->loaded = true;
  return true;
}

}  // namespace lint
