#include "repair/seed_cleaning.h"

namespace exea::repair {

SeedCleaningResult CleanSeeds(const explain::ExeaExplainer& explainer,
                              const kg::AlignmentSet& seeds,
                              const kg::AlignmentSet& model_results,
                              const SeedCleaningOptions& options) {
  SeedCleaningResult result;
  result.cleaned = seeds;
  // Audit against a fixed snapshot of the seed set: each pair is removed
  // from the context while it is being judged (leave-one-out) and
  // restored afterwards, so verdicts do not depend on audit order.
  kg::AlignmentSet working = seeds;
  for (const kg::AlignedPair& pair : seeds.SortedPairs()) {
    working.Remove(pair.source, pair.target);
    explain::AlignmentContext context(&model_results, &working);
    double confidence =
        explainer.Confidence(pair.source, pair.target, context);
    working.Add(pair.source, pair.target);
    if (confidence <= options.confidence_threshold + 1e-9) {
      result.cleaned.Remove(pair.source, pair.target);
      result.removed.push_back(pair);
      result.removed_confidences.push_back(confidence);
    }
  }
  return result;
}

}  // namespace exea::repair
