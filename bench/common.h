// Shared infrastructure for the per-table/figure bench binaries:
// table rendering, environment-driven scaling, model training helpers, and
// the explanation-fidelity harness reused by Tables I, II, V, and VII.
//
// Every bench binary honours:
//   EXEA_BENCH_SCALE    tiny | small (default) | medium
//   EXEA_BENCH_SAMPLES  number of sampled pairs for fidelity experiments
//                       (default 50; the paper samples 1000 at full scale)
//   EXEA_THREADS        worker threads for the parallel kernels (default
//                       all hardware threads; 1 forces the serial path;
//                       results are identical at any value)

#ifndef EXEA_BENCH_COMMON_H_
#define EXEA_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/explainer.h"
#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/fidelity.h"
#include "eval/inference.h"
#include "explain/exea.h"

namespace exea::bench {

// ------------------------------------------------------------- rendering

// A fixed-width console table. Columns sized to content.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Inserts a horizontal separator before the next row.
  void AddSeparator();
  void Print() const;

  static std::string Fmt(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

// Prints a bench banner with the dataset scaling note.
void PrintBanner(const std::string& title, const std::string& paper_ref);

// ------------------------------------------------------------ environment

size_t SamplesFromEnv(size_t default_samples = 50);

// Applies EXEA_THREADS (unset/0 = hardware default) to the process-wide
// worker pool and returns the effective thread count. Called by
// PrintBanner, so every bench binary picks the knob up automatically; also
// called by bench_micro's main to stamp the count into the
// google-benchmark JSON context.
size_t ConfigureThreadsFromEnv();

// The short git SHA and CMake build type the bench binaries were compiled
// from ("unknown"/"unspecified" when not determinable at configure time).
// bench_micro stamps both into the google-benchmark JSON context so
// recorded numbers stay attributable to a revision and optimisation level.
std::string BuildGitSha();
std::string BuildType();

// ----------------------------------------------------------- model helper

// Trains a model with its default config on `dataset`.
std::unique_ptr<emb::EAModel> TrainModel(emb::ModelKind kind,
                                         const data::EaDataset& dataset);

const std::vector<emb::ModelKind>& AllModels();

// ------------------------------------------------- explanation harness

// Result row of one explanation method in a fidelity experiment.
struct MethodResult {
  std::string method;
  double fidelity = 0.0;
  double sparsity = 0.0;
  double explain_seconds = 0.0;  // total explanation-generation time
};

struct ExplanationBenchOptions {
  int hops = 1;               // candidate scope (1 = Table I, 2 = Table II)
  size_t num_samples = 50;    // correctly-predicted pairs to sample
  bool include_classic_baselines = true;  // EALime/EAShapley/Anchor/LORE
  bool include_llm_baselines = false;     // ChatGPT (perturb)/(match)
};

// Runs the Section V-B protocol for one trained model on one dataset:
// samples correct predictions, lets every method explain them at matched
// sparsity (baselines get ExEA's explanation size as their budget), and
// evaluates fidelity via batched retraining. Methods are ordered as in the
// paper's tables (baselines first, ExEA last).
std::vector<MethodResult> RunExplanationBench(
    const data::EaDataset& dataset, const emb::EAModel& model,
    const ExplanationBenchOptions& options);

// Constructs a deliberately leaked T for function-local bench fixtures
// that must outlive every benchmark (and must not run destructors during
// static shutdown). The single waived `new` in the bench tree lives
// here, so fixture call sites stay waiver-free and the repo waiver
// budget stays auditable.
template <typename T, typename... Args>
T* LeakySingleton(Args&&... args) {
  return new T(std::forward<Args>(args)...);  // exea-lint: allow(raw-new-delete)
}

}  // namespace exea::bench

#endif  // EXEA_BENCH_COMMON_H_
