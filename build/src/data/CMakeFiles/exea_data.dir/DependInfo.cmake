
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmarks.cc" "src/data/CMakeFiles/exea_data.dir/benchmarks.cc.o" "gcc" "src/data/CMakeFiles/exea_data.dir/benchmarks.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/exea_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/exea_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/data/CMakeFiles/exea_data.dir/dataset_io.cc.o" "gcc" "src/data/CMakeFiles/exea_data.dir/dataset_io.cc.o.d"
  "/root/repo/src/data/kfold.cc" "src/data/CMakeFiles/exea_data.dir/kfold.cc.o" "gcc" "src/data/CMakeFiles/exea_data.dir/kfold.cc.o.d"
  "/root/repo/src/data/noise.cc" "src/data/CMakeFiles/exea_data.dir/noise.cc.o" "gcc" "src/data/CMakeFiles/exea_data.dir/noise.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/exea_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/exea_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/exea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
