// Unit and stress tests for the parallel execution layer: ThreadPool
// lifecycle/reuse and the ParallelFor determinism contract (fixed block
// partition, exception propagation, nested/serial fallbacks).

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/thread_pool.h"

namespace exea::util {
namespace {

// Every test leaves the process-wide knob at the hardware default so test
// order never matters.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadCount(0); }
};

// ------------------------------------------------------------- ThreadPool

TEST_F(ParallelTest, PoolRunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST_F(ParallelTest, PoolIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST_F(ParallelTest, PoolWaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST_F(ParallelTest, PoolDestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 50);
}

TEST_F(ParallelTest, PoolClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

// ------------------------------------------------------------ ParallelFor

TEST_F(ParallelTest, EmptyRangeRunsNothing) {
  SetThreadCount(4);
  std::atomic<int> count{0};
  ParallelFor(0, 0, 8, [&](size_t) { count.fetch_add(1); });
  ParallelFor(5, 5, 8, [&](size_t) { count.fetch_add(1); });
  ParallelFor(7, 3, 8, [&](size_t) { count.fetch_add(1); });  // end < begin
  EXPECT_EQ(count.load(), 0);
}

TEST_F(ParallelTest, GrainLargerThanRangeVisitsEveryIndexOnce) {
  SetThreadCount(4);
  std::vector<int> visits(10, 0);
  ParallelFor(0, 10, 1000, [&](size_t i) { ++visits[i]; });
  EXPECT_EQ(visits, std::vector<int>(10, 1));
}

TEST_F(ParallelTest, ZeroGrainIsTreatedAsOne) {
  SetThreadCount(4);
  std::vector<int> visits(64, 0);
  ParallelFor(0, 64, 0, [&](size_t i) { ++visits[i]; });
  EXPECT_EQ(visits, std::vector<int>(64, 1));
}

TEST_F(ParallelTest, CoversSubrangeExactly) {
  SetThreadCount(4);
  std::atomic<long> sum{0};
  ParallelFor(10, 110, 7, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  long expected = 0;
  for (long i = 10; i < 110; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST_F(ParallelTest, SerialPathWhenThreadCountIsOne) {
  SetThreadCount(1);
  EXPECT_EQ(ThreadCount(), 1u);
  // Indices must arrive in order on the calling thread — the serial path.
  std::vector<size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  ParallelFor(0, 100, 8, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: single-threaded by contract
  });
  std::vector<size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST_F(ParallelTest, BlockPartitionIsIndependentOfThreadCount) {
  // The determinism contract: blocks are fixed by (begin, end, grain).
  auto blocks_at = [](size_t threads) {
    SetThreadCount(threads);
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> blocks;
    ParallelForBlocks(3, 250, 16, [&](size_t s, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      blocks.insert({s, e});
    });
    return blocks;
  };
  auto serial = blocks_at(1);
  EXPECT_EQ(blocks_at(2), serial);
  EXPECT_EQ(blocks_at(5), serial);
  EXPECT_EQ(blocks_at(8), serial);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  SetThreadCount(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 4,
                  [](size_t i) {
                    if (i == 137) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST_F(ParallelTest, ExceptionPropagatesOnSerialPath) {
  SetThreadCount(1);
  EXPECT_THROW(ParallelFor(0, 10, 2,
                           [](size_t i) {
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST_F(ParallelTest, UsableAfterException) {
  SetThreadCount(4);
  try {
    ParallelFor(0, 100, 4, [](size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  ParallelFor(0, 100, 4, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  SetThreadCount(4);
  std::atomic<long> sum{0};
  ParallelFor(0, 8, 1, [&](size_t) {
    // A nested loop must not deadlock waiting on the same pool; it runs
    // inline on the worker.
    std::thread::id self = std::this_thread::get_id();
    ParallelFor(0, 10, 2, [&](size_t j) {
      EXPECT_EQ(std::this_thread::get_id(), self);
      sum.fetch_add(static_cast<long>(j));
    });
  });
  EXPECT_EQ(sum.load(), 8 * 45);
}

TEST_F(ParallelTest, ThreadCountKnobRoundTrips) {
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3u);
  SetThreadCount(0);
  EXPECT_GE(ThreadCount(), 1u);
}

// Reuse after wait: the shared pool must survive many back-to-back loops,
// including thread-count changes in between (pool re-creation).
TEST_F(ParallelTest, RepeatedLoopsAcrossThreadCounts) {
  for (size_t threads : {2u, 4u, 2u, 8u, 1u, 4u}) {
    SetThreadCount(threads);
    std::atomic<long> sum{0};
    ParallelFor(0, 500, 16, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 500L * 499 / 2);
  }
}

// Stress: hammer the pool from the main thread with many small batches so
// submit/wait races, pool reuse, and counter resets get exercised hard.
TEST_F(ParallelTest, StressManySmallBatches) {
  SetThreadCount(8);
  std::atomic<long> total{0};
  for (int round = 0; round < 400; ++round) {
    ParallelFor(0, 64, 1, [&](size_t i) {
      total.fetch_add(static_cast<long>(i) + 1);
    });
  }
  EXPECT_EQ(total.load(), 400L * (64 * 65 / 2));
}

// Stress: one large batch with tiny grain (maximal task churn).
TEST_F(ParallelTest, StressTinyGrainLargeRange) {
  SetThreadCount(8);
  std::vector<int> visits(20000, 0);
  ParallelFor(0, visits.size(), 1, [&](size_t i) { ++visits[i]; });
  for (size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

}  // namespace
}  // namespace exea::util
