# Empty dependencies file for exea_classical.
# This may be replaced when dependencies are built.
