file(REMOVE_RECURSE
  "CMakeFiles/attributes_test.dir/attributes_test.cc.o"
  "CMakeFiles/attributes_test.dir/attributes_test.cc.o.d"
  "attributes_test"
  "attributes_test.pdb"
  "attributes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attributes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
