# Empty compiler generated dependencies file for exea_util.
# This may be replaced when dependencies are built.
