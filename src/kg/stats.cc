#include "kg/stats.h"

#include "util/string_util.h"

namespace exea::kg {

std::string KgStats::ToString() const {
  return StrFormat(
      "entities=%zu relations=%zu triples=%zu avg_degree=%.2f "
      "max_degree=%zu isolated=%zu",
      num_entities, num_relations, num_triples, avg_degree, max_degree,
      isolated_entities);
}

KgStats ComputeStats(const KnowledgeGraph& graph) {
  KgStats stats;
  stats.num_entities = graph.num_entities();
  stats.num_relations = graph.num_relations();
  stats.num_triples = graph.num_triples();
  size_t degree_sum = 0;
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    size_t degree = graph.Degree(e);
    degree_sum += degree;
    stats.max_degree = std::max(stats.max_degree, degree);
    if (degree == 0) ++stats.isolated_entities;
  }
  stats.avg_degree = graph.num_entities() == 0
                         ? 0.0
                         : static_cast<double>(degree_sum) /
                               static_cast<double>(graph.num_entities());
  return stats;
}

}  // namespace exea::kg
