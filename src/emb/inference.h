// Alignment inference: turning trained entity embeddings into EA
// predictions.
//
// RankedSimilarity materializes the "pairwise similarity matrix M between
// unaligned source and target entities in descending order" that
// Algorithm 1 of the paper consumes, restricted to the entity sets to be
// aligned (the held-out test entities, the standard DBP15K protocol).
//
// This lives in emb/ (not eval/) because inference is a function of the
// trained model alone, and the layers above eval — none — may not be
// depended on by repair, which consumes RankedSimilarity directly. See
// tools/layers.txt; eval/inference.h re-exports these names for the
// metric/CSLS layer and existing callers.

#ifndef EXEA_EMB_INFERENCE_H_
#define EXEA_EMB_INFERENCE_H_

#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "emb/model.h"
#include "kg/alignment.h"
#include "la/similarity.h"

namespace exea::emb {

// A candidate target with its similarity to some source entity.
struct Candidate {
  kg::EntityId target = kg::kInvalidEntity;
  float score = 0.0f;
};

class RankedSimilarity {
 public:
  // Ranks every entity of `targets` for every entity of `sources` by the
  // model's similarity, descending (deterministic tie-break on entity id).
  RankedSimilarity(const EAModel& model,
                   const std::vector<kg::EntityId>& sources,
                   const std::vector<kg::EntityId>& targets);

  // As above but over a precomputed similarity matrix (|sources| rows by
  // |targets| columns) — used by re-scored inference such as CSLS.
  RankedSimilarity(la::Matrix sim, std::vector<kg::EntityId> sources,
                   std::vector<kg::EntityId> targets);

  // The underlying (sources x targets) similarity matrix.
  const la::Matrix& similarity_matrix() const { return sim_; }

  // Full descending candidate list for a source entity (must be one of the
  // constructor's `sources`).
  const std::vector<Candidate>& CandidatesFor(kg::EntityId source) const;

  // Similarity of a specific (source, target) pair; both must belong to
  // the constructor's entity sets.
  double Sim(kg::EntityId source, kg::EntityId target) const;

  const std::vector<kg::EntityId>& sources() const { return sources_; }
  const std::vector<kg::EntityId>& targets() const { return targets_; }

 private:
  std::vector<kg::EntityId> sources_;
  std::vector<kg::EntityId> targets_;
  std::unordered_map<kg::EntityId, size_t> source_pos_;
  std::unordered_map<kg::EntityId, size_t> target_pos_;
  // ranked_[i] = descending candidates for sources_[i].
  std::vector<std::vector<Candidate>> ranked_;
  // sim_(i, j) in source/target position space.
  la::Matrix sim_;
};

// Greedy nearest-neighbour inference: every source takes its most similar
// target. The result can (deliberately) contain one-to-many conflicts.
kg::AlignmentSet GreedyAlign(const RankedSimilarity& ranked);

// Mutual-best (bidirectional kNN) inference: only pairs that are each
// other's top candidate are kept. Provided for completeness / ablation.
kg::AlignmentSet MutualBestAlign(const RankedSimilarity& ranked);

// Convenience: ranks test sources against test targets of `dataset`.
RankedSimilarity RankTestEntities(const EAModel& model,
                                  const data::EaDataset& dataset);

}  // namespace exea::emb

#endif  // EXEA_EMB_INFERENCE_H_
