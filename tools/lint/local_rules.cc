#include "lint/local_rules.h"

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/taint.h"

namespace lint {

bool Waived(const FileAnalysis& a, size_t line_1based,
            const std::string& rule) {
  auto it = a.waivers.find(line_1based);
  if (it != a.waivers.end() &&
      (it->second.rules.count(rule) > 0 || it->second.rules.count("all") > 0)) {
    return true;
  }
  if (line_1based >= 2) {
    auto prev = a.waivers.find(line_1based - 1);
    if (prev != a.waivers.end() && prev->second.comment_only &&
        (prev->second.rules.count(rule) > 0 ||
         prev->second.rules.count("all") > 0)) {
      return true;
    }
  }
  return false;
}

namespace {

// ------------------------------------------------------------ declarations

// Skips leading declaration qualifiers, returns the index after them.
size_t SkipQualifiers(const std::string& s, size_t i) {
  static const char* const kQualifiers[] = {"static",   "virtual", "inline",
                                            "constexpr", "friend",  "explicit"};
  for (;;) {
    while (i < s.size() && s[i] == ' ') ++i;
    bool matched = false;
    for (const char* q : kQualifiers) {
      size_t n = std::strlen(q);
      if (s.compare(i, n, q) == 0 && i + n < s.size() && s[i + n] == ' ') {
        i += n;
        matched = true;
        break;
      }
    }
    if (!matched) return i;
  }
}

// Matches an optionally namespace-qualified Status / StatusOr<...> return
// type starting at `i`; on success sets `*after` past the type (including a
// balanced template argument list) and `*is_status_or`.
bool MatchStatusType(const std::string& s, size_t i, size_t* after,
                     bool* is_status_or) {
  if (s.compare(i, 2, "::") == 0) i += 2;
  for (const char* ns : {"exea::", "util::", "exea::util::"}) {
    size_t n = std::strlen(ns);
    if (s.compare(i, n, ns) == 0) {
      i += n;
      break;
    }
  }
  const std::string kStatus = "Status";
  if (s.compare(i, kStatus.size(), kStatus) != 0) return false;
  i += kStatus.size();
  if (s.compare(i, 2, "Or") == 0 && i + 2 < s.size() && s[i + 2] == '<') {
    i += 3;
    int depth = 1;
    while (i < s.size() && depth > 0) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>') --depth;
      ++i;
    }
    if (depth != 0) return false;  // template args span lines: next line
    *is_status_or = true;
  } else {
    if (i < s.size() && IsIdentChar(s[i])) return false;  // StatusXyz
    *is_status_or = false;
  }
  *after = i;
  return true;
}

// A Status-returning function declaration found in a header.
struct Declaration {
  size_t line = 0;
  size_t col = 1;
  std::string name;
  bool has_nodiscard = false;
};

// Scans one file for Status/StatusOr-returning function declarations.
// Declarations in this codebase keep the return type and function name on
// one physical line (Google style), so a line scanner suffices.
void FindDeclarations(const SourceFile& file, std::vector<Declaration>* out) {
  std::string prev_nonblank;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    // `using` aliases, returns, and macro bodies are not declarations.
    if (line.compare(i, 6, "using ") == 0 ||
        line.compare(i, 7, "return ") == 0 ||
        line.compare(i, 8, "typedef ") == 0 || line[i] == '#') {
      prev_nonblank = line;
      continue;
    }
    bool nodiscard_here = false;
    const std::string kAttr = "[[nodiscard]]";
    if (line.compare(i, kAttr.size(), kAttr) == 0) {
      nodiscard_here = true;
      i += kAttr.size();
    }
    i = SkipQualifiers(line, i);
    if (line.compare(i, kAttr.size(), kAttr) == 0) {  // static [[nodiscard]]
      nodiscard_here = true;
      i = SkipQualifiers(line, i + kAttr.size());
    }
    size_t after_type = 0;
    bool is_status_or = false;
    if (!MatchStatusType(line, i, &after_type, &is_status_or)) {
      prev_nonblank = line;
      continue;
    }
    size_t j = after_type;
    while (j < line.size() && line[j] == ' ') ++j;
    if (j == after_type || j >= line.size()) {  // no space → constructor etc.
      prev_nonblank = line;
      continue;
    }
    // Function name: identifier (possibly Class::Name for out-of-line
    // definitions) immediately followed by '('.
    size_t name_begin = j;
    while (j < line.size() &&
           (IsIdentChar(line[j]) || line.compare(j, 2, "::") == 0)) {
      j += line.compare(j, 2, "::") == 0 ? 2 : 1;
    }
    if (j == name_begin || j >= line.size() || line[j] != '(') {
      prev_nonblank = line;
      continue;
    }
    std::string qualified = line.substr(name_begin, j - name_begin);
    // Operators and qualified (out-of-line) definitions: the attribute
    // belongs on the in-class/in-header declaration, which is scanned
    // separately — still register the name for the call-site rule.
    bool out_of_line = qualified.find("::") != std::string::npos;
    size_t last_sep = qualified.rfind("::");
    std::string name = last_sep == std::string::npos
                           ? qualified
                           : qualified.substr(last_sep + 2);
    // nodiscard may also sit on its own line directly above.
    if (!nodiscard_here) {
      size_t at = prev_nonblank.find(kAttr);
      if (at != std::string::npos &&
          prev_nonblank.find_first_not_of(" \t") == at &&
          prev_nonblank.find_first_not_of(" \t", at + kAttr.size()) ==
              std::string::npos) {
        nodiscard_here = true;
      }
    }
    Declaration decl;
    decl.line = li + 1;
    decl.col = line.find_first_not_of(" \t") + 1;
    decl.name = name;
    decl.has_nodiscard = nodiscard_here || out_of_line || !file.is_header;
    out->push_back(decl);
    prev_nonblank = line;
  }
}

// ------------------------------------------------------------- local pass

// One open class/struct body while scanning a header: the brace depth of
// its members and the first mutex member seen so far.
struct ClassScope {
  int body_depth = 0;
  bool has_mutex = false;
  std::string first_mutex;
};

// True when the accumulated member statement declares a synchronization
// object — those coordinate the lock rather than being protected by it.
bool IsSyncType(const std::string& stmt) {
  for (const char* t :
       {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
        "std::condition_variable", "std::atomic", "std::thread",
        "std::once_flag", "std::stop_token"}) {
    if (stmt.find(t) != std::string::npos) return true;
  }
  return false;
}

// Last identifier before the terminator of a member declaration:
// "size_t pending_ = 0;" → pending_, "char buf_[4];" → buf_.
std::string MemberName(const std::string& stmt) {
  size_t end = stmt.find_first_of("=;{[");
  std::string head = end == std::string::npos ? stmt : stmt.substr(0, end);
  size_t e = head.find_last_not_of(" \t");
  if (e == std::string::npos) return "";
  size_t b = e;
  while (b > 0 && IsIdentChar(head[b - 1])) --b;
  if (!IsIdentChar(head[e])) return "";
  return head.substr(b, e - b + 1);
}

// The argument of the first MACRO(...) occurrence in `stmt`, or "".
std::string MacroArg(const std::string& stmt, const std::string& macro) {
  size_t at = stmt.find(macro + "(");
  if (at == std::string::npos) return "";
  size_t open = at + macro.size();
  size_t close = stmt.find(')', open + 1);
  if (close == std::string::npos) return "";
  std::string arg = stmt.substr(open + 1, close - open - 1);
  size_t b = arg.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = arg.find_last_not_of(" \t");
  return arg.substr(b, e - b + 1);
}

// Finds the method name a trailing EXEA_REQUIRES(...) belongs to: the
// last identifier followed by '(' in `stmt` that is not a macro name.
std::string RequiresMethodName(const std::string& stmt) {
  size_t limit = stmt.find("EXEA_REQUIRES");
  if (limit == std::string::npos) limit = stmt.size();
  std::string name;
  for (size_t i = 0; i + 1 < limit; ++i) {
    if (!IsIdentChar(stmt[i])) continue;
    size_t b = i;
    while (i < limit && IsIdentChar(stmt[i])) ++i;
    if (i < limit && stmt[i] == '(') {
      std::string candidate = stmt.substr(b, i - b);
      if (candidate.rfind("EXEA_", 0) != 0) name = candidate;
    }
  }
  return name;
}

// ---------------------------------------------------------------- fd-leak
//
// A per-function lexical path analysis: a descriptor-yielding assignment
// (`int fd = ::socket(...)`, right-hand callee in the configured acquire
// set) creates an obligation that must be discharged — by a close() naming
// it, by assignment into a member/field (ownership handoff), by insertion
// into a container, or by being returned — before every lexical exit of
// its scope (early return, break/continue out of its loop, end of scope).
// Exits taken only on the acquirer's own failure (`if (!fd.ok()) return`,
// `if (fd < 0) return`) are exempt, as are discharges on any enclosing
// conditional path (the pass is deliberately lenient: one close on one
// path counts, because a lexical checker cannot prove path feasibility).

struct FdStmt {
  std::string text;
  size_t line = 0;  // 1-based
  size_t col = 1;
  int block = -1;   // index of the block this statement opens, or -1
};

struct FdBlock {
  std::string header;  // statement text before the '{'
  bool is_loop = false;
  std::vector<FdStmt> stmts;
};

struct Obligation {
  std::string name;
  std::string acquirer;
  size_t line = 0;
  size_t col = 1;
  int loop_depth = 0;    // loops enclosing the acquisition
  size_t guard_base = 0; // guard-stack size at the acquisition
  bool discharged = false;
};

}  // namespace

namespace {

class LocalPass {
 public:
  LocalPass(const SourceFile& file, const ConcurrencyConfig& conc,
            FileAnalysis* out)
      : file_(file), conc_(conc), out_(out) {}

  void Run() {
    // Waiver map first (Report consults it).
    for (size_t li = 0; li < file_.waivers.size(); ++li) {
      if (file_.waivers[li].empty()) continue;
      WaiverLine w;
      w.rules = file_.waivers[li];
      w.comment_only =
          file_.code[li].find_first_not_of(" \t") == std::string::npos;
      out_->waivers[li + 1] = w;
    }
    // Status declarations: facts for the cross-TU discard resolution plus
    // the nodiscard rule itself.
    std::vector<Declaration> decls;
    FindDeclarations(file_, &decls);
    for (const Declaration& d : decls) {
      out_->summary.status_fns.push_back(d.name);
      if (!d.has_nodiscard) {
        Report(d.line, d.col, "nodiscard-status",
               "declaration of '" + d.name +
                   "' returns Status/StatusOr but is not [[nodiscard]]");
      }
    }
    CollectDiscardCandidates();
    CheckRawRng();
    CheckRawNewDelete();
    CheckCoutLogging();
    CheckHeaderHygiene();
    CheckAdhocMetrics();
    if (file_.is_header && file_.in_src && !file_.module.empty()) {
      CollectGuardedMembers();
    }
    CheckFdLeaks();
    CheckRelaxedAtomics();
    CheckWaiverFormat();
    CheckBannedParsers();
    BuildIndex(file_, &out_->summary);
    CollectTaintFacts(file_, &out_->summary);
  }

 private:
  // Local sink: drops waived lines. Rule enablement is applied by the
  // driver so cached diagnostics stay valid across --rules invocations.
  void Report(size_t line, size_t col, const std::string& rule,
              const std::string& message) {
    if (line >= 1 && Waived(*out_, line, rule)) return;
    out_->local.push_back({file_.path, line, col, rule, message, false});
  }

  // A bare expression statement whose outermost callee *might* be a
  // Status-returning function. Joins simple continuation lines so a call
  // whose argument list wraps is still seen as one statement. Candidates
  // are resolved against the global Status registry in the cross-TU phase.
  void CollectDiscardCandidates() {
    // Last significant character of the previous code line; a physical line
    // is only a *statement start* when the previous one ended a statement
    // (';'), opened or closed a block, or was a label/access specifier.
    char prev_end = ';';
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos) continue;
      char saved_prev_end = prev_end;
      size_t tail = line.find_last_not_of(" \t");
      prev_end = line[tail];
      if (line[i] == '#') continue;  // preprocessor: does not end statements
      bool statement_start = saved_prev_end == ';' || saved_prev_end == '{' ||
                             saved_prev_end == '}' || saved_prev_end == ':';
      if (!statement_start) continue;
      if (!IsIdentChar(line[i]) && line.compare(i, 2, "::") != 0) continue;
      // Leading keyword → not a bare call statement.
      static const char* const kKeywords[] = {
          "return", "if",   "while", "for",    "switch", "case",
          "else",   "do",   "goto",  "delete", "new",    "throw",
          "using",  "co_return"};
      bool keyword = false;
      for (const char* k : kKeywords) {
        size_t n = std::strlen(k);
        if (line.compare(i, n, k) == 0 &&
            (i + n >= line.size() || !IsIdentChar(line[i + n]))) {
          keyword = true;
          break;
        }
      }
      if (keyword) continue;
      // Outermost callee: a chain of identifiers joined by :: . ->
      // immediately followed by '('.
      size_t j = i;
      size_t callee_begin = i;
      while (j < line.size()) {
        if (IsIdentChar(line[j])) {
          ++j;
        } else if (line.compare(j, 2, "::") == 0) {
          j += 2;
          callee_begin = j;
        } else if (line[j] == '.') {
          ++j;
          callee_begin = j;
        } else if (line.compare(j, 2, "->") == 0) {
          j += 2;
          callee_begin = j;
        } else {
          break;
        }
      }
      if (j >= line.size() || line[j] != '(' || j == callee_begin) continue;
      std::string callee = line.substr(callee_begin, j - callee_begin);
      // Join continuations until the statement terminates, then require the
      // whole statement to be exactly <call-expression>; — an assignment,
      // comparison, or larger expression is not a discard.
      std::string statement = line.substr(i);
      for (size_t k = li + 1;
           k < file_.code.size() && statement.find(';') == std::string::npos &&
           k < li + 12;
           ++k) {
        statement += ' ';
        statement += file_.code[k];
      }
      size_t semi = statement.find(';');
      if (semi == std::string::npos) continue;
      statement.resize(semi);
      if (statement.find('=') != std::string::npos) continue;
      // The statement must end exactly at the paren closing the callee's
      // own argument list: `Foo(...)` is a discard, `Foo(...).ok()` is not.
      size_t open = statement.find('(', j - i);
      if (open == std::string::npos) continue;
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t k = open; k < statement.size(); ++k) {
        if (statement[k] == '(') ++depth;
        if (statement[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close == std::string::npos ||
          statement.find_first_not_of(" \t", close + 1) !=
              std::string::npos) {
        continue;
      }
      out_->summary.discards.push_back({callee, li + 1, i + 1});
    }
  }

  // The C parsing family accepts trailing garbage ("2junk" -> 2), clamps
  // or UBs on overflow, and cannot report failure distinctly from zero —
  // exactly the behaviors the serve/snapshot hardening removed. Everything
  // numeric goes through the exea::util::Parse* checked API instead.
  void CheckBannedParsers() {
    static const char* const kBanned[] = {
        "atoi",   "atol",    "atoll",   "atof",    "stoi",    "stol",
        "stoll",  "stoul",   "stoull",  "stof",    "stod",    "stold",
        "strtol", "strtoll", "strtoul", "strtoull", "strtof", "strtod",
        "strtold"};
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      for (const char* fn : kBanned) {
        size_t n = std::strlen(fn);
        size_t at = 0;
        while ((at = line.find(fn, at)) != std::string::npos) {
          bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
          bool call = at + n < line.size() && line[at + n] == '(';
          if (left_ok && call) {
            Report(li + 1, at + 1, "atoi-on-untrusted",
                   std::string(fn) +
                       "() silently accepts trailing garbage or truncates "
                       "on overflow; use exea::util::ParseInt32/ParseInt64/"
                       "ParseDouble");
            break;
          }
          at += n;
        }
      }
    }
  }

  void CheckRawRng() {
    if (file_.is_rng_impl) return;
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      size_t rd = line.find("std::random_device");
      if (rd != std::string::npos) {
        Report(li + 1, rd + 1, "raw-rng",
               "std::random_device is nondeterministic; seed a util Rng "
               "instead");
      }
      for (const char* fn : {"rand", "srand"}) {
        size_t at = 0;
        size_t n = std::strlen(fn);
        while ((at = line.find(fn, at)) != std::string::npos) {
          // Word boundary on the left ("operand(" is fine; "std::rand(" is
          // not, ':' being a non-identifier char) and a call paren on the
          // right.
          bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
          bool call = at + n < line.size() && line[at + n] == '(';
          if (left_ok && call) {
            Report(li + 1, at + 1, "raw-rng",
                   std::string(fn) +
                       "() bypasses the seeded util Rng; all randomness "
                       "must be reproducible");
            break;
          }
          at += n;
        }
      }
    }
  }

  void CheckRawNewDelete() {
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      for (const char* kw : {"new", "delete"}) {
        size_t n = std::strlen(kw);
        size_t at = 0;
        while ((at = line.find(kw, at)) != std::string::npos) {
          bool left = at == 0 || !IsIdentChar(line[at - 1]);
          bool right = at + n >= line.size() || !IsIdentChar(line[at + n]);
          if (!left || !right) {
            at += n;
            continue;
          }
          // "= delete" / "= delete;" is a deleted function, not a
          // deallocation.
          if (kw[0] == 'd') {
            size_t prev = line.find_last_not_of(" \t", at == 0 ? 0 : at - 1);
            if (prev != std::string::npos && line[prev] == '=') {
              at += n;
              continue;
            }
          }
          Report(li + 1, at + 1, "raw-new-delete",
                 std::string("naked '") + kw +
                     "': use containers / std::make_unique, or waive "
                     "with a justification for deliberate leaky "
                     "singletons");
          at += n;
        }
      }
    }
  }

  void CheckCoutLogging() {
    if (!file_.in_src) return;
    for (size_t li = 0; li < file_.code.size(); ++li) {
      size_t at = file_.code[li].find("std::cout");
      if (at != std::string::npos) {
        Report(li + 1, at + 1, "cout-logging",
               "library code must log via EXEA_LOG; stdout is reserved for "
               "tools/ and bench/");
      }
    }
  }

  // ------------------------------------------------- ad-hoc metric members
  //
  // Telemetry state — request counters, hit/miss tallies, latency sample
  // buffers, precomputed percentile fields — belongs in the obs::Registry.
  // A raw member named like a metric re-creates exactly the
  // accumulate-and-report drift the obs subsystem replaced (the capped
  // latency vector that froze p99 on warm-up traffic; DESIGN.md §10).
  void CheckAdhocMetrics() {
    if (!file_.is_header || !file_.in_src || file_.module == "obs") return;
    static const char* kTokens[] = {"counter", "latenc",  "qps",
                                    "p50",     "p99",     "_hits",
                                    "_misses", "hits_",   "misses_"};
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      size_t last = line.find_last_not_of(" \t");
      if (last == std::string::npos || line[last] != ';') continue;
      size_t first = line.find_first_not_of(" \t");
      if (!IsIdentChar(line[first])) continue;  // '#', '}', operators …
      if (line.find("obs::") != std::string::npos) continue;
      // Forward declarations, aliases, and statements are not members.
      size_t word_end = first;
      while (word_end < line.size() && IsIdentChar(line[word_end])) {
        ++word_end;
      }
      std::string first_word = line.substr(first, word_end - first);
      static const std::set<std::string> kSkipLead = {
          "class",  "struct", "enum",   "union",  "friend", "using",
          "typedef", "return", "delete", "goto",  "case",   "break",
          "continue", "template", "namespace"};
      if (kSkipLead.count(first_word) > 0) continue;
      // Annotations aside, a parenthesis marks a method declaration or a
      // macro invocation, not a data member.
      std::string head = line.substr(0, line.find("EXEA_GUARDED_BY"));
      if (head.find('(') != std::string::npos) continue;
      std::string name = MemberName(head);
      if (name.empty()) continue;
      std::string lowered = name;
      for (char& c : lowered) c = static_cast<char>(std::tolower(c));
      for (const char* token : kTokens) {
        if (lowered.find(token) == std::string::npos) continue;
        Report(li + 1, first + 1, "obs-no-adhoc-metrics",
               "member '" + name + "' looks like ad-hoc telemetry ('" +
                   token + "'); record it in the exea::obs registry "
                   "(obs/metrics.h) instead");
        break;
      }
    }
  }

  // -------------------------------------------------------- header hygiene

  void CheckHeaderHygiene() {
    if (!file_.is_header) return;
    // header-guard: accept #pragma once anywhere, or a classic
    // #ifndef X / #define X pair among the first preprocessor lines.
    bool guarded = false;
    std::string ifndef_macro;
    for (const std::string& line : file_.code) {
      size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos || line[i] != '#') continue;
      std::string directive = line.substr(i);
      if (directive.rfind("#pragma", 0) == 0 &&
          directive.find("once") != std::string::npos) {
        guarded = true;
        break;
      }
      if (directive.rfind("#ifndef", 0) == 0 && ifndef_macro.empty()) {
        std::istringstream words(directive.substr(7));
        words >> ifndef_macro;
        continue;
      }
      if (directive.rfind("#define", 0) == 0 && !ifndef_macro.empty()) {
        std::string macro;
        std::istringstream words(directive.substr(7));
        words >> macro;
        if (macro == ifndef_macro) guarded = true;
        break;  // the guard pair must be the first two directives
      }
      if (directive.rfind("#include", 0) == 0) break;  // guard comes first
    }
    if (!guarded) {
      Report(1, 1, "header-guard",
             "header lacks an include guard (#ifndef/#define pair) or "
             "#pragma once");
    }
    // header-using-namespace: a `using namespace` leaks names into every
    // includer; headers must qualify instead.
    for (size_t li = 0; li < file_.code.size(); ++li) {
      size_t at = file_.code[li].find("using namespace");
      if (at != std::string::npos) {
        Report(li + 1, at + 1, "header-using-namespace",
               "`using namespace` at header scope pollutes every includer; "
               "qualify names instead");
      }
    }
  }

  // -------------------------------------------------------- lock facts

  // Collects guarded members + REQUIRES methods from a header, reporting
  // unannotated members declared after a class's first mutex (guarded-by).
  // The facts feed the cross-TU lock passes.
  void CollectGuardedMembers() {
    std::vector<ClassScope> classes;
    int depth = 0;
    std::string stmt;          // accumulated member statement text
    size_t stmt_line = 0;      // 1-based line where the statement started
    bool pending_class = false;
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      size_t b = line.find_first_not_of(" \t");
      std::string trimmed = b == std::string::npos ? "" : line.substr(b);
      bool at_member_depth =
          !classes.empty() && depth == classes.back().body_depth;

      if (at_member_depth && !trimmed.empty() && trimmed[0] != '#') {
        bool access_label = trimmed == "public:" || trimmed == "private:" ||
                            trimmed == "protected:";
        bool opens_type = trimmed.rfind("class ", 0) == 0 ||
                          trimmed.rfind("struct ", 0) == 0 ||
                          trimmed.rfind("enum ", 0) == 0 ||
                          trimmed.rfind("union ", 0) == 0;
        if (access_label || opens_type ||
            line.find('{') != std::string::npos) {
          // Access labels, nested types, and inline bodies end any pending
          // member statement without classifying it.
          stmt.clear();
        } else {
          if (stmt.empty()) stmt_line = li + 1;
          if (!stmt.empty()) stmt += ' ';
          stmt += trimmed;
          if (stmt.find(';') != std::string::npos) {
            ClassifyMemberStatement(stmt, stmt_line, &classes.back());
            stmt.clear();
          } else if (li + 1 - stmt_line >= 5) {
            stmt.clear();  // runaway join: bail out, stay conservative
          }
        }
      }

      // A class/struct head on this line claims the next opened brace.
      if (!trimmed.empty() &&
          (trimmed.rfind("class ", 0) == 0 ||
           trimmed.rfind("struct ", 0) == 0) &&
          trimmed.find(';') == std::string::npos &&
          line.find('{') != std::string::npos) {
        pending_class = true;
      }
      for (char c : line) {
        if (c == '{') {
          ++depth;
          if (pending_class) {
            classes.push_back({depth, false, ""});
            pending_class = false;
          }
        } else if (c == '}') {
          if (!classes.empty() && classes.back().body_depth == depth) {
            classes.pop_back();
            stmt.clear();
          }
          --depth;
        }
      }
    }
  }

  void ClassifyMemberStatement(const std::string& stmt, size_t line,
                               ClassScope* scope) {
    // EXEA_REQUIRES → a method contract, not a data member.
    std::string required_mutex = MacroArg(stmt, "EXEA_REQUIRES");
    if (!required_mutex.empty()) {
      std::string method = RequiresMethodName(stmt);
      if (!method.empty()) {
        out_->summary.required.push_back({method, required_mutex});
      }
      return;
    }
    // Annotated member: record it for the lock-held pass.
    std::string guarded_mutex = MacroArg(stmt, "EXEA_GUARDED_BY");
    if (!guarded_mutex.empty()) {
      std::string name = MemberName(
          stmt.substr(0, stmt.find("EXEA_GUARDED_BY")) + ";");
      if (!name.empty()) {
        out_->summary.guarded.push_back({name, guarded_mutex});
      }
      return;
    }
    // The class's own mutex members establish the "after the mutex" zone.
    if (stmt.find("std::mutex") != std::string::npos ||
        stmt.find("std::shared_mutex") != std::string::npos) {
      if (!scope->has_mutex) {
        scope->has_mutex = true;
        scope->first_mutex = MemberName(stmt);
      }
      return;
    }
    if (IsSyncType(stmt)) return;  // cv / atomic / thread coordinate locking
    // Skip non-member statements: using/typedef/friend/static declarations
    // and anything with a parameter list (a method declaration).
    std::string head = stmt.substr(0, stmt.find(';'));
    for (const char* kw : {"using ", "typedef ", "friend ", "static ",
                           "template", "operator"}) {
      if (head.rfind(kw, 0) == 0) return;
    }
    if (head.find('(') != std::string::npos) return;  // method declaration
    if (!scope->has_mutex) return;  // members above the mutex are unguarded
    std::string name = MemberName(stmt);
    if (name.empty()) return;
    Report(line, 1, "guarded-by",
           "member '" + name + "' is declared after mutex '" +
               scope->first_mutex +
               "' but carries no EXEA_GUARDED_BY annotation (move it above "
               "the mutex if it is not protected)");
  }

  // ---------------------------------------------------------------- fd-leak

  void CheckFdLeaks() {
    blocks_.clear();
    blocks_.push_back(FdBlock{});  // [0] = file scope
    std::vector<int> open{0};
    std::string stmt;
    size_t stmt_line = 0, stmt_col = 1;
    int pdepth = 0;
    bool balanced = true;
    for (size_t li = 0; li < file_.code.size() && balanced; ++li) {
      const std::string& line = file_.code[li];
      size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') {
        // Preprocessor lines (and their continuations) are invisible to the
        // path analysis.
        while (li < file_.code.size() && !file_.raw[li].empty() &&
               file_.raw[li].back() == '\\') {
          ++li;
        }
        continue;
      }
      for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '(') {
          ++pdepth;
        } else if (c == ')') {
          if (pdepth > 0) --pdepth;
        }
        if (c == '{' && pdepth == 0) {
          FdBlock block;
          block.header = stmt;
          std::istringstream words(stmt);
          std::string head;
          words >> head;
          block.is_loop = head == "for" || head == "while" || head == "do" ||
                          head == "switch";
          blocks_.push_back(block);
          int idx = static_cast<int>(blocks_.size()) - 1;
          blocks_[open.back()].stmts.push_back(
              {stmt, stmt_line == 0 ? li + 1 : stmt_line, stmt_col, idx});
          open.push_back(idx);
          stmt.clear();
          stmt_line = 0;
        } else if (c == '}' && pdepth == 0) {
          FlushStmt(&stmt, stmt_line, stmt_col, open.back());
          stmt_line = 0;
          if (open.size() > 1) {
            open.pop_back();
          } else {
            balanced = false;  // stray '}': bail out, stay conservative
            break;
          }
        } else if (c == ';' && pdepth == 0) {
          FlushStmt(&stmt, stmt_line, stmt_col, open.back());
          stmt_line = 0;
        } else if (c != ' ' && c != '\t') {
          if (stmt.empty()) {
            stmt_line = li + 1;
            stmt_col = i + 1;
          }
          stmt += c;
        } else if (!stmt.empty() && stmt.back() != ' ') {
          stmt += ' ';
        }
      }
      if (!stmt.empty() && stmt.back() != ' ') stmt += ' ';
    }
    if (!balanced || open.size() != 1) return;  // unbalanced: no analysis
    std::vector<Obligation> obligations;
    std::vector<std::string> guards;
    WalkBlock(0, 0, &obligations, &guards);
  }

  void FlushStmt(std::string* stmt, size_t line, size_t col, int block) {
    size_t b = stmt->find_first_not_of(' ');
    if (b != std::string::npos) {
      size_t e = stmt->find_last_not_of(' ');
      blocks_[block].stmts.push_back(
          {stmt->substr(b, e - b + 1), line, col, -1});
    }
    stmt->clear();
  }

  void WalkBlock(int block, int loop_depth,
                 std::vector<Obligation>* obligations,
                 std::vector<std::string>* guards) {
    size_t base = obligations->size();
    for (const FdStmt& s : blocks_[block].stmts) {
      if (s.block >= 0) {
        const FdBlock& child = blocks_[s.block];
        guards->push_back(child.header);
        WalkBlock(s.block, loop_depth + (child.is_loop ? 1 : 0), obligations,
                  guards);
        guards->pop_back();
      } else {
        HandleFdStmt(s.text, s.line, s.col, loop_depth, obligations, guards);
      }
    }
    // End of scope: every obligation born in this block must be discharged.
    for (size_t i = base; i < obligations->size(); ++i) {
      Obligation& ob = (*obligations)[i];
      if (!ob.discharged) {
        ReportLeak(ob, "scope ends at this nesting level");
      }
    }
    obligations->resize(base);
  }

  void HandleFdStmt(const std::string& text, size_t line, size_t col,
                    int loop_depth, std::vector<Obligation>* obligations,
                    std::vector<std::string>* guards) {
    std::string first = FirstIdent(text);
    if (first == "if" || first == "while" || first == "for") {
      // Unbraced bodies: `if (!ok) return s;` — the condition guards the
      // trailing statement.
      size_t open = text.find('(');
      if (open == std::string::npos) return;
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t i = open; i < text.size(); ++i) {
        if (text[i] == '(') ++depth;
        if (text[i] == ')' && --depth == 0) {
          close = i;
          break;
        }
      }
      if (close == std::string::npos) return;
      std::string cond = text.substr(open + 1, close - open - 1);
      size_t rb = text.find_first_not_of(' ', close + 1);
      if (rb == std::string::npos) return;  // `while (cond) ;` etc.
      guards->push_back(cond);
      HandleFdStmt(text.substr(rb), line, col,
                   loop_depth + (first != "if" ? 1 : 0), obligations, guards);
      guards->pop_back();
      return;
    }
    if (first == "else") {
      size_t rb = text.find_first_not_of(' ', 4);
      if (rb != std::string::npos) {
        HandleFdStmt(text.substr(rb), line, col, loop_depth, obligations,
                     guards);
      }
      return;
    }
    if (first == "return") {
      std::string expr = text.size() > 6 ? text.substr(6) : "";
      size_t b = expr.find_first_not_of(' ');
      expr = b == std::string::npos ? "" : expr.substr(b);
      for (Obligation& ob : *obligations) {
        if (ob.discharged) continue;
        size_t at = FindWord(expr, ob.name);
        if (at != std::string::npos && !IsStatusAccessor(expr, at, ob.name)) {
          ob.discharged = true;  // the descriptor itself is returned
        } else if (!GuardExempt(ob, *guards)) {
          ReportLeak(ob, "early return at line " + std::to_string(line));
        }
      }
      return;
    }
    if (first == "break" || first == "continue") {
      for (Obligation& ob : *obligations) {
        if (ob.discharged || ob.loop_depth != loop_depth || loop_depth == 0) {
          continue;
        }
        if (!GuardExempt(ob, *guards)) {
          ReportLeak(ob, "loop exit at line " + std::to_string(line));
        }
      }
      return;
    }
    // Discharges: close(), handoff into a member/field, container insert.
    for (Obligation& ob : *obligations) {
      if (ob.discharged) continue;
      size_t at = FindWord(text, ob.name);
      if (at == std::string::npos) continue;
      if (FindWord(text, "close") != std::string::npos ||
          text.find("Close") != std::string::npos) {
        ob.discharged = true;
        continue;
      }
      if (text.find("push_back") != std::string::npos ||
          text.find("emplace") != std::string::npos ||
          text.find("insert") != std::string::npos) {
        ob.discharged = true;
        continue;
      }
      size_t eq = TopLevelAssign(text);
      if (eq != std::string::npos && at > eq) {
        std::string lhs = text.substr(0, eq);
        std::string lhs_name = MemberName(lhs + ";");
        if ((!lhs_name.empty() && lhs_name.back() == '_') ||
            lhs.find('.') != std::string::npos ||
            lhs.find("->") != std::string::npos) {
          ob.discharged = true;  // ownership moved into a field
          continue;
        }
      }
    }
    // Acquisition: `<ident> = <acquirer>(...)` with the callee's base name
    // in the configured acquire set.
    size_t eq = TopLevelAssign(text);
    if (eq == std::string::npos) return;
    size_t r = text.find_first_not_of(' ', eq + 1);
    if (r == std::string::npos) return;
    size_t j = r;
    size_t base_begin = r;
    while (j < text.size()) {
      if (IsIdentChar(text[j])) {
        ++j;
      } else if (text.compare(j, 2, "::") == 0) {
        j += 2;
        base_begin = j;
      } else {
        break;
      }
    }
    if (j == base_begin || j >= text.size() || text[j] != '(') return;
    std::string callee = text.substr(base_begin, j - base_begin);
    if (conc_.acquire.count(callee) == 0) return;
    std::string lhs_name = MemberName(text.substr(0, eq) + ";");
    if (lhs_name.empty()) return;
    if (lhs_name.back() == '_') return;  // member: owned by the object
    std::string lhs = text.substr(0, eq);
    size_t np = FindWord(lhs, lhs_name);
    if (np != std::string::npos && np > 0 &&
        (lhs[np - 1] == '.' || lhs[np - 1] == '>')) {
      return;  // field access: owned elsewhere
    }
    Obligation ob;
    ob.name = lhs_name;
    ob.acquirer = callee;
    ob.line = line;
    ob.col = col;
    ob.loop_depth = loop_depth;
    ob.guard_base = guards->size();
    obligations->push_back(ob);
  }

  // `expr[at..]` is `name.status()` / `name->status()` / `name.error...` —
  // returning an error accessor does not transfer the descriptor.
  static bool IsStatusAccessor(const std::string& expr, size_t at,
                               const std::string& name) {
    size_t after = at + name.size();
    for (const char* acc : {".status(", "->status(", ".error(", "->error("}) {
      if (expr.compare(after, std::strlen(acc), acc) == 0) return true;
    }
    return false;
  }

  // True when any guard enclosing the exit (pushed after the acquisition)
  // is a failure test of the obligation's own name: `!fd.ok()`, `fd < 0`,
  // `fd == -1`, `!fd`.
  bool GuardExempt(const Obligation& ob,
                   const std::vector<std::string>& guards) const {
    for (size_t g = ob.guard_base; g < guards.size(); ++g) {
      const std::string& cond = guards[g];
      size_t at = 0;
      while ((at = cond.find(ob.name, at)) != std::string::npos) {
        bool left = at == 0 || !IsIdentChar(cond[at - 1]);
        bool right = at + ob.name.size() >= cond.size() ||
                     !IsIdentChar(cond[at + ob.name.size()]);
        if (!left || !right) {
          at += ob.name.size();
          continue;
        }
        size_t prev = cond.find_last_not_of(" (*", at == 0 ? 0 : at - 1);
        if (at > 0 && prev != std::string::npos && cond[prev] == '!') {
          return true;
        }
        std::string tail = cond.substr(at + ob.name.size());
        for (const char* acc : {".ok()", "->ok()"}) {
          if (tail.rfind(acc, 0) == 0) tail = tail.substr(std::strlen(acc));
        }
        size_t t = tail.find_first_not_of(' ');
        tail = t == std::string::npos ? "" : tail.substr(t);
        if (tail.rfind("<", 0) == 0 && tail.rfind("<<", 0) != 0) return true;
        if (tail.rfind("==", 0) == 0 && tail.find('-') != std::string::npos) {
          return true;
        }
        at += ob.name.size();
      }
    }
    return false;
  }

  // First '=' that is an assignment: not ==, !=, <=, >=, +=, -=, …
  static size_t TopLevelAssign(const std::string& text) {
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] != '=') continue;
      char prev = i > 0 ? text[i - 1] : '\0';
      char next = i + 1 < text.size() ? text[i + 1] : '\0';
      if (next == '=') {
        ++i;  // skip ==
        continue;
      }
      if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
          prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
          prev == '%' || prev == '&' || prev == '|' || prev == '^') {
        continue;
      }
      return i;
    }
    return std::string::npos;
  }

  static std::string FirstIdent(const std::string& text) {
    size_t b = text.find_first_not_of(' ');
    if (b == std::string::npos || !IsIdentChar(text[b])) return "";
    size_t e = b;
    while (e < text.size() && IsIdentChar(text[e])) ++e;
    return text.substr(b, e - b);
  }

  void ReportLeak(Obligation& ob, const std::string& why) {
    if (!leaks_reported_.insert(ob.line * 10000 + ob.col).second) return;
    Report(ob.line, ob.col, "fd-leak",
           "descriptor '" + ob.name + "' acquired from '" + ob.acquirer +
               "()' can leak: " + why +
               " without close(), an ownership handoff, or returning the "
               "descriptor");
  }

  // --------------------------------------------------------- relaxed-atomic

  // memory_order_relaxed gives no ordering: correct for monotonic counters
  // (fetch_add/fetch_sub whose value is only read for reporting), wrong for
  // flags and state that other threads observe. The obs module implements
  // the counters and is exempt wholesale.
  void CheckRelaxedAtomics() {
    if (file_.module == "obs") return;
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      size_t at = line.find("memory_order_relaxed");
      if (at == std::string::npos) continue;
      if (line.find("fetch_add") != std::string::npos ||
          line.find("fetch_sub") != std::string::npos) {
        continue;  // counter idiom
      }
      Report(li + 1, at + 1, "relaxed-atomic",
             "memory_order_relaxed outside a fetch_add/fetch_sub counter "
             "idiom: loads/stores that publish state need acquire/release "
             "(or seq_cst)");
    }
  }

  // ---------------------------------------------------------- waiver-format

  // Waivers must be spelled exactly "exea-lint: allow(rule)" — a variant
  // spelling ("exea-lint:allow", "exea-lint : allow") silently fails to
  // suppress anything. Flag recognizable near-misses; --fix normalizes.
  void CheckWaiverFormat() {
    const std::string kTag = "exea-lint";
    const std::string kCanonical = "exea-lint: allow(";
    for (size_t li = 0; li < file_.raw.size(); ++li) {
      const std::string& raw = file_.raw[li];
      const std::string& code = file_.code[li];
      size_t at = 0;
      while ((at = raw.find(kTag, at)) != std::string::npos) {
        // Only inside comments: the stripped line blanks comment text but
        // keeps string-literal quotes, so odd quote parity = string.
        size_t quotes = 0;
        for (size_t i = 0; i < at && i < code.size(); ++i) {
          if (code[i] == '"') ++quotes;
        }
        bool in_comment = quotes % 2 == 0 &&
                          (at >= code.size() || code[at] == ' ');
        if (!in_comment) {
          at += kTag.size();
          continue;
        }
        if (raw.compare(at, kCanonical.size(), kCanonical) == 0) {
          at += kCanonical.size();
          continue;
        }
        // Lax match: exea-lint [:] allow ( — anything else is prose.
        size_t i = at + kTag.size();
        while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
        if (i < raw.size() && raw[i] == ':') ++i;
        while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
        if (raw.compare(i, 5, "allow") == 0) {
          i += 5;
          while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
          if (i < raw.size() && raw[i] == '(') {
            Report(li + 1, at + 1, "waiver-format",
                   "waiver comment is not canonical 'exea-lint: allow(rule)' "
                   "and will not suppress anything; run --fix to normalize");
          }
        }
        at += kTag.size();
      }
    }
  }

  const SourceFile& file_;
  const ConcurrencyConfig& conc_;
  FileAnalysis* out_;
  std::vector<FdBlock> blocks_;
  std::set<size_t> leaks_reported_;
};

}  // namespace

FileAnalysis AnalyzeFile(const SourceFile& file,
                         const ConcurrencyConfig& conc) {
  FileAnalysis out;
  out.path = file.path;
  out.module = file.module;
  out.src_rel = file.src_rel;
  out.is_header = file.is_header;
  out.in_src = file.in_src;
  LocalPass pass(file, conc, &out);
  pass.Run();
  return out;
}

}  // namespace lint
