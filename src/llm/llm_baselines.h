// LLM-based explanation baselines of Section V-D1:
//   * ChatGPT(match)   — the LLM is prompted to match triples around the
//     two entities; matched triples form the explanation. Shares ExEA's
//     key idea but suffers hallucinated matches and model-agnostic noise.
//   * ChatGPT(perturb) — triples are perturbed, the EA model's new
//     predictions are fed to the LLM, which ranks triple importance; the
//     LLM's numeric insensitivity and hallucination blur the ranking.

#ifndef EXEA_LLM_LLM_BASELINES_H_
#define EXEA_LLM_LLM_BASELINES_H_

#include "baselines/explainer.h"
#include "baselines/perturbation.h"
#include "data/dataset.h"
#include "llm/sim_llm.h"

namespace exea::llm {

// Renders KG triples with their names for LLM consumption.
std::vector<SimulatedLLM::NamedTriple> ToNamedTriples(
    const kg::KnowledgeGraph& graph, const std::vector<kg::Triple>& triples);

class ChatGptMatch : public baselines::Explainer {
 public:
  ChatGptMatch(const SimulatedLLM* llm, const data::EaDataset* dataset)
      : llm_(llm), dataset_(dataset) {}

  std::string name() const override { return "ChatGPT (match)"; }

  // Like ExEA, decides its own explanation length (budget ignored).
  baselines::ExplainerResult Explain(
      kg::EntityId e1, kg::EntityId e2,
      const std::vector<kg::Triple>& candidates1,
      const std::vector<kg::Triple>& candidates2, size_t budget) override;

 private:
  const SimulatedLLM* llm_;
  const data::EaDataset* dataset_;
};

class ChatGptPerturb : public baselines::Explainer {
 public:
  ChatGptPerturb(const SimulatedLLM* llm, const data::EaDataset* dataset,
                 const baselines::PerturbedEmbedder* embedder)
      : llm_(llm), dataset_(dataset), embedder_(embedder) {}

  std::string name() const override { return "ChatGPT (perturb)"; }

  baselines::ExplainerResult Explain(
      kg::EntityId e1, kg::EntityId e2,
      const std::vector<kg::Triple>& candidates1,
      const std::vector<kg::Triple>& candidates2, size_t budget) override;

 private:
  const SimulatedLLM* llm_;
  const data::EaDataset* dataset_;
  const baselines::PerturbedEmbedder* embedder_;
};

}  // namespace exea::llm

#endif  // EXEA_LLM_LLM_BASELINES_H_
