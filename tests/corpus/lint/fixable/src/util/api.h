// --fix fixture: one declaration missing [[nodiscard]] and one lax
// waiver spelling; both have mechanical fixes.
#ifndef FIXABLE_UTIL_API_H_
#define FIXABLE_UTIL_API_H_

namespace demo::util {

class Status;

// Missing [[nodiscard]] — --fix inserts it.
Status Configure(int value);

// A lax waiver --fix rewrites to the canonical spelling:
// exea-lint : allow(raw-rng)

}  // namespace demo::util

#endif  // FIXABLE_UTIL_API_H_
