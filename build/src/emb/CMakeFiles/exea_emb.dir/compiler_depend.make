# Empty compiler generated dependencies file for exea_emb.
# This may be replaced when dependencies are built.
