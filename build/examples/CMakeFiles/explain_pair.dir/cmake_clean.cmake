file(REMOVE_RECURSE
  "CMakeFiles/explain_pair.dir/explain_pair.cpp.o"
  "CMakeFiles/explain_pair.dir/explain_pair.cpp.o.d"
  "explain_pair"
  "explain_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
