// EA verification (paper Section V-D2, Table VI): deciding whether a
// predicted EA pair is correct.
//
//   * ChatGptVerifier — the [27]-style policy agent: the pair is a claim,
//     its first-order triples are the evidence, the LLM judges validity.
//     Fails on numeric siblings (names look identical to it) and on
//     entities it "knows" nothing about (hallucination).
//   * ExeaVerifier    — structure-only: the pair is valid iff its ADG has
//     strongly-influential support (confidence above beta).
//   * FusionVerifier  — merges the two: where structural evidence exists,
//     trust ExEA; otherwise fall back to the LLM's textual knowledge.
//     This operationalizes the paper's observation that the two signals
//     are complementary.

#ifndef EXEA_LLM_VERIFICATION_H_
#define EXEA_LLM_VERIFICATION_H_

#include "data/dataset.h"
#include "explain/exea.h"
#include "explain/matcher.h"
#include "llm/sim_llm.h"

namespace exea::llm {

class ChatGptVerifier {
 public:
  ChatGptVerifier(const SimulatedLLM* llm, const data::EaDataset* dataset)
      : llm_(llm), dataset_(dataset) {}

  bool Verify(kg::EntityId e1, kg::EntityId e2) const;

 private:
  const SimulatedLLM* llm_;
  const data::EaDataset* dataset_;
};

class ExeaVerifier {
 public:
  // Borrows both; `context` is the alignment knowledge used for matching.
  // `threshold` is the confidence bar a pair must clear in addition to
  // having strongly-influential support; verification benefits from a bar
  // above beta = sigmoid(0) because candidate pairs here are adversarial
  // (model errors), not arbitrary mismatches.
  ExeaVerifier(const explain::ExeaExplainer* explainer,
               const explain::AlignmentContext* context,
               double threshold = 0.65)
      : explainer_(explainer), context_(context), threshold_(threshold) {}

  bool Verify(kg::EntityId e1, kg::EntityId e2) const;

  // The underlying ADG (exposed for the fusion rule).
  explain::Adg BuildAdg(kg::EntityId e1, kg::EntityId e2) const;

 private:
  const explain::ExeaExplainer* explainer_;
  const explain::AlignmentContext* context_;
  double threshold_;
};

class FusionVerifier {
 public:
  // `model` breaks ties between the textual and structural verdicts with
  // its embedding similarity (the third independent signal the repaired
  // pipeline has anyway).
  FusionVerifier(const ChatGptVerifier* chatgpt, const ExeaVerifier* exea,
                 const emb::EAModel* model, double sim_threshold = 0.6)
      : chatgpt_(chatgpt),
        exea_(exea),
        model_(model),
        sim_threshold_(sim_threshold) {}

  bool Verify(kg::EntityId e1, kg::EntityId e2) const;

 private:
  const ChatGptVerifier* chatgpt_;
  const ExeaVerifier* exea_;
  const emb::EAModel* model_;
  double sim_threshold_;
};

}  // namespace exea::llm

#endif  // EXEA_LLM_VERIFICATION_H_
