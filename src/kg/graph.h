// KnowledgeGraph: an in-memory triple store with named entities/relations
// and in/out adjacency indexes.
//
// The store is append-only (triples are deduplicated on insert) with one
// exception: `RemoveTriples` builds a copy without a given triple subset,
// which is what the fidelity protocol needs (retrain on the KG minus the
// non-explanation triples).

#ifndef EXEA_KG_GRAPH_H_
#define EXEA_KG_GRAPH_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "kg/dictionary.h"
#include "kg/types.h"

namespace exea::kg {

class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  // Interning accessors. AddEntity/AddRelation return existing ids when the
  // name is already known.
  EntityId AddEntity(std::string_view name);
  RelationId AddRelation(std::string_view name);

  // Adds (head, rel, tail); returns false if it was already present.
  // All three ids must have been created by the Add* calls above.
  bool AddTriple(EntityId head, RelationId rel, EntityId tail);

  // Convenience: interns names and adds the triple.
  bool AddTriple(std::string_view head, std::string_view rel,
                 std::string_view tail);

  size_t num_entities() const { return entities_.size(); }
  size_t num_relations() const { return relations_.size(); }
  size_t num_triples() const { return triples_.size(); }

  const std::vector<Triple>& triples() const { return triples_; }
  bool ContainsTriple(const Triple& t) const {
    return triple_set_.count(t) > 0;
  }

  const std::string& EntityName(EntityId e) const {
    return entities_.Name(e);
  }
  const std::string& RelationName(RelationId r) const {
    return relations_.Name(r);
  }
  EntityId FindEntity(std::string_view name) const {
    return entities_.Lookup(name);
  }
  RelationId FindRelation(std::string_view name) const {
    return relations_.Lookup(name);
  }

  // All edges touching `e` (both directions).
  const std::vector<AdjacentEdge>& Edges(EntityId e) const;

  // Outgoing / incoming degree and total degree.
  size_t Degree(EntityId e) const { return Edges(e).size(); }

  // Indexes of triples using relation `r`.
  const std::vector<uint32_t>& TriplesOfRelation(RelationId r) const;

  // Returns a copy of this KG with the triples in `removed` dropped.
  // Entity/relation dictionaries (and therefore ids) are preserved so
  // embeddings and alignments remain comparable across the copy.
  KnowledgeGraph WithoutTriples(
      const std::unordered_set<Triple, TripleHash>& removed) const;

  const Dictionary& entity_dictionary() const { return entities_; }
  const Dictionary& relation_dictionary() const { return relations_; }

 private:
  Dictionary entities_;
  Dictionary relations_;
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> triple_set_;
  // adjacency_[e] lists every edge touching e; rebuilt incrementally.
  std::vector<std::vector<AdjacentEdge>> adjacency_;
  std::vector<std::vector<uint32_t>> relation_index_;
};

}  // namespace exea::kg

#endif  // EXEA_KG_GRAPH_H_
