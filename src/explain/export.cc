#include "explain/export.h"

#include <set>
#include <sstream>

#include "util/string_util.h"

namespace exea::explain {
namespace {

// Node identifier that is unique per (side, entity).
std::string NodeId(int side, kg::EntityId e) {
  return StrFormat("n%d_%u", side, e);
}

void EmitTriple(std::ostringstream& out, int side,
                const kg::KnowledgeGraph& graph, const kg::Triple& t) {
  out << "    " << NodeId(side, t.head) << " -> " << NodeId(side, t.tail)
      << " [label=\"" << EscapeForQuotes(graph.RelationName(t.rel))
      << "\"];\n";
}

void EmitEntityNodes(std::ostringstream& out, int side,
                     const kg::KnowledgeGraph& graph,
                     const std::vector<kg::Triple>& triples,
                     kg::EntityId central) {
  std::set<kg::EntityId> entities;
  for (const kg::Triple& t : triples) {
    entities.insert(t.head);
    entities.insert(t.tail);
  }
  entities.insert(central);
  for (kg::EntityId e : entities) {
    out << "    " << NodeId(side, e) << " [label=\""
        << EscapeForQuotes(graph.EntityName(e)) << "\""
        << (e == central ? ", shape=box, style=bold" : "") << "];\n";
  }
}

std::string JsonTriple(const kg::KnowledgeGraph& graph, const kg::Triple& t) {
  return StrFormat(
      R"({"head":"%s","relation":"%s","tail":"%s"})",
      EscapeForQuotes(graph.EntityName(t.head)).c_str(),
      EscapeForQuotes(graph.RelationName(t.rel)).c_str(),
      EscapeForQuotes(graph.EntityName(t.tail)).c_str());
}

template <typename T, typename Fn>
std::string JsonArray(const std::vector<T>& items, Fn&& render) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += render(items[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string EscapeForQuotes(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ExplanationToDot(const Explanation& explanation,
                             const kg::KnowledgeGraph& kg1,
                             const kg::KnowledgeGraph& kg2) {
  std::ostringstream out;
  out << "digraph explanation {\n  rankdir=LR;\n";
  out << "  subgraph cluster_kg1 {\n    label=\"KG1\";\n";
  EmitEntityNodes(out, 1, kg1, explanation.triples1, explanation.e1);
  for (const kg::Triple& t : explanation.triples1) {
    EmitTriple(out, 1, kg1, t);
  }
  out << "  }\n";
  out << "  subgraph cluster_kg2 {\n    label=\"KG2\";\n";
  EmitEntityNodes(out, 2, kg2, explanation.triples2, explanation.e2);
  for (const kg::Triple& t : explanation.triples2) {
    EmitTriple(out, 2, kg2, t);
  }
  out << "  }\n";
  // Matched neighbour links (dashed) plus the central pair (bold dashed).
  std::set<std::pair<kg::EntityId, kg::EntityId>> linked;
  linked.insert({explanation.e1, explanation.e2});
  for (const MatchedPathPair& match : explanation.matches) {
    linked.insert({match.p1.target(), match.p2.target()});
  }
  for (const auto& [a, b] : linked) {
    bool central = a == explanation.e1 && b == explanation.e2;
    out << "  " << NodeId(1, a) << " -> " << NodeId(2, b)
        << " [style=dashed, dir=none"
        << (central ? ", penwidth=2, color=blue" : ", color=gray")
        << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::string AdgToDot(const Adg& adg, const kg::KnowledgeGraph& kg1,
                     const kg::KnowledgeGraph& kg2) {
  std::ostringstream out;
  out << "digraph adg {\n";
  out << StrFormat(
      "  central [label=\"(%s, %s)\\nconfidence %.3f\", shape=box, "
      "style=bold];\n",
      EscapeForQuotes(kg1.EntityName(adg.e1)).c_str(),
      EscapeForQuotes(kg2.EntityName(adg.e2)).c_str(), adg.confidence);
  for (size_t i = 0; i < adg.neighbors.size(); ++i) {
    const AdgNode& node = adg.neighbors[i];
    out << StrFormat(
        "  nb%zu [label=\"(%s, %s)\\ninfluence %.3f\"];\n", i,
        EscapeForQuotes(kg1.EntityName(node.e1)).c_str(),
        EscapeForQuotes(kg2.EntityName(node.e2)).c_str(), node.influence);
    for (const AdgEdge& edge : node.edges) {
      out << StrFormat(
          "  nb%zu -> central [label=\"%s %.3f\"%s];\n", i,
          EdgeInfluenceName(edge.influence), edge.weight,
          edge.influence == EdgeInfluence::kStrong ? ", penwidth=2" : "");
    }
  }
  out << "}\n";
  return out.str();
}

std::string ExplanationToJson(const Explanation& explanation,
                              const kg::KnowledgeGraph& kg1,
                              const kg::KnowledgeGraph& kg2) {
  std::string matches = JsonArray(
      explanation.matches, [&](const MatchedPathPair& match) {
        std::string path1 = JsonArray(
            match.p1.Triples(),
            [&](const kg::Triple& t) { return JsonTriple(kg1, t); });
        std::string path2 = JsonArray(
            match.p2.Triples(),
            [&](const kg::Triple& t) { return JsonTriple(kg2, t); });
        return StrFormat(
            R"({"similarity":%.6f,"path1":%s,"path2":%s})",
            static_cast<double>(match.similarity), path1.c_str(),
            path2.c_str());
      });
  return StrFormat(
      R"({"source":"%s","target":"%s","candidates1":%zu,"candidates2":%zu,)"
      R"("matches":%s})",
      EscapeForQuotes(kg1.EntityName(explanation.e1)).c_str(),
      EscapeForQuotes(kg2.EntityName(explanation.e2)).c_str(),
      explanation.candidates1.size(), explanation.candidates2.size(),
      matches.c_str());
}

std::string AdgToJson(const Adg& adg, const kg::KnowledgeGraph& kg1,
                      const kg::KnowledgeGraph& kg2) {
  std::string neighbors = JsonArray(adg.neighbors, [&](const AdgNode& node) {
    std::string edges = JsonArray(node.edges, [](const AdgEdge& edge) {
      return StrFormat(R"({"influence":"%s","weight":%.6f})",
                       EdgeInfluenceName(edge.influence), edge.weight);
    });
    return StrFormat(
        R"({"e1":"%s","e2":"%s","influence":%.6f,"edges":%s})",
        EscapeForQuotes(kg1.EntityName(node.e1)).c_str(),
        EscapeForQuotes(kg2.EntityName(node.e2)).c_str(), node.influence,
        edges.c_str());
  });
  return StrFormat(
      R"({"source":"%s","target":"%s","central_similarity":%.6f,)"
      R"("strong_sum":%.6f,"moderate_sum":%.6f,"weak_sum":%.6f,)"
      R"("confidence":%.6f,"neighbors":%s})",
      EscapeForQuotes(kg1.EntityName(adg.e1)).c_str(),
      EscapeForQuotes(kg2.EntityName(adg.e2)).c_str(),
      adg.central_similarity, adg.strong_sum, adg.moderate_sum, adg.weak_sum,
      adg.confidence, neighbors.c_str());
}

}  // namespace exea::explain
