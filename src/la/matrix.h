// Dense row-major float matrix. The workhorse container for embedding
// tables (one row per entity/relation) and similarity matrices.

#ifndef EXEA_LA_MATRIX_H_
#define EXEA_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "la/vector_ops.h"
#include "util/rng.h"

namespace exea::la {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float* Row(size_t r);
  const float* Row(size_t r) const;

  float& At(size_t r, size_t c);
  float At(size_t r, size_t c) const;

  // Copies row `r` into a Vec.
  Vec RowCopy(size_t r) const;

  // Overwrites row `r` with `v` (sizes must match).
  void SetRow(size_t r, const Vec& v);

  // Fills with N(0, stddev) entries using `rng` (Xavier-style when
  // stddev = 1/sqrt(cols)).
  void FillNormal(Rng& rng, float stddev);

  // Fills with U(lo, hi) entries.
  void FillUniform(Rng& rng, float lo, float hi);

  void FillZero();

  // L2-normalizes every row in place.
  void NormalizeRowsL2();

  // out = this * other (standard matmul). Dimensions must agree.
  Matrix MatMul(const Matrix& other) const;

  // out = this^T.
  Matrix Transposed() const;

  // this += alpha * other (same shape).
  void AddScaled(const Matrix& other, float alpha);

  // Frobenius norm.
  float FrobeniusNorm() const;

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& mutable_data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace exea::la

#endif  // EXEA_LA_MATRIX_H_
