// Relation-alignment mining (paper Section IV-A).
//
// Relations of the two KGs are embedded — with the name encoder when
// relation names are available, otherwise with the EA model's relation
// embeddings — and greedily matched: a pair (r1, r2) is aligned iff each is
// the other's most-similar relation and their similarity clears a floor.

#ifndef EXEA_REPAIR_RELATION_ALIGNMENT_H_
#define EXEA_REPAIR_RELATION_ALIGNMENT_H_

#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "emb/model.h"
#include "kg/types.h"
#include "la/matrix.h"

namespace exea::repair {

class RelationAlignment {
 public:
  RelationAlignment() = default;

  void Add(kg::RelationId r1, kg::RelationId r2);

  bool Contains(kg::RelationId r1, kg::RelationId r2) const;

  // Counterpart of a source relation, or kInvalidRelation.
  kg::RelationId TargetOf(kg::RelationId r1) const;
  kg::RelationId SourceOf(kg::RelationId r2) const;

  size_t size() const { return source_to_target_.size(); }

  // All pairs in deterministic order.
  std::vector<std::pair<kg::RelationId, kg::RelationId>> SortedPairs() const;

 private:
  std::unordered_map<kg::RelationId, kg::RelationId> source_to_target_;
  std::unordered_map<kg::RelationId, kg::RelationId> target_to_source_;
};

struct RelationAlignmentOptions {
  bool use_names = true;       // name encoder (BERT substitute) vs model
  double min_similarity = 0.3; // floor on mutual-best pairs
};

// Mines relation alignment by greedy mutual-best matching over relation
// embeddings. `model` is only consulted when use_names is false or the
// model has relation embeddings and names are unavailable.
RelationAlignment MineRelationAlignment(const data::EaDataset& dataset,
                                        const emb::EAModel& model,
                                        const RelationAlignmentOptions& opts);

// Greedy mutual-best matching over two embedding tables; exposed for
// tests. Returns pairs (row in a, row in b).
std::vector<std::pair<uint32_t, uint32_t>> MutualBestPairs(
    const la::Matrix& a, const la::Matrix& b, double min_similarity);

}  // namespace exea::repair

#endif  // EXEA_REPAIR_RELATION_ALIGNMENT_H_
