# Empty compiler generated dependencies file for bench_table7_noise_explain.
# This may be replaced when dependencies are built.
