// Multi-version snapshot residency: the RCU-style core of zero-downtime
// serving.
//
// A ServingState is one immutable snapshot version plus everything the
// query paths derive from it — the similarity index (single- or
// sharded), the SnapshotModel/ExeaExplainer pair, and the offline
// AlignmentContext. It is built once, never mutated, and every borrow
// inside it (index → emb2, model → bundle, context → alignment) points
// into the bundle the state itself owns, so the whole object graph has
// exactly one lifetime.
//
// The SnapshotManager holds the resident versions behind refcounted
// handles:
//
//   Acquire()  — readers pin the version current at request entry; the
//                shared_ptr copy is the read-side critical section, so a
//                request keeps answering from the version it started on
//                no matter how many swaps land mid-flight.
//   Install()  — atomically (one mutex-guarded pointer store) makes a
//                new version current. The manager keeps the newest
//                `max_resident` versions strongly referenced; anything
//                older survives only as long as in-flight readers still
//                hold it and frees on the last handle drop — the
//                use-after-free the old raw `&bundle_->emb2` borrows
//                would have turned into is structurally impossible.
//
// Metrics (in the engine's registry):
//   serve.snapshot.versions  gauge   — ServingState objects currently
//                                      alive (resident + reader-pinned);
//                                      decremented by the handle's
//                                      deleter at the actual free.
//   serve.snapshot.swaps     counter — installs that replaced a live
//                                      current version.

#ifndef EXEA_SERVE_SNAPSHOT_MANAGER_H_
#define EXEA_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "explain/exea.h"
#include "la/similarity_index.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"
#include "util/check.h"

namespace exea::serve {

// The slice of EngineOptions a ServingState needs to build its index.
// Separate struct (not EngineOptions itself) so snapshot_manager stays
// below engine in the include graph.
struct StateOptions {
  // Row-wise partitions of emb2 behind one scatter-gather merge; 1 keeps
  // the single index exactly as before. Clamped to [1, emb2 rows].
  size_t shards = 1;
  // Same meaning as EngineOptions::index_policy / ivf_min_rows; the
  // policy decision is made on the FULL table size, then applied
  // per shard, so a shard count change can never flip exact <-> ivf.
  std::string index_policy = "auto";
  size_t ivf_min_rows = 4096;
};

class ServingState {
 public:
  // Takes ownership of `bundle` (never null). `epoch` is the manager's
  // monotonic version number; `source` is where the bundle came from
  // (directory path, or "<memory>" for in-process construction).
  // `registry` may be nullptr (Registry::Global()).
  ServingState(std::unique_ptr<SnapshotBundle> bundle, uint64_t epoch,
               std::string source, const StateOptions& options,
               obs::Registry* registry);

  ServingState(const ServingState&) = delete;
  ServingState& operator=(const ServingState&) = delete;

  const SnapshotBundle& bundle() const { return *bundle_; }
  const la::SimilarityIndex& index() const { return *index_; }
  uint64_t epoch() const { return epoch_; }
  const std::string& source() const { return source_; }
  size_t shards() const { return shards_; }

  const explain::ExeaExplainer& explainer() const { return explainer_; }
  const explain::AlignmentContext& context() const { return context_; }

 private:
  // Declaration order is lifetime order: everything below borrows from
  // bundle_, and index_ additionally borrows shard_ivf_ entries.
  std::unique_ptr<SnapshotBundle> bundle_;
  uint64_t epoch_;
  std::string source_;
  size_t shards_;
  // Per-shard posting-list views over bundle_->ivf (empty on the exact
  // path). Sized once in the constructor; IvfIndex keeps pointers into
  // it, so it must never reallocate afterwards.
  std::vector<la::IvfIndexData> shard_ivf_;
  std::unique_ptr<la::SimilarityIndex> index_;
  SnapshotModel model_;
  explain::ExeaExplainer explainer_;
  explain::AlignmentContext context_;
};

class SnapshotManager {
 public:
  // Keeps the newest `max_resident` versions strongly referenced
  // (clamped to >= 1: the current version is always resident).
  // `registry` may be nullptr (Registry::Global()); it must outlive
  // every handle this manager ever hands out, because the handle
  // deleter updates the versions gauge.
  SnapshotManager(size_t max_resident, obs::Registry* registry);

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // Allocates the next version number (1, 2, ...). Callers build the
  // ServingState with it, then Install.
  uint64_t NextEpoch() { return epoch_.fetch_add(1, std::memory_order_relaxed) + 1; }

  // Makes `state` the version new readers get. Returns its epoch.
  uint64_t Install(std::unique_ptr<const ServingState> state);

  // Pins and returns the current version; never null after the first
  // Install. The handle keeps every borrow inside the state valid until
  // it is dropped.
  std::shared_ptr<const ServingState> Acquire() const;

  // Versions the manager itself still holds strongly (<= max_resident).
  // The serve.snapshot.versions gauge additionally counts retired
  // versions kept alive by in-flight readers.
  size_t resident() const;

 private:
  const size_t max_resident_;
  obs::Gauge& versions_gauge_;
  obs::Counter& swaps_;
  std::atomic<uint64_t> epoch_{0};

  // mu_ protects everything declared after it.
  mutable std::mutex mu_;
  std::shared_ptr<const ServingState> current_ EXEA_GUARDED_BY(mu_);
  std::deque<std::shared_ptr<const ServingState>> resident_ EXEA_GUARDED_BY(mu_);
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_SNAPSHOT_MANAGER_H_
