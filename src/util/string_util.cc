#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace exea {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      parts.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1 for the terminating NUL vsnprintf writes.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StripDigits(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace exea
