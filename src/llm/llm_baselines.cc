#include "llm/llm_baselines.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace exea::llm {

std::vector<SimulatedLLM::NamedTriple> ToNamedTriples(
    const kg::KnowledgeGraph& graph, const std::vector<kg::Triple>& triples) {
  std::vector<SimulatedLLM::NamedTriple> out;
  out.reserve(triples.size());
  for (const kg::Triple& t : triples) {
    out.push_back({graph.EntityName(t.head), graph.RelationName(t.rel),
                   graph.EntityName(t.tail)});
  }
  return out;
}

baselines::ExplainerResult ChatGptMatch::Explain(
    kg::EntityId /*e1*/, kg::EntityId /*e2*/,
    const std::vector<kg::Triple>& candidates1,
    const std::vector<kg::Triple>& candidates2, size_t /*budget*/) {
  std::vector<SimulatedLLM::NamedTriple> named1 =
      ToNamedTriples(dataset_->kg1, candidates1);
  std::vector<SimulatedLLM::NamedTriple> named2 =
      ToNamedTriples(dataset_->kg2, candidates2);
  baselines::ExplainerResult out;
  for (const auto& [i, j] : llm_->MatchTriples(named1, named2)) {
    out.triples1.push_back(candidates1[i]);
    out.triples2.push_back(candidates2[j]);
  }
  std::sort(out.triples1.begin(), out.triples1.end());
  out.triples1.erase(std::unique(out.triples1.begin(), out.triples1.end()),
                     out.triples1.end());
  std::sort(out.triples2.begin(), out.triples2.end());
  out.triples2.erase(std::unique(out.triples2.begin(), out.triples2.end()),
                     out.triples2.end());
  return out;
}

baselines::ExplainerResult ChatGptPerturb::Explain(
    kg::EntityId e1, kg::EntityId e2,
    const std::vector<kg::Triple>& candidates1,
    const std::vector<kg::Triple>& candidates2, size_t budget) {
  size_t n1 = candidates1.size();
  size_t n = n1 + candidates2.size();
  if (n == 0) return {};

  // Model feedback: leave-one-out similarity drop per candidate triple.
  // The LLM's prompt only fits `context_triples` triples per side; the
  // perturbation report for the rest never reaches it (the paper's
  // "restricted input length" degradation), leaving those features
  // unscored.
  size_t limit1 = std::min(n1, llm_->options().context_triples);
  size_t limit2 =
      std::min(candidates2.size(), llm_->options().context_triples);
  double full =
      embedder_->PerturbedSimilarity(e1, candidates1, e2, candidates2);
  std::vector<double> scores(n, 0.0);
  for (size_t f = 0; f < n; ++f) {
    bool in_context = f < n1 ? f < limit1 : (f - n1) < limit2;
    if (!in_context) continue;
    std::vector<kg::Triple> kept1 = candidates1;
    std::vector<kg::Triple> kept2 = candidates2;
    if (f < n1) {
      kept1.erase(kept1.begin() + static_cast<ptrdiff_t>(f));
    } else {
      kept2.erase(kept2.begin() + static_cast<ptrdiff_t>(f - n1));
    }
    scores[f] = full - embedder_->PerturbedSimilarity(e1, kept1, e2, kept2);
  }

  // The LLM reads the perturbation report. Its numeric insensitivity
  // merges triples whose rendered text differs only in digits — their
  // scores collapse to the group mean — and hallucination flips a stable
  // fraction of rankings (implemented as sign noise).
  std::vector<SimulatedLLM::NamedTriple> named1 =
      ToNamedTriples(dataset_->kg1, candidates1);
  std::vector<SimulatedLLM::NamedTriple> named2 =
      ToNamedTriples(dataset_->kg2, candidates2);
  auto render = [](const SimulatedLLM::NamedTriple& t) {
    return StripDigits(AsciiLower(t.head + "|" + t.relation + "|" + t.tail));
  };
  if (llm_->options().numeric_insensitive) {
    std::unordered_map<std::string, std::vector<size_t>> groups;
    for (size_t f = 0; f < n; ++f) {
      const SimulatedLLM::NamedTriple& t =
          f < n1 ? named1[f] : named2[f - n1];
      groups[render(t)].push_back(f);
    }
    // Each index belongs to exactly one group and the group means are
    // independent, so visiting groups in hash order is still
    // deterministic in the scores it produces.
    // exea-lint: allow(unordered-output)
    for (const auto& [key, members] : groups) {
      if (members.size() < 2) continue;
      double mean = 0.0;
      for (size_t f : members) mean += scores[f];
      mean /= static_cast<double>(members.size());
      for (size_t f : members) scores[f] = mean;
    }
  }
  for (size_t f = 0; f < n; ++f) {
    const SimulatedLLM::NamedTriple& t = f < n1 ? named1[f] : named2[f - n1];
    if (llm_->JudgeNamesEquivalent(t.head, t.head + "?noise")) {
      // A hallucinated importance judgment: the LLM asserts relevance
      // (or irrelevance) contrary to the model feedback.
      scores[f] = -scores[f];
    }
  }
  return baselines::SelectTopTriples(candidates1, candidates2, scores,
                                     budget == 0 ? n / 2 : budget);
}

}  // namespace exea::llm
