# Empty dependencies file for exea_kg.
# This may be replaced when dependencies are built.
