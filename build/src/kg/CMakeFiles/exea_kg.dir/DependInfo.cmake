
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/alignment.cc" "src/kg/CMakeFiles/exea_kg.dir/alignment.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/alignment.cc.o.d"
  "/root/repo/src/kg/attributes.cc" "src/kg/CMakeFiles/exea_kg.dir/attributes.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/attributes.cc.o.d"
  "/root/repo/src/kg/dictionary.cc" "src/kg/CMakeFiles/exea_kg.dir/dictionary.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/dictionary.cc.o.d"
  "/root/repo/src/kg/functionality.cc" "src/kg/CMakeFiles/exea_kg.dir/functionality.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/functionality.cc.o.d"
  "/root/repo/src/kg/graph.cc" "src/kg/CMakeFiles/exea_kg.dir/graph.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/graph.cc.o.d"
  "/root/repo/src/kg/kg_io.cc" "src/kg/CMakeFiles/exea_kg.dir/kg_io.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/kg_io.cc.o.d"
  "/root/repo/src/kg/name_encoder.cc" "src/kg/CMakeFiles/exea_kg.dir/name_encoder.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/name_encoder.cc.o.d"
  "/root/repo/src/kg/neighborhood.cc" "src/kg/CMakeFiles/exea_kg.dir/neighborhood.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/neighborhood.cc.o.d"
  "/root/repo/src/kg/stats.cc" "src/kg/CMakeFiles/exea_kg.dir/stats.cc.o" "gcc" "src/kg/CMakeFiles/exea_kg.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
