#include "emb/model.h"

#include "la/vector_ops.h"
#include "util/logging.h"

namespace exea::emb {

const la::Matrix& EAModel::RelationEmbeddings(kg::KgSide /*side*/) const {
  EXEA_LOG(Fatal) << name() << " has no relation embeddings";
  static la::Matrix* empty = new la::Matrix();  // exea-lint: allow(raw-new-delete) leaky singleton
  return *empty;
}

double EAModel::Similarity(kg::EntityId e1, kg::EntityId e2) const {
  const la::Matrix& src = EntityEmbeddings(kg::KgSide::kSource);
  const la::Matrix& tgt = EntityEmbeddings(kg::KgSide::kTarget);
  EXEA_CHECK_LT(e1, src.rows());
  EXEA_CHECK_LT(e2, tgt.rows());
  return la::Cosine(src.Row(e1), tgt.Row(e2), src.cols());
}

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMTransE:
      return "MTransE";
    case ModelKind::kAlignE:
      return "AlignE";
    case ModelKind::kGcnAlign:
      return "GCN-Align";
    case ModelKind::kDualAmn:
      return "Dual-AMN";
  }
  EXEA_LOG(Fatal) << "unknown model kind";
  return "";
}

}  // namespace exea::emb
