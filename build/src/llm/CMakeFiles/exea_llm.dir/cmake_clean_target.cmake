file(REMOVE_RECURSE
  "libexea_llm.a"
)
