// Wire-input helpers for the taint fixture: ReadField is the configured
// source, Prepare carries a caller-supplied size across the TU boundary.
#ifndef TAINT_NET_INPUT_H_
#define TAINT_NET_INPUT_H_

#include <string>
#include <vector>

namespace demo::net {

// Extracts the value of `key` from a raw wire record (configured source:
// its return value is untrusted).
std::string ReadField(const std::string& raw, const std::string& key);

// Sizes `buf` for n incoming elements. n crosses the TU boundary from
// the caller — the fixture's cross-TU source->sink chain ends here.
void Prepare(std::vector<int>& buf, int n);

// Checked parse stand-in (configured sanitizer).
bool ParseInt32(const std::string& text, int lo, int hi, int* out);

}  // namespace demo::net

#endif  // TAINT_NET_INPUT_H_
