# Empty compiler generated dependencies file for explain_pair.
# This may be replaced when dependencies are built.
