#include "net/loop.h"

#include "util/handler.h"

namespace demo::net {

void Loop::Run() {
  while (fd_ >= 0) {
    HandleEvent();
  }
}

void Loop::HandleEvent() {
  char buf[1];
  // The fixture's fd is nonblocking by construction, so this read is a
  // vetted exception:
  // exea-lint: allow(loop-blocking)
  long n = ::read(fd_, buf, sizeof(buf));
  if (n > 0) {
    util::Process(fd_);
  }
  util::BlockingFetch(fd_);
}

void Loop::Shutdown() {
  // Not reachable from Run(); blocking here is fine.
  util::Finish(fd_);
}

}  // namespace demo::net
