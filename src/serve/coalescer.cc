#include "serve/coalescer.h"

#include <chrono>
#include <utility>

namespace exea::serve {

AlignCoalescer::AlignCoalescer(const QueryEngine* engine,
                               const CoalescerOptions& options)
    : engine_(engine),
      options_(options),
      ticks_((options.registry != nullptr ? options.registry
                                          : &obs::Registry::Global())
                 ->GetCounter("serve.batch.ticks")),
      rows_per_dispatch_((options.registry != nullptr
                              ? options.registry
                              : &obs::Registry::Global())
                             ->GetHistogram("serve.batch.size")) {
  EXEA_CHECK(engine != nullptr) << "AlignCoalescer needs an engine";
  EXEA_CHECK_GT(options.max_batch, 0u)
      << "max_batch of 0 would never dispatch";
}

StatusOr<std::vector<AlignResult>> AlignCoalescer::Align(
    const std::vector<std::string>& sources, const Deadline& deadline) {
  // Per-request stages stay outside the batch: resolution errors and the
  // pre-lookup deadline check belong to this request alone, with
  // AlignBatch's exact statuses.
  auto ids = engine_->ResolveAlignBatch(sources);
  if (!ids.ok()) return ids.status();
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("align: deadline expired before lookup");
  }

  Pending pending;
  pending.ids = std::move(*ids);
  pending.names = sources;
  pending.deadline = &deadline;

  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&pending);
  queued_rows_ += pending.ids.size();

  while (!pending.done) {
    if (leader_active_) {
      // Follower: the full-batch signal is for the leader; this thread
      // just waits to be fulfilled — or to inherit leadership if the
      // current leader's drain didn't include it.
      if (queued_rows_ >= options_.max_batch) batch_cv_.notify_one();
      done_cv_.wait(lock, [&] { return pending.done || !leader_active_; });
      continue;
    }
    leader_active_ = true;
    if (options_.max_wait_ms > 0 && queued_rows_ < options_.max_batch) {
      batch_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(options_.max_wait_ms),
          [&] { return queued_rows_ >= options_.max_batch; });
    }
    DrainLocked(lock);
  }

  if (!pending.error.ok()) return pending.error;
  return std::move(pending.rows);
}

void AlignCoalescer::DrainLocked(std::unique_lock<std::mutex>& lock) {
  std::deque<Pending*> batch;
  batch.swap(queue_);
  queued_rows_ = 0;

  // Drain-time deadline shed: a sub-request that went stale in the batch
  // window completes with AlignBatch's pre-lookup status and is excluded
  // from the dispatch. Everything else contributes its rows.
  std::vector<kg::EntityId> ids;
  std::vector<std::string> names;
  std::vector<Pending*> live;
  for (Pending* pending : batch) {
    if (pending->deadline->Expired()) {
      pending->error =
          Status::DeadlineExceeded("align: deadline expired before lookup");
      continue;
    }
    live.push_back(pending);
    ids.insert(ids.end(), pending->ids.begin(), pending->ids.end());
    names.insert(names.end(), pending->names.begin(), pending->names.end());
  }

  if (!ids.empty()) {
    // The dispatch runs unlocked so new requests can queue behind the
    // next leader while the index works.
    lock.unlock();
    std::vector<AlignResult> rows = engine_->AlignResolved(ids, names);
    ticks_.Increment();
    rows_per_dispatch_.Record(static_cast<double>(rows.size()));
    lock.lock();
    size_t offset = 0;
    for (Pending* pending : live) {
      size_t count = pending->ids.size();
      pending->rows.assign(std::make_move_iterator(rows.begin() + offset),
                           std::make_move_iterator(rows.begin() + offset +
                                                   count));
      offset += count;
    }
  }

  for (Pending* pending : batch) pending->done = true;
  leader_active_ = false;
  done_cv_.notify_all();
}

}  // namespace exea::serve
