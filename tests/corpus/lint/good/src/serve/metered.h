// obs-no-adhoc-metrics counterexample that must scan clean: outside obs/
// a metric-named member is fine when its type mentions obs:: — that is a
// resolved-once reference into the registry, the approved pattern.
#ifndef EXEA_TESTS_CORPUS_LINT_GOOD_SRC_SERVE_METERED_H_
#define EXEA_TESTS_CORPUS_LINT_GOOD_SRC_SERVE_METERED_H_

namespace obs {
class Counter;
}  // namespace obs

class MeteredServer {
 public:
  explicit MeteredServer(obs::Counter& requests);

 private:
  obs::Counter& request_counter_;  // registry reference — clean
};

#endif  // EXEA_TESTS_CORPUS_LINT_GOOD_SRC_SERVE_METERED_H_
