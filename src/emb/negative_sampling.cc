#include "emb/negative_sampling.h"

#include <algorithm>

#include "la/vector_ops.h"
#include "util/logging.h"

namespace exea::emb {

std::vector<kg::EntityId> UniformNegatives(size_t num_entities,
                                           kg::EntityId exclude, size_t count,
                                           Rng& rng) {
  EXEA_CHECK_GE(num_entities, 2u);
  std::vector<kg::EntityId> out;
  out.reserve(count);
  while (out.size() < count) {
    kg::EntityId candidate =
        static_cast<kg::EntityId>(rng.UniformInt(num_entities));
    if (candidate == exclude) continue;
    out.push_back(candidate);
  }
  return out;
}

std::vector<kg::EntityId> HardNegatives(const la::Matrix& table,
                                        const float* anchor,
                                        kg::EntityId exclude, size_t count,
                                        size_t pool, Rng& rng) {
  size_t num_entities = table.rows();
  if (num_entities <= count + 1 || pool <= count) {
    return UniformNegatives(num_entities, exclude, count, rng);
  }
  struct Scored {
    kg::EntityId id;
    float score;
  };
  std::vector<Scored> candidates;
  candidates.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    kg::EntityId candidate =
        static_cast<kg::EntityId>(rng.UniformInt(num_entities));
    if (candidate == exclude) continue;
    candidates.push_back(
        {candidate, la::Cosine(anchor, table.Row(candidate), table.cols())});
  }
  if (candidates.size() < count) {
    return UniformNegatives(num_entities, exclude, count, rng);
  }
  std::partial_sort(candidates.begin(), candidates.begin() + count,
                    candidates.end(), [](const Scored& a, const Scored& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  std::vector<kg::EntityId> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(candidates[i].id);
  return out;
}

}  // namespace exea::emb
