
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/adg.cc" "src/explain/CMakeFiles/exea_explain.dir/adg.cc.o" "gcc" "src/explain/CMakeFiles/exea_explain.dir/adg.cc.o.d"
  "/root/repo/src/explain/audit.cc" "src/explain/CMakeFiles/exea_explain.dir/audit.cc.o" "gcc" "src/explain/CMakeFiles/exea_explain.dir/audit.cc.o.d"
  "/root/repo/src/explain/exea.cc" "src/explain/CMakeFiles/exea_explain.dir/exea.cc.o" "gcc" "src/explain/CMakeFiles/exea_explain.dir/exea.cc.o.d"
  "/root/repo/src/explain/export.cc" "src/explain/CMakeFiles/exea_explain.dir/export.cc.o" "gcc" "src/explain/CMakeFiles/exea_explain.dir/export.cc.o.d"
  "/root/repo/src/explain/matcher.cc" "src/explain/CMakeFiles/exea_explain.dir/matcher.cc.o" "gcc" "src/explain/CMakeFiles/exea_explain.dir/matcher.cc.o.d"
  "/root/repo/src/explain/path_embedding.cc" "src/explain/CMakeFiles/exea_explain.dir/path_embedding.cc.o" "gcc" "src/explain/CMakeFiles/exea_explain.dir/path_embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/emb/CMakeFiles/exea_emb.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/exea_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/exea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
