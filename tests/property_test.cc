// Property-style tests: randomized invariants over the core data
// structures and algorithms, swept with TEST_P across seeds. These
// complement the example-based unit tests with "for all" statements.

#include <set>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/synthetic.h"
#include "explain/adg.h"
#include "explain/matcher.h"
#include "kg/alignment.h"
#include "kg/functionality.h"
#include "kg/neighborhood.h"
#include "la/linreg.h"
#include "la/similarity.h"
#include "repair/neg_rules.h"
#include "util/rng.h"

namespace exea {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

// Random KG generator for structure properties.
kg::KnowledgeGraph RandomGraph(Rng& rng, size_t entities, size_t relations,
                               size_t triples) {
  kg::KnowledgeGraph g;
  for (size_t e = 0; e < entities; ++e) {
    g.AddEntity("e" + std::to_string(e));
  }
  for (size_t r = 0; r < relations; ++r) {
    g.AddRelation("r" + std::to_string(r));
  }
  for (size_t t = 0; t < triples; ++t) {
    kg::EntityId h = static_cast<kg::EntityId>(rng.UniformInt(entities));
    kg::EntityId tail = static_cast<kg::EntityId>(rng.UniformInt(entities));
    if (h == tail) continue;
    g.AddTriple(h, static_cast<kg::RelationId>(rng.UniformInt(relations)),
                tail);
  }
  return g;
}

// --------------------------------------------------------- KG properties

TEST_P(SeededTest, FunctionalityAlwaysInUnitInterval) {
  Rng rng(GetParam());
  kg::KnowledgeGraph g = RandomGraph(rng, 40, 6, 120);
  kg::RelationFunctionality func(g);
  for (kg::RelationId r = 0; r < g.num_relations(); ++r) {
    EXPECT_GE(func.Func(r), 0.0);
    EXPECT_LE(func.Func(r), 1.0);
    EXPECT_GE(func.InverseFunc(r), 0.0);
    EXPECT_LE(func.InverseFunc(r), 1.0);
    if (!g.TriplesOfRelation(r).empty()) {
      EXPECT_GT(func.Func(r), 0.0);
    }
  }
}

TEST_P(SeededTest, PathsAreSimpleAndOriented) {
  Rng rng(GetParam());
  kg::KnowledgeGraph g = RandomGraph(rng, 30, 4, 90);
  kg::PathEnumerationOptions options;
  options.max_length = 2;
  for (kg::EntityId e = 0; e < 10; ++e) {
    for (const kg::RelationPath& p : kg::EnumeratePaths(g, e, options)) {
      EXPECT_EQ(p.source, e);
      std::set<kg::EntityId> seen{e};
      for (const kg::PathStep& s : p.steps) {
        EXPECT_TRUE(seen.insert(s.to).second);
      }
      for (const kg::Triple& t : p.Triples()) {
        EXPECT_TRUE(g.ContainsTriple(t));
      }
    }
  }
}

TEST_P(SeededTest, HopContainment) {
  // T(e, 1) subseteq T(e, 2) for every entity.
  Rng rng(GetParam());
  kg::KnowledgeGraph g = RandomGraph(rng, 30, 4, 80);
  for (kg::EntityId e = 0; e < 10; ++e) {
    std::vector<kg::Triple> one = kg::TriplesWithinHops(g, e, 1);
    std::vector<kg::Triple> two = kg::TriplesWithinHops(g, e, 2);
    std::set<kg::Triple> two_set(two.begin(), two.end());
    for (const kg::Triple& t : one) {
      EXPECT_TRUE(two_set.count(t) > 0);
    }
  }
}

TEST_P(SeededTest, AlignmentSetInvariants) {
  Rng rng(GetParam());
  kg::AlignmentSet alignment;
  std::set<std::pair<kg::EntityId, kg::EntityId>> reference;
  for (int op = 0; op < 300; ++op) {
    kg::EntityId s = static_cast<kg::EntityId>(rng.UniformInt(20));
    kg::EntityId t = static_cast<kg::EntityId>(rng.UniformInt(20));
    if (rng.Bernoulli(0.6)) {
      EXPECT_EQ(alignment.Add(s, t), reference.insert({s, t}).second);
    } else {
      EXPECT_EQ(alignment.Remove(s, t), reference.erase({s, t}) > 0);
    }
  }
  EXPECT_EQ(alignment.size(), reference.size());
  for (const auto& [s, t] : reference) {
    EXPECT_TRUE(alignment.Contains(s, t));
    std::vector<kg::EntityId> targets = alignment.TargetsOf(s);
    EXPECT_TRUE(std::find(targets.begin(), targets.end(), t) !=
                targets.end());
  }
}

// --------------------------------------------------------- ADG properties

TEST_P(SeededTest, ConfidenceMonotoneInPositiveStrongEvidence) {
  Rng rng(GetParam());
  explain::ExeaConfig config;
  explain::Adg adg;
  double last = 0.5;
  for (int i = 0; i < 8; ++i) {
    explain::AdgNode node;
    node.influence = rng.UniformDouble();  // non-negative influence
    node.edges.push_back(
        {explain::EdgeInfluence::kStrong, rng.UniformDouble(), 0});
    adg.neighbors.push_back(node);
    explain::RecomputeConfidence(adg, config);
    EXPECT_GE(adg.confidence + 1e-12, last)
        << "adding positive strong evidence lowered confidence";
    last = adg.confidence;
    EXPECT_GT(adg.confidence, 0.0);
    EXPECT_LT(adg.confidence, 1.0);
  }
}

TEST_P(SeededTest, MatcherIsSymmetricUnderSideSwap) {
  // Swapping side1/side2 (and the alignment direction) mirrors matches.
  Rng rng(GetParam());
  size_t n1 = 2 + rng.UniformInt(4);
  size_t n2 = 2 + rng.UniformInt(4);
  explain::PathsWithEmbeddings side1;
  explain::PathsWithEmbeddings side2;
  kg::AlignmentSet forward;
  kg::AlignmentSet backward;
  for (size_t i = 0; i < n1; ++i) {
    kg::RelationPath p;
    p.source = 100;
    p.steps.push_back({0, true, static_cast<kg::EntityId>(i)});
    side1.paths.push_back(p);
    side1.embeddings.push_back(
        {rng.UniformFloat(-1, 1), rng.UniformFloat(-1, 1)});
  }
  for (size_t j = 0; j < n2; ++j) {
    kg::RelationPath p;
    p.source = 200;
    p.steps.push_back({0, true, static_cast<kg::EntityId>(50 + j)});
    side2.paths.push_back(p);
    side2.embeddings.push_back(
        {rng.UniformFloat(-1, 1), rng.UniformFloat(-1, 1)});
  }
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n2; ++j) {
      if (rng.Bernoulli(0.4)) {
        forward.Add(static_cast<kg::EntityId>(i),
                    static_cast<kg::EntityId>(50 + j));
        backward.Add(static_cast<kg::EntityId>(50 + j),
                     static_cast<kg::EntityId>(i));
      }
    }
  }
  explain::AlignmentContext fwd_ctx(&forward, nullptr);
  explain::AlignmentContext bwd_ctx(&backward, nullptr);
  explain::Explanation fwd = MatchPaths(100, 200, side1, side2, fwd_ctx);
  explain::Explanation bwd = MatchPaths(200, 100, side2, side1, bwd_ctx);
  EXPECT_EQ(fwd.matches.size(), bwd.matches.size());
  for (size_t m = 0; m < fwd.matches.size(); ++m) {
    // The same set of (terminal1, terminal2) pairs must be matched.
    bool found = false;
    for (size_t k = 0; k < bwd.matches.size(); ++k) {
      if (bwd.matches[k].p1.target() == fwd.matches[m].p2.target() &&
          bwd.matches[k].p2.target() == fwd.matches[m].p1.target()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

// ------------------------------------------------------- ¬sameAs properties

TEST_P(SeededTest, NegRulesNeverFireOnCoTailedPairs) {
  Rng rng(GetParam());
  kg::KnowledgeGraph g = RandomGraph(rng, 25, 5, 120);
  repair::NegRuleSet rules = repair::MineNegRules(g);
  // For every mined rule (r1, r2) verify the disjointness condition
  // directly against the graph.
  for (const auto& [r1, r2] : rules.SortedPairs()) {
    for (uint32_t idx : g.TriplesOfRelation(r1)) {
      const kg::Triple& t = g.triples()[idx];
      EXPECT_FALSE(g.ContainsTriple({t.head, r2, t.tail}))
          << "rule (" << r1 << ", " << r2 << ") violates disjointness";
    }
  }
}

// ------------------------------------------------------------- LA properties

TEST_P(SeededTest, CosineSymmetryAndBounds) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    la::Vec a(8);
    la::Vec b(8);
    for (float& v : a) v = rng.UniformFloat(-2, 2);
    for (float& v : b) v = rng.UniformFloat(-2, 2);
    float ab = la::Cosine(a, b);
    float ba = la::Cosine(b, a);
    EXPECT_FLOAT_EQ(ab, ba);
    EXPECT_GE(ab, -1.0f - 1e-5f);
    EXPECT_LE(ab, 1.0f + 1e-5f);
  }
}

TEST_P(SeededTest, RidgeResidualOrthogonality) {
  // At the optimum, weighted residuals are orthogonal to every feature
  // column (first-order optimality of least squares), up to the ridge.
  Rng rng(GetParam());
  size_t n = 30;
  size_t d = 4;
  std::vector<std::vector<double>> rows(n, std::vector<double>(d));
  std::vector<double> targets(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) rows[i][j] = rng.UniformDouble();
    targets[i] = rng.UniformDouble();
  }
  la::RidgeOptions options;
  options.l2 = 1e-10;
  auto model = la::FitWeightedRidge(rows, targets, {}, options);
  ASSERT_TRUE(model.ok());
  for (size_t j = 0; j < d; ++j) {
    double dot = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double residual = la::Predict(*model, rows[i]) - targets[i];
      dot += residual * rows[i][j];
    }
    EXPECT_NEAR(dot, 0.0, 1e-6);
  }
}

TEST_P(SeededTest, TopKConsistentWithFullSort) {
  Rng rng(GetParam());
  la::Matrix table(40, 6);
  table.FillNormal(rng, 1.0f);
  la::Vec query(6);
  for (float& v : query) v = rng.UniformFloat(-1, 1);
  auto top5 = la::TopKByCosine(query.data(), table, 5);
  auto all = la::TopKByCosine(query.data(), table, 40);
  ASSERT_EQ(all.size(), 40u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(top5[i].index, all[i].index);
  }
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].score, all[i].score);
  }
}

// ------------------------------------------------ dataset-level properties

class DatasetPropertyTest
    : public ::testing::TestWithParam<data::Benchmark> {};

INSTANTIATE_TEST_SUITE_P(Benchmarks, DatasetPropertyTest,
                         ::testing::ValuesIn(data::AllBenchmarks()),
                         [](const auto& info) {
                           std::string name = data::BenchmarkName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(DatasetPropertyTest, ReservedRelationsExistOnBothSides) {
  data::EaDataset dataset = data::MakeBenchmark(GetParam(), data::Scale::kTiny);
  data::SyntheticOptions options =
      data::BenchmarkOptions(GetParam(), data::Scale::kTiny);
  for (const char* rel : {data::kSuccessorRelation, data::kPredecessorRelation,
                          data::kHubRelation}) {
    EXPECT_NE(dataset.kg1.FindRelation(options.kg1_prefix + "/" + rel),
              kg::kInvalidRelation);
    EXPECT_NE(dataset.kg2.FindRelation(options.kg2_prefix + "/" + rel),
              kg::kInvalidRelation);
  }
}

TEST_P(DatasetPropertyTest, SeedsAreGoldConsistent) {
  data::EaDataset dataset = data::MakeBenchmark(GetParam(), data::Scale::kTiny);
  for (const kg::AlignedPair& pair : dataset.train.SortedPairs()) {
    EXPECT_EQ(dataset.gold.at(pair.source), pair.target);
  }
}

}  // namespace
}  // namespace exea
