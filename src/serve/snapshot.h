// Snapshot bundles: the on-disk artifact that splits the pipeline into an
// offline phase (generate → train → infer → repair, frozen once) and an
// online phase (the query engine, which loads a bundle and serves per-pair
// requests without retraining anything).
//
// A bundle is a directory:
//   <dir>/MANIFEST             version, metadata, per-file checksums
//   <dir>/kg1_entities.tsv     entity names in id order     (id-stable load)
//   <dir>/kg1_relations.tsv    relation names in id order
//   <dir>/kg2_entities.tsv
//   <dir>/kg2_relations.tsv
//   <dir>/dataset/             the DBP15K-layout dataset (data::SaveDataset)
//   <dir>/emb_ent1.txt         entity embeddings, row = EntityId
//   <dir>/emb_ent2.txt
//   <dir>/emb_rel1.txt         relation embeddings (only when the model
//   <dir>/emb_rel2.txt          learns them; see SnapshotMeta)
//   <dir>/alignment.tsv        inference output (greedy/mutual/csls/stable)
//   <dir>/repaired.tsv         repair-pipeline output (== alignment.tsv
//                              when the bundle was frozen without repair)
//   <dir>/index.ivf            trained IVF coarse quantizer over emb_ent2
//                              (only when the bundle was frozen with
//                              --index=ivf; see SnapshotMeta::index)
//
// All payloads reuse the existing text formats (la::SaveMatrix,
// data::SaveDataset, kg::SaveAlignment), so a bundle is greppable and
// diffable. The MANIFEST carries a format-version field — a reader refuses
// bundles from another version loudly instead of misinterpreting them —
// and an FNV-1a checksum per payload file, so truncated or bit-flipped
// bundles fail at load, not at query time.
//
// Id stability: embeddings are indexed by dense entity/relation ids, and
// LoadDataset alone re-interns names in triple-file order, which need not
// match the trained model's id assignment. The bundle therefore stores the
// dictionaries explicitly (in id order) and the loader pre-interns them,
// so a loaded bundle reproduces the training-time id spaces exactly and
// every embedding row still belongs to its entity.

#ifndef EXEA_SERVE_SNAPSHOT_H_
#define EXEA_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "emb/model.h"
#include "kg/alignment.h"
#include "la/matrix.h"
#include "la/similarity_index.h"
#include "util/status.h"

namespace exea::serve {

// Bump when the bundle layout changes incompatibly. Readers reject any
// other version with FAILED_PRECONDITION.
inline constexpr int kSnapshotFormatVersion = 1;

struct SnapshotMeta {
  int format_version = kSnapshotFormatVersion;
  std::string model_name;      // e.g. "MTransE"
  std::string dataset_name;    // display name of the frozen dataset
  std::string inference;       // "greedy" | "mutual" | "csls" | "stable"
  bool has_relation_embeddings = false;
  bool has_repair = false;     // repaired.tsv came from the repair pipeline
  // Search strategy frozen into the bundle: "exact" (no extra payload)
  // or "ivf" (index.ivf holds the trained coarse quantizer). Stored as
  // an ordinary manifest key, so version-1 readers that predate it
  // simply ignore the file list entry they never look for — but THIS
  // reader refuses unknown values instead of silently serving exact.
  std::string index = "exact";
};

// Everything the online path needs, in memory.
struct SnapshotBundle {
  SnapshotMeta meta;
  data::EaDataset dataset;
  la::Matrix emb1;             // entity embeddings, source KG
  la::Matrix emb2;             // entity embeddings, target KG
  la::Matrix rel1;             // relation embeddings (empty unless
  la::Matrix rel2;             //   meta.has_relation_embeddings)
  kg::AlignmentSet alignment;  // raw inference output
  kg::AlignmentSet repaired;   // post-repair output
  // Trained IVF coarse quantizer over emb2 (empty unless
  // meta.index == "ivf"). Value type so the bundle stays copyable; the
  // engine builds its la::IvfIndex view over this plus emb2.
  la::IvfIndexData ivf;
};

// FNV-1a 64 over a file's raw bytes (the MANIFEST checksum primitive).
[[nodiscard]] StatusOr<uint64_t> ChecksumFile(const std::string& path);

// Writes `bundle` into `dir`, creating the directory tree. Overwrites an
// existing bundle in place. Fails if the bundle is internally inconsistent
// (embedding rows vs. entity counts).
[[nodiscard]]
Status WriteSnapshot(const SnapshotBundle& bundle, const std::string& dir);

// Reads a bundle back, verifying the format version and every checksum
// before any payload is interpreted. Heap-allocated because the engine
// keeps borrowed pointers into the bundle, which must stay put.
[[nodiscard]] StatusOr<std::unique_ptr<SnapshotBundle>> ReadSnapshot(
    const std::string& dir);

// An EAModel view over a loaded bundle: entity (and, when present,
// relation) embeddings come straight from the snapshot matrices, so the
// explanation core runs against a served bundle exactly as it runs against
// the live trained model. Serving-only — Train/CloneUntrained are fatal.
class SnapshotModel : public emb::EAModel {
 public:
  // Borrows `bundle`, which must outlive the model.
  explicit SnapshotModel(const SnapshotBundle* bundle) : bundle_(bundle) {}

  std::string name() const override;
  void Train(const data::EaDataset& dataset) override;
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override;
  bool HasRelationEmbeddings() const override {
    return bundle_->meta.has_relation_embeddings;
  }
  const la::Matrix& RelationEmbeddings(kg::KgSide side) const override;
  std::unique_ptr<emb::EAModel> CloneUntrained() const override;

 private:
  const SnapshotBundle* bundle_;
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_SNAPSHOT_H_
