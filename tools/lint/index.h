// The declaration indexer: a lightweight C++ tokenizer that walks one
// stripped SourceFile and fills the FileSummary fact tables — namespaces
// and class scopes (for qualified names), function declarations and
// definitions with body spans, call sites and trailing-underscore member
// references tagged with the lexically held locks, and quoted includes.
// The cross-TU passes (call-graph reachability, lock propagation) are
// built entirely on these facts, so cached files never re-tokenize.

#ifndef EXEA_TOOLS_LINT_INDEX_H_
#define EXEA_TOOLS_LINT_INDEX_H_

#include "lint/analysis.h"
#include "lint/source.h"

namespace lint {

// Fills summary->includes, decls, calls, refs, unordered, range_fors.
// (guarded/required/status_fns/discards come from the local rule passes,
// which keep the battle-tested single-file scanners.)
void BuildIndex(const SourceFile& file, FileSummary* summary);

// True for identifiers the call collector must ignore: control keywords
// and ALL_CAPS macro names.
bool IsCallNoise(const std::string& ident);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_INDEX_H_
