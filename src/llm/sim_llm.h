// SimulatedLLM — a deterministic stand-in for the ChatGPT (GPT-3.5 Turbo)
// calls of Section V-D (see DESIGN.md §1 for the substitution rationale).
//
// The simulation is a name-similarity oracle with exactly the two failure
// modes the paper attributes to ChatGPT:
//   1. *hallucination*: a (stable, input-hash-seeded) fraction of
//      judgments is flipped, modelling hallucinated triple matches and
//      verdicts;
//   2. *numeric insensitivity*: entity names that differ only in digits
//      ("GeForce 300" vs "GeForce 400") are judged equivalent, which makes
//      version/generation siblings indistinguishable to the LLM — the
//      error class that makes structural ExEA complementary to it.
//
// All judgments are pure functions of the input strings (hash-based
// randomness), so experiments are reproducible and order-independent.

#ifndef EXEA_LLM_SIM_LLM_H_
#define EXEA_LLM_SIM_LLM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace exea::llm {

struct SimulatedLlmOptions {
  double hallucination_rate = 0.03;
  bool numeric_insensitive = true;
  // Prompt-length limit: how many triples per side fit into one prompt.
  // Models the paper's "restricted input length of ChatGPT" observation;
  // consumers truncate their evidence to this many triples per KG.
  size_t context_triples = 8;
  uint64_t seed = 97;  // salts the hash-based hallucination decisions
};

class SimulatedLLM {
 public:
  explicit SimulatedLLM(const SimulatedLlmOptions& options)
      : options_(options) {}
  SimulatedLLM() : SimulatedLLM(SimulatedLlmOptions{}) {}

  // "Are these two names the same real-world thing?" — the primitive all
  // higher-level prompts reduce to. Strips namespace prefixes; applies
  // numeric insensitivity and hallucination.
  bool JudgeNamesEquivalent(std::string_view name1,
                            std::string_view name2) const;

  // Triple-matching prompt (the ChatGPT(match) building block): indices of
  // triple pairs the LLM believes express the same fact. A pair matches
  // when both entity slots and the relation slot are judged equivalent.
  struct NamedTriple {
    std::string head;
    std::string relation;
    std::string tail;
  };
  std::vector<std::pair<size_t, size_t>> MatchTriples(
      const std::vector<NamedTriple>& side1,
      const std::vector<NamedTriple>& side2) const;

  // Claim-verification prompt (Table VI): is the claim "name1 sameAs
  // name2" supported, given the evidence triples around both entities?
  bool VerifyClaim(std::string_view name1, std::string_view name2,
                   const std::vector<NamedTriple>& evidence1,
                   const std::vector<NamedTriple>& evidence2) const;

  const SimulatedLlmOptions& options() const { return options_; }

 private:
  // Stable per-input coin flip with probability `rate`.
  bool Hallucinate(std::string_view a, std::string_view b) const;

  SimulatedLlmOptions options_;
};

}  // namespace exea::llm

#endif  // EXEA_LLM_SIM_LLM_H_
