#ifndef CONC_SERVE_STATE_H_
#define CONC_SERVE_STATE_H_

#include <atomic>
#include <string>
#include <unordered_map>

namespace demo::serve {

struct State {
  std::atomic<bool> ready{false};
  std::atomic<long> value{0};
  std::unordered_map<std::string, long> by_key;
};

}  // namespace demo::serve

#endif  // CONC_SERVE_STATE_H_
