file(REMOVE_RECURSE
  "CMakeFiles/exea_eval.dir/csls.cc.o"
  "CMakeFiles/exea_eval.dir/csls.cc.o.d"
  "CMakeFiles/exea_eval.dir/fidelity.cc.o"
  "CMakeFiles/exea_eval.dir/fidelity.cc.o.d"
  "CMakeFiles/exea_eval.dir/inference.cc.o"
  "CMakeFiles/exea_eval.dir/inference.cc.o.d"
  "CMakeFiles/exea_eval.dir/metrics.cc.o"
  "CMakeFiles/exea_eval.dir/metrics.cc.o.d"
  "libexea_eval.a"
  "libexea_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
