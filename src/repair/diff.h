// Repair-edit analysis: given the alignment before and after repair and
// the gold mapping, classify every edit. This quantifies *how* the repair
// achieved its accuracy delta — the per-edit view behind the paper's
// aggregate Δacc numbers — and catches regressions where a stage trades
// good pairs for bad ones.

#ifndef EXEA_REPAIR_DIFF_H_
#define EXEA_REPAIR_DIFF_H_

#include <string>
#include <unordered_map>

#include "kg/alignment.h"

namespace exea::repair {

struct AlignmentDiff {
  // Pairs present in both alignments.
  size_t kept_correct = 0;
  size_t kept_wrong = 0;
  // Sources whose target changed (or gained/lost a pair).
  size_t fixed = 0;        // wrong (or missing) before, correct after
  size_t broken = 0;       // correct before, wrong (or missing) after
  size_t still_wrong = 0;  // wrong before, differently wrong after
  size_t added_wrong = 0;  // unaligned before, wrong after
  size_t dropped_wrong = 0;  // wrong before, unaligned after

  // Of the edits that touched a previously-wrong source, the fraction that
  // produced the correct pair ("edit precision").
  double EditPrecision() const;

  std::string ToString() const;
};

// Compares per gold source entity. Sources not in `gold` are ignored.
AlignmentDiff CompareAlignments(
    const kg::AlignmentSet& before, const kg::AlignmentSet& after,
    const std::unordered_map<kg::EntityId, kg::EntityId>& gold);

}  // namespace exea::repair

#endif  // EXEA_REPAIR_DIFF_H_
