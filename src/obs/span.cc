#include "obs/span.h"

#include <utility>

namespace exea::obs {
namespace {

// The dotted path of spans currently open on this thread. A plain string
// (not a vector of frames): spans are strictly nested by construction
// order, so push/pop is append/truncate-by-restore.
thread_local std::string t_current_path;  // NOLINT(runtime/string)

}  // namespace

Span::Span(std::string_view name) : Span(nullptr, name) {}

Span::Span(Registry* registry, std::string_view name)
    : registry_(registry != nullptr ? registry : &Registry::Global()),
      parent_path_(t_current_path) {
  path_ = parent_path_.empty() ? std::string(name)
                               : parent_path_ + "." + std::string(name);
  t_current_path = path_;
}

Span::~Span() {
  registry_->GetHistogram("span." + path_).Record(timer_.ElapsedMillis());
  t_current_path = std::move(parent_path_);
}

std::string Span::CurrentPath() { return t_current_path; }

}  // namespace exea::obs
