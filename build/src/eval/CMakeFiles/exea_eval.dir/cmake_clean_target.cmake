file(REMOVE_RECURSE
  "libexea_eval.a"
)
