#include "serve/state.h"

namespace demo::serve {

std::string Render(const State& state) {
  std::string out;
  // Positive: unordered-container iteration feeding serialized output.
  for (const auto& [key, value] : state.by_key) {
    out += key;
    out += '\n';
  }
  return out;
}

void Publish(State& state) {
  // Positive: a flag published with relaxed ordering.
  state.ready.store(true, std::memory_order_relaxed);
  // Negative: the counter idiom is allowed.
  state.value.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace demo::serve
