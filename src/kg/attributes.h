// Attribute triples: (entity, attribute, literal value).
//
// The paper's benchmarks (DBP15K, OpenEA) ship attribute triples alongside
// relation triples, and GCN-Align — one of the four evaluated models —
// originally combines structure embeddings with attribute embeddings.
// AttributeStore keeps attributes separate from the relation-triple
// KnowledgeGraph: they are an optional signal (the paper's evaluation is
// structure-only; the attribute channel here reproduces GCN-Align's
// original design as an opt-in).

#ifndef EXEA_KG_ATTRIBUTES_H_
#define EXEA_KG_ATTRIBUTES_H_

#include <string>
#include <string_view>
#include <vector>

#include "kg/dictionary.h"
#include "kg/types.h"
#include "la/matrix.h"

namespace exea::kg {

using AttributeId = uint32_t;

struct AttributeTriple {
  EntityId entity = kInvalidEntity;
  AttributeId attribute = UINT32_MAX;
  std::string value;

  friend bool operator==(const AttributeTriple& a, const AttributeTriple& b) {
    return a.entity == b.entity && a.attribute == b.attribute &&
           a.value == b.value;
  }
};

class AttributeStore {
 public:
  AttributeStore() = default;

  AttributeId AddAttribute(std::string_view name);

  // Adds (entity, attribute, value); duplicates are allowed (multi-valued
  // attributes are common in real KGs).
  void AddTriple(EntityId entity, AttributeId attribute,
                 std::string_view value);
  void AddTriple(EntityId entity, std::string_view attribute,
                 std::string_view value);

  size_t num_attributes() const { return attributes_.size(); }
  size_t num_triples() const { return triples_.size(); }

  const std::string& AttributeName(AttributeId a) const {
    return attributes_.Name(a);
  }
  AttributeId FindAttribute(std::string_view name) const {
    return attributes_.Lookup(name);
  }

  const std::vector<AttributeTriple>& triples() const { return triples_; }

  // Indexes (into triples()) of the attribute triples of `entity`.
  const std::vector<uint32_t>& TriplesOf(EntityId entity) const;

  // Bag-of-(attribute, value-token) feature matrix: one hashed, signed,
  // L2-normalized row of `dim` entries per entity in [0, num_entities).
  // Entities without attributes get zero rows. This is the fixed input
  // feature GCN-Align's attribute channel propagates.
  la::Matrix FeatureMatrix(size_t num_entities, size_t dim) const;

 private:
  Dictionary attributes_;
  std::vector<AttributeTriple> triples_;
  std::vector<std::vector<uint32_t>> by_entity_;
};

}  // namespace exea::kg

#endif  // EXEA_KG_ATTRIBUTES_H_
