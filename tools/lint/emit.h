// Output back-ends for exea_lint: the pinned text and JSON shapes, SARIF
// 2.1.0 for CI artifact upload, and the committed-baseline machinery that
// lets a repo adopt a new rule without fixing every historical finding at
// once. Baseline fingerprints hash (rule, normalized path, trimmed line
// text) so they survive unrelated edits that move line numbers.

#ifndef EXEA_TOOLS_LINT_EMIT_H_
#define EXEA_TOOLS_LINT_EMIT_H_

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint/registry.h"

namespace lint {

std::string JsonEscape(const std::string& raw);

// Lets the emitters fetch one raw source line for fingerprinting without
// owning the file contents.
class LineSource {
 public:
  virtual ~LineSource() = default;
  // The raw text of `line_1based` in `file`, or "" when unavailable.
  virtual std::string Line(const std::string& file, size_t line_1based) = 0;
};

// file:line:col: rule: message — active (non-baselined) findings only.
void PrintText(const std::vector<Diagnostic>& diags);

// The legacy machine-readable array; active findings only.
void PrintJson(const std::vector<Diagnostic>& diags);

// SARIF 2.1.0: every finding, baselined ones carrying an external
// suppression; the rule registry becomes the tool.driver.rules table.
void PrintSarif(const std::vector<Diagnostic>& diags);

// fingerprint → number of occurrences the baseline tolerates.
struct Baseline {
  std::map<uint64_t, size_t> counts;
};

uint64_t DiagFingerprint(const Diagnostic& d, const std::string& line_text);

// False when the file cannot be read (the caller decides whether a missing
// default baseline is an error).
bool LoadBaseline(const std::filesystem::path& path, Baseline* out);

// Marks up to the tolerated count of matching findings baselined; returns
// how many were suppressed.
size_t ApplyBaseline(const Baseline& baseline, LineSource* lines,
                     std::vector<Diagnostic>* diags);

// Writes a baseline tolerating exactly the given findings.
bool WriteBaseline(const std::filesystem::path& path,
                   const std::vector<Diagnostic>& diags, LineSource* lines);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_EMIT_H_
