file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_first_order.dir/bench_table1_first_order.cc.o"
  "CMakeFiles/bench_table1_first_order.dir/bench_table1_first_order.cc.o.d"
  "bench_table1_first_order"
  "bench_table1_first_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_first_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
