
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/linreg.cc" "src/la/CMakeFiles/exea_la.dir/linreg.cc.o" "gcc" "src/la/CMakeFiles/exea_la.dir/linreg.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/la/CMakeFiles/exea_la.dir/matrix.cc.o" "gcc" "src/la/CMakeFiles/exea_la.dir/matrix.cc.o.d"
  "/root/repo/src/la/matrix_io.cc" "src/la/CMakeFiles/exea_la.dir/matrix_io.cc.o" "gcc" "src/la/CMakeFiles/exea_la.dir/matrix_io.cc.o.d"
  "/root/repo/src/la/similarity.cc" "src/la/CMakeFiles/exea_la.dir/similarity.cc.o" "gcc" "src/la/CMakeFiles/exea_la.dir/similarity.cc.o.d"
  "/root/repo/src/la/sparse.cc" "src/la/CMakeFiles/exea_la.dir/sparse.cc.o" "gcc" "src/la/CMakeFiles/exea_la.dir/sparse.cc.o.d"
  "/root/repo/src/la/vector_ops.cc" "src/la/CMakeFiles/exea_la.dir/vector_ops.cc.o" "gcc" "src/la/CMakeFiles/exea_la.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
