file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_noise_explain.dir/bench_table7_noise_explain.cc.o"
  "CMakeFiles/bench_table7_noise_explain.dir/bench_table7_noise_explain.cc.o.d"
  "bench_table7_noise_explain"
  "bench_table7_noise_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_noise_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
