// Synthetic correlated-KG generator — the stand-in for the DBP15K and
// OpenEA dumps (see DESIGN.md §1 for the substitution rationale).
//
// A base KG is grown from three ingredients:
//   1. "Confusable families": chains of sibling entities linked by
//      successor/predecessor relations and all attached to a shared hub
//      (the "NVIDIA GeForce 300/400" structure from the paper's case
//      study). Siblings have near-identical 1-hop structure, which is what
//      produces one-to-many conflicts and relation-alignment conflicts.
//   2. Background triples with a skewed head/tail distribution over a
//      relation vocabulary with mixed functionality profiles (functional,
//      inverse-functional, and noisy relations), so PARIS-style
//      functionality scores are informative.
//   3. A connectivity pass that guarantees no isolated entities.
//
// The counterpart KG is derived from the base by entity/relation renaming,
// per-triple dropout (incompleteness), extra noise triples, and optional
// relation splitting/merging (schema heterogeneity for the OpenEA-style
// datasets).

#ifndef EXEA_DATA_SYNTHETIC_H_
#define EXEA_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace exea::data {

struct SyntheticOptions {
  // --- base KG shape ---
  size_t num_entities = 400;
  size_t num_relations = 20;      // >= 4; first 3 are reserved (see .cc)
  double triples_per_entity = 4.0;
  size_t num_families = 12;       // confusable sibling chains
  size_t family_size = 5;         // entities per chain

  // --- counterpart derivation ---
  double triple_dropout = 0.15;         // fraction missing in kg2
  // Dropout applied to the family-chain relations (successor/predecessor)
  // instead of triple_dropout. High values leave some siblings with
  // *identical* 1-hop structure in KG2 — the structurally unidentifiable
  // alignment the paper reports as a benchmark limitation.
  double chain_dropout = 0.45;
  double extra_triple_fraction = 0.08;  // extra noise triples in kg2
  double relation_split_fraction = 0.0; // schema heterogeneity
  double relation_merge_fraction = 0.0;

  // --- attribute triples (optional side signal; see kg/attributes.h) ---
  size_t num_attributes = 6;          // generic attribute vocabulary size
  double attributes_per_entity = 2.0; // mean attribute triples per entity
  double attribute_value_noise = 0.05;  // fraction of KG2 values corrupted

  // --- alignment split ---
  double train_ratio = 0.3;

  // --- misc ---
  uint64_t seed = 1;
  std::string kg1_prefix = "zh";
  std::string kg2_prefix = "en";
  std::string dataset_name = "synthetic";
};

// Deterministically generates a full EA dataset from `options`.
// The result passes ValidateDataset().
EaDataset GenerateDataset(const SyntheticOptions& options);

// Names of the reserved relations inside the generated KGs (before the
// "<prefix>/" qualifier): chains use kSuccessorRelation /
// kPredecessorRelation; hubs use kHubRelation. Exposed for the case-study
// example and tests.
inline constexpr const char* kSuccessorRelation = "successor";
inline constexpr const char* kPredecessorRelation = "predecessor";
inline constexpr const char* kHubRelation = "product_of";

// Name (without prefix) of member `member` of confusable family `family`.
std::string FamilyEntityBaseName(size_t family, size_t member);

}  // namespace exea::data

#endif  // EXEA_DATA_SYNTHETIC_H_
