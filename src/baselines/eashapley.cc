#include "baselines/eashapley.h"

#include <algorithm>
#include <cmath>

#include "la/linreg.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exea::baselines {
namespace {

// Value function: reconstructed-pair similarity under a joint mask over
// candidates1 ++ candidates2.
class ValueFunction {
 public:
  ValueFunction(const PerturbedEmbedder* embedder, kg::EntityId e1,
                kg::EntityId e2, const std::vector<kg::Triple>& candidates1,
                const std::vector<kg::Triple>& candidates2)
      : embedder_(embedder),
        e1_(e1),
        e2_(e2),
        candidates1_(candidates1),
        candidates2_(candidates2) {}

  size_t n() const { return candidates1_.size() + candidates2_.size(); }

  double operator()(const std::vector<bool>& mask) const {
    std::vector<kg::Triple> kept1;
    std::vector<kg::Triple> kept2;
    for (size_t i = 0; i < candidates1_.size(); ++i) {
      if (mask[i]) kept1.push_back(candidates1_[i]);
    }
    for (size_t i = 0; i < candidates2_.size(); ++i) {
      if (mask[candidates1_.size() + i]) kept2.push_back(candidates2_[i]);
    }
    return embedder_->PerturbedSimilarity(e1_, kept1, e2_, kept2);
  }

  // v(S) for a whole batch of coalitions, evaluated on the worker pool.
  std::vector<double> EvaluateAll(
      const std::vector<std::vector<bool>>& masks) const {
    return embedder_->PerturbedSimilarityBatch(e1_, candidates1_, e2_,
                                               candidates2_, masks);
  }

 private:
  const PerturbedEmbedder* embedder_;
  kg::EntityId e1_;
  kg::EntityId e2_;
  const std::vector<kg::Triple>& candidates1_;
  const std::vector<kg::Triple>& candidates2_;
};

std::vector<double> MonteCarloShapley(const ValueFunction& value, size_t perms,
                                      Rng& rng) {
  size_t n = value.n();
  // The permutations (and so the rng stream) are drawn serially up front;
  // only the v(S) evaluations — the expensive part — run on the pool.
  // Marginal contributions are then merged in permutation order, which
  // reproduces the serial accumulation order bit for bit.
  std::vector<std::vector<size_t>> orders(perms);
  std::vector<std::vector<bool>> masks;
  masks.reserve(perms * (n + 1));
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<bool> mask(n);
  for (size_t p = 0; p < perms; ++p) {
    rng.Shuffle(order);
    orders[p] = order;
    std::fill(mask.begin(), mask.end(), false);
    masks.push_back(mask);  // empty coalition
    for (size_t idx : order) {
      mask[idx] = true;
      masks.push_back(mask);
    }
  }

  std::vector<double> values = value.EvaluateAll(masks);

  std::vector<double> shapley(n, 0.0);
  size_t pos = 0;
  for (size_t p = 0; p < perms; ++p) {
    double previous = values[pos++];  // empty coalition
    for (size_t idx : orders[p]) {
      double with = values[pos++];
      shapley[idx] += with - previous;
      previous = with;
    }
  }
  for (double& s : shapley) s /= static_cast<double>(perms);
  return shapley;
}

// Eq. (12): the Shapley kernel for coalition size |T'| of |T| features.
double ShapleyKernel(size_t n, size_t coalition) {
  if (coalition == 0 || coalition == n) return 1e6;  // anchor coalitions
  // (n - 1) / (C(n, s) * s * (n - s)); computed in log space to avoid
  // overflow for larger n.
  double log_choose = std::lgamma(static_cast<double>(n) + 1.0) -
                      std::lgamma(static_cast<double>(coalition) + 1.0) -
                      std::lgamma(static_cast<double>(n - coalition) + 1.0);
  double log_kernel = std::log(static_cast<double>(n - 1)) - log_choose -
                      std::log(static_cast<double>(coalition)) -
                      std::log(static_cast<double>(n - coalition));
  return std::exp(log_kernel);
}

std::vector<double> KernelShapley(const ValueFunction& value, size_t samples,
                                  Rng& rng) {
  size_t n = value.n();
  // Coalitions are sampled serially (identical rng stream to the serial
  // path); the v(S) targets are then evaluated as one parallel batch.
  std::vector<std::vector<bool>> masks;
  std::vector<double> weights;
  std::vector<bool> mask(n);

  auto add = [&](const std::vector<bool>& m, double w) {
    masks.push_back(m);
    weights.push_back(w);
  };

  // Anchor coalitions: empty and full.
  std::fill(mask.begin(), mask.end(), false);
  add(mask, 1e6);
  std::fill(mask.begin(), mask.end(), true);
  add(mask, 1e6);

  for (size_t s = 0; s < samples; ++s) {
    // Sample a coalition size in [1, n-1] and a uniform coalition of that
    // size — KernelSHAP weights then correct for the size distribution.
    size_t size = 1 + static_cast<size_t>(rng.UniformInt(n - 1));
    std::vector<size_t> chosen = rng.SampleWithoutReplacement(n, size);
    std::fill(mask.begin(), mask.end(), false);
    for (size_t idx : chosen) mask[idx] = true;
    add(mask, ShapleyKernel(n, size));
  }

  std::vector<double> targets = value.EvaluateAll(masks);
  std::vector<std::vector<double>> rows;
  rows.reserve(masks.size());
  for (const std::vector<bool>& m : masks) {
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) row[i] = m[i] ? 1.0 : 0.0;
    rows.push_back(std::move(row));
  }

  la::RidgeOptions options;
  options.l2 = 1e-4;
  auto model = la::FitWeightedRidge(rows, targets, weights, options);
  if (!model.ok()) {
    EXEA_LOG(Warning) << "KernelSHAP fit failed: "
                      << model.status().ToString();
    return std::vector<double>(n, 0.0);
  }
  return model->weights;
}

}  // namespace

std::vector<double> EAShapley::AttributionScores(
    kg::EntityId e1, kg::EntityId e2,
    const std::vector<kg::Triple>& candidates1,
    const std::vector<kg::Triple>& candidates2) {
  ValueFunction value(embedder_, e1, e2, candidates1, candidates2);
  size_t n = value.n();
  if (n == 0) return {};
  if (n == 1) return {1.0};
  Rng rng(seed_ ^ (static_cast<uint64_t>(e1) << 32 | e2));
  if (estimator_ == ShapleyEstimator::kMonteCarlo) {
    obs::Span span("eashapley.monte_carlo");
    return MonteCarloShapley(value, num_samples_, rng);
  }
  obs::Span span("eashapley.kernel");
  return KernelShapley(value, num_samples_ * 4, rng);
}

ExplainerResult EAShapley::Explain(kg::EntityId e1, kg::EntityId e2,
                                   const std::vector<kg::Triple>& candidates1,
                                   const std::vector<kg::Triple>& candidates2,
                                   size_t budget) {
  std::vector<double> scores =
      AttributionScores(e1, e2, candidates1, candidates2);
  if (scores.empty()) return {};
  return SelectTopTriples(candidates1, candidates2, scores, budget);
}

}  // namespace exea::baselines
