// Forwarding header: alignment inference moved down to emb/inference.h so
// the repair layer (below eval in tools/layers.txt) can depend on it
// without an upward edge. The eval:: spellings remain valid for the
// metric/CSLS layer, tools, benches, and tests.

#ifndef EXEA_EVAL_INFERENCE_H_
#define EXEA_EVAL_INFERENCE_H_

#include "emb/inference.h"

namespace exea::eval {

using emb::Candidate;         // NOLINT(misc-unused-using-decls)
using emb::GreedyAlign;       // NOLINT(misc-unused-using-decls)
using emb::MutualBestAlign;   // NOLINT(misc-unused-using-decls)
using emb::RankedSimilarity;  // NOLINT(misc-unused-using-decls)
using emb::RankTestEntities;  // NOLINT(misc-unused-using-decls)

}  // namespace exea::eval

#endif  // EXEA_EVAL_INFERENCE_H_
