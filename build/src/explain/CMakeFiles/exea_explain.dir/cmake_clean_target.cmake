file(REMOVE_RECURSE
  "libexea_explain.a"
)
