// The perturbation engine behind the transferred explanation baselines.
//
// Baselines treat each candidate triple as a binary feature, flip subsets
// off, and observe the model's prediction on the perturbed neighbourhood.
// Re-training per perturbation is impossible, so — exactly as the paper
// does — the perturbed entity representation is *reconstructed*:
//
//   * translation-based models (MTransE, AlignE): Eq. (10), the entity is
//     the average of its kept triples' translations
//       outgoing (e, r, t):  e ≈ t - r
//       incoming (h, r, e):  e ≈ h + r
//   * aggregation-based models (GCN-Align, Dual-AMN): the model's local
//     aggregation is re-run over the kept triples only (a mean of kept
//     neighbours' representations plus the self representation); for
//     second-order candidates the kept 2-hop triples first rebuild the
//     1-hop neighbours.
//
// The similarity of the reconstructed pair under a mask is the "model
// prediction" every baseline fits against.

#ifndef EXEA_BASELINES_PERTURBATION_H_
#define EXEA_BASELINES_PERTURBATION_H_

#include <vector>

#include "data/dataset.h"
#include "emb/model.h"
#include "la/vector_ops.h"

namespace exea::baselines {

class PerturbedEmbedder {
 public:
  // Borrows both arguments; the model must be trained.
  PerturbedEmbedder(const data::EaDataset& dataset,
                    const emb::EAModel& model);

  // Reconstructed embedding of `e` when only `kept` triples of its
  // candidate neighbourhood remain. Falls back to the original embedding
  // when `kept` is empty (no information to reconstruct from).
  la::Vec Embed(kg::KgSide side, kg::EntityId e,
                const std::vector<kg::Triple>& kept) const;

  // Model prediction under a mask: cosine similarity of the two
  // reconstructed embeddings.
  double PerturbedSimilarity(kg::EntityId e1,
                             const std::vector<kg::Triple>& kept1,
                             kg::EntityId e2,
                             const std::vector<kg::Triple>& kept2) const;

  // Similarity of the reconstruction to the entity's original embedding —
  // the ingredient of the LIME kernel, Eq. (11).
  double ReconstructionSimilarity(kg::KgSide side, kg::EntityId e,
                                  const std::vector<kg::Triple>& kept) const;

  // Batch variant of PerturbedSimilarity for the per-entity perturbation
  // sweeps (Shapley permutations, KernelSHAP coalitions). Each mask spans
  // candidates1 ++ candidates2; the result holds one similarity per mask,
  // in mask order. Evaluations run on the process-wide worker pool; each
  // output slot is written by exactly one task, so results are
  // bit-identical at any thread count.
  std::vector<double> PerturbedSimilarityBatch(
      kg::EntityId e1, const std::vector<kg::Triple>& candidates1,
      kg::EntityId e2, const std::vector<kg::Triple>& candidates2,
      const std::vector<std::vector<bool>>& masks) const;

 private:
  la::Vec TranslationReconstruct(kg::KgSide side, kg::EntityId e,
                                 const std::vector<kg::Triple>& kept) const;
  la::Vec AggregationReconstruct(kg::KgSide side, kg::EntityId e,
                                 const std::vector<kg::Triple>& kept,
                                 int depth) const;

  const data::EaDataset* dataset_;
  const emb::EAModel* model_;
  la::Matrix rel1_;  // relation embeddings (model's own or Eq. (1))
  la::Matrix rel2_;
};

// Utility: the subset of `candidates` selected by `mask` (parallel
// arrays; mask true = keep).
std::vector<kg::Triple> ApplyMask(const std::vector<kg::Triple>& candidates,
                                  const std::vector<bool>& mask);

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_PERTURBATION_H_
