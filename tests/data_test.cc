// Tests for the synthetic dataset generator, benchmark specs, and noise
// injection — including property-style sweeps over all benchmarks.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/noise.h"
#include "data/synthetic.h"
#include "kg/functionality.h"
#include "kg/stats.h"

namespace exea::data {
namespace {

SyntheticOptions TinyOptions() {
  SyntheticOptions options;
  options.num_entities = 120;
  options.num_relations = 10;
  options.num_families = 4;
  options.family_size = 4;
  options.seed = 77;
  return options;
}

TEST(SyntheticTest, GeneratesValidDataset) {
  EaDataset dataset = GenerateDataset(TinyOptions());
  // ValidateDataset already ran inside; double-check key facts.
  EXPECT_EQ(dataset.kg1.num_entities(), 120u);
  EXPECT_EQ(dataset.kg2.num_entities(), 120u);
  EXPECT_GT(dataset.kg1.num_triples(), 120u);
  EXPECT_EQ(dataset.gold.size(), 120u);
  EXPECT_EQ(dataset.train.size() + dataset.test.size(), 120u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  EaDataset a = GenerateDataset(TinyOptions());
  EaDataset b = GenerateDataset(TinyOptions());
  EXPECT_EQ(a.kg1.num_triples(), b.kg1.num_triples());
  EXPECT_EQ(a.kg2.num_triples(), b.kg2.num_triples());
  EXPECT_EQ(a.kg1.triples(), b.kg1.triples());
  EXPECT_EQ(a.train.SortedPairs(), b.train.SortedPairs());
}

TEST(SyntheticTest, SeedChangesOutput) {
  SyntheticOptions other = TinyOptions();
  other.seed = 78;
  EaDataset a = GenerateDataset(TinyOptions());
  EaDataset b = GenerateDataset(other);
  EXPECT_NE(a.kg1.triples(), b.kg1.triples());
}

TEST(SyntheticTest, NoIsolatedEntities) {
  EaDataset dataset = GenerateDataset(TinyOptions());
  EXPECT_EQ(kg::ComputeStats(dataset.kg1).isolated_entities, 0u);
  EXPECT_EQ(kg::ComputeStats(dataset.kg2).isolated_entities, 0u);
}

TEST(SyntheticTest, DropoutShrinksKg2) {
  SyntheticOptions options = TinyOptions();
  options.triple_dropout = 0.4;
  options.extra_triple_fraction = 0.0;
  EaDataset dataset = GenerateDataset(options);
  EXPECT_LT(dataset.kg2.num_triples(), dataset.kg1.num_triples());
}

TEST(SyntheticTest, FamiliesCreateChainStructure) {
  SyntheticOptions options = TinyOptions();
  options.chain_dropout = 0.0;
  options.triple_dropout = 0.0;
  EaDataset dataset = GenerateDataset(options);
  // The successor relation exists in both KGs and is near-functional.
  kg::RelationId succ1 = dataset.kg1.FindRelation(
      options.kg1_prefix + "/" + kSuccessorRelation);
  ASSERT_NE(succ1, kg::kInvalidRelation);
  kg::RelationFunctionality func(dataset.kg1);
  EXPECT_DOUBLE_EQ(func.Func(succ1), 1.0);
  EXPECT_DOUBLE_EQ(func.InverseFunc(succ1), 1.0);
  // Family members have digit-bearing names.
  kg::EntityId member = dataset.kg1.FindEntity(
      options.kg1_prefix + "/" + FamilyEntityBaseName(0, 0));
  EXPECT_NE(member, kg::kInvalidEntity);
}

TEST(SyntheticTest, ChainDropoutRemovesChainTriplesOnly) {
  SyntheticOptions options = TinyOptions();
  options.triple_dropout = 0.0;
  options.extra_triple_fraction = 0.0;
  options.chain_dropout = 1.0;
  EaDataset dataset = GenerateDataset(options);
  kg::RelationId succ2 = dataset.kg2.FindRelation(
      options.kg2_prefix + "/" + kSuccessorRelation);
  // All successor triples were dropped from KG2 (connectivity backfill may
  // reintroduce a handful for entities left isolated).
  size_t chain_triples = succ2 == kg::kInvalidRelation
                             ? 0
                             : dataset.kg2.TriplesOfRelation(succ2).size();
  kg::RelationId succ1 = dataset.kg1.FindRelation(
      options.kg1_prefix + "/" + kSuccessorRelation);
  EXPECT_LT(chain_triples, dataset.kg1.TriplesOfRelation(succ1).size() / 4);
}

TEST(SyntheticTest, GoldTargetsAreBijective) {
  EaDataset dataset = GenerateDataset(TinyOptions());
  std::set<kg::EntityId> targets;
  for (const auto& [source, target] : dataset.gold) {
    EXPECT_TRUE(targets.insert(target).second)
        << "two sources map to target " << target;
  }
}

TEST(SyntheticTest, CounterpartNamesCorrespond) {
  SyntheticOptions options = TinyOptions();
  EaDataset dataset = GenerateDataset(options);
  for (const auto& [source, target] : dataset.gold) {
    std::string name1 = dataset.kg1.EntityName(source);
    std::string name2 = dataset.kg2.EntityName(target);
    // Names differ only in the namespace prefix.
    EXPECT_EQ(name1.substr(name1.find('/')), name2.substr(name2.find('/')));
  }
}

TEST(SyntheticTest, RelationSplitIncreasesKg2Relations) {
  SyntheticOptions plain = TinyOptions();
  SyntheticOptions split = TinyOptions();
  split.relation_split_fraction = 0.5;
  EaDataset a = GenerateDataset(plain);
  EaDataset b = GenerateDataset(split);
  EXPECT_GT(b.kg2.num_relations(), a.kg2.num_relations());
}

TEST(SyntheticTest, RelationMergeDecreasesKg2Relations) {
  SyntheticOptions merge = TinyOptions();
  merge.relation_merge_fraction = 0.6;
  EaDataset a = GenerateDataset(TinyOptions());
  EaDataset b = GenerateDataset(merge);
  EXPECT_LT(b.kg2.num_relations(), a.kg2.num_relations());
}

TEST(SyntheticTest, TrainRatioRespected) {
  SyntheticOptions options = TinyOptions();
  options.train_ratio = 0.25;
  EaDataset dataset = GenerateDataset(options);
  EXPECT_EQ(dataset.train.size(), 30u);
  EXPECT_EQ(dataset.test.size(), 90u);
}

// ---------------------------------------------------------------- Benchmarks

TEST(BenchmarksTest, NamesRoundTrip) {
  for (Benchmark b : AllBenchmarks()) {
    EXPECT_EQ(BenchmarkFromName(BenchmarkName(b)), b);
  }
}

TEST(BenchmarksTest, FiveBenchmarksInPaperOrder) {
  const auto& all = AllBenchmarks();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(BenchmarkName(all[0]), "ZH-EN");
  EXPECT_EQ(BenchmarkName(all[4]), "DBP-YAGO");
}

TEST(BenchmarksTest, ScaleParsing) {
  EXPECT_EQ(ScaleFromName("tiny"), Scale::kTiny);
  EXPECT_EQ(ScaleFromName("SMALL"), Scale::kSmall);
  EXPECT_EQ(ScaleFromName("Medium"), Scale::kMedium);
}

TEST(BenchmarksTest, FrEnIsDensest) {
  SyntheticOptions fr = BenchmarkOptions(Benchmark::kFrEn, Scale::kTiny);
  for (Benchmark b : AllBenchmarks()) {
    if (b == Benchmark::kFrEn) continue;
    EXPECT_GT(fr.triples_per_entity,
              BenchmarkOptions(b, Scale::kTiny).triples_per_entity);
  }
}

TEST(BenchmarksTest, HeterogeneousDatasetsSplitRelations) {
  EXPECT_GT(BenchmarkOptions(Benchmark::kDbpWd, Scale::kTiny)
                .relation_split_fraction,
            0.0);
  EXPECT_GT(BenchmarkOptions(Benchmark::kDbpYago, Scale::kTiny)
                .relation_merge_fraction,
            BenchmarkOptions(Benchmark::kDbpWd, Scale::kTiny)
                .relation_merge_fraction);
  EXPECT_EQ(BenchmarkOptions(Benchmark::kZhEn, Scale::kTiny)
                .relation_split_fraction,
            0.0);
}

class AllBenchmarksTest : public ::testing::TestWithParam<Benchmark> {};

TEST_P(AllBenchmarksTest, GeneratesAndValidates) {
  EaDataset dataset = MakeBenchmark(GetParam(), Scale::kTiny);
  EXPECT_EQ(dataset.name, BenchmarkName(GetParam()));
  EXPECT_GT(dataset.test.size(), 0u);
  EXPECT_GT(dataset.train.size(), 0u);
  EXPECT_EQ(kg::ComputeStats(dataset.kg1).isolated_entities, 0u);
  EXPECT_EQ(kg::ComputeStats(dataset.kg2).isolated_entities, 0u);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, AllBenchmarksTest,
                         ::testing::ValuesIn(AllBenchmarks()),
                         [](const auto& info) {
                           std::string name = BenchmarkName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --------------------------------------------------------------------- Noise

TEST(NoiseTest, CorruptsRequestedFraction) {
  EaDataset dataset = GenerateDataset(TinyOptions());
  EaDataset noisy = CorruptSeedAlignment(dataset, 1.0 / 6.0, 5);
  EXPECT_EQ(noisy.train.size(), dataset.train.size());
  size_t wrong = 0;
  for (const kg::AlignedPair& pair : noisy.train.SortedPairs()) {
    if (dataset.gold.at(pair.source) != pair.target) ++wrong;
  }
  size_t expected = dataset.train.size() / 6;
  EXPECT_EQ(wrong, expected);
}

TEST(NoiseTest, ZeroFractionIsIdentity) {
  EaDataset dataset = GenerateDataset(TinyOptions());
  EaDataset noisy = CorruptSeedAlignment(dataset, 0.0, 5);
  EXPECT_EQ(noisy.train.SortedPairs(), dataset.train.SortedPairs());
}

TEST(NoiseTest, DeterministicForSeed) {
  EaDataset dataset = GenerateDataset(TinyOptions());
  EaDataset a = CorruptSeedAlignment(dataset, 0.2, 9);
  EaDataset b = CorruptSeedAlignment(dataset, 0.2, 9);
  EXPECT_EQ(a.train.SortedPairs(), b.train.SortedPairs());
  EaDataset c = CorruptSeedAlignment(dataset, 0.2, 10);
  EXPECT_NE(c.train.SortedPairs(), a.train.SortedPairs());
}

TEST(NoiseTest, TestSplitUntouched) {
  EaDataset dataset = GenerateDataset(TinyOptions());
  EaDataset noisy = CorruptSeedAlignment(dataset, 0.5, 5);
  EXPECT_EQ(noisy.test, dataset.test);
  EXPECT_EQ(noisy.gold, dataset.gold);
}

}  // namespace
}  // namespace exea::data
