# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/kg_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/emb_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/repair_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/inference_ext_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/attributes_test[1]_include.cmake")
include("/root/repo/build/tests/classical_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/rotate_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/bench_common_test[1]_include.cmake")
include("/root/repo/build/tests/kfold_test[1]_include.cmake")
