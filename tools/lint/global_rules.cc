#include "lint/global_rules.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "lint/source.h"

namespace lint {

namespace {

class GlobalPass {
 public:
  GlobalPass(const std::vector<FileAnalysis>& files, const LayerGraph* layers,
             const std::string& layers_path, const ConcurrencyConfig& conc)
      : files_(files), layers_(layers), layers_path_(layers_path),
        conc_(conc) {}

  std::vector<Diagnostic> Run() {
    BuildClosures();
    CheckLayering();
    CheckIncludeCycles();
    CheckDiscardedStatus();
    CheckLocks();
    CheckLoopBlocking();
    CheckUnorderedOutput();
    std::sort(diags_.begin(), diags_.end());
    diags_.erase(std::unique(diags_.begin(), diags_.end(),
                             [](const Diagnostic& a, const Diagnostic& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.col == b.col && a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 diags_.end());
    return std::move(diags_);
  }

 private:
  void Report(size_t fi, size_t line, size_t col, const std::string& rule,
              const std::string& message) {
    if (line >= 1 && Waived(files_[fi], line, rule)) return;
    diags_.push_back({files_[fi].path, line, col, rule, message, false});
  }

  // ---------------------------------------------------------- closures
  //
  // The include closure of a file — itself plus every repo file reachable
  // through quoted includes — is the set of translation units whose
  // declarations are visible to it. All cross-TU resolution (guarded
  // members, EXEA_REQUIRES contracts, call targets) is scoped to it.

  // Resolves one quoted include target to a file index, or npos.
  size_t ResolveInclude(size_t fi, const std::string& target) const {
    std::string key = target;
    if (target.find('/') == std::string::npos &&
        !files_[fi].src_rel.empty()) {
      size_t dir = files_[fi].src_rel.rfind('/');
      key = dir == std::string::npos
                ? target
                : files_[fi].src_rel.substr(0, dir + 1) + target;
    }
    auto it = key_to_file_.find(key);
    return it == key_to_file_.end() ? std::string::npos : it->second;
  }

  void BuildClosures() {
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      if (!files_[fi].src_rel.empty()) key_to_file_[files_[fi].src_rel] = fi;
    }
    closures_.resize(files_.size());
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      std::set<size_t> seen{fi};
      std::deque<size_t> queue{fi};
      while (!queue.empty()) {
        size_t cur = queue.front();
        queue.pop_front();
        for (const IncludeFact& inc : files_[cur].summary.includes) {
          size_t to = ResolveInclude(cur, inc.target);
          if (to != std::string::npos && seen.insert(to).second) {
            queue.push_back(to);
          }
        }
      }
      closures_[fi].assign(seen.begin(), seen.end());
    }
  }

  // ---------------------------------------------------------- layering

  void CheckLayering() {
    if (layers_ == nullptr) return;
    // Module-level pass: every quoted include whose first path segment is a
    // declared module must point at the includer's own module or strictly
    // below it.
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      const FileAnalysis& file = files_[fi];
      if (file.in_src && file.module.empty()) continue;  // src-root file
      if (file.in_src && layers_->modules.count(file.module) == 0) {
        Report(fi, 1, 1, "layering",
               "module '" + file.module + "' is not declared in " +
                   layers_path_);
        continue;
      }
      if (file.module.empty()) continue;  // not src/tools/bench
      auto below_it = layers_->below.find(file.module);
      const std::set<std::string>* below =
          below_it == layers_->below.end() ? nullptr : &below_it->second;
      for (const IncludeFact& inc : file.summary.includes) {
        size_t slash = inc.target.find('/');
        if (slash == std::string::npos) continue;  // relative include
        std::string target_module = inc.target.substr(0, slash);
        if (layers_->modules.count(target_module) == 0) continue;  // gtest …
        if (target_module == file.module) continue;
        if (below != nullptr && below->count(target_module) > 0) continue;
        Report(fi, inc.line, inc.col, "layering",
               "module '" + file.module + "' may not include \"" +
                   inc.target + "\": '" + target_module +
                   "' is not below '" + file.module + "' in " + layers_path_);
      }
    }
  }

  void CheckIncludeCycles() {
    if (layers_ == nullptr) return;
    // File-level pass: cycles in the quoted-include graph. Keys are
    // src-relative paths (the spelling used in #include "...").
    struct Edge {
      size_t to;
      size_t line;  // include line in the source file, 1-based
    };
    std::vector<std::vector<Edge>> adj(files_.size());
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      for (const IncludeFact& inc : files_[fi].summary.includes) {
        size_t to = ResolveInclude(fi, inc.target);
        if (to != std::string::npos) adj[fi].push_back({to, inc.line});
      }
    }
    // DFS with an explicit stack; a gray-node hit is a cycle, reported once
    // per distinct cycle (canonicalized by its sorted member set).
    std::vector<int> color(files_.size(), 0);
    std::set<std::string> reported;
    for (size_t start = 0; start < files_.size(); ++start) {
      if (color[start] != 0) continue;
      struct Frame {
        size_t node;
        size_t next_edge = 0;
      };
      std::vector<Frame> frames{{start}};
      color[start] = 1;
      while (!frames.empty()) {
        Frame& top = frames.back();
        if (top.next_edge >= adj[top.node].size()) {
          color[top.node] = 2;
          frames.pop_back();
          continue;
        }
        const Edge& edge = adj[top.node][top.next_edge++];
        if (color[edge.to] == 1) {
          // Reconstruct the chain from edge.to down to top.node.
          std::vector<size_t> chain;
          bool in_cycle = false;
          for (const Frame& f : frames) {
            if (f.node == edge.to) in_cycle = true;
            if (in_cycle) chain.push_back(f.node);
          }
          std::vector<std::string> keys;
          keys.reserve(chain.size());
          for (size_t n : chain) keys.push_back(files_[n].src_rel);
          std::vector<std::string> canon = keys;
          std::sort(canon.begin(), canon.end());
          std::string canon_key;
          for (const std::string& k : canon) canon_key += k + "|";
          if (reported.insert(canon_key).second) {
            std::string pretty;
            for (const std::string& k : keys) pretty += k + " -> ";
            pretty += files_[edge.to].src_rel;
            Report(top.node, edge.line, 1, "include-cycle",
                   "include cycle: " + pretty);
          }
          continue;
        }
        if (color[edge.to] == 0) {
          color[edge.to] = 1;
          frames.push_back({edge.to});
        }
      }
    }
  }

  // ---------------------------------------------------- discarded-status

  void CheckDiscardedStatus() {
    std::set<std::string> status_returning;
    for (const FileAnalysis& file : files_) {
      status_returning.insert(file.summary.status_fns.begin(),
                              file.summary.status_fns.end());
    }
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      for (const DiscardCandidate& d : files_[fi].summary.discards) {
        if (status_returning.count(d.callee) == 0) continue;
        Report(fi, d.line, d.col, "discarded-status",
               "result of Status-returning call '" + d.callee +
                   "' is discarded; check it, EXEA_RETURN_IF_ERROR it, or "
                   "EXEA_CHECK_OK it");
      }
    }
  }

  // -------------------------------------------------------- lock rules
  //
  // lock-held: a reference to an EXEA_GUARDED_BY member, inside a method,
  // with no enclosing lock of its mutex and no EXEA_REQUIRES contract on
  // the enclosing function. guarded-by-escape: the same reference made
  // from a free (non-member) function — the member leaked out of its
  // class entirely. requires-held: a call to an EXEA_REQUIRES method made
  // without the mutex lexically held and without the caller carrying the
  // same contract. All three resolve annotations across the include
  // closure, so a .cc file sees the contracts of every header it includes.

  void CheckLocks() {
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      const FileAnalysis& file = files_[fi];
      // Annotations visible to this file.
      std::set<std::pair<std::string, std::string>> members;  // name, mutex
      std::map<std::string, std::set<std::string>> required;  // fn → mutexes
      for (size_t ci : closures_[fi]) {
        for (const GuardedMemberFact& m : files_[ci].summary.guarded) {
          members.insert({m.name, m.mutex});
        }
        for (const RequiredMethodFact& m : files_[ci].summary.required) {
          required[m.name].insert(m.mutex);
        }
        for (const FnDecl& d : files_[ci].summary.decls) {
          if (!d.requires_mutex.empty()) {
            required[d.name].insert(d.requires_mutex);
          }
        }
      }
      if (members.empty() && required.empty()) continue;

      // Does the enclosing function satisfy a hold of `mutex` by contract?
      auto contract_holds = [&](int fn, const std::string& mutex) {
        if (fn < 0) return false;
        const FnDecl& d = file.summary.decls[fn];
        if (d.requires_mutex == mutex) return true;
        auto it = required.find(d.name);
        return it != required.end() && it->second.count(mutex) > 0;
      };

      std::set<std::pair<size_t, std::string>> seen_refs;  // line, member
      for (const MemberRef& r : file.summary.refs) {
        for (const auto& [name, mutex] : members) {
          if (name != r.name) continue;
          if (r.held.count(mutex) > 0) continue;
          if (contract_holds(r.fn, mutex)) continue;
          if (!seen_refs.insert({r.line, name}).second) continue;
          bool free_fn =
              r.fn >= 0 && !file.summary.decls[r.fn].is_method;
          if (free_fn) {
            Report(fi, r.line, r.col, "guarded-by-escape",
                   "'" + name + "' is EXEA_GUARDED_BY(" + mutex +
                       ") but is touched from free function '" +
                       file.summary.decls[r.fn].name +
                       "', which neither holds a lock of it nor carries "
                       "EXEA_REQUIRES(" + mutex + ")");
          } else {
            Report(fi, r.line, r.col, "lock-held",
                   "'" + name + "' is EXEA_GUARDED_BY(" + mutex +
                       ") but no enclosing scope holds that mutex (take a "
                       "lock_guard, or mark the method EXEA_REQUIRES)");
          }
        }
      }

      std::set<std::pair<size_t, std::string>> seen_calls;  // line, callee
      for (const CallSite& c : file.summary.calls) {
        auto it = required.find(c.name);
        if (it == required.end()) continue;
        for (const std::string& mutex : it->second) {
          if (c.held.count(mutex) > 0) continue;
          if (contract_holds(c.fn, mutex)) continue;
          if (!seen_calls.insert({c.line, c.name}).second) continue;
          Report(fi, c.line, c.col, "requires-held",
                 "call to '" + c.name + "' requires mutex '" + mutex +
                     "' (EXEA_REQUIRES) but the caller holds no lock of it "
                     "and carries no matching EXEA_REQUIRES contract");
        }
      }
    }
  }

  // ----------------------------------------------------- loop-blocking
  //
  // BFS over the cross-TU call graph from the configured event-loop
  // entries. Any function transitively reachable from an entry may not
  // call a name in the blocking set; the `safe` set names vetted
  // nonblocking wrappers whose bodies are not descended into.

  // True when `qname` names the same function as the (possibly shorter)
  // qualified suffix `pat`: equal, or equal after "::" on a segment
  // boundary.
  static bool QnameMatches(const std::string& qname, const std::string& pat) {
    std::string p = pat;
    if (p.rfind("::", 0) == 0) p = p.substr(2);
    if (qname == p) return true;
    return HasSuffix(qname, "::" + p);
  }

  void CheckLoopBlocking() {
    if (conc_.entries.empty()) return;
    // Definition index: base name → every (file, decl) definition.
    std::map<std::string, std::vector<std::pair<size_t, size_t>>> defs;
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      const auto& decls = files_[fi].summary.decls;
      for (size_t di = 0; di < decls.size(); ++di) {
        if (decls[di].is_definition) defs[decls[di].name].push_back({fi, di});
      }
    }
    // Per-file closure membership for visibility tests.
    std::vector<std::set<size_t>> closed(files_.size());
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      closed[fi].insert(closures_[fi].begin(), closures_[fi].end());
    }
    // A call in file `fi` resolves to a definition (dfi, ddi) when the
    // definition itself — or a declaration with the same qualified name —
    // is visible in fi's include closure, and the written qualification
    // is a suffix of the definition's qualified name.
    auto resolve = [&](size_t fi, const CallSite& c,
                       std::vector<std::pair<size_t, size_t>>* out) {
      auto it = defs.find(c.name);
      if (it == defs.end()) return;
      for (const auto& [dfi, ddi] : it->second) {
        const FnDecl& def = files_[dfi].summary.decls[ddi];
        if (c.qual != c.name && !QnameMatches(def.qname, c.qual)) continue;
        bool visible = closed[fi].count(dfi) > 0;
        if (!visible) {
          for (size_t ci : closures_[fi]) {
            for (const FnDecl& d : files_[ci].summary.decls) {
              if (!d.is_definition && d.qname == def.qname) {
                visible = true;
                break;
              }
            }
            if (visible) break;
          }
        }
        if (visible) out->push_back({dfi, ddi});
      }
    };

    struct Node {
      size_t fi, di;
      std::string chain;  // "Entry -> A -> B"
    };
    std::set<std::pair<size_t, size_t>> visited;
    std::deque<Node> queue;
    for (const std::string& entry : conc_.entries) {
      for (size_t fi = 0; fi < files_.size(); ++fi) {
        const auto& decls = files_[fi].summary.decls;
        for (size_t di = 0; di < decls.size(); ++di) {
          if (!decls[di].is_definition) continue;
          if (!QnameMatches(decls[di].qname, entry)) continue;
          if (visited.insert({fi, di}).second) {
            queue.push_back({fi, di, decls[di].qname});
          }
        }
      }
    }
    while (!queue.empty()) {
      Node node = queue.front();
      queue.pop_front();
      const FileAnalysis& file = files_[node.fi];
      for (const CallSite& c : file.summary.calls) {
        if (c.fn != static_cast<int>(node.di)) continue;
        if (conc_.safe.count(c.name) > 0) continue;
        if (conc_.blocking.count(c.name) > 0) {
          Report(node.fi, c.line, c.col, "loop-blocking",
                 "blocking call '" + c.name +
                     "' is reachable from event-loop entry (path: " +
                     node.chain + " -> " + c.name +
                     "); the loop thread must never block — use the "
                     "nonblocking socket_io wrappers or hand the work to a "
                     "worker");
          continue;
        }
        std::vector<std::pair<size_t, size_t>> targets;
        resolve(node.fi, c, &targets);
        for (const auto& [dfi, ddi] : targets) {
          if (visited.insert({dfi, ddi}).second) {
            std::string chain = node.chain;
            // Keep paths readable: cap the printed chain, not the search.
            if (std::count(chain.begin(), chain.end(), '>') < 8) {
              chain += " -> " + files_[dfi].summary.decls[ddi].name;
            }
            queue.push_back({dfi, ddi, chain});
          }
        }
      }
    }
  }

  // -------------------------------------------------- unordered-output

  void CheckUnorderedOutput() {
    for (size_t fi = 0; fi < files_.size(); ++fi) {
      std::set<std::string> unordered;
      for (size_t ci : closures_[fi]) {
        unordered.insert(files_[ci].summary.unordered.begin(),
                         files_[ci].summary.unordered.end());
      }
      if (unordered.empty()) continue;
      for (const RangeForFact& f : files_[fi].summary.range_fors) {
        if (!f.serializes || unordered.count(f.ident) == 0) continue;
        Report(fi, f.line, f.col, "unordered-output",
               "iteration over unordered container '" + f.ident +
                   "' feeds serialized output; the order is "
                   "nondeterministic across runs — copy to a sorted "
                   "container first");
      }
    }
  }

  const std::vector<FileAnalysis>& files_;
  const LayerGraph* layers_;
  const std::string layers_path_;
  const ConcurrencyConfig& conc_;
  std::map<std::string, size_t> key_to_file_;
  std::vector<std::vector<size_t>> closures_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> RunGlobalRules(const std::vector<FileAnalysis>& files,
                                       const LayerGraph* layers,
                                       const std::string& layers_path,
                                       const ConcurrencyConfig& conc) {
  GlobalPass pass(files, layers, layers_path, conc);
  return pass.Run();
}

}  // namespace lint
