// Trains all four EA models on a chosen benchmark and reports alignment
// quality (accuracy = Hits@1, plus Hits@5/10) — the "Base" columns of the
// paper's Table III.
//
// Usage: train_models [BENCHMARK] [SCALE] [EPOCHS]
//   BENCHMARK: ZH-EN (default) | JA-EN | FR-EN | DBP-WD | DBP-YAGO
//   SCALE:     tiny | small (default) | medium

#include <cstdio>
#include <cstdlib>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace exea;
  SetMinLogLevel(LogLevel::kWarning);

  std::string benchmark_name = argc > 1 ? argv[1] : "ZH-EN";
  std::string scale_name = argc > 2 ? argv[2] : "small";
  data::EaDataset dataset =
      data::MakeBenchmark(data::BenchmarkFromName(benchmark_name),
                          data::ScaleFromName(scale_name));
  std::printf("%s (%s): KG1 %zu/%zu, KG2 %zu/%zu, seeds %zu, test %zu\n\n",
              dataset.name.c_str(), scale_name.c_str(),
              dataset.kg1.num_entities(), dataset.kg1.num_triples(),
              dataset.kg2.num_entities(), dataset.kg2.num_triples(),
              dataset.train.size(), dataset.test.size());

  std::printf("%-10s %8s %8s %8s %9s\n", "model", "acc", "hits@5", "hits@10",
              "train(s)");
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kAlignE,
        emb::ModelKind::kGcnAlign, emb::ModelKind::kDualAmn}) {
    emb::TrainConfig config = emb::DefaultConfigFor(kind);
    if (argc > 3) config.epochs = static_cast<size_t>(std::atoi(argv[3]));
    std::unique_ptr<emb::EAModel> model = emb::MakeModel(kind, config);
    WallTimer timer;
    model->Train(dataset);
    double seconds = timer.ElapsedSeconds();
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
    kg::AlignmentSet aligned = eval::GreedyAlign(ranked);
    std::printf("%-10s %8.3f %8.3f %8.3f %9.2f\n", model->name().c_str(),
                eval::Accuracy(aligned, dataset.test_gold),
                eval::HitsAtK(ranked, dataset.test_gold, 5),
                eval::HitsAtK(ranked, dataset.test_gold, 10), seconds);
  }
  return 0;
}
