#ifndef CONC_UTIL_COUNTER_H_
#define CONC_UTIL_COUNTER_H_

#include <mutex>

namespace demo::util {

class Counter {
 public:
  // Callers must hold mu_ — a cross-TU contract the lint enforces.
  void BumpLocked() EXEA_REQUIRES(mu_);

  std::mutex mu_;
  long count_ EXEA_GUARDED_BY(mu_) = 0;
};

}  // namespace demo::util

#endif  // CONC_UTIL_COUNTER_H_
