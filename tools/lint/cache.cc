#include "lint/cache.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>

#include "lint/registry.h"
#include "lint/source.h"

namespace lint {

namespace {

constexpr const char* kMagic = "exea_lint-cache";
// v2: FnDecl params field on 'D' records plus the taint fact tables
// ('A' assigns, 'K' calls, 'Y' structural sinks, 'H' guards).
constexpr int kFormatVersion = 2;

// Percent-encodes the characters that would break the space-separated
// line format. The empty string round-trips as "%0" (a literal '%' is
// itself encoded, so no real value collides with the marker).
std::string Enc(const std::string& s) {
  if (s.empty()) return "%0";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Dec(std::string_view s) {
  if (s == "%0") return "";
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() &&
        std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
        std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      unsigned value = 0;
      std::from_chars(s.data() + i + 1, s.data() + i + 3, value, 16);
      out.push_back(static_cast<char>(value));
      i += 2;
      continue;
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string JoinSet(const std::set<std::string>& s) {
  std::string out;
  for (const std::string& v : s) {
    if (!out.empty()) out += ",";
    out += v;
  }
  return out;
}

std::set<std::string> SplitSet(std::string_view s) {
  std::set<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    size_t comma = s.find(',', i);
    if (comma == std::string_view::npos) comma = s.size();
    if (comma > i) out.emplace(s.substr(i, comma - i));
    i = comma + 1;
  }
  return out;
}

// Order- and empty-preserving list codec for positional data (parameter
// names with "" placeholders, per-argument identifier groups). Elements
// are identifiers, so ',' never occurs inside one.
std::string JoinList(const std::vector<std::string>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += v[i];
  }
  return out;
}

std::vector<std::string> SplitList(std::string_view s) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  size_t i = 0;
  while (true) {
    size_t comma = s.find(',', i);
    if (comma == std::string_view::npos) {
      out.emplace_back(s.substr(i));
      break;
    }
    out.emplace_back(s.substr(i, comma - i));
    i = comma + 1;
  }
  return out;
}

}  // namespace

uint64_t CacheConfigKey(const ConcurrencyConfig& conc) {
  std::string key = std::string(kMagic) + "|v" +
                    std::to_string(kFormatVersion) + "|";
  for (const RuleInfo& info : kRules) {
    key += info.name;
    key += ";";
  }
  key += "|e:" + JoinSet(conc.entries) + "|b:" + JoinSet(conc.blocking) +
         "|s:" + JoinSet(conc.safe) + "|a:" + JoinSet(conc.acquire);
  return Fnv1a64(key);
}

void AnalysisCache::Load() {
  std::ifstream in(path_);
  if (!in) return;
  std::string line;
  // Reusable token buffer; the views point into `line` and are consumed
  // before the next getline.
  std::vector<std::string_view> t;
  auto split = [&t](const std::string& text) {
    t.clear();
    size_t i = 0;
    while (i < text.size()) {
      while (i < text.size() && text[i] == ' ') ++i;
      size_t begin = i;
      while (i < text.size() && text[i] != ' ') ++i;
      if (i > begin) t.emplace_back(text.data() + begin, i - begin);
    }
  };
  auto num = [](std::string_view v, int base = 10) {
    uint64_t value = 0;
    std::from_chars(v.data(), v.data() + v.size(), value, base);
    return value;
  };
  auto fn_index = [](std::string_view v) {
    int value = -1;
    std::from_chars(v.data(), v.data() + v.size(), value);
    return value;
  };
  if (!std::getline(in, line)) return;
  split(line);
  if (t.size() < 3 || t[0] != kMagic ||
      num(t[1]) != static_cast<uint64_t>(kFormatVersion) ||
      num(t[2], 16) != key_) {
    return;
  }
  FileAnalysis cur;
  bool open = false;
  while (std::getline(in, line)) {
    split(line);
    if (t.empty() || t[0].size() != 1) continue;
    char tag = t[0][0];
    if (tag == 'F') {
      if (t.size() < 7) continue;
      cur = FileAnalysis();
      cur.path = Dec(t[1]);
      cur.content_hash = num(t[2], 16);
      cur.module = Dec(t[3]);
      cur.src_rel = Dec(t[4]);
      cur.is_header = t[5] == "1";
      cur.in_src = t[6] == "1";
      open = true;
      continue;
    }
    if (!open) continue;
    switch (tag) {
      case 'I':
        if (t.size() < 4) break;
        cur.summary.includes.push_back({num(t[1]), num(t[2]), Dec(t[3])});
        break;
      case 'D': {
        if (t.size() < 10) break;
        FnDecl d;
        d.name = Dec(t[1]);
        d.qname = Dec(t[2]);
        d.line = num(t[3]);
        d.col = num(t[4]);
        d.is_definition = t[5] == "1";
        d.is_method = t[6] == "1";
        d.requires_mutex = Dec(t[7]);
        d.body_begin = num(t[8]);
        d.body_end = num(t[9]);
        if (t.size() >= 11) d.params = SplitList(Dec(t[10]));
        cur.summary.decls.push_back(std::move(d));
        break;
      }
      case 'A': {
        if (t.size() < 7) break;
        TaintAssign a;
        a.lhs = Dec(t[1]);
        a.line = num(t[2]);
        a.col = num(t[3]);
        a.fn = fn_index(t[4]);
        a.rhs = SplitList(Dec(t[5]));
        a.calls = SplitList(Dec(t[6]));
        cur.summary.taint_assigns.push_back(std::move(a));
        break;
      }
      case 'K': {
        if (t.size() < 7) break;
        TaintCall c;
        c.name = Dec(t[1]);
        c.lhs = Dec(t[2]);
        c.line = num(t[3]);
        c.col = num(t[4]);
        c.fn = fn_index(t[5]);
        size_t nargs = num(t[6]);
        // Per argument: one idents field then one nested-call-names field.
        for (size_t a = 0; a < nargs && 8 + 2 * a < t.size(); ++a) {
          c.args.push_back(SplitList(Dec(t[7 + 2 * a])));
          c.arg_calls.push_back(SplitList(Dec(t[8 + 2 * a])));
        }
        cur.summary.taint_calls.push_back(std::move(c));
        break;
      }
      case 'Y': {
        if (t.size() < 7) break;
        TaintSink s;
        s.kind = Dec(t[1]);
        s.base = Dec(t[2]);
        s.line = num(t[3]);
        s.col = num(t[4]);
        s.fn = fn_index(t[5]);
        s.idents = SplitList(Dec(t[6]));
        cur.summary.taint_sinks.push_back(std::move(s));
        break;
      }
      case 'J':
        if (t.size() < 2) break;
        cur.summary.taint_assoc.push_back(Dec(t[1]));
        break;
      case 'H': {
        if (t.size() < 4) break;
        TaintGuard g;
        g.line = num(t[1]);
        g.fn = fn_index(t[2]);
        g.idents = SplitList(Dec(t[3]));
        cur.summary.taint_guards.push_back(std::move(g));
        break;
      }
      case 'C': {
        if (t.size() < 7) break;
        CallSite c;
        c.name = Dec(t[1]);
        c.qual = Dec(t[2]);
        c.line = num(t[3]);
        c.col = num(t[4]);
        c.fn = fn_index(t[5]);
        c.held = SplitSet(Dec(t[6]));
        cur.summary.calls.push_back(std::move(c));
        break;
      }
      case 'R': {
        if (t.size() < 6) break;
        MemberRef r;
        r.name = Dec(t[1]);
        r.line = num(t[2]);
        r.col = num(t[3]);
        r.fn = fn_index(t[4]);
        r.held = SplitSet(Dec(t[5]));
        cur.summary.refs.push_back(std::move(r));
        break;
      }
      case 'G':
        if (t.size() < 3) break;
        cur.summary.guarded.push_back({Dec(t[1]), Dec(t[2])});
        break;
      case 'Q':
        if (t.size() < 3) break;
        cur.summary.required.push_back({Dec(t[1]), Dec(t[2])});
        break;
      case 'S':
        if (t.size() < 2) break;
        cur.summary.status_fns.push_back(Dec(t[1]));
        break;
      case 'X':
        if (t.size() < 4) break;
        cur.summary.discards.push_back({Dec(t[1]), num(t[2]), num(t[3])});
        break;
      case 'U':
        if (t.size() < 2) break;
        cur.summary.unordered.push_back(Dec(t[1]));
        break;
      case 'T': {
        if (t.size() < 5) break;
        RangeForFact f;
        f.ident = Dec(t[1]);
        f.line = num(t[2]);
        f.col = num(t[3]);
        f.serializes = t[4] == "1";
        cur.summary.range_fors.push_back(std::move(f));
        break;
      }
      case 'L': {
        if (t.size() < 5) break;
        Diagnostic d;
        d.line = num(t[1]);
        d.col = num(t[2]);
        d.rule = Dec(t[3]);
        d.message = Dec(t[4]);
        cur.local.push_back(std::move(d));
        break;
      }
      case 'W': {
        if (t.size() < 4) break;
        WaiverLine w;
        w.comment_only = t[2] == "1";
        w.rules = SplitSet(Dec(t[3]));
        cur.waivers[num(t[1])] = std::move(w);
        break;
      }
      case 'E':
        entries_[NormalizedRepoPath(cur.path)] = std::move(cur);
        open = false;
        break;
      default:
        break;
    }
  }
}

bool AnalysisCache::Lookup(const std::string& path, uint64_t content_hash,
                           FileAnalysis* out) const {
  auto it = entries_.find(NormalizedRepoPath(path));
  if (it == entries_.end() || it->second.content_hash != content_hash) {
    return false;
  }
  *out = it->second;
  out->path = path;  // the caller's spelling, not the cached one
  out->from_cache = true;
  // Local diagnostics point at the file as spelled by this invocation.
  for (Diagnostic& d : out->local) d.file = path;
  return true;
}

bool AnalysisCache::Write(const std::vector<FileAnalysis>& files) const {
  std::error_code ec;
  std::filesystem::create_directories(path_.parent_path(), ec);
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return false;
  char key_hex[32];
  std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                static_cast<unsigned long long>(key_));
  out << kMagic << " " << kFormatVersion << " " << key_hex << "\n";
  char hash_hex[32];
  for (const FileAnalysis& f : files) {
    std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                  static_cast<unsigned long long>(f.content_hash));
    out << "F " << Enc(f.path) << " " << hash_hex << " " << Enc(f.module)
        << " " << Enc(f.src_rel) << " " << (f.is_header ? 1 : 0) << " "
        << (f.in_src ? 1 : 0) << "\n";
    for (const IncludeFact& i : f.summary.includes) {
      out << "I " << i.line << " " << i.col << " " << Enc(i.target) << "\n";
    }
    for (const FnDecl& d : f.summary.decls) {
      out << "D " << Enc(d.name) << " " << Enc(d.qname) << " " << d.line
          << " " << d.col << " " << (d.is_definition ? 1 : 0) << " "
          << (d.is_method ? 1 : 0) << " " << Enc(d.requires_mutex) << " "
          << d.body_begin << " " << d.body_end << " "
          << Enc(JoinList(d.params)) << "\n";
    }
    for (const TaintAssign& a : f.summary.taint_assigns) {
      out << "A " << Enc(a.lhs) << " " << a.line << " " << a.col << " "
          << a.fn << " " << Enc(JoinList(a.rhs)) << " "
          << Enc(JoinList(a.calls)) << "\n";
    }
    for (const TaintCall& c : f.summary.taint_calls) {
      out << "K " << Enc(c.name) << " " << Enc(c.lhs) << " " << c.line
          << " " << c.col << " " << c.fn << " " << c.args.size();
      for (size_t a = 0; a < c.args.size(); ++a) {
        out << " " << Enc(JoinList(c.args[a])) << " "
            << Enc(JoinList(a < c.arg_calls.size() ? c.arg_calls[a]
                                                   : std::vector<std::string>()));
      }
      out << "\n";
    }
    for (const TaintSink& s : f.summary.taint_sinks) {
      out << "Y " << Enc(s.kind) << " " << Enc(s.base) << " " << s.line
          << " " << s.col << " " << s.fn << " " << Enc(JoinList(s.idents))
          << "\n";
    }
    for (const std::string& m : f.summary.taint_assoc) {
      out << "J " << Enc(m) << "\n";
    }
    for (const TaintGuard& g : f.summary.taint_guards) {
      out << "H " << g.line << " " << g.fn << " "
          << Enc(JoinList(g.idents)) << "\n";
    }
    for (const CallSite& c : f.summary.calls) {
      out << "C " << Enc(c.name) << " " << Enc(c.qual) << " " << c.line
          << " " << c.col << " " << c.fn << " " << Enc(JoinSet(c.held))
          << "\n";
    }
    for (const MemberRef& r : f.summary.refs) {
      out << "R " << Enc(r.name) << " " << r.line << " " << r.col << " "
          << r.fn << " " << Enc(JoinSet(r.held)) << "\n";
    }
    for (const GuardedMemberFact& g : f.summary.guarded) {
      out << "G " << Enc(g.name) << " " << Enc(g.mutex) << "\n";
    }
    for (const RequiredMethodFact& q : f.summary.required) {
      out << "Q " << Enc(q.name) << " " << Enc(q.mutex) << "\n";
    }
    for (const std::string& s : f.summary.status_fns) {
      out << "S " << Enc(s) << "\n";
    }
    for (const DiscardCandidate& d : f.summary.discards) {
      out << "X " << Enc(d.callee) << " " << d.line << " " << d.col << "\n";
    }
    for (const std::string& u : f.summary.unordered) {
      out << "U " << Enc(u) << "\n";
    }
    for (const RangeForFact& r : f.summary.range_fors) {
      out << "T " << Enc(r.ident) << " " << r.line << " " << r.col << " "
          << (r.serializes ? 1 : 0) << "\n";
    }
    for (const Diagnostic& d : f.local) {
      out << "L " << d.line << " " << d.col << " " << Enc(d.rule) << " "
          << Enc(d.message) << "\n";
    }
    for (const auto& [wline, w] : f.waivers) {
      out << "W " << wline << " " << (w.comment_only ? 1 : 0) << " "
          << Enc(JoinSet(w.rules)) << "\n";
    }
    out << "E\n";
  }
  return out.good();
}

}  // namespace lint
