// AsyncServer: the concurrent TCP serving core (DESIGN.md §12).
//
//   epoll event loop  →  bounded MPMC queue  →  worker pool  →  loop
//    (net/EventLoop)      (net/BoundedQueue)    (util/ThreadPool)
//
// The single-threaded event loop owns every socket: it accepts, frames
// NDJSON request lines (partial reads, oversized-line draining), and
// writes responses back in per-connection request order. Each complete
// line is admitted into a bounded queue; workers pop lines, run them
// through the ordinary blocking Server::HandleLine — so response bytes
// and traffic counters are identical to the synchronous path by
// construction — and post the response back to the loop. Align requests
// are routed (via Server's dispatcher seam) through an AlignCoalescer,
// which merges concurrent align batches into one similarity-index
// dispatch without changing any response byte.
//
// Admission control, in the order a request meets it:
//   1. max_connections — excess connects are closed at accept
//      (net.conn_rejected),
//   2. oversized lines — rejected by the loop with the blocking path's
//      exact error (serve.oversized),
//   3. queue_capacity — a full queue rejects immediately with
//      UNAVAILABLE (serve.rejected); the loop never blocks on a
//      saturated worker pool,
//   4. deadline shed — each request's deadline starts at admission; a
//      request that expires while queued is shed right after dequeue,
//      before any parsing or compute (serve.deadline_exceeded +
//      serve.shed).
//
// Shutdown ({"op":"shutdown"} or Shutdown()): the loop stops accepting
// and reading, the queue closes, workers drain every admitted request,
// and the loop flushes all pending responses before exiting — every
// admitted request is answered.
//
// The workers get their own ThreadPool instance, NOT util/parallel.h's
// process-wide pool: workers block in queue pops and in coalescer waits,
// and parking blocking loops on the shared pool would starve the
// engine's ParallelFor kernels (nested calls would inline, but the
// workers never finish).

#ifndef EXEA_SERVE_ASYNC_SERVER_H_
#define EXEA_SERVE_ASYNC_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/bounded_queue.h"
#include "net/event_loop.h"
#include "obs/metrics.h"
#include "serve/coalescer.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace exea::serve {

struct AsyncServerOptions {
  size_t workers = 4;
  size_t queue_capacity = 1024;   // admission bound (requests)
  size_t max_connections = 256;   // concurrent client cap
  size_t max_batch = 32;          // coalescer rows per dispatch
  double batch_wait_ms = 1.0;     // coalescer hold for stragglers

  // Protocol-level options (deadline, line cap, registry), shared with
  // the blocking server so both paths stay configured identically.
  ServerOptions server;

  // Test seam: runs in each worker right after dequeue, before the shed
  // check — lets tests hold workers to force queue-full and expired
  // deadlines deterministically. Never set in production.
  std::function<void()> worker_hook_for_test;
};

class AsyncServer {
 public:
  // Borrows `engine`, which must outlive the server.
  AsyncServer(QueryEngine* engine, const AsyncServerOptions& options);

  // Joins everything (implies Shutdown()).
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  // Binds 127.0.0.1:`port` (0 → kernel-assigned) and starts the loop
  // thread and workers. Call once.
  [[nodiscard]] Status Start(int port);

  // The bound port, valid after a successful Start().
  int port() const;

  // Blocks until a {"op":"shutdown"} request (or Shutdown()) and then
  // completes the drain: every admitted request answered, all threads
  // joined.
  void Wait();

  // Programmatic shutdown; same drain as the shutdown op. Thread-safe,
  // idempotent.
  void Shutdown();

  // The protocol core (stats, counters). The async path shares all of it.
  Server& server() { return server_; }

 private:
  // One admitted request line traveling loop → queue → worker.
  struct Request {
    uint64_t conn = 0;
    uint64_t seq = 0;
    std::string line;
    Deadline deadline = Deadline::None();  // started at admission
    WallTimer queued;                      // measures the queue wait
  };

  void OnLine(const net::EventLoop::Line& line);  // loop thread
  void WorkerLoop();
  void TeardownOnce();

  QueryEngine* engine_;
  AsyncServerOptions options_;
  obs::Registry* registry_;  // never null; resolved like Server's
  Server server_;
  AlignCoalescer coalescer_;
  net::BoundedQueue<Request> admission_queue_;
  std::unique_ptr<net::EventLoop> loop_;
  std::thread loop_thread_;
  std::unique_ptr<util::ThreadPool> worker_pool_;
  obs::Gauge& queue_depth_;
  std::once_flag teardown_once_;

  // mu_ protects everything declared after it (the class convention the
  // lock-discipline lint pass enforces).
  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_signaled_ EXEA_GUARDED_BY(mu_) = false;
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_ASYNC_SERVER_H_
