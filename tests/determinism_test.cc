// Determinism regression tests for the parallel hot paths: every kernel
// that runs on the worker pool must produce byte-identical output at any
// thread count (the contract documented in DESIGN.md "Concurrency model"
// and util/parallel.h). Each kernel is run at 1, 2, and 8 threads on
// seeded inputs and the results are compared bit for bit against the
// serial (--threads=1) baseline.

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/eashapley.h"
#include "baselines/perturbation.h"
#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/csls.h"
#include "eval/inference.h"
#include "kg/neighborhood.h"
#include "la/matrix.h"
#include "la/simd.h"
#include "la/similarity.h"
#include "la/similarity_index.h"
#include "obs/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace exea {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

// Runs `fn` under each thread count and returns the results, restoring
// the hardware default afterwards.
template <typename Fn>
auto RunAtEachThreadCount(Fn fn) {
  std::vector<decltype(fn())> results;
  for (size_t threads : kThreadCounts) {
    util::SetThreadCount(threads);
    results.push_back(fn());
  }
  util::SetThreadCount(0);
  return results;
}

bool BytesEqual(const la::Matrix& a, const la::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

la::Matrix SeededMatrix(uint64_t seed, size_t rows, size_t cols) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  m.FillNormal(rng, 1.0f);
  return m;
}

TEST(DeterminismTest, CosineSimilarityMatrixIsThreadCountInvariant) {
  la::Matrix a = SeededMatrix(11, 173, 32);  // deliberately not a multiple
  la::Matrix b = SeededMatrix(12, 209, 32);  // of the row grain
  auto results = RunAtEachThreadCount(
      [&] { return la::CosineSimilarityMatrix(a, b); });
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(BytesEqual(results[0], results[i]))
        << "threads=" << kThreadCounts[i] << " differs from serial";
  }
}

TEST(DeterminismTest, TopKByCosineAllIsThreadCountInvariant) {
  la::Matrix queries = SeededMatrix(21, 157, 48);
  la::Matrix table = SeededMatrix(22, 301, 48);
  auto results = RunAtEachThreadCount(
      [&] { return la::TopKByCosineAll(queries, table, 10); });
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0].size(), results[i].size());
    for (size_t q = 0; q < results[0].size(); ++q) {
      ASSERT_EQ(results[0][q].size(), results[i][q].size());
      for (size_t r = 0; r < results[0][q].size(); ++r) {
        EXPECT_EQ(results[0][q][r].index, results[i][q][r].index)
            << "threads=" << kThreadCounts[i] << " query " << q;
        // Bit-identical, not approximately equal.
        EXPECT_EQ(results[0][q][r].score, results[i][q][r].score)
            << "threads=" << kThreadCounts[i] << " query " << q;
      }
    }
  }
}

TEST(DeterminismTest, TopKByCosineMatchesAllQueriesPath) {
  // The single-query entry point shares TopKWithNorms with the batch one;
  // row 0 of the batch must equal the direct call.
  la::Matrix queries = SeededMatrix(23, 5, 16);
  la::Matrix table = SeededMatrix(24, 64, 16);
  auto all = la::TopKByCosineAll(queries, table, 7);
  auto one = la::TopKByCosine(queries.Row(0), table, 7);
  ASSERT_EQ(all[0].size(), one.size());
  for (size_t r = 0; r < one.size(); ++r) {
    EXPECT_EQ(all[0][r].index, one[r].index);
    EXPECT_EQ(all[0][r].score, one[r].score);
  }
}

TEST(DeterminismTest, CslsAdjustIsThreadCountInvariant) {
  la::Matrix sim =
      la::CosineSimilarityMatrix(SeededMatrix(31, 140, 24),
                                 SeededMatrix(32, 190, 24));
  auto results =
      RunAtEachThreadCount([&] { return eval::CslsAdjust(sim, 10); });
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(BytesEqual(results[0], results[i]))
        << "threads=" << kThreadCounts[i] << " differs from serial";
  }
}

// The cross-SIMD determinism pin: la/simd.h promises the scalar kernels
// mirror the AVX2 arithmetic DAG, so EVERY (simd level, thread count)
// cell — not just cells at a fixed level — must be bit-identical to the
// scalar/serial baseline for the dispatched hot paths.
TEST(DeterminismTest, TopKAndCslsAreSimdLevelAndThreadCountInvariant) {
  la::SimdLevel original = la::ActiveSimdLevel();
  std::vector<la::SimdLevel> levels = {la::SimdLevel::kScalar};
  if (la::Avx2Supported()) levels.push_back(la::SimdLevel::kAvx2);

  la::Matrix queries = SeededMatrix(41, 97, 40);
  la::Matrix table = SeededMatrix(42, 211, 40);
  la::SetSimdLevelForTest(la::SimdLevel::kScalar);
  util::SetThreadCount(1);
  auto topk_base = la::TopKByCosineAll(queries, table, 10);
  la::Matrix csls_base =
      eval::CslsAdjust(la::CosineSimilarityMatrix(queries, table), 10);

  for (la::SimdLevel level : levels) {
    la::SetSimdLevelForTest(level);
    auto topk_runs = RunAtEachThreadCount(
        [&] { return la::TopKByCosineAll(queries, table, 10); });
    auto csls_runs = RunAtEachThreadCount([&] {
      return eval::CslsAdjust(la::CosineSimilarityMatrix(queries, table), 10);
    });
    for (size_t i = 0; i < topk_runs.size(); ++i) {
      ASSERT_EQ(topk_base.size(), topk_runs[i].size());
      for (size_t q = 0; q < topk_base.size(); ++q) {
        ASSERT_EQ(topk_base[q].size(), topk_runs[i][q].size());
        for (size_t r = 0; r < topk_base[q].size(); ++r) {
          EXPECT_EQ(topk_base[q][r].index, topk_runs[i][q][r].index)
              << la::SimdLevelName(level) << " threads=" << kThreadCounts[i]
              << " query " << q;
          EXPECT_EQ(topk_base[q][r].score, topk_runs[i][q][r].score)
              << la::SimdLevelName(level) << " threads=" << kThreadCounts[i]
              << " query " << q;
        }
      }
      EXPECT_TRUE(BytesEqual(csls_base, csls_runs[i]))
          << la::SimdLevelName(level) << " threads=" << kThreadCounts[i]
          << " CSLS differs from the scalar/serial baseline";
    }
  }
  la::SetSimdLevelForTest(original);
  util::SetThreadCount(0);
}

// End-to-end over a trained model: ranked CSLS inference must produce the
// same similarity matrix and the same full candidate rankings at any
// thread count.
TEST(DeterminismTest, RankTestEntitiesCslsIsThreadCountInvariant) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  util::SetThreadCount(1);
  model->Train(dataset);

  auto results = RunAtEachThreadCount(
      [&] { return eval::RankTestEntitiesCsls(*model, dataset, 5); });
  const eval::RankedSimilarity& serial = results[0];
  for (size_t i = 1; i < results.size(); ++i) {
    const eval::RankedSimilarity& parallel = results[i];
    EXPECT_TRUE(
        BytesEqual(serial.similarity_matrix(), parallel.similarity_matrix()))
        << "threads=" << kThreadCounts[i] << " similarity matrix differs";
    ASSERT_EQ(serial.sources(), parallel.sources());
    for (kg::EntityId source : serial.sources()) {
      const auto& a = serial.CandidatesFor(source);
      const auto& b = parallel.CandidatesFor(source);
      ASSERT_EQ(a.size(), b.size());
      for (size_t c = 0; c < a.size(); ++c) {
        EXPECT_EQ(a[c].target, b[c].target)
            << "threads=" << kThreadCounts[i] << " source " << source;
        EXPECT_EQ(a[c].score, b[c].score)
            << "threads=" << kThreadCounts[i] << " source " << source;
      }
    }
  }
}

// The Shapley permutation sweep batches its perturbation evaluations onto
// the pool; attributions must not depend on the thread count.
TEST(DeterminismTest, ShapleyAttributionsAreThreadCountInvariant) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  util::SetThreadCount(1);
  model->Train(dataset);
  baselines::PerturbedEmbedder embedder(dataset, *model);

  // Any test pair with a few candidates on both sides will do.
  kg::EntityId e1 = kg::kInvalidEntity;
  kg::EntityId e2 = kg::kInvalidEntity;
  std::vector<kg::Triple> c1;
  std::vector<kg::Triple> c2;
  for (const kg::AlignedPair& pair : dataset.test) {
    auto t1 = kg::TriplesWithinHops(dataset.kg1, pair.source, 1);
    auto t2 = kg::TriplesWithinHops(dataset.kg2, pair.target, 1);
    if (t1.size() < 2 || t2.size() < 2) continue;
    e1 = pair.source;
    e2 = pair.target;
    c1 = std::move(t1);
    c2 = std::move(t2);
    break;
  }
  ASSERT_NE(e1, kg::kInvalidEntity);

  for (baselines::ShapleyEstimator estimator :
       {baselines::ShapleyEstimator::kMonteCarlo,
        baselines::ShapleyEstimator::kKernelShap}) {
    auto results = RunAtEachThreadCount([&] {
      baselines::EAShapley shapley(&embedder, estimator,
                                   /*num_samples=*/16);
      return shapley.AttributionScores(e1, e2, c1, c2);
    });
    for (size_t i = 1; i < results.size(); ++i) {
      ASSERT_EQ(results[0].size(), results[i].size());
      for (size_t f = 0; f < results[0].size(); ++f) {
        EXPECT_EQ(results[0][f], results[i][f])
            << "threads=" << kThreadCounts[i] << " feature " << f;
      }
    }
  }
}

// The sharded scatter-gather merge is doubly invariant: at any thread
// count AND any shard count, the per-query top-k is bit-identical to the
// serial single-index scan. Shard boundaries deliberately misalign with
// the ParallelFor row grain.
TEST(DeterminismTest, ShardedTopKIsShardAndThreadCountInvariant) {
  la::Matrix queries = SeededMatrix(31, 93, 24);
  la::Matrix table = SeededMatrix(32, 517, 24);
  obs::Registry registry;

  util::SetThreadCount(1);
  la::ExactIndex single(&table, &registry);
  auto baseline = single.TopKAll(queries, 10);
  util::SetThreadCount(0);

  for (size_t shards : {size_t{2}, size_t{5}, size_t{13}}) {
    auto build = [&] {
      std::vector<std::unique_ptr<la::SimilarityIndex>> children;
      size_t grain = (table.rows() + shards - 1) / shards;
      for (size_t s = 0; s < shards; ++s) {
        size_t begin = std::min(table.rows(), s * grain);
        size_t end = std::min(table.rows(), begin + grain);
        children.push_back(std::make_unique<la::ExactIndex>(
            &table, begin, end, &registry));
      }
      return la::ShardedIndex(std::move(children), "", &registry);
    };
    auto results = RunAtEachThreadCount(
        [&] { return build().TopKAll(queries, 10); });
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(baseline.size(), results[i].size());
      for (size_t q = 0; q < baseline.size(); ++q) {
        ASSERT_EQ(baseline[q].size(), results[i][q].size());
        for (size_t r = 0; r < baseline[q].size(); ++r) {
          EXPECT_EQ(baseline[q][r].index, results[i][q][r].index)
              << "shards=" << shards << " threads=" << kThreadCounts[i]
              << " query " << q;
          EXPECT_EQ(baseline[q][r].score, results[i][q][r].score)
              << "shards=" << shards << " threads=" << kThreadCounts[i]
              << " query " << q;
        }
      }
    }
  }
}

}  // namespace
}  // namespace exea
