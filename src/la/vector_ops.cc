#include "la/vector_ops.h"

#include <cmath>

#include "util/logging.h"

namespace exea::la {

float Dot(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float Dot(const Vec& a, const Vec& b) {
  EXEA_CHECK_EQ(a.size(), b.size());
  return Dot(a.data(), b.data(), a.size());
}

float Norm(const float* a, size_t n) {
  return std::sqrt(Dot(a, a, n));
}

float Norm(const Vec& a) { return Norm(a.data(), a.size()); }

float SquaredDistance(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredDistance(const Vec& a, const Vec& b) {
  EXEA_CHECK_EQ(a.size(), b.size());
  return SquaredDistance(a.data(), b.data(), a.size());
}

float Cosine(const float* a, const float* b, size_t n) {
  float dot = 0.0f;
  float na = 0.0f;
  float nb = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  constexpr float kEps = 1e-12f;
  if (na < kEps || nb < kEps) return 0.0f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

float Cosine(const Vec& a, const Vec& b) {
  EXEA_CHECK_EQ(a.size(), b.size());
  return Cosine(a.data(), b.data(), a.size());
}

void Axpy(float alpha, const float* b, float* a, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += alpha * b[i];
}

void Axpy(float alpha, const Vec& b, Vec& a) {
  EXEA_CHECK_EQ(a.size(), b.size());
  Axpy(alpha, b.data(), a.data(), a.size());
}

void Scale(float alpha, float* a, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] *= alpha;
}

void Scale(float alpha, Vec& a) { Scale(alpha, a.data(), a.size()); }

void NormalizeL2(float* a, size_t n) {
  float norm = Norm(a, n);
  if (norm > 1e-12f) Scale(1.0f / norm, a, n);
}

void NormalizeL2(Vec& a) { NormalizeL2(a.data(), a.size()); }

Vec Sub(const Vec& a, const Vec& b) {
  EXEA_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Add(const Vec& a, const Vec& b) {
  EXEA_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Concat(const Vec& a, const Vec& b) {
  Vec out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

}  // namespace exea::la
