// Extra comparison (context for the paper's Introduction / Related Work):
// classical pre-embedding EA — simplified PARIS and Similarity Flooding —
// against the embedding models, before and after ExEA repair, on every
// benchmark.
//
// Expected shape: on these *synthetic* benchmarks PARIS is extremely
// strong — the KGs are noisy copies of one another, the exact regime
// functionality-based propagation was designed for (the experimental
// study the paper cites as [6] reports the same phenomenon on clean
// graphs). Similarity Flooding lands between the base embedding models
// and ExEA-repaired ones. ExEA repair closes most of the gap between the
// embedding models and PARIS, while remaining applicable to the noisy,
// heterogeneous real-world settings where embedding methods win.

#include <cstdio>

#include "bench/common.h"
#include "classical/paris.h"
#include "classical/similarity_flooding.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Extra — classical EA baselines vs embedding models + ExEA repair",
      "context for the paper's related work ([1] similarity flooding, [2] "
      "PARIS)");

  data::Scale scale = data::ScaleFromEnv();
  bench::Table table({"dataset", "method", "accuracy", "pairs", "time_s"});
  for (data::Benchmark benchmark : data::AllBenchmarks()) {
    data::EaDataset dataset = data::MakeBenchmark(benchmark, scale);

    {
      WallTimer timer;
      classical::ParisResult paris =
          classical::RunParis(dataset, classical::ParisOptions{});
      table.AddRow({dataset.name, "PARIS (simplified)",
                    bench::Table::Fmt(
                        eval::Accuracy(paris.alignment, dataset.test_gold)),
                    std::to_string(paris.alignment.size()),
                    bench::Table::Fmt(timer.ElapsedSeconds(), 2)});
    }
    {
      WallTimer timer;
      classical::SimilarityFloodingResult sf =
          classical::RunSimilarityFlooding(
              dataset, classical::SimilarityFloodingOptions{});
      table.AddRow({dataset.name, "SimilarityFlooding",
                    bench::Table::Fmt(
                        eval::Accuracy(sf.alignment, dataset.test_gold)),
                    std::to_string(sf.alignment.size()),
                    bench::Table::Fmt(timer.ElapsedSeconds(), 2)});
    }
    {
      WallTimer timer;
      std::unique_ptr<emb::EAModel> model =
          bench::TrainModel(emb::ModelKind::kDualAmn, dataset);
      eval::RankedSimilarity ranked =
          eval::RankTestEntities(*model, dataset);
      kg::AlignmentSet base = eval::GreedyAlign(ranked);
      table.AddRow({dataset.name, "Dual-AMN (base)",
                    bench::Table::Fmt(
                        eval::Accuracy(base, dataset.test_gold)),
                    std::to_string(base.size()),
                    bench::Table::Fmt(timer.ElapsedSeconds(), 2)});
      explain::ExeaExplainer explainer(dataset, *model,
                                       explain::ExeaConfig{});
      repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
      repair::RepairReport report = pipeline.Run(base, ranked);
      table.AddRow({dataset.name, "Dual-AMN + ExEA",
                    bench::Table::Fmt(report.repaired_accuracy),
                    std::to_string(report.repaired_alignment.size()),
                    bench::Table::Fmt(timer.ElapsedSeconds(), 2)});
    }
    table.AddSeparator();
  }
  table.Print();
  return 0;
}
