// Alignment Dependency Graph (ADG) construction — paper Section III-B.
//
// Nodes merge matched entity pairs; the central node is the EA pair being
// explained, neighbour nodes are the matched neighbour pairs. Every edge
// between the central node and a neighbour node corresponds to one matched
// path pair and carries a weight derived from PARIS-style relation
// functionality:
//
//   strongly influential  (both paths length 1):  Eq. (5)  min of Eq.(3)/(4)
//   moderately influential (exactly one length 1): Eq. (7)  alpha * min
//   weakly influential    (both length > 1):       fixed small weight
//
// The central node's confidence aggregates neighbour influence with the
// adaptive scheme of Eq. (9):
//   c = sigmoid(c_s + 1(c_s < theta) * (c_m + 1(c_m < gamma) * c_w)).

#ifndef EXEA_EXPLAIN_ADG_H_
#define EXEA_EXPLAIN_ADG_H_

#include <functional>
#include <vector>

#include "explain/config.h"
#include "explain/explanation.h"
#include "kg/functionality.h"

namespace exea::explain {

enum class EdgeInfluence {
  kStrong,
  kModerate,
  kWeak,
};

const char* EdgeInfluenceName(EdgeInfluence influence);

struct AdgEdge {
  EdgeInfluence influence = EdgeInfluence::kWeak;
  double weight = 0.0;
  size_t match_index = 0;  // index into the source Explanation's matches
};

// A neighbour node: an aligned entity pair with its influence (the pair's
// embedding similarity) and the edges connecting it to the central node.
struct AdgNode {
  kg::EntityId e1 = kg::kInvalidEntity;
  kg::EntityId e2 = kg::kInvalidEntity;
  double influence = 0.0;  // I(n_i): similarity of the two entities
  std::vector<AdgEdge> edges;
};

struct Adg {
  kg::EntityId e1 = kg::kInvalidEntity;  // central pair
  kg::EntityId e2 = kg::kInvalidEntity;
  double central_similarity = 0.0;

  std::vector<AdgNode> neighbors;

  // Eq. (9) aggregates (c_s, c_m, c_w) and the resulting confidence.
  double strong_sum = 0.0;
  double moderate_sum = 0.0;
  double weak_sum = 0.0;
  double confidence = 0.5;  // sigmoid(0) when there is no evidence

  // Whether any neighbour contributes a strongly-influential edge — the
  // low-confidence-conflict criterion of Section IV-C.
  bool HasStrongEdge() const;
};

// Entity-pair similarity oracle (usually EAModel::Similarity).
using PairSimilarityFn =
    std::function<double(kg::EntityId e1, kg::EntityId e2)>;

// Builds the ADG for an explanation. `func1`/`func2` are the relation
// functionality tables of the source/target KG.
Adg BuildAdg(const Explanation& explanation,
             const kg::RelationFunctionality& func1,
             const kg::RelationFunctionality& func2,
             const PairSimilarityFn& similarity, const ExeaConfig& config);

// Eq. (6)-style weight of a relation path relative to its origin entity:
// the product over steps of ifunc(r) for outgoing steps and func(r) for
// incoming steps. Exposed for tests and the repair module.
double PathWeight(const kg::RelationPath& path,
                  const kg::RelationFunctionality& func);

// Recomputes the Eq. (9) aggregates and confidence in place (used after
// neighbour deletion during relation-alignment conflict repair).
void RecomputeConfidence(Adg& adg, const ExeaConfig& config);

// Removes neighbour node `index` and recomputes confidence.
void RemoveNeighbor(Adg& adg, size_t index, const ExeaConfig& config);

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_ADG_H_
