// Table VI: EA verification — precision/recall/F1 of the ChatGPT-style
// claim-checking agent, the ExEA structural verifier, and their fusion,
// on balanced correct/incorrect pair sets drawn from MTransE and Dual-AMN
// results (ZH-EN and DBP-WD).
//
// Paper shape: ExEA > ChatGPT; the fusion clearly beats both
// (complementarity of textual and structural signals).

#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "llm/sim_llm.h"
#include "llm/verification.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

using namespace exea;

// Builds a balanced verification set: `n` correct pairs and `n` incorrect
// pairs from the model's predictions (the paper samples from model output:
// correct predictions and erroneous ones).
void BuildCases(const data::EaDataset& dataset,
                const kg::AlignmentSet& predictions, size_t n,
                std::vector<kg::AlignedPair>& pairs,
                std::vector<bool>& gold) {
  std::vector<kg::AlignedPair> correct;
  std::vector<kg::AlignedPair> incorrect;
  for (const kg::AlignedPair& pair : predictions.SortedPairs()) {
    auto it = dataset.gold.find(pair.source);
    bool is_correct = it != dataset.gold.end() && it->second == pair.target;
    (is_correct ? correct : incorrect).push_back(pair);
  }
  Rng rng(2024);
  rng.Shuffle(correct);
  rng.Shuffle(incorrect);
  for (size_t i = 0; i < std::min(n, correct.size()); ++i) {
    pairs.push_back(correct[i]);
    gold.push_back(true);
  }
  for (size_t i = 0; i < std::min(n, incorrect.size()); ++i) {
    pairs.push_back(incorrect[i]);
    gold.push_back(false);
  }
}

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Table VI — comparison with LLMs on EA verification",
      "ExEA paper Table VI (Section V-D2); ChatGPT simulated (DESIGN.md §1)");

  data::Scale scale = data::ScaleFromEnv();
  size_t per_class = bench::SamplesFromEnv(80);

  bench::Table table({"model", "dataset", "verifier", "precision", "recall",
                      "F1"});
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kDualAmn}) {
    for (data::Benchmark benchmark :
         {data::Benchmark::kZhEn, data::Benchmark::kDbpWd}) {
      data::EaDataset dataset = data::MakeBenchmark(benchmark, scale);
      std::unique_ptr<emb::EAModel> model = bench::TrainModel(kind, dataset);
      eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
      kg::AlignmentSet predictions = eval::GreedyAlign(ranked);

      std::vector<kg::AlignedPair> pairs;
      std::vector<bool> gold;
      BuildCases(dataset, predictions, per_class, pairs, gold);

      explain::ExeaConfig config;
      explain::ExeaExplainer explainer(dataset, *model, config);
      explain::AlignmentContext context(&predictions, &dataset.train);
      llm::SimulatedLLM sim_llm;
      llm::ChatGptVerifier chatgpt(&sim_llm, &dataset);
      llm::ExeaVerifier exea(&explainer, &context);
      llm::FusionVerifier fusion(&chatgpt, &exea, model.get());

      auto evaluate = [&](const std::string& name, auto&& verify) {
        std::vector<bool> predicted;
        predicted.reserve(pairs.size());
        for (const kg::AlignedPair& pair : pairs) {
          predicted.push_back(verify(pair.source, pair.target));
        }
        eval::BinaryClassificationResult r =
            eval::EvaluateBinary(predicted, gold);
        table.AddRow({model->name(), dataset.name, name,
                      bench::Table::Fmt(r.precision),
                      bench::Table::Fmt(r.recall), bench::Table::Fmt(r.f1)});
      };
      evaluate("ChatGPT", [&](kg::EntityId a, kg::EntityId b) {
        return chatgpt.Verify(a, b);
      });
      evaluate("ExEA", [&](kg::EntityId a, kg::EntityId b) {
        return exea.Verify(a, b);
      });
      evaluate("ChatGPT + ExEA", [&](kg::EntityId a, kg::EntityId b) {
        return fusion.Verify(a, b);
      });
      table.AddSeparator();
    }
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table VI, F1): MTransE/ZH-EN ChatGPT 0.842, ExEA "
      "0.928, fusion\n0.984; Dual-AMN/DBP-WD ChatGPT 0.875, ExEA 0.943, "
      "fusion 0.981.\nExpected shape: fusion > ExEA > ChatGPT.\n");
  return 0;
}
