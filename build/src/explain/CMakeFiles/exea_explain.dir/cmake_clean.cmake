file(REMOVE_RECURSE
  "CMakeFiles/exea_explain.dir/adg.cc.o"
  "CMakeFiles/exea_explain.dir/adg.cc.o.d"
  "CMakeFiles/exea_explain.dir/audit.cc.o"
  "CMakeFiles/exea_explain.dir/audit.cc.o.d"
  "CMakeFiles/exea_explain.dir/exea.cc.o"
  "CMakeFiles/exea_explain.dir/exea.cc.o.d"
  "CMakeFiles/exea_explain.dir/export.cc.o"
  "CMakeFiles/exea_explain.dir/export.cc.o.d"
  "CMakeFiles/exea_explain.dir/matcher.cc.o"
  "CMakeFiles/exea_explain.dir/matcher.cc.o.d"
  "CMakeFiles/exea_explain.dir/path_embedding.cc.o"
  "CMakeFiles/exea_explain.dir/path_embedding.cc.o.d"
  "libexea_explain.a"
  "libexea_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
