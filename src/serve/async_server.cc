#include "serve/async_server.h"

#include <utility>
#include <vector>

namespace exea::serve {

AsyncServer::AsyncServer(QueryEngine* engine,
                         const AsyncServerOptions& options)
    : engine_(engine),
      options_(options),
      registry_(options.server.registry != nullptr
                    ? options.server.registry
                    : engine->mutable_registry()),
      server_(engine, options.server),
      coalescer_(engine, CoalescerOptions{options.max_batch,
                                          options.batch_wait_ms, registry_}),
      admission_queue_(options.queue_capacity),
      queue_depth_(registry_->GetGauge("serve.queue_depth")) {
  // HandleLine stays the single protocol implementation; only the align
  // dispatch is rerouted, into the shared micro-batcher.
  server_.set_align_dispatcher(
      [this](const std::vector<std::string>& sources,
             const Deadline& deadline) {
        return coalescer_.Align(sources, deadline);
      });
}

AsyncServer::~AsyncServer() { Shutdown(); }

Status AsyncServer::Start(int port) {
  EXEA_CHECK(loop_ == nullptr) << "Start called twice";
  net::EventLoopOptions loop_options;
  loop_options.max_connections = options_.max_connections;
  loop_options.max_line_bytes = options_.server.max_request_bytes;
  loop_options.registry = registry_;
  loop_ = std::make_unique<net::EventLoop>(
      loop_options,
      [this](const net::EventLoop::Line& line) { OnLine(line); });
  Status listening = loop_->Listen(port);
  if (!listening.ok()) {
    loop_.reset();
    return listening;
  }
  loop_thread_ = std::thread([this] { loop_->Run(); });
  worker_pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    worker_pool_->Submit([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

int AsyncServer::port() const { return loop_ != nullptr ? loop_->port() : 0; }

void AsyncServer::OnLine(const net::EventLoop::Line& line) {
  // Runs on the loop thread: admission decisions only, never work. Both
  // rejection paths reuse the blocking server's renderers so bytes and
  // counters match the synchronous path exactly.
  if (line.oversized) {
    loop_->Send(line.conn, line.seq,
                server_.RejectOversized(line.observed_bytes));
    return;
  }
  Request request;
  request.conn = line.conn;
  request.seq = line.seq;
  request.line = line.text;
  request.deadline = Deadline(options_.server.deadline_seconds);
  if (!admission_queue_.TryPush(std::move(request))) {
    loop_->Send(line.conn, line.seq, server_.RejectQueueFull());
    return;
  }
  queue_depth_.Set(static_cast<double>(admission_queue_.size()));
}

void AsyncServer::WorkerLoop() {
  Request request;
  while (admission_queue_.Pop(&request)) {
    queue_depth_.Set(static_cast<double>(admission_queue_.size()));
    if (options_.worker_hook_for_test) options_.worker_hook_for_test();
    // Shed-before-work: a deadline that expired during the queue wait is
    // answered without parsing or touching the engine.
    std::string response =
        request.deadline.Expired()
            ? server_.ShedExpired(request.queued.ElapsedMillis())
            : server_.HandleLine(request.line);
    loop_->Send(request.conn, request.seq, std::move(response));
    if (server_.shutdown_requested()) {
      // Stop admitting (drain the loop, close the queue) and wake
      // whoever is blocked in Wait(); the actual joins happen there —
      // a worker cannot join its own pool.
      loop_->BeginDrain();
      admission_queue_.Close();
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_signaled_ = true;
      shutdown_cv_.notify_all();
    }
  }
}

void AsyncServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [&] { return shutdown_signaled_; });
  }
  TeardownOnce();
}

void AsyncServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_signaled_ = true;
    shutdown_cv_.notify_all();
  }
  TeardownOnce();
}

void AsyncServer::TeardownOnce() {
  std::call_once(teardown_once_, [this] {
    if (loop_ != nullptr) loop_->BeginDrain();
    admission_queue_.Close();
    worker_pool_.reset();  // joins workers once the queue drains
    if (loop_ != nullptr) {
      loop_->Stop();  // flushes pending responses, bounded
      if (loop_thread_.joinable()) loop_thread_.join();
    }
  });
}

}  // namespace exea::serve
