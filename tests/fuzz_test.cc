// Failure-injection / fuzz-style tests: the parsers and loaders must
// return error Status — never crash or hang — on arbitrary malformed
// input. Seeds sweep via TEST_P.

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "kg/kg_io.h"
#include "la/matrix_io.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/tsv.h"

namespace exea {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("exea_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Writes `bytes` random bytes (printable-biased with occasional control
  // characters, tabs and newlines) into `name`.
  std::string WriteGarbage(const std::string& name, size_t bytes) {
    Rng rng(GetParam());
    std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    for (size_t i = 0; i < bytes; ++i) {
      uint64_t roll = rng.UniformInt(100);
      char c;
      if (roll < 70) {
        c = static_cast<char>('!' + rng.UniformInt(94));
      } else if (roll < 80) {
        c = '\t';
      } else if (roll < 90) {
        c = '\n';
      } else {
        c = static_cast<char>(rng.UniformInt(32));
      }
      out.put(c);
    }
    return path;
  }

  std::filesystem::path dir_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST_P(FuzzTest, ReadTsvNeverCrashes) {
  std::string path = WriteGarbage("garbage.tsv", 4096);
  auto rows = ReadTsv(path, 3);
  // Either parses (all lines happened to have >= 3 fields) or fails
  // cleanly; both are acceptable — no crash, no hang.
  if (!rows.ok()) {
    EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_P(FuzzTest, LoadTriplesNeverCrashes) {
  std::string path = WriteGarbage("triples.tsv", 4096);
  auto graph = kg::LoadTriples(path);
  if (graph.ok()) {
    // Whatever parsed must be internally consistent.
    EXPECT_EQ(graph->num_triples(), graph->triples().size());
  }
}

TEST_P(FuzzTest, LoadMatrixNeverCrashes) {
  std::string path = WriteGarbage("matrix.txt", 2048);
  auto matrix = la::LoadMatrix(path);
  if (matrix.ok()) {
    EXPECT_EQ(matrix->data().size(), matrix->rows() * matrix->cols());
  }
}

TEST_P(FuzzTest, LoadDatasetNeverCrashes) {
  WriteGarbage("kg1_triples.tsv", 2048);
  WriteGarbage("kg2_triples.tsv", 2048);
  WriteGarbage("train_links.tsv", 512);
  WriteGarbage("test_links.tsv", 512);
  auto dataset = data::LoadDataset(dir_.string(), "fuzz");
  // Garbage link files reference entities that do not exist in the
  // garbage KGs with overwhelming probability -> clean failure. Parsing
  // success would require a consistent dataset, which we accept too.
  if (!dataset.ok()) {
    EXPECT_NE(dataset.status().code(), StatusCode::kOk);
  }
}

TEST_P(FuzzTest, FlagsParserNeverCrashes) {
  Rng rng(GetParam() * 31);
  std::vector<std::string> storage;
  std::vector<const char*> argv{"prog"};
  for (int i = 0; i < 12; ++i) {
    std::string arg;
    size_t len = 1 + rng.UniformInt(8);
    for (size_t c = 0; c < len; ++c) {
      arg += static_cast<char>('-' + rng.UniformInt(80));
    }
    storage.push_back(std::move(arg));
  }
  for (const std::string& s : storage) argv.push_back(s.c_str());
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  // Either outcome is fine; accessors must be safe afterwards.
  if (flags.ok()) {
    flags->GetString("anything", "x");
    flags->GetInt("anything", 1);
    flags->positional();
  }
}

}  // namespace
}  // namespace exea
