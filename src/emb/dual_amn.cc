#include "emb/dual_amn.h"

#include <algorithm>
#include <cmath>

#include "emb/optimizer.h"
#include "la/vector_ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exea::emb {
namespace {

constexpr float kSelfWeight = 0.3f;

// Mutable per-KG training state.
struct Side {
  const kg::KnowledgeGraph* graph = nullptr;
  la::Matrix ent;    // input embeddings
  la::Matrix gates;  // 2 * num_relations rows: [r] outgoing, [m + r] incoming
  AdagradTable* ent_opt = nullptr;
  AdagradTable* gate_opt = nullptr;

  size_t GateRow(kg::RelationId r, bool outgoing) const {
    return outgoing ? r : graph->num_relations() + r;
  }
};

// h_i = kSelfWeight * e_i + mean over neighbours of (gate ⊙ e_j).
void Aggregate(const Side& side, kg::EntityId i, std::vector<float>& h) {
  size_t dim = side.ent.cols();
  h.assign(dim, 0.0f);
  const float* self = side.ent.Row(i);
  for (size_t c = 0; c < dim; ++c) h[c] = kSelfWeight * self[c];
  const auto& edges = side.graph->Edges(i);
  if (edges.empty()) return;
  float inv = 1.0f / static_cast<float>(edges.size());
  for (const kg::AdjacentEdge& edge : edges) {
    const float* gate = side.gates.Row(side.GateRow(edge.rel, edge.outgoing));
    const float* nb = side.ent.Row(edge.neighbor);
    for (size_t c = 0; c < dim; ++c) h[c] += inv * gate[c] * nb[c];
  }
}

// Pushes dL/dh_i into the input embeddings and gates of `side`. With
// `self_only` set, only the node's own embedding is updated — used for
// negatives, whose full backprop would corrupt the (shared) neighbour
// embeddings that positive pairs depend on.
void BackpropNode(Side& side, kg::EntityId i, const std::vector<float>& grad_h,
                  std::vector<float>& scratch, bool self_only = false) {
  size_t dim = side.ent.cols();
  scratch.resize(dim);
  // Self term.
  for (size_t c = 0; c < dim; ++c) scratch[c] = kSelfWeight * grad_h[c];
  side.ent_opt->Update(i, scratch.data());
  if (self_only) return;
  const auto& edges = side.graph->Edges(i);
  if (edges.empty()) return;
  float inv = 1.0f / static_cast<float>(edges.size());
  for (const kg::AdjacentEdge& edge : edges) {
    size_t gate_row = side.GateRow(edge.rel, edge.outgoing);
    const float* gate = side.gates.Row(gate_row);
    const float* nb = side.ent.Row(edge.neighbor);
    // d h / d e_j = inv * gate ; d h / d gate = inv * e_j.
    for (size_t c = 0; c < dim; ++c) scratch[c] = inv * gate[c] * grad_h[c];
    side.ent_opt->Update(edge.neighbor, scratch.data());
    for (size_t c = 0; c < dim; ++c) scratch[c] = inv * nb[c] * grad_h[c];
    side.gate_opt->Update(gate_row, scratch.data());
  }
}

// d cos(a, b) / d a accumulated into grad_a with coefficient `coef`.
void AddCosineGradient(const std::vector<float>& a, const std::vector<float>& b,
                       float coef, std::vector<float>& grad_a) {
  size_t dim = a.size();
  float na = la::Norm(a);
  float nb = la::Norm(b);
  if (na < 1e-9f || nb < 1e-9f) return;
  float cosine = la::Dot(a, b) / (na * nb);
  float inv_ab = 1.0f / (na * nb);
  float inv_aa = cosine / (na * na);
  for (size_t c = 0; c < dim; ++c) {
    grad_a[c] += coef * (b[c] * inv_ab - a[c] * inv_aa);
  }
}

}  // namespace

void DualAmn::Train(const data::EaDataset& dataset) {
  size_t dim = config_.dim;
  Rng rng(config_.seed);

  Side side1;
  Side side2;
  side1.graph = &dataset.kg1;
  side2.graph = &dataset.kg2;
  side1.ent = la::Matrix(dataset.kg1.num_entities(), dim);
  side2.ent = la::Matrix(dataset.kg2.num_entities(), dim);
  side1.gates = la::Matrix(2 * dataset.kg1.num_relations(), dim);
  side2.gates = la::Matrix(2 * dataset.kg2.num_relations(), dim);
  float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  side1.ent.FillNormal(rng, stddev);
  side2.ent.FillNormal(rng, stddev);
  // Gates start near 1 so the initial aggregation is a plain mean.
  side1.gates.FillNormal(rng, 0.1f);
  side2.gates.FillNormal(rng, 0.1f);
  for (float& v : side1.gates.mutable_data()) v += 1.0f;
  for (float& v : side2.gates.mutable_data()) v += 1.0f;

  AdagradTable ent1_opt(&side1.ent, config_.learning_rate);
  AdagradTable ent2_opt(&side2.ent, config_.learning_rate);
  AdagradTable gate1_opt(&side1.gates, config_.learning_rate * 0.5f);
  AdagradTable gate2_opt(&side2.gates, config_.learning_rate * 0.5f);
  side1.ent_opt = &ent1_opt;
  side2.ent_opt = &ent2_opt;
  side1.gate_opt = &gate1_opt;
  side2.gate_opt = &gate2_opt;

  std::vector<kg::AlignedPair> seeds = dataset.train.SortedPairs();

  std::vector<float> h_anchor;
  std::vector<float> h_pos;
  std::vector<float> scratch;

  // One LogSumExp hard-negative step: anchor on `anchor_side[anchor]`,
  // positive `pos_side[positive]`, negatives drawn from pos_side.
  auto train_pair = [&](Side& anchor_side, kg::EntityId anchor, Side& pos_side,
                        kg::EntityId positive) {
    Aggregate(anchor_side, anchor, h_anchor);
    Aggregate(pos_side, positive, h_pos);
    float cos_pos = la::Cosine(h_anchor, h_pos);

    // Pool of random candidates, keep the hardest `negatives`.
    size_t pool = config_.negatives * 4;
    struct Neg {
      kg::EntityId id;
      std::vector<float> h;
      float cosine;
    };
    std::vector<Neg> candidates;
    candidates.reserve(pool);
    size_t n = pos_side.ent.rows();
    for (size_t p = 0; p < pool; ++p) {
      kg::EntityId cand = static_cast<kg::EntityId>(rng.UniformInt(n));
      if (cand == positive) continue;
      Neg neg;
      neg.id = cand;
      Aggregate(pos_side, cand, neg.h);
      neg.cosine = la::Cosine(h_anchor, neg.h);
      candidates.push_back(std::move(neg));
    }
    size_t keep = std::min<size_t>(config_.negatives, candidates.size());
    std::partial_sort(candidates.begin(), candidates.begin() + keep,
                      candidates.end(), [](const Neg& a, const Neg& b) {
                        if (a.cosine != b.cosine) return a.cosine > b.cosine;
                        return a.id < b.id;
                      });
    candidates.resize(keep);
    if (candidates.empty()) return;

    // L = log(1 + sum_k exp(lambda * (cos_neg_k - cos_pos + margin/4))).
    float lambda = config_.lse_scale;
    float offset = config_.margin * 0.25f;
    double denom = 1.0;
    std::vector<double> exps(candidates.size());
    for (size_t k = 0; k < candidates.size(); ++k) {
      double z = lambda * (candidates[k].cosine - cos_pos + offset);
      // Clamp to avoid overflow; the weight saturates anyway.
      exps[k] = std::exp(std::min(z, 30.0));
      denom += exps[k];
    }
    // dL/dcos_neg_k = lambda * w_k; dL/dcos_pos = -lambda * sum(w_k).
    std::vector<float> grad_anchor(dim, 0.0f);
    std::vector<float> grad_pos(dim, 0.0f);
    double weight_sum = 0.0;
    for (size_t k = 0; k < candidates.size(); ++k) {
      float w = static_cast<float>(lambda * exps[k] / denom);
      weight_sum += exps[k] / denom;
      std::vector<float> grad_neg(dim, 0.0f);
      AddCosineGradient(candidates[k].h, h_anchor, w, grad_neg);
      AddCosineGradient(h_anchor, candidates[k].h, w, grad_anchor);
      // Negatives receive no update at all: repulsive updates would be
      // the *only* training signal most non-seed entities ever see and
      // would steadily destroy their structure-derived representations.
      // The negative term still shapes the anchor's gradient below.
      (void)grad_neg;
    }
    float pos_coef = static_cast<float>(-lambda * weight_sum);
    AddCosineGradient(h_anchor, h_pos, pos_coef, grad_anchor);
    AddCosineGradient(h_pos, h_anchor, pos_coef, grad_pos);
    BackpropNode(anchor_side, anchor, grad_anchor, scratch);
    BackpropNode(pos_side, positive, grad_pos, scratch);
  };

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const kg::AlignedPair& pair : seeds) {
      train_pair(side1, pair.source, side2, pair.target);
      train_pair(side2, pair.target, side1, pair.source);
    }
    // Anchor the input spaces on the seeds: averaging fuses the two
    // embedding spaces so the aggregation loss can concentrate on the
    // structural (neighbour/gate) correspondence.
    for (const kg::AlignedPair& pair : seeds) {
      float* e1 = side1.ent.Row(pair.source);
      float* e2 = side2.ent.Row(pair.target);
      for (size_t c = 0; c < dim; ++c) {
        float mean = 0.5f * (e1[c] + e2[c]);
        e1[c] = mean;
        e2[c] = mean;
      }
    }
  }

  // Final full forward for the output representations.
  out1_ = la::Matrix(side1.ent.rows(), dim);
  out2_ = la::Matrix(side2.ent.rows(), dim);
  std::vector<float> h;
  for (kg::EntityId e = 0; e < side1.ent.rows(); ++e) {
    Aggregate(side1, e, h);
    out1_.SetRow(e, h);
  }
  for (kg::EntityId e = 0; e < side2.ent.rows(); ++e) {
    Aggregate(side2, e, h);
    out2_.SetRow(e, h);
  }
  out1_.NormalizeRowsL2();
  out2_.NormalizeRowsL2();

  // Outgoing gates double as relation embeddings.
  rel_out1_ = la::Matrix(dataset.kg1.num_relations(), dim);
  rel_out2_ = la::Matrix(dataset.kg2.num_relations(), dim);
  for (kg::RelationId r = 0; r < dataset.kg1.num_relations(); ++r) {
    rel_out1_.SetRow(r, side1.gates.RowCopy(r));
  }
  for (kg::RelationId r = 0; r < dataset.kg2.num_relations(); ++r) {
    rel_out2_.SetRow(r, side2.gates.RowCopy(r));
  }
}

const la::Matrix& DualAmn::EntityEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? out1_ : out2_;
}

const la::Matrix& DualAmn::RelationEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? rel_out1_ : rel_out2_;
}

}  // namespace exea::emb
