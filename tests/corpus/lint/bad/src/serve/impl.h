// The other half of the seeded include cycle (engine.h ↔ impl.h).
#ifndef EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_IMPL_H_
#define EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_IMPL_H_

#include "serve/engine.h"

#endif  // EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_IMPL_H_
