#include "eval/fidelity.h"

#include <unordered_set>

#include "eval/inference.h"
#include "eval/metrics.h"
#include "util/logging.h"

namespace exea::eval {

FidelityResult EvaluateFidelity(const data::EaDataset& dataset,
                                const emb::EAModel& model,
                                const std::vector<FidelitySample>& samples) {
  FidelityResult result;
  result.num_samples = samples.size();
  if (samples.empty()) return result;

  // Sparsity is independent of retraining.
  double sparsity_sum = 0.0;
  for (const FidelitySample& sample : samples) {
    sparsity_sum +=
        Sparsity(sample.ExplanationCount(), sample.CandidateCount());
  }
  result.sparsity = sparsity_sum / static_cast<double>(samples.size());

  // Removal sets: candidates that are in no sample's explanation. Kept
  // (explanation) triples take precedence across samples.
  std::unordered_set<kg::Triple, kg::TripleHash> keep1;
  std::unordered_set<kg::Triple, kg::TripleHash> keep2;
  for (const FidelitySample& sample : samples) {
    keep1.insert(sample.explanation1.begin(), sample.explanation1.end());
    keep2.insert(sample.explanation2.begin(), sample.explanation2.end());
  }
  std::unordered_set<kg::Triple, kg::TripleHash> remove1;
  std::unordered_set<kg::Triple, kg::TripleHash> remove2;
  for (const FidelitySample& sample : samples) {
    for (const kg::Triple& t : sample.candidates1) {
      if (keep1.count(t) == 0) remove1.insert(t);
    }
    for (const kg::Triple& t : sample.candidates2) {
      if (keep2.count(t) == 0) remove2.insert(t);
    }
  }

  data::EaDataset reduced = dataset;
  reduced.kg1 = dataset.kg1.WithoutTriples(remove1);
  reduced.kg2 = dataset.kg2.WithoutTriples(remove2);

  std::unique_ptr<emb::EAModel> retrained = model.CloneUntrained();
  retrained->Train(reduced);

  RankedSimilarity ranked = RankTestEntities(*retrained, reduced);
  // Samples may include pairs outside the test split (e.g. pairs a repair
  // stage touched); rank their sources against the same target space.
  std::unordered_set<kg::EntityId> test_sources(
      dataset.test_sources.begin(), dataset.test_sources.end());

  size_t preserved = 0;
  for (const FidelitySample& sample : samples) {
    if (test_sources.count(sample.e1) == 0) continue;
    const std::vector<Candidate>& candidates = ranked.CandidatesFor(sample.e1);
    if (!candidates.empty() && candidates[0].target == sample.e2) {
      ++preserved;
    }
  }
  result.fidelity =
      static_cast<double>(preserved) / static_cast<double>(samples.size());
  return result;
}

}  // namespace exea::eval
