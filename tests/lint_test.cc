// Drives the exea_lint binary against the seeded fixtures under
// tests/corpus/lint/: the bad/ tree must trip every rule (nonzero exit),
// the good/ tree and the real repository must scan clean, and the cyclic/
// tree must be rejected as a configuration error. Together these pin both
// directions of the checker — it finds what it claims to find, and it does
// not cry wolf on the code we actually ship — plus the CLI surface
// (--rules, --list-rules, --format=json) that ci/check.sh builds on.

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace {

// Runs `exea_lint <args>`, captures stdout, returns the exit code. Append
// "2>&1" to args to fold stderr (config-error messages) into the capture.
int RunLint(const std::string& args, std::string* output) {
  std::string command = std::string(EXEA_LINT_PATH) + " " + args;
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot run " << command;
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string Fixture(const std::string& sub) {
  return std::string(EXEA_LINT_FIXTURE_DIR) + "/" + sub;
}

TEST(LintTest, SeededViolationsTripEveryRule) {
  std::string output;
  int exit_code = RunLint("--root " + Fixture("bad"), &output);
  EXPECT_EQ(exit_code, 1) << output;
  for (const char* rule :
       {"nodiscard-status", "discarded-status", "raw-rng", "raw-new-delete",
        "cout-logging", "layering", "include-cycle", "guarded-by",
        "lock-held", "header-guard", "header-using-namespace",
        "obs-no-adhoc-metrics"}) {
    EXPECT_NE(output.find(rule), std::string::npos)
        << "rule " << rule << " did not fire; output:\n" << output;
  }
  // Diagnostics carry a clickable file:line:col: prefix.
  EXPECT_NE(output.find("violations.cc:"), std::string::npos) << output;
  EXPECT_NE(output.find("violations.h:"), std::string::npos) << output;
}

TEST(LintTest, DiagnosticsCarryColumnNumbers) {
  std::string output;
  RunLint("--root " + Fixture("bad"), &output);
  // The discarded DoThing() call sits at line 7, column 3 of
  // violations.cc — the full file:line:col: spelling is pinned here.
  EXPECT_NE(output.find("violations.cc:7:3: discarded-status"),
            std::string::npos)
      << output;
  // The upward include's column points at the quoted path.
  EXPECT_NE(output.find("upward.h:6:10: layering"), std::string::npos)
      << output;
}

TEST(LintTest, LayeringDiagnosticsNameTheOffendingChain) {
  std::string output;
  RunLint("--root " + Fixture("bad"), &output);
  // Upward edge: the message names both modules and the layers file.
  EXPECT_NE(output.find("'serve' is not below 'util'"), std::string::npos)
      << output;
  // Undeclared module.
  EXPECT_NE(output.find("module 'mystery' is not declared"),
            std::string::npos)
      << output;
  // Include cycle: the chain is printed end to end.
  EXPECT_NE(
      output.find("serve/engine.h -> serve/impl.h -> serve/engine.h"),
      std::string::npos)
      << output;
}

TEST(LintTest, CleanFixtureScansClean) {
  std::string output;
  int exit_code = RunLint("--root " + Fixture("good"), &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_EQ(output, "") << output;
}

TEST(LintTest, CyclicDeclaredLayersAreAConfigError) {
  std::string output;
  int exit_code = RunLint("--root " + Fixture("cyclic") + " 2>&1", &output);
  EXPECT_EQ(exit_code, 2) << output;
  EXPECT_NE(output.find("cycle in declared layering"), std::string::npos)
      << output;
  // The cycle itself is spelled out for the operator.
  EXPECT_NE(output.find("a < b < a"), std::string::npos) << output;
}

TEST(LintTest, RepositoryScansClean) {
  std::string output;
  int exit_code =
      RunLint("--root " + std::string(EXEA_REPO_ROOT), &output);
  EXPECT_EQ(exit_code, 0) << "the repository no longer lints clean:\n"
                          << output;
}

TEST(LintTest, RulesFilterRestrictsToNamedRules) {
  std::string output;
  int exit_code =
      RunLint("--root " + Fixture("bad") + " --rules=raw-rng", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("raw-rng"), std::string::npos) << output;
  EXPECT_EQ(output.find("raw-new-delete"), std::string::npos) << output;
  EXPECT_EQ(output.find("layering"), std::string::npos) << output;
}

TEST(LintTest, FamilyNameEnablesItsWholeFamily) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("bad") + " --rules=header-hygiene", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("header-guard"), std::string::npos) << output;
  EXPECT_NE(output.find("header-using-namespace"), std::string::npos)
      << output;
  EXPECT_EQ(output.find("raw-rng"), std::string::npos) << output;
}

TEST(LintTest, UnknownRuleNameIsAConfigError) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("bad") + " --rules=bogus 2>&1",
                    &output),
            2);
  EXPECT_NE(output.find("unknown rule or family 'bogus'"),
            std::string::npos)
      << output;
}

TEST(LintTest, ListRulesPrintsTheRegistry) {
  std::string output;
  EXPECT_EQ(RunLint("--list-rules", &output), 0);
  for (const char* name :
       {"nodiscard-status", "discarded-status", "raw-rng", "raw-new-delete",
        "cout-logging", "layering", "include-cycle", "guarded-by",
        "lock-held", "header-guard", "header-using-namespace",
        "obs-no-adhoc-metrics", "lock-discipline", "header-hygiene",
        "observability"}) {
    EXPECT_NE(output.find(name), std::string::npos)
        << name << " missing from --list-rules:\n" << output;
  }
}

TEST(LintTest, JsonFormatIsMachineReadable) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("bad") + " --format=json", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_EQ(output.front(), '[') << output;
  EXPECT_NE(output.find("\"rule\":\"layering\""), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"family\":\"lock-discipline\""), std::string::npos)
      << output;
  for (const char* key : {"\"file\":", "\"line\":", "\"col\":",
                          "\"message\":"}) {
    EXPECT_NE(output.find(key), std::string::npos) << key << "\n" << output;
  }
}

TEST(LintTest, JsonFormatEmitsEmptyArrayWhenClean) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("good") + " --format=json", &output),
            0);
  EXPECT_EQ(output, "[]\n") << output;
}

TEST(LintTest, HelpExitsZero) {
  std::string output;
  EXPECT_EQ(RunLint("--help", &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos) << output;
}

TEST(LintTest, MissingInputIsAnIoError) {
  std::string output;
  EXPECT_EQ(RunLint("--root /nonexistent-exea-lint-fixture", &output), 2);
}

TEST(LintTest, ExplicitMissingLayersFileIsAnIoError) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("good") +
                        " --layers /nonexistent-layers.txt 2>&1",
                    &output),
            2);
  EXPECT_NE(output.find("cannot read layers file"), std::string::npos)
      << output;
}

}  // namespace
