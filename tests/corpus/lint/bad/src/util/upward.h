// Seeded violation: util is the bottom layer, so including serve/ from
// here is an upward edge in the declared DAG → layering.
#ifndef EXEA_TESTS_CORPUS_LINT_BAD_SRC_UTIL_UPWARD_H_
#define EXEA_TESTS_CORPUS_LINT_BAD_SRC_UTIL_UPWARD_H_

#include "serve/engine.h"

#endif  // EXEA_TESTS_CORPUS_LINT_BAD_SRC_UTIL_UPWARD_H_
