#include "la/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace exea::la {
namespace {

// Width of one AVX2 float vector; the scalar kernels block on the same
// width so both levels share one reduction order.
constexpr size_t kLanes = 8;

// ---------------------------------------------------------------------------
// Scalar reference kernels.
//
// The lane accumulators and the explicit pairwise tree below reproduce,
// step for step, what the AVX2 kernel computes: lane l accumulates
// elements l, l+8, l+16, ... and the tree matches the
// extract-high/movehl/shuffle horizontal-add sequence. The tail (n % 8
// elements) is added sequentially after the tree, exactly as the vector
// kernel does. Do not "simplify" the reduction — the shape IS the
// contract (see simd.h).
// ---------------------------------------------------------------------------

float DotScalar(const float* a, const float* b, size_t n) {
  float acc[kLanes] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  size_t main = n - n % kLanes;
  for (size_t i = 0; i < main; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      acc[l] += a[i + l] * b[i + l];
    }
  }
  float s0 = acc[0] + acc[4];
  float s1 = acc[1] + acc[5];
  float s2 = acc[2] + acc[6];
  float s3 = acc[3] + acc[7];
  float t0 = s0 + s2;
  float t1 = s1 + s3;
  float sum = t0 + t1;
  for (size_t i = main; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

// Elementwise with no cross-lane reduction, so plain left-to-right
// double arithmetic is already the canonical order.
void CslsAdjustRowScalar(const float* sim, double r_src, const double* r_tgt,
                         float* dst, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    dst[j] = static_cast<float>(2.0 * sim[j] - r_src - r_tgt[j]);
  }
}

constexpr SimdOps kScalarOps = {DotScalar, CslsAdjustRowScalar};

// Resolves the startup level once: explicit EXEA_SIMD wins, otherwise
// the best supported level. Unsupported or unknown requests fall back
// to scalar with a warning rather than aborting, so a stale env var
// cannot take down a serving process.
SimdLevel ResolveStartupLevel() {
  const char* env = std::getenv("EXEA_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (Avx2Supported()) return SimdLevel::kAvx2;
      EXEA_LOG(Warning) << "EXEA_SIMD=avx2 requested but AVX2 is "
                           "unavailable on this CPU/build; using scalar";
      return SimdLevel::kScalar;
    }
    EXEA_LOG(Warning) << "Unknown EXEA_SIMD value '" << env
                      << "' (expected scalar|avx2); using auto-detection";
  }
  return Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

std::atomic<SimdLevel>& ActiveLevelSlot() {
  static std::atomic<SimdLevel> level(ResolveStartupLevel());
  return level;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Supported() { return Avx2SimdOpsOrNull() != nullptr; }

SimdLevel ActiveSimdLevel() {
  return ActiveLevelSlot().load(std::memory_order_acquire);
}

void SetSimdLevelForTest(SimdLevel level) {
  EXEA_CHECK(level == SimdLevel::kScalar || Avx2Supported())
      << "cannot force level '" << SimdLevelName(level)
      << "': unsupported on this machine";
  ActiveLevelSlot().store(level, std::memory_order_release);
}

const SimdOps& ActiveSimdOps() {
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    const SimdOps* avx2 = Avx2SimdOpsOrNull();
    if (avx2 != nullptr) return *avx2;
  }
  return kScalarOps;
}

const SimdOps& ScalarSimdOps() { return kScalarOps; }

}  // namespace exea::la
