// Drives the exea_lint binary against the seeded fixtures under
// tests/corpus/lint/: the bad/ tree must trip every rule (nonzero exit),
// the good/ tree and the real repository must scan clean, and the cyclic/
// tree must be rejected as a configuration error. Together these pin both
// directions of the checker — it finds what it claims to find, and it does
// not cry wolf on the code we actually ship — plus the CLI surface
// (--rules, --list-rules, --format=json) that ci/check.sh builds on.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;

// Runs `exea_lint <args>`, captures stdout, returns the exit code. Append
// "2>&1" to args to fold stderr (config-error messages) into the capture.
int RunLint(const std::string& args, std::string* output) {
  std::string command = std::string(EXEA_LINT_PATH) + " " + args;
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot run " << command;
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string Fixture(const std::string& sub) {
  return std::string(EXEA_LINT_FIXTURE_DIR) + "/" + sub;
}

// Copies a fixture tree into a per-test scratch directory so tests can
// mutate it (--fix, cache warming, baseline writes) without touching the
// source tree.
fs::path ScratchCopy(const std::string& sub, const std::string& tag) {
  fs::path dst = fs::temp_directory_path() / ("exea_lint_test_" + tag);
  fs::remove_all(dst);
  fs::copy(Fixture(sub), dst, fs::copy_options::recursive);
  return dst;
}

size_t CountOf(const std::string& hay, const std::string& needle) {
  size_t count = 0;
  size_t at = 0;
  while ((at = hay.find(needle, at)) != std::string::npos) {
    ++count;
    at += needle.size();
  }
  return count;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

TEST(LintTest, SeededViolationsTripEveryRule) {
  std::string output;
  int exit_code = RunLint("--root " + Fixture("bad"), &output);
  EXPECT_EQ(exit_code, 1) << output;
  for (const char* rule :
       {"nodiscard-status", "discarded-status", "raw-rng", "raw-new-delete",
        "cout-logging", "layering", "include-cycle", "guarded-by",
        "lock-held", "header-guard", "header-using-namespace",
        "obs-no-adhoc-metrics"}) {
    EXPECT_NE(output.find(rule), std::string::npos)
        << "rule " << rule << " did not fire; output:\n" << output;
  }
  // Diagnostics carry a clickable file:line:col: prefix.
  EXPECT_NE(output.find("violations.cc:"), std::string::npos) << output;
  EXPECT_NE(output.find("violations.h:"), std::string::npos) << output;
}

TEST(LintTest, DiagnosticsCarryColumnNumbers) {
  std::string output;
  RunLint("--root " + Fixture("bad"), &output);
  // The discarded DoThing() call sits at line 7, column 3 of
  // violations.cc — the full file:line:col: spelling is pinned here.
  EXPECT_NE(output.find("violations.cc:7:3: discarded-status"),
            std::string::npos)
      << output;
  // The upward include's column points at the quoted path.
  EXPECT_NE(output.find("upward.h:6:10: layering"), std::string::npos)
      << output;
}

TEST(LintTest, LayeringDiagnosticsNameTheOffendingChain) {
  std::string output;
  RunLint("--root " + Fixture("bad"), &output);
  // Upward edge: the message names both modules and the layers file.
  EXPECT_NE(output.find("'serve' is not below 'util'"), std::string::npos)
      << output;
  // Undeclared module.
  EXPECT_NE(output.find("module 'mystery' is not declared"),
            std::string::npos)
      << output;
  // Include cycle: the chain is printed end to end.
  EXPECT_NE(
      output.find("serve/engine.h -> serve/impl.h -> serve/engine.h"),
      std::string::npos)
      << output;
}

TEST(LintTest, CleanFixtureScansClean) {
  std::string output;
  int exit_code = RunLint("--root " + Fixture("good"), &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_EQ(output, "") << output;
}

TEST(LintTest, CyclicDeclaredLayersAreAConfigError) {
  std::string output;
  int exit_code = RunLint("--root " + Fixture("cyclic") + " 2>&1", &output);
  EXPECT_EQ(exit_code, 2) << output;
  EXPECT_NE(output.find("cycle in declared layering"), std::string::npos)
      << output;
  // The cycle itself is spelled out for the operator.
  EXPECT_NE(output.find("a < b < a"), std::string::npos) << output;
}

TEST(LintTest, RepositoryScansClean) {
  std::string output;
  int exit_code =
      RunLint("--root " + std::string(EXEA_REPO_ROOT), &output);
  EXPECT_EQ(exit_code, 0) << "the repository no longer lints clean:\n"
                          << output;
}

TEST(LintTest, RulesFilterRestrictsToNamedRules) {
  std::string output;
  int exit_code =
      RunLint("--root " + Fixture("bad") + " --rules=raw-rng", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("raw-rng"), std::string::npos) << output;
  EXPECT_EQ(output.find("raw-new-delete"), std::string::npos) << output;
  EXPECT_EQ(output.find("layering"), std::string::npos) << output;
}

TEST(LintTest, FamilyNameEnablesItsWholeFamily) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("bad") + " --rules=header-hygiene", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("header-guard"), std::string::npos) << output;
  EXPECT_NE(output.find("header-using-namespace"), std::string::npos)
      << output;
  EXPECT_EQ(output.find("raw-rng"), std::string::npos) << output;
}

TEST(LintTest, UnknownRuleNameIsAConfigError) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("bad") + " --rules=bogus 2>&1",
                    &output),
            2);
  EXPECT_NE(output.find("unknown rule or family 'bogus'"),
            std::string::npos)
      << output;
}

TEST(LintTest, ListRulesPrintsTheRegistry) {
  std::string output;
  EXPECT_EQ(RunLint("--list-rules", &output), 0);
  for (const char* name :
       {"nodiscard-status", "discarded-status", "raw-rng", "raw-new-delete",
        "cout-logging", "layering", "include-cycle", "guarded-by",
        "lock-held", "header-guard", "header-using-namespace",
        "obs-no-adhoc-metrics", "lock-discipline", "header-hygiene",
        "observability"}) {
    EXPECT_NE(output.find(name), std::string::npos)
        << name << " missing from --list-rules:\n" << output;
  }
}

TEST(LintTest, JsonFormatIsMachineReadable) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("bad") + " --format=json", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_EQ(output.front(), '[') << output;
  EXPECT_NE(output.find("\"rule\":\"layering\""), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"family\":\"lock-discipline\""), std::string::npos)
      << output;
  for (const char* key : {"\"file\":", "\"line\":", "\"col\":",
                          "\"message\":"}) {
    EXPECT_NE(output.find(key), std::string::npos) << key << "\n" << output;
  }
}

TEST(LintTest, JsonFormatEmitsEmptyArrayWhenClean) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("good") + " --format=json", &output),
            0);
  EXPECT_EQ(output, "[]\n") << output;
}

TEST(LintTest, HelpExitsZero) {
  std::string output;
  EXPECT_EQ(RunLint("--help", &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos) << output;
}

TEST(LintTest, MissingInputIsAnIoError) {
  std::string output;
  EXPECT_EQ(RunLint("--root /nonexistent-exea-lint-fixture", &output), 2);
}

TEST(LintTest, ExplicitMissingLayersFileIsAnIoError) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("good") +
                        " --layers /nonexistent-layers.txt 2>&1",
                    &output),
            2);
  EXPECT_NE(output.find("cannot read layers file"), std::string::npos)
      << output;
}

// ------------------------------------------------- cross-TU concurrency

TEST(LintTest, ConcurrencyFixtureTripsAllFourNewFamilies) {
  std::string output;
  int exit_code = RunLint("--root " + Fixture("conc"), &output);
  EXPECT_EQ(exit_code, 1) << output;
  // event-loop: the blocking poll is reached across a TU boundary and
  // the whole call chain is spelled out.
  EXPECT_NE(output.find("handler.cc:8:5: loop-blocking"), std::string::npos)
      << output;
  EXPECT_NE(output.find(
                "demo::net::Loop::Run -> HandleEvent -> Process -> poll"),
            std::string::npos)
      << output;
  // event-loop: the configured (non-default) blocking name also fires.
  EXPECT_NE(output.find("blocking call 'BlockingFetch'"), std::string::npos)
      << output;
  // cross-tu-locks: unlocked call of an EXEA_REQUIRES method from
  // another TU, and a guarded member read from a free function.
  EXPECT_NE(output.find("requires-held"), std::string::npos) << output;
  EXPECT_NE(output.find("guarded-by-escape"), std::string::npos) << output;
  // resource-lifecycle: the early return leaks the socket.
  EXPECT_NE(output.find("leaky.cc:12:3: fd-leak"), std::string::npos)
      << output;
  // atomics: the relaxed flag store (the fetch_add counter is exempt).
  EXPECT_NE(output.find("relaxed-atomic"), std::string::npos) << output;
  // determinism: unordered iteration into serialized output.
  EXPECT_NE(output.find("unordered container 'by_key'"), std::string::npos)
      << output;
  // style: the lax waiver spelling is called out.
  EXPECT_NE(output.find("waiver-format"), std::string::npos) << output;
}

TEST(LintTest, ConcurrencyFixtureNegativesStayQuiet) {
  std::string output;
  RunLint("--root " + Fixture("conc"), &output);
  // Exactly two loop-blocking findings: Finish's identical poll is not
  // reachable from the entry, and the waived ::read stays quiet.
  EXPECT_EQ(CountOf(output, "loop-blocking:"), 2u) << output;
  // One fd-leak: OpenChecked closes on every path.
  EXPECT_EQ(CountOf(output, "fd-leak:"), 1u) << output;
  // One relaxed-atomic: the fetch_add counter idiom is exempt.
  EXPECT_EQ(CountOf(output, "relaxed-atomic:"), 1u) << output;
  // One requires-held: BumpProperly locks first, and BumpLocked's own
  // definition inherits the contract from its declaration.
  EXPECT_EQ(CountOf(output, "requires-held:"), 1u) << output;
  EXPECT_EQ(CountOf(output, "guarded-by-escape:"), 1u) << output;
}

TEST(LintTest, FamilyFilterSelectsEventLoopOnly) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("conc") + " --rules=event-loop", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_EQ(CountOf(output, "loop-blocking:"), 2u) << output;
  EXPECT_EQ(output.find("fd-leak"), std::string::npos) << output;
  EXPECT_EQ(output.find("requires-held"), std::string::npos) << output;
}

TEST(LintTest, ListRulesIncludesTheConcurrencyFamilies) {
  std::string output;
  EXPECT_EQ(RunLint("--list-rules", &output), 0);
  for (const char* name :
       {"loop-blocking", "event-loop", "guarded-by-escape", "requires-held",
        "cross-tu-locks", "fd-leak", "resource-lifecycle", "relaxed-atomic",
        "atomics", "unordered-output", "waiver-format"}) {
    EXPECT_NE(output.find(name), std::string::npos)
        << name << " missing from --list-rules:\n" << output;
  }
}

// --------------------------------------------------------------- SARIF

TEST(LintTest, SarifFormatEmitsRuleTableAndResults) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("conc") + " --format=sarif", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("sarif-2.1.0.json"), std::string::npos) << output;
  EXPECT_NE(output.find("\"name\":\"exea_lint\""), std::string::npos)
      << output;
  // Every registry rule appears in the tool.driver.rules table.
  EXPECT_NE(output.find("\"id\":\"loop-blocking\""), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"ruleId\":\"fd-leak\""), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"startLine\":"), std::string::npos) << output;
}

// --------------------------------------------------------------- cache

TEST(LintTest, CacheReanalyzesOnlyEditedFiles) {
  fs::path root = ScratchCopy("conc", "cache");
  fs::path cache = root / "lint_cache.txt";
  std::string base =
      "--root " + root.string() + " --cache " + cache.string() + " 2>&1";
  std::string output;
  RunLint(base, &output);
  EXPECT_NE(output.find("(0 from cache)"), std::string::npos) << output;
  RunLint(base, &output);
  EXPECT_NE(output.find("(10 from cache)"), std::string::npos) << output;
  // Touching one file re-analyzes exactly that file.
  {
    std::ofstream append(root / "src" / "serve" / "report.cc",
                         std::ios::app);
    append << "\n";
  }
  RunLint(base, &output);
  EXPECT_NE(output.find("(9 from cache)"), std::string::npos) << output;
  // Findings are identical warm and cold.
  std::string cold, warm;
  RunLint("--root " + root.string(), &cold);
  RunLint(base, &warm);
  EXPECT_NE(warm.find("(10 from cache)"), std::string::npos) << warm;
  fs::remove_all(root);
}

TEST(LintTest, CacheDoesNotChangeFindings) {
  fs::path root = ScratchCopy("conc", "cache_findings");
  fs::path cache = root / "lint_cache.txt";
  std::string cold, warm;
  int cold_exit = RunLint("--root " + root.string(), &cold);
  RunLint("--root " + root.string() + " --cache " + cache.string(), &warm);
  int warm_exit = RunLint(
      "--root " + root.string() + " --cache " + cache.string(), &warm);
  EXPECT_EQ(cold_exit, warm_exit);
  // Identical diagnostics modulo the path prefix (both runs use the same
  // --root spelling, so byte-identical).
  EXPECT_EQ(cold, warm);
  fs::remove_all(root);
}

// ---------------------------------------------------------------- taint

TEST(LintTest, TaintFixtureReportsCrossTuChains) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("taint") +
          " --rules=taint-unchecked-sink,atoi-on-untrusted",
      &output);
  EXPECT_EQ(exit_code, 1) << output;
  // The cross-TU flow: the source call and the atoi live in
  // serve/handler.cc, the sink fires in net/input.cc, and the finding
  // spells out the whole chain.
  EXPECT_NE(output.find("input.cc:17:3: taint-unchecked-sink"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("(flow: 'ReadField' -> HandleRequest:len -> "
                        "Prepare:n -> resize())"),
            std::string::npos)
      << output;
  // A configured tainted-param seeds without any source call.
  EXPECT_NE(
      output.find("(flow: param 'wire' of Route -> Route:hops -> resize())"),
      std::string::npos)
      << output;
  // The structural sinks: loop bound and container index.
  EXPECT_NE(output.find("loop bound 'n'"), std::string::npos) << output;
  EXPECT_NE(output.find("container index 'idx'"), std::string::npos)
      << output;
  // The local rule names each banned parser it caught.
  EXPECT_NE(output.find("atoi() silently accepts"), std::string::npos)
      << output;
  EXPECT_NE(output.find("stoi() silently accepts"), std::string::npos)
      << output;
}

TEST(LintTest, TaintFixtureNegativesStayQuiet) {
  std::string output;
  RunLint("--root " + Fixture("taint") +
              " --rules=taint-unchecked-sink,atoi-on-untrusted",
          &output);
  // Five flows, four banned parsers. Everything else stays quiet: the
  // ParseInt32-sanitized resize, the EXEA_CHECK-guarded loop, the
  // associative map subscript, and the waived resize in Trusted().
  EXPECT_EQ(CountOf(output, "taint-unchecked-sink:"), 5u) << output;
  EXPECT_EQ(CountOf(output, "atoi-on-untrusted:"), 4u) << output;
  EXPECT_EQ(output.find("SizeChecked"), std::string::npos) << output;
  EXPECT_EQ(output.find("request.cc:26"), std::string::npos) << output;
  EXPECT_EQ(output.find("request.cc:68"), std::string::npos) << output;
}

TEST(LintTest, TaintFamilyNameEnablesBothRules) {
  std::string output;
  int exit_code =
      RunLint("--root " + Fixture("taint") + " --rules=taint", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_EQ(CountOf(output, "taint-unchecked-sink:"), 5u) << output;
  EXPECT_EQ(CountOf(output, "atoi-on-untrusted:"), 4u) << output;
}

TEST(LintTest, AbsentTaintModelSkipsTheCrossTuPassOnly) {
  fs::path root = ScratchCopy("taint", "no_model");
  fs::remove(root / "tools" / "lint_taint.txt");
  std::string output;
  // The local atoi rule is self-contained; only the flow pass needs the
  // model file, and without one it skips instead of failing the run.
  int exit_code = RunLint(
      "--root " + root.string() +
          " --rules=taint-unchecked-sink,atoi-on-untrusted",
      &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_EQ(CountOf(output, "taint-unchecked-sink:"), 0u) << output;
  EXPECT_EQ(CountOf(output, "atoi-on-untrusted:"), 4u) << output;
  fs::remove_all(root);
}

TEST(LintTest, MalformedTaintModelIsAConfigError) {
  fs::path root = ScratchCopy("taint", "bad_model");
  {
    std::ofstream model(root / "tools" / "lint_taint.txt");
    model << "sorcery Foo ret\n";
  }
  std::string output;
  EXPECT_EQ(RunLint("--root " + root.string() + " 2>&1", &output), 2)
      << output;
  EXPECT_NE(output.find("unknown directive 'sorcery'"), std::string::npos)
      << output;
  fs::remove_all(root);
}

TEST(LintTest, ExplicitMissingTaintFileIsAnIoError) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("taint") +
                        " --taint /nonexistent-taint-model.txt 2>&1",
                    &output),
            2);
  EXPECT_NE(output.find("cannot read taint file"), std::string::npos)
      << output;
}

TEST(LintTest, SarifCarriesTaintFindings) {
  std::string output;
  int exit_code = RunLint(
      "--root " + Fixture("taint") + " --rules=taint --format=sarif",
      &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("\"id\":\"taint-unchecked-sink\""),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("\"ruleId\":\"taint-unchecked-sink\""),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("\"ruleId\":\"atoi-on-untrusted\""),
            std::string::npos)
      << output;
}

TEST(LintTest, TaintScanIsByteIdenticalFromWarmCache) {
  fs::path root = ScratchCopy("taint", "taint_cache");
  fs::path cache = root / "lint_cache.txt";
  std::string base = "--root " + root.string() + " --rules=taint --cache " +
                     cache.string();
  std::string cold, warm, meta;
  int cold_exit = RunLint(base, &cold);
  int warm_exit = RunLint(base, &warm);
  EXPECT_EQ(cold_exit, 1);
  EXPECT_EQ(warm_exit, 1);
  // The cross-TU chains must reconstruct exactly from cached fact tables
  // — any drift means the cache is missing a taint fact.
  EXPECT_EQ(cold, warm);
  RunLint(base + " 2>&1", &meta);
  EXPECT_NE(meta.find("(5 from cache)"), std::string::npos) << meta;
  fs::remove_all(root);
}

TEST(LintTest, TaintModelEditRetunesFindingsWithoutRescanning) {
  fs::path root = ScratchCopy("taint", "taint_retune");
  fs::path cache = root / "lint_cache.txt";
  std::string base = "--root " + root.string() + " --rules=taint --cache " +
                     cache.string() + " 2>&1";
  std::string output;
  RunLint(base, &output);
  EXPECT_EQ(CountOf(output, "taint-unchecked-sink:"), 5u) << output;
  // Drop the resize sink from the model: the fact tables are
  // config-independent, so every file stays cached — but the three
  // resize flows disappear and the loop/index sinks remain.
  {
    std::ofstream model(root / "tools" / "lint_taint.txt");
    model << "source ReadField ret\n"
          << "tainted-param Route wire\n"
          << "sanitizer ParseInt32\n";
  }
  RunLint(base, &output);
  EXPECT_NE(output.find("(5 from cache)"), std::string::npos) << output;
  EXPECT_EQ(CountOf(output, "taint-unchecked-sink:"), 2u) << output;
  EXPECT_EQ(output.find("resize()"), std::string::npos) << output;
  fs::remove_all(root);
}

TEST(LintTest, ListRulesIncludesTheTaintFamily) {
  std::string output;
  EXPECT_EQ(RunLint("--list-rules", &output), 0);
  EXPECT_NE(output.find("taint-unchecked-sink"), std::string::npos)
      << output;
  EXPECT_NE(output.find("atoi-on-untrusted"), std::string::npos) << output;
}

// ------------------------------------------------------------- baseline

TEST(LintTest, BaselineSuppressesKnownFindingsAndGatesNewOnes) {
  fs::path root = ScratchCopy("conc", "baseline");
  std::string output;
  // Adopt the current findings.
  EXPECT_EQ(RunLint("--root " + root.string() + " --update-baseline 2>&1",
                    &output),
            0)
      << output;
  EXPECT_NE(output.find("wrote baseline"), std::string::npos) << output;
  // With the baseline in place the scan passes and prints nothing.
  EXPECT_EQ(RunLint("--root " + root.string(), &output), 0) << output;
  EXPECT_EQ(output, "") << output;
  // SARIF still carries every finding, now with an external suppression.
  RunLint("--root " + root.string() + " --format=sarif", &output);
  EXPECT_NE(output.find("\"suppressions\":[{\"kind\":\"external\"}]"),
            std::string::npos)
      << output;
  // A newly introduced violation is NOT covered and fails the scan —
  // this is the CI gate ci/check.sh builds on.
  {
    std::ofstream append(root / "src" / "serve" / "report.cc",
                         std::ios::app);
    append << "inline int Noise() { return std::rand(); }\n";
  }
  EXPECT_EQ(RunLint("--root " + root.string(), &output), 1) << output;
  EXPECT_NE(output.find("raw-rng"), std::string::npos) << output;
  // The baselined findings stay suppressed in the gate run.
  EXPECT_EQ(output.find("requires-held"), std::string::npos) << output;
  fs::remove_all(root);
}

TEST(LintTest, ExplicitMissingBaselineIsAnIoError) {
  std::string output;
  EXPECT_EQ(RunLint("--root " + Fixture("good") +
                        " --baseline /nonexistent-baseline.txt 2>&1",
                    &output),
            2);
  EXPECT_NE(output.find("cannot read baseline file"), std::string::npos)
      << output;
}

// ------------------------------------------------------------------ fix

TEST(LintTest, FixNormalizesMechanicalFindingsAndIsIdempotent) {
  fs::path root = ScratchCopy("fixable", "fix");
  fs::path api = root / "src" / "util" / "api.h";
  std::string output;
  // Before: both mechanical rules fire.
  EXPECT_EQ(RunLint("--root " + root.string(), &output), 1) << output;
  EXPECT_NE(output.find("nodiscard-status"), std::string::npos) << output;
  EXPECT_NE(output.find("waiver-format"), std::string::npos) << output;
  // Fix pass.
  EXPECT_EQ(RunLint("--root " + root.string() + " --fix 2>&1", &output), 0)
      << output;
  EXPECT_NE(output.find("1 [[nodiscard]] inserted"), std::string::npos)
      << output;
  EXPECT_NE(output.find("1 waiver(s) normalized"), std::string::npos)
      << output;
  std::string fixed = ReadAll(api);
  EXPECT_NE(fixed.find("[[nodiscard]] Status Configure"),
            std::string::npos)
      << fixed;
  EXPECT_NE(fixed.find("// exea-lint: allow(raw-rng)"), std::string::npos)
      << fixed;
  // After: clean.
  EXPECT_EQ(RunLint("--root " + root.string(), &output), 0) << output;
  // Idempotent: a second pass rewrites nothing.
  EXPECT_EQ(RunLint("--root " + root.string() + " --fix 2>&1", &output), 0)
      << output;
  EXPECT_NE(output.find("fixed 0 file(s)"), std::string::npos) << output;
  EXPECT_EQ(ReadAll(api), fixed);
  fs::remove_all(root);
}

}  // namespace
