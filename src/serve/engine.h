// QueryEngine: the online half of the serving subsystem. Holds the
// resident snapshot versions behind a SnapshotManager and answers
// per-entity / per-pair queries against the frozen pipeline state:
//
//   align(e)          — served alignment of a source entity plus the top-k
//                       embedding-similarity candidates (batched lookups
//                       run through the snapshot's SimilarityIndex, which
//                       fans out on the process-wide util::ThreadPool;
//                       with --shards > 1 the index is a scatter-gather
//                       ShardedIndex over row partitions of emb2),
//   explain(e1, e2)   — the ExEA matching subgraph + ADG for a pair,
//                       rendered to JSON; by far the expensive path, so
//                       results go through an LRU cache,
//   neighbors(e)      — the KG edges around an entity,
//   repair_status(e1, e2) — what the repair pipeline did to a pair,
//   load_snapshot(dir)    — hot swap: install a new bundle as the current
//                       version with zero downtime; in-flight requests
//                       finish on the version they pinned at entry,
//   engine_status()   — version/shard/index introspection.
//
// Explanations are generated with the same AlignmentContext the offline
// CLI uses (raw inference output + seed alignment), so a served `explain`
// response is byte-identical to the offline pipeline's answer for the same
// pair — serve_test pins this.
//
// Versioning: every query pins the current ServingState (a refcounted
// handle from the SnapshotManager) ONCE at entry and answers entirely
// from it. Entity ids, embedding rows, and index borrows are only
// meaningful relative to that pinned version, which is why the explain
// cache key carries the snapshot epoch and why nothing in the engine
// keeps a raw pointer into "the" bundle anymore.
//
// Deadlines: every query takes a deadline (0 = none). The engine checks it
// at entry and again before each expensive stage; an expired deadline
// returns DEADLINE_EXCEEDED instead of blocking the request loop. A cached
// explanation is always served (the cache read is cheaper than the check
// is worth).

#ifndef EXEA_SERVE_ENGINE_H_
#define EXEA_SERVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "explain/exea.h"
#include "obs/metrics.h"
#include "serve/explain_cache.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "util/check.h"
#include "util/timer.h"

namespace exea::serve {

struct EngineOptions {
  size_t explain_cache_capacity = 256;  // entries; 0 disables caching
  size_t top_k = 5;                     // candidates returned by align

  // Which la::SimilarityIndex strategy answers align candidate search:
  //   "auto"  — the bundle's trained IVF index when it has one AND the
  //             target table has at least ivf_min_rows rows (small
  //             tables scan faster than they probe), else exact
  //   "exact" — always the dense scan
  //   "ivf"   — force the bundle's IVF index; falls back to exact with
  //             a warning when the bundle was frozen without one
  // The live choice is reported per response (AlignResult::index) and
  // in the stats op.
  std::string index_policy = "auto";
  size_t ivf_min_rows = 4096;

  // Row-wise partitions of emb2 behind one deterministic scatter-gather
  // merge (see la::ShardedIndex). 1 = the single-index layout; exact
  // sharded results are bit-identical to it at any shard count.
  size_t shards = 1;

  // Snapshot versions the manager keeps strongly resident (current
  // included; clamped to >= 1). Retired versions beyond this live only
  // as long as in-flight requests still pin them.
  size_t max_resident_versions = 2;

  // Where the engine registers its metrics (cache hit/miss counters, the
  // cache-size gauge, snapshot version/swap telemetry, query spans).
  // nullptr → obs::Registry::Global(). Tests inject a fresh registry so
  // exact-count assertions never see another test's traffic.
  obs::Registry* registry = nullptr;
};

// A per-request time budget. `seconds <= 0` means no deadline.
class Deadline {
 public:
  explicit Deadline(double seconds) : seconds_(seconds) {}
  static Deadline None() { return Deadline(0); }

  bool Expired() const {
    return seconds_ > 0 && timer_.ElapsedSeconds() > seconds_;
  }

 private:
  double seconds_;
  WallTimer timer_;
};

struct AlignResult {
  std::string source;
  // Served (repaired) targets; usually one, empty if the entity was never
  // aligned.
  std::vector<std::string> aligned;
  // Top-k KG2 entities by embedding cosine, descending.
  std::vector<std::pair<std::string, double>> candidates;
  // Search strategy that produced `candidates` ("exact" | "ivf"), so a
  // client can tell approximate answers from exhaustive ones.
  std::string index;
};

struct ExplainResult {
  std::string json;         // {"explanation":...,"adg":...}
  double confidence = 0.0;  // the ADG's Eq. (9) confidence
  bool cache_hit = false;
};

struct NeighborEdge {
  std::string relation;
  std::string neighbor;
  bool outgoing = true;
};

struct NeighborsResult {
  std::string entity;
  std::vector<NeighborEdge> edges;
};

struct RepairStatusResult {
  bool in_base = false;      // pair was in the raw inference output
  bool in_repaired = false;  // pair survived (or was added by) repair
  // "kept" | "removed" | "replaced" | "added" | "absent"
  std::string verdict;
  // Where the source is aligned after repair (context for removed/replaced).
  std::vector<std::string> repaired_targets;
};

// Snapshot of the engine's versioning and search topology, for the
// engine_status op and the stats dump.
struct EngineStatusResult {
  uint64_t epoch = 0;           // current version number
  std::string source;           // where the current bundle came from
  size_t shards = 0;            // index partitions in the current version
  std::string index;            // "exact" | "ivf"
  size_t index_size = 0;        // rows reachable through the index
  size_t resident_versions = 0; // strongly held by the manager
  double live_versions = 0.0;   // alive incl. reader-pinned (gauge)
  uint64_t swaps = 0;           // successful load_snapshot replacements
  size_t explain_cache_size = 0;
};

class QueryEngine {
 public:
  // Loads the bundle at `dir` (version + checksum verified) and builds the
  // explainer state once.
  [[nodiscard]] static StatusOr<std::unique_ptr<QueryEngine>> Open(
      const std::string& dir, const EngineOptions& options);

  // In-process construction from an already-loaded bundle (tests, benches).
  static std::unique_ptr<QueryEngine> FromBundle(
      std::unique_ptr<SnapshotBundle> bundle, const EngineOptions& options);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Hot swap: read + validate the bundle at `dir`, build a new
  // ServingState, install it as the current version, and invalidate the
  // explain cache. On any error the previous version keeps serving
  // untouched. Returns the new epoch. Rejects dirs containing ".." with
  // INVALID_ARGUMENT and missing/unopenable bundles with NOT_FOUND;
  // malformed bundle contents surface as INVALID_ARGUMENT.
  [[nodiscard]] StatusOr<uint64_t> LoadSnapshot(const std::string& dir);

  // Pins the current snapshot version. The handle keeps every id, row,
  // and index borrow inside it valid; queries that resolve ids against
  // one state MUST answer from that same state.
  std::shared_ptr<const ServingState> AcquireState() const {
    return manager_.Acquire();
  }

  EngineStatusResult EngineStatus() const;

  // `source` is a KG1 entity name. NOT_FOUND for unknown names.
  [[nodiscard]] StatusOr<AlignResult> Align(const std::string& source,
                              const Deadline& deadline) const;

  // Batched variant: one TopKAll dispatch for all sources (the thread
  // pool splits the rows), then per-source assembly. Composed of the two
  // stages below; callers that batch across independent requests (the
  // micro-batching coalescer) use the stages directly — against ONE
  // pinned state — so each request keeps its own error semantics while
  // sharing one dispatch.
  [[nodiscard]] StatusOr<std::vector<AlignResult>> AlignBatch(
      const std::vector<std::string>& sources, const Deadline& deadline) const;

  // Stage 1 of AlignBatch: name resolution against `state` with
  // AlignBatch's exact error semantics — InvalidArgument for an empty
  // batch, NOT_FOUND (failing the whole batch) for any unknown name.
  [[nodiscard]] StatusOr<std::vector<kg::EntityId>> ResolveAlignBatch(
      const ServingState& state, const std::vector<std::string>& sources) const;

  // Stage 2 of AlignBatch: one top-k dispatch over already-resolved ids,
  // then per-row assembly. `state` must be the state the ids were
  // resolved against (ids index its tables directly). `names` are the
  // display names, parallel to `ids`. Row i of the result depends only
  // on ids[i] — never on what else shares the dispatch — which is what
  // makes coalescing requests into one call byte-identical to serving
  // them alone (serve_test pins this).
  [[nodiscard]] std::vector<AlignResult> AlignResolved(
      const ServingState& state, const std::vector<kg::EntityId>& ids,
      const std::vector<std::string>& names) const;

  // `source` in KG1, `target` in KG2, both by name.
  [[nodiscard]] StatusOr<ExplainResult> Explain(const std::string& source,
                                  const std::string& target,
                                  const Deadline& deadline) const;

  // `side` is 1 (KG1) or 2 (KG2).
  [[nodiscard]]
  StatusOr<NeighborsResult> Neighbors(const std::string& entity, int side,
                                      const Deadline& deadline) const;

  [[nodiscard]]
  StatusOr<RepairStatusResult> RepairStatus(const std::string& source,
                                            const std::string& target,
                                            const Deadline& deadline) const;

  void ClearExplainCache();  // benches: measure the cold path repeatedly

  // The registry this engine's metrics live in:
  //   serve.explain_cache.hits / .misses     counters
  //   serve.explain_cache.invalidations      counter (clears on swap)
  //   serve.explain_cache.size               gauge
  //   serve.snapshot.versions                gauge
  //   serve.snapshot.swaps                   counter
  const obs::Registry& registry() const { return *registry_; }
  obs::Registry* mutable_registry() const { return registry_; }

 private:
  QueryEngine(std::unique_ptr<SnapshotBundle> bundle, std::string source,
              const EngineOptions& options);

  // Builds a ServingState for `bundle` at the next epoch.
  std::unique_ptr<const ServingState> BuildState(
      std::unique_ptr<SnapshotBundle> bundle, std::string source);

  [[nodiscard]] StatusOr<kg::EntityId> ResolveSource(
      const ServingState& state, const std::string& name) const;
  [[nodiscard]] StatusOr<kg::EntityId> ResolveTarget(
      const ServingState& state, const std::string& name) const;

  EngineOptions options_;
  obs::Registry* registry_;  // never null; set from options in the ctor
  SnapshotManager manager_;

  // LRU cache over rendered explanations, keyed by (epoch, packed
  // (e1, e2)); internally synchronized and owns the size gauge update
  // (obs-no-adhoc-metrics keeps tallies in the registry).
  mutable ExplainLruCache cache_;
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& cache_invalidations_;

  // Serializes LoadSnapshot callers (reads stay lock-free on this path:
  // they only touch the manager's own mutex for the pointer copy).
  // Declared last: nothing below it, so the guarded-by lint pass knows
  // the members above are not under this mutex.
  std::mutex swap_mu_;
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_ENGINE_H_
