// SimilarityIndex contract tests (la/similarity_index.h): ExactIndex
// and IvfIndex answer the same queries over the same fixture, and the
// approximate index is pinned on four properties:
//
//   1. recall@1 / recall@10 >= 0.97 at the default nprobe on a
//      clustered fixture (the regime IVF exists for),
//   2. recall is monotone non-decreasing in nprobe,
//   3. nprobe == num_clusters is BIT-identical to ExactIndex (the
//      degenerate-to-exact guarantee),
//   4. construction is deterministic: same seed ⇒ byte-identical
//      serialized index.
//
// Plus serialization round-trips and validation/load rejection of
// structurally corrupt data.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "la/matrix.h"
#include "la/similarity.h"
#include "la/similarity_index.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace exea {
namespace {

// Rows drawn tightly around well-separated random centers — the
// clustered geometry the coarse quantizer is meant to recover.
la::Matrix ClusteredTable(uint64_t seed, size_t rows, size_t dim,
                          size_t centers) {
  Rng rng(seed);
  la::Matrix center_mat(centers, dim);
  for (size_t c = 0; c < centers; ++c) {
    for (size_t j = 0; j < dim; ++j) {
      center_mat.Row(c)[j] = static_cast<float>(rng.Normal());
    }
  }
  la::Matrix table(rows, dim);
  for (size_t r = 0; r < rows; ++r) {
    const float* center = center_mat.Row(r % centers);
    for (size_t j = 0; j < dim; ++j) {
      table.Row(r)[j] =
          center[j] + 0.15f * static_cast<float>(rng.Normal());
    }
  }
  return table;
}

// Queries perturbed off existing table rows, so ground-truth neighbors
// cluster the way real alignment queries do.
la::Matrix PerturbedQueries(uint64_t seed, const la::Matrix& table,
                            size_t count) {
  Rng rng(seed);
  la::Matrix queries(count, table.cols());
  for (size_t q = 0; q < count; ++q) {
    const float* row = table.Row(rng.UniformInt(table.rows()));
    for (size_t j = 0; j < table.cols(); ++j) {
      queries.Row(q)[j] =
          row[j] + 0.05f * static_cast<float>(rng.Normal());
    }
  }
  return queries;
}

double RecallAtK(const std::vector<std::vector<la::ScoredIndex>>& truth,
                 const std::vector<std::vector<la::ScoredIndex>>& got,
                 size_t k) {
  EXPECT_EQ(truth.size(), got.size());
  double hits = 0, total = 0;
  for (size_t q = 0; q < truth.size(); ++q) {
    size_t take = std::min(k, truth[q].size());
    total += static_cast<double>(take);
    for (size_t i = 0; i < take && i < got[q].size(); ++i) {
      for (size_t j = 0; j < take; ++j) {
        if (got[q][i].index == truth[q][j].index) {
          hits += 1;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0 : hits / total;
}

bool ResultsBitEqual(const std::vector<std::vector<la::ScoredIndex>>& a,
                     const std::vector<std::vector<la::ScoredIndex>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].index != b[q][i].index) return false;
      if (a[q][i].score != b[q][i].score) return false;
    }
  }
  return true;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string Scratch(const std::string& leaf) {
  return ::testing::TempDir() + "/" + leaf;
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = ClusteredTable(7, 2000, 16, 32);
    queries_ = PerturbedQueries(11, table_, 128);
    ivf_ = la::TrainIvfIndex(table_, la::IvfOptions{});
    ASSERT_TRUE(
        la::ValidateIvfIndexData(ivf_, table_.rows(), table_.cols()).ok());
  }

  la::Matrix table_{0, 0};
  la::Matrix queries_{0, 0};
  la::IvfIndexData ivf_;
  obs::Registry registry_;
};

TEST_F(IndexTest, ExactIndexMatchesTopKByCosineAll) {
  la::ExactIndex index(&table_, &registry_);
  EXPECT_STREQ(index.name(), "exact");
  EXPECT_EQ(index.size(), table_.rows());
  auto got = index.TopKAll(queries_, 10);
  auto want = la::TopKByCosineAll(queries_, table_, 10);
  EXPECT_TRUE(ResultsBitEqual(want, got));
  EXPECT_EQ(registry_.CounterValue("index.exact.queries"), queries_.rows());
}

TEST_F(IndexTest, IvfRecallAtDefaultNprobeIsHigh) {
  la::ExactIndex exact(&table_, &registry_);
  la::IvfIndex ivf(&table_, &ivf_, &registry_);
  EXPECT_STREQ(ivf.name(), "ivf");
  EXPECT_EQ(ivf.size(), table_.rows());
  EXPECT_EQ(ivf.nprobe(), 8u);
  auto truth = exact.TopKAll(queries_, 10);
  auto got = ivf.TopKAll(queries_, 10);
  EXPECT_GE(RecallAtK(truth, got, 1), 0.97);
  EXPECT_GE(RecallAtK(truth, got, 10), 0.97);
  EXPECT_EQ(registry_.CounterValue("index.ivf.queries"), queries_.rows());
  EXPECT_EQ(registry_.CounterValue("index.recall_probe"),
            queries_.rows() * ivf.nprobe());
}

TEST_F(IndexTest, IvfRecallIsMonotoneInNprobe) {
  la::ExactIndex exact(&table_, &registry_);
  auto truth = exact.TopKAll(queries_, 10);
  la::IvfIndex ivf(&table_, &ivf_, &registry_);
  double prev = -1.0;
  for (size_t nprobe = 1; nprobe <= ivf.num_clusters(); nprobe *= 2) {
    ivf.set_nprobe(nprobe);
    double recall = RecallAtK(truth, ivf.TopKAll(queries_, 10), 10);
    EXPECT_GE(recall, prev) << "recall dropped at nprobe=" << nprobe;
    prev = recall;
  }
}

TEST_F(IndexTest, IvfWithFullProbeIsBitIdenticalToExact) {
  la::ExactIndex exact(&table_, &registry_);
  la::IvfIndex ivf(&table_, &ivf_, &registry_);
  ivf.set_nprobe(ivf.num_clusters());
  EXPECT_TRUE(
      ResultsBitEqual(exact.TopKAll(queries_, 10), ivf.TopKAll(queries_, 10)));
}

TEST_F(IndexTest, SetNprobeClampsToValidRange) {
  la::IvfIndex ivf(&table_, &ivf_, &registry_);
  ivf.set_nprobe(0);
  EXPECT_EQ(ivf.nprobe(), 1u);
  ivf.set_nprobe(ivf.num_clusters() + 100);
  EXPECT_EQ(ivf.nprobe(), ivf.num_clusters());
}

TEST_F(IndexTest, TrainingIsDeterministicPerSeed) {
  la::IvfOptions options;
  options.seed = 123;
  la::IvfIndexData a = la::TrainIvfIndex(table_, options);
  la::IvfIndexData b = la::TrainIvfIndex(table_, options);
  options.seed = 124;
  la::IvfIndexData c = la::TrainIvfIndex(table_, options);

  std::string pa = Scratch("ivf_seed_a.ivf");
  std::string pb = Scratch("ivf_seed_b.ivf");
  std::string pc = Scratch("ivf_seed_c.ivf");
  ASSERT_TRUE(la::SaveIvfIndexData(a, pa).ok());
  ASSERT_TRUE(la::SaveIvfIndexData(b, pb).ok());
  ASSERT_TRUE(la::SaveIvfIndexData(c, pc).ok());
  EXPECT_EQ(ReadFileBytes(pa), ReadFileBytes(pb))
      << "same seed must serialize to identical bytes";
  EXPECT_NE(ReadFileBytes(pa), ReadFileBytes(pc))
      << "different seeds should pick different initial centroids";
}

TEST_F(IndexTest, SaveLoadRoundTripsExactly) {
  std::string path = Scratch("ivf_roundtrip.ivf");
  ASSERT_TRUE(la::SaveIvfIndexData(ivf_, path).ok());
  auto loaded = la::LoadIvfIndexData(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(
      la::ValidateIvfIndexData(*loaded, table_.rows(), table_.cols()).ok());
  EXPECT_EQ(loaded->centroids.rows(), ivf_.centroids.rows());
  EXPECT_EQ(loaded->centroids.cols(), ivf_.centroids.cols());
  EXPECT_EQ(loaded->centroids.data(), ivf_.centroids.data());
  EXPECT_EQ(loaded->lists, ivf_.lists);
  EXPECT_EQ(loaded->nprobe, ivf_.nprobe);
  EXPECT_EQ(loaded->iterations, ivf_.iterations);
  EXPECT_EQ(loaded->seed, ivf_.seed);

  // The loaded index answers queries identically to the trained one.
  la::IvfIndex from_train(&table_, &ivf_, &registry_);
  la::IvfIndex from_load(&table_, &*loaded, &registry_);
  EXPECT_TRUE(ResultsBitEqual(from_train.TopKAll(queries_, 5),
                              from_load.TopKAll(queries_, 5)));
}

TEST_F(IndexTest, ValidateRejectsStructuralCorruption) {
  size_t rows = table_.rows(), cols = table_.cols();
  ASSERT_TRUE(la::ValidateIvfIndexData(ivf_, rows, cols).ok());

  // k-means may leave some posting lists empty; corrupt ones with rows.
  size_t nonempty = 0;
  while (ivf_.lists[nonempty].empty()) ++nonempty;
  size_t multi = 0;
  while (ivf_.lists[multi].size() < 2) ++multi;

  {  // row id out of range
    la::IvfIndexData bad = ivf_;
    bad.lists[nonempty].back() = static_cast<uint32_t>(rows);
    EXPECT_FALSE(la::ValidateIvfIndexData(bad, rows, cols).ok());
  }
  {  // duplicated row id (coverage becomes wrong too; either trips)
    la::IvfIndexData bad = ivf_;
    bad.lists[multi].back() = bad.lists[multi].front();
    EXPECT_FALSE(la::ValidateIvfIndexData(bad, rows, cols).ok());
  }
  {  // a row missing entirely
    la::IvfIndexData bad = ivf_;
    for (auto& list : bad.lists) {
      if (!list.empty()) {
        list.pop_back();
        break;
      }
    }
    EXPECT_FALSE(la::ValidateIvfIndexData(bad, rows, cols).ok());
  }
  {  // non-ascending posting list
    la::IvfIndexData bad = ivf_;
    for (auto& list : bad.lists) {
      if (list.size() >= 2) {
        std::swap(list.front(), list.back());
        break;
      }
    }
    EXPECT_FALSE(la::ValidateIvfIndexData(bad, rows, cols).ok());
  }
  {  // centroid dim mismatch against the table
    EXPECT_FALSE(la::ValidateIvfIndexData(ivf_, rows, cols + 1).ok());
  }
  {  // nprobe outside [1, num_clusters]
    la::IvfIndexData bad = ivf_;
    bad.nprobe = 0;
    EXPECT_FALSE(la::ValidateIvfIndexData(bad, rows, cols).ok());
    bad.nprobe = static_cast<uint32_t>(bad.lists.size()) + 1;
    EXPECT_FALSE(la::ValidateIvfIndexData(bad, rows, cols).ok());
  }
  {  // lists/centroids count mismatch
    la::IvfIndexData bad = ivf_;
    bad.lists.emplace_back();
    EXPECT_FALSE(la::ValidateIvfIndexData(bad, rows, cols).ok());
  }
}

TEST_F(IndexTest, LoadRejectsMalformedFiles) {
  {
    std::string path = Scratch("ivf_bad_magic.ivf");
    std::ofstream out(path);
    out << "not_an_ivf_index 1\n";
    out.close();
    EXPECT_FALSE(la::LoadIvfIndexData(path).ok());
  }
  {
    std::string good = Scratch("ivf_good.ivf");
    ASSERT_TRUE(la::SaveIvfIndexData(ivf_, good).ok());
    std::string bytes = ReadFileBytes(good);
    std::string truncated_path = Scratch("ivf_truncated.ivf");
    std::ofstream out(truncated_path, std::ios::binary);
    out << bytes.substr(0, bytes.size() / 2);
    out.close();
    EXPECT_FALSE(la::LoadIvfIndexData(truncated_path).ok());
  }
  EXPECT_FALSE(la::LoadIvfIndexData(Scratch("ivf_missing.ivf")).ok());
}

TEST(IndexEdgeTest, ClusterCountClampsToRows) {
  la::Matrix tiny = ClusteredTable(3, 5, 4, 2);
  la::IvfOptions options;
  options.num_clusters = 64;  // > rows
  la::IvfIndexData data = la::TrainIvfIndex(tiny, options);
  EXPECT_EQ(data.centroids.rows(), tiny.rows());
  EXPECT_TRUE(
      la::ValidateIvfIndexData(data, tiny.rows(), tiny.cols()).ok());
}

TEST(IndexEdgeTest, KLargerThanTableReturnsAllRows) {
  la::Matrix tiny = ClusteredTable(4, 6, 4, 2);
  la::IvfIndexData data = la::TrainIvfIndex(tiny, la::IvfOptions{});
  obs::Registry registry;
  la::ExactIndex exact(&tiny, &registry);
  la::IvfIndex ivf(&tiny, &data, &registry);
  ivf.set_nprobe(ivf.num_clusters());
  la::Matrix queries = PerturbedQueries(5, tiny, 3);
  auto exact_got = exact.TopKAll(queries, 50);
  auto ivf_got = ivf.TopKAll(queries, 50);
  for (size_t q = 0; q < queries.rows(); ++q) {
    EXPECT_EQ(exact_got[q].size(), tiny.rows());
    EXPECT_EQ(ivf_got[q].size(), tiny.rows());
  }
  EXPECT_TRUE(ResultsBitEqual(exact_got, ivf_got));
}

// ------------------------------------------------------- sharded index

// Row-wise shard layout mirroring serve's: contiguous ranges of
// ceil(rows/shards) rows each, children over [begin, end).
std::unique_ptr<la::SimilarityIndex> MakeShardedExact(
    const la::Matrix& table, size_t shards, obs::Registry* registry) {
  std::vector<std::unique_ptr<la::SimilarityIndex>> children;
  size_t grain = (table.rows() + shards - 1) / shards;
  for (size_t s = 0; s < shards; ++s) {
    size_t begin = std::min(table.rows(), s * grain);
    size_t end = std::min(table.rows(), begin + grain);
    children.push_back(
        std::make_unique<la::ExactIndex>(&table, begin, end, registry));
  }
  return std::make_unique<la::ShardedIndex>(std::move(children),
                                            "test.shard", registry);
}

class ShardedIndexTest : public IndexTest {};

// The core scatter-gather guarantee: per-shard top-k over disjoint row
// ranges, merged under the (score desc, index asc) strict total order,
// is BIT-identical to the single-index exhaustive scan — every score,
// every id, every tie broken the same way, at any shard count.
TEST_F(ShardedIndexTest, ExactShardsAreBitIdenticalToSingleIndex) {
  la::ExactIndex single(&table_, &registry_);
  for (size_t k : {size_t{1}, size_t{10}, size_t{50}}) {
    auto want = single.TopKAll(queries_, k);
    for (size_t shards : {size_t{2}, size_t{3}, size_t{7}, size_t{16}}) {
      auto index = MakeShardedExact(table_, shards, &registry_);
      EXPECT_STREQ(index->name(), "exact");
      EXPECT_EQ(index->size(), table_.rows());
      EXPECT_TRUE(ResultsBitEqual(want, index->TopKAll(queries_, k)))
          << "k=" << k << " shards=" << shards;
    }
  }
}

TEST_F(ShardedIndexTest, RecordsPerShardAndMergeSpans) {
  auto index = MakeShardedExact(table_, 3, &registry_);
  (void)index->TopKAll(queries_, 5);
  EXPECT_EQ(registry_.GetHistogram("span.test.shard.0").Count(), 1u);
  EXPECT_EQ(registry_.GetHistogram("span.test.shard.1").Count(), 1u);
  EXPECT_EQ(registry_.GetHistogram("span.test.shard.2").Count(), 1u);
  EXPECT_EQ(registry_.GetHistogram("span.test.shard.merge").Count(), 1u);
}

// ShardIvfIndexData slices the posting lists row-wise without touching
// the centroids: every indexed row lands in exactly one shard, and a
// full-probe sharded IVF stays bit-identical to the exhaustive scan
// (each shard's probe covers all of its rows, and the merge order is
// the same strict total order the exact path uses).
TEST_F(ShardedIndexTest, ShardIvfIndexDataPartitionsRowsExactly) {
  const size_t shards = 4;
  size_t grain = (table_.rows() + shards - 1) / shards;
  std::vector<la::IvfIndexData> parts;
  std::vector<std::unique_ptr<la::SimilarityIndex>> children;
  parts.reserve(shards);
  size_t total = 0;
  std::vector<int> seen(table_.rows(), 0);
  for (size_t s = 0; s < shards; ++s) {
    size_t begin = std::min(table_.rows(), s * grain);
    size_t end = std::min(table_.rows(), begin + grain);
    parts.push_back(la::ShardIvfIndexData(ivf_, begin, end));
    const la::IvfIndexData& part = parts.back();
    EXPECT_EQ(part.centroids.data(), ivf_.centroids.data());
    for (const auto& list : part.lists) {
      for (uint32_t id : list) {
        ASSERT_GE(id, begin);
        ASSERT_LT(id, end);
        ++seen[id];
        ++total;
      }
    }
  }
  EXPECT_EQ(total, table_.rows());
  for (size_t r = 0; r < table_.rows(); ++r) {
    EXPECT_EQ(seen[r], 1) << "row " << r << " must be in exactly one shard";
  }

  for (size_t s = 0; s < shards; ++s) {
    size_t begin = std::min(table_.rows(), s * grain);
    size_t end = std::min(table_.rows(), begin + grain);
    auto child = std::make_unique<la::IvfIndex>(&table_, &parts[s],
                                                &registry_);
    child->set_nprobe(child->num_clusters());
    EXPECT_EQ(child->size(), end - begin);
    children.push_back(std::move(child));
  }
  la::ShardedIndex sharded(std::move(children), "", &registry_);
  EXPECT_STREQ(sharded.name(), "ivf");
  EXPECT_EQ(sharded.size(), table_.rows());
  la::ExactIndex exact(&table_, &registry_);
  EXPECT_TRUE(ResultsBitEqual(exact.TopKAll(queries_, 10),
                              sharded.TopKAll(queries_, 10)));
}

TEST(IndexEdgeTest, SingleShardShardedIndexDegenerates) {
  la::Matrix tiny = ClusteredTable(9, 7, 4, 2);
  obs::Registry registry;
  la::ExactIndex single(&tiny, &registry);
  std::vector<std::unique_ptr<la::SimilarityIndex>> children;
  children.push_back(
      std::make_unique<la::ExactIndex>(&tiny, 0, tiny.rows(), &registry));
  la::ShardedIndex sharded(std::move(children), "", &registry);
  la::Matrix queries = PerturbedQueries(5, tiny, 3);
  EXPECT_TRUE(ResultsBitEqual(single.TopKAll(queries, 3),
                              sharded.TopKAll(queries, 3)));
}

}  // namespace
}  // namespace exea
