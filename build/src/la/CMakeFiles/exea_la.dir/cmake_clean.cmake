file(REMOVE_RECURSE
  "CMakeFiles/exea_la.dir/linreg.cc.o"
  "CMakeFiles/exea_la.dir/linreg.cc.o.d"
  "CMakeFiles/exea_la.dir/matrix.cc.o"
  "CMakeFiles/exea_la.dir/matrix.cc.o.d"
  "CMakeFiles/exea_la.dir/matrix_io.cc.o"
  "CMakeFiles/exea_la.dir/matrix_io.cc.o.d"
  "CMakeFiles/exea_la.dir/similarity.cc.o"
  "CMakeFiles/exea_la.dir/similarity.cc.o.d"
  "CMakeFiles/exea_la.dir/sparse.cc.o"
  "CMakeFiles/exea_la.dir/sparse.cc.o.d"
  "CMakeFiles/exea_la.dir/vector_ops.cc.o"
  "CMakeFiles/exea_la.dir/vector_ops.cc.o.d"
  "libexea_la.a"
  "libexea_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
