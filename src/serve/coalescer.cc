#include "serve/coalescer.h"

#include <chrono>
#include <utility>

namespace exea::serve {

AlignCoalescer::AlignCoalescer(const QueryEngine* engine,
                               const CoalescerOptions& options)
    : engine_(engine),
      options_(options),
      ticks_((options.registry != nullptr ? options.registry
                                          : &obs::Registry::Global())
                 ->GetCounter("serve.batch.ticks")),
      rows_per_dispatch_((options.registry != nullptr
                              ? options.registry
                              : &obs::Registry::Global())
                             ->GetHistogram("serve.batch.size")) {
  EXEA_CHECK(engine != nullptr) << "AlignCoalescer needs an engine";
  EXEA_CHECK_GT(options.max_batch, 0u)
      << "max_batch of 0 would never dispatch";
}

StatusOr<std::vector<AlignResult>> AlignCoalescer::Align(
    const std::vector<std::string>& sources, const Deadline& deadline) {
  // Per-request stages stay outside the batch: resolution errors and the
  // pre-lookup deadline check belong to this request alone, with
  // AlignBatch's exact statuses. The request pins the current snapshot
  // version here and rides it to completion.
  std::shared_ptr<const ServingState> state = engine_->AcquireState();
  auto ids = engine_->ResolveAlignBatch(*state, sources);
  if (!ids.ok()) return ids.status();
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("align: deadline expired before lookup");
  }

  Pending pending;
  pending.state = std::move(state);
  pending.ids = std::move(*ids);
  pending.names = sources;
  pending.deadline = &deadline;

  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&pending);
  queued_rows_ += pending.ids.size();

  while (!pending.done) {
    if (leader_active_) {
      // Follower: the full-batch signal is for the leader; this thread
      // just waits to be fulfilled — or to inherit leadership if the
      // current leader's drain didn't include it.
      if (queued_rows_ >= options_.max_batch) batch_cv_.notify_one();
      done_cv_.wait(lock, [&] { return pending.done || !leader_active_; });
      continue;
    }
    leader_active_ = true;
    if (options_.max_wait_ms > 0 && queued_rows_ < options_.max_batch) {
      batch_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(options_.max_wait_ms),
          [&] { return queued_rows_ >= options_.max_batch; });
    }
    DrainLocked(lock);
  }

  if (!pending.error.ok()) return pending.error;
  return std::move(pending.rows);
}

void AlignCoalescer::DrainLocked(std::unique_lock<std::mutex>& lock) {
  std::deque<Pending*> batch;
  batch.swap(queue_);
  queued_rows_ = 0;

  // Drain-time deadline shed: a sub-request that went stale in the batch
  // window completes with AlignBatch's pre-lookup status and is excluded
  // from the dispatch. Live requests are grouped by the snapshot version
  // they resolved against — ids are version-relative, so a batch that
  // straddles a hot swap dispatches once per pinned version (one group
  // in the steady state).
  struct Group {
    std::shared_ptr<const ServingState> state;
    std::vector<kg::EntityId> ids;
    std::vector<std::string> names;
    std::vector<Pending*> members;
    std::vector<AlignResult> rows;
  };
  std::vector<Group> groups;
  for (Pending* pending : batch) {
    if (pending->deadline->Expired()) {
      pending->error =
          Status::DeadlineExceeded("align: deadline expired before lookup");
      continue;
    }
    Group* group = nullptr;
    for (Group& candidate : groups) {
      if (candidate.state->epoch() == pending->state->epoch()) {
        group = &candidate;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{pending->state, {}, {}, {}, {}});
      group = &groups.back();
    }
    group->ids.insert(group->ids.end(), pending->ids.begin(),
                      pending->ids.end());
    group->names.insert(group->names.end(), pending->names.begin(),
                        pending->names.end());
    group->members.push_back(pending);
  }

  if (!groups.empty()) {
    // The dispatches run unlocked so new requests can queue behind the
    // next leader while the index works.
    lock.unlock();
    for (Group& group : groups) {
      group.rows = engine_->AlignResolved(*group.state, group.ids,
                                          group.names);
      ticks_.Increment();
      rows_per_dispatch_.Record(static_cast<double>(group.rows.size()));
    }
    lock.lock();
    for (Group& group : groups) {
      size_t offset = 0;
      for (Pending* pending : group.members) {
        size_t count = pending->ids.size();
        pending->rows.assign(
            std::make_move_iterator(group.rows.begin() + offset),
            std::make_move_iterator(group.rows.begin() + offset + count));
        offset += count;
      }
    }
  }

  for (Pending* pending : batch) pending->done = true;
  leader_active_ = false;
  done_cv_.notify_all();
}

}  // namespace exea::serve
