// End-to-end integration tests: the full train → infer → explain → repair
// pipeline across models and benchmarks (parameterized), the fidelity
// protocol with real explainers, and cross-cutting invariants that mirror
// the paper's headline findings at test scale.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/ealime.h"
#include "explain/exea_explainer_adapter.h"
#include "data/benchmarks.h"
#include "data/noise.h"
#include "emb/model.h"
#include "eval/fidelity.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "repair/pipeline.h"

namespace exea {
namespace {

struct PipelineCase {
  data::Benchmark benchmark;
  emb::ModelKind model;
};

std::string CaseName(const ::testing::TestParamInfo<PipelineCase>& info) {
  std::string name = data::BenchmarkName(info.param.benchmark) + "_" +
                     emb::ModelKindName(info.param.model);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class EndToEndTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(EndToEndTest, RepairImprovesAccuracyAndIsOneToOne) {
  data::EaDataset dataset =
      data::MakeBenchmark(GetParam().benchmark, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(GetParam().model);
  model->Train(dataset);

  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(dataset, *model, config);
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  repair::RepairReport report = pipeline.Run();

  EXPECT_GT(report.base_accuracy, 0.15)
      << "base model should be far better than random";
  EXPECT_GT(report.repaired_accuracy, report.base_accuracy)
      << "repair must improve accuracy";
  EXPECT_TRUE(report.repaired_alignment.IsOneToOne());
  // Every test source ends up aligned (Algorithm 2's greedy fallback
  // guarantees completeness).
  for (kg::EntityId source : dataset.test_sources) {
    EXPECT_TRUE(report.repaired_alignment.HasSource(source))
        << "source " << source << " left unaligned";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndBenchmarks, EndToEndTest,
    ::testing::Values(
        PipelineCase{data::Benchmark::kZhEn, emb::ModelKind::kMTransE},
        PipelineCase{data::Benchmark::kZhEn, emb::ModelKind::kAlignE},
        PipelineCase{data::Benchmark::kZhEn, emb::ModelKind::kGcnAlign},
        PipelineCase{data::Benchmark::kZhEn, emb::ModelKind::kDualAmn},
        PipelineCase{data::Benchmark::kJaEn, emb::ModelKind::kMTransE},
        PipelineCase{data::Benchmark::kFrEn, emb::ModelKind::kAlignE},
        PipelineCase{data::Benchmark::kDbpWd, emb::ModelKind::kDualAmn},
        PipelineCase{data::Benchmark::kDbpYago, emb::ModelKind::kGcnAlign}),
    CaseName);

// ----------------------------------------------------------- key findings

TEST(FindingsTest, RepairedSimpleModelRivalsStrongBaseModel) {
  // Paper finding 1: "simple models can also achieve high accuracy by
  // effectively repairing alignment conflicts" — repaired MTransE should
  // approach or surpass unrepaired Dual-AMN.
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> mtranse =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  mtranse->Train(dataset);
  explain::ExeaExplainer explainer(dataset, *mtranse, explain::ExeaConfig{});
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  double repaired_mtranse = pipeline.Run().repaired_accuracy;

  std::unique_ptr<emb::EAModel> dual_amn =
      emb::MakeDefaultModel(emb::ModelKind::kDualAmn);
  dual_amn->Train(dataset);
  double base_dual_amn = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*dual_amn, dataset)),
      dataset.test_gold);

  EXPECT_GE(repaired_mtranse + 0.02, base_dual_amn);
}

TEST(FindingsTest, OneToManyIsTheDominantConflict) {
  // Paper finding 2: the one-to-many conflict is the most common and most
  // influential. In this build cr3 absorbs part of the one-to-many repair
  // when cr2 is ablated (see EXPERIMENTS.md Table IV note), so the finding
  // is asserted at the conflict-count level plus the ablation directions
  // that are robust: removing cr2 hurts vs full, and hurts more than
  // removing cr1.
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  explain::ExeaExplainer explainer(dataset, *model, explain::ExeaConfig{});

  repair::RepairPipeline full_pipeline(explainer, repair::RepairOptions{});
  repair::RepairReport full_report = full_pipeline.Run();
  // One-to-many conflicts are plentiful in the raw output.
  EXPECT_GT(full_report.one_to_many_conflicts, 10u);

  auto accuracy_without = [&](bool cr1, bool cr2, bool cr3) {
    repair::RepairOptions options;
    options.enable_cr1 = cr1;
    options.enable_cr2 = cr2;
    options.enable_cr3 = cr3;
    return repair::RepairPipeline(explainer, options).Run().repaired_accuracy;
  };
  double full = full_report.repaired_accuracy;
  double no_cr1 = accuracy_without(false, true, true);
  double no_cr2 = accuracy_without(true, false, true);
  EXPECT_LE(no_cr2, no_cr1 + 0.02);
  EXPECT_LE(no_cr2, full + 1e-9);
}

TEST(FindingsTest, NoiseRobustness) {
  // Paper Section V-E shape: noisy seeds lower base accuracy, yet repair
  // still delivers a solid improvement.
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  data::EaDataset noisy = data::CorruptSeedAlignment(dataset, 1.0 / 6.0, 42);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(noisy);
  explain::ExeaExplainer explainer(noisy, *model, explain::ExeaConfig{});
  repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
  repair::RepairReport report = pipeline.Run();
  EXPECT_GT(report.AccuracyGain(), 0.05);
}

// ------------------------------------------------------- fidelity end-to-end

TEST(FidelityIntegrationTest, ExeaBeatsRandomExplanationsOnFidelity) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);
  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(dataset, *model, config);
  explain::AlignmentContext context(&aligned, &dataset.train);

  // Samples: correctly predicted pairs.
  std::vector<eval::FidelitySample> exea_samples;
  std::vector<eval::FidelitySample> random_samples;
  Rng rng(99);
  for (const kg::AlignedPair& pair : dataset.test) {
    if (exea_samples.size() >= 25) break;
    const auto& candidates = ranked.CandidatesFor(pair.source);
    if (candidates.empty() || candidates[0].target != pair.target) continue;
    explain::Explanation explanation =
        explainer.Explain(pair.source, pair.target, context);
    if (explanation.empty()) continue;

    eval::FidelitySample sample;
    sample.e1 = pair.source;
    sample.e2 = pair.target;
    sample.candidates1 = explanation.candidates1;
    sample.candidates2 = explanation.candidates2;
    sample.explanation1 = explanation.triples1;
    sample.explanation2 = explanation.triples2;
    exea_samples.push_back(sample);

    // Random explanation of the same size per side.
    eval::FidelitySample random = sample;
    random.explanation1.clear();
    random.explanation2.clear();
    for (size_t idx : rng.SampleWithoutReplacement(
             sample.candidates1.size(),
             std::min(sample.explanation1.size(),
                      sample.candidates1.size()))) {
      random.explanation1.push_back(sample.candidates1[idx]);
    }
    for (size_t idx : rng.SampleWithoutReplacement(
             sample.candidates2.size(),
             std::min(sample.explanation2.size(),
                      sample.candidates2.size()))) {
      random.explanation2.push_back(sample.candidates2[idx]);
    }
    random_samples.push_back(std::move(random));
  }
  ASSERT_GE(exea_samples.size(), 10u);

  eval::FidelityResult exea_result =
      eval::EvaluateFidelity(dataset, *model, exea_samples);
  eval::FidelityResult random_result =
      eval::EvaluateFidelity(dataset, *model, random_samples);
  // Matched sparsity by construction; ExEA must retain more predictions.
  EXPECT_NEAR(exea_result.sparsity, random_result.sparsity, 1e-9);
  EXPECT_GE(exea_result.fidelity, random_result.fidelity);
  EXPECT_GT(exea_result.fidelity, 0.4);
}

TEST(FidelityIntegrationTest, BaselineHarnessRunsEndToEnd) {
  // Smoke the full Table-I-style loop with one baseline (EALime) at a very
  // small sample count.
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);
  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(dataset, *model, config);
  explain::AlignmentContext context(&aligned, &dataset.train);
  baselines::PerturbedEmbedder embedder(dataset, *model);
  baselines::EALime lime(&embedder, /*num_samples=*/32);

  std::vector<eval::FidelitySample> samples;
  for (const kg::AlignedPair& pair : dataset.test) {
    if (samples.size() >= 8) break;
    const auto& candidates = ranked.CandidatesFor(pair.source);
    if (candidates.empty() || candidates[0].target != pair.target) continue;
    explain::Explanation explanation =
        explainer.Explain(pair.source, pair.target, context);
    if (explanation.empty()) continue;
    size_t budget = explanation.TripleCount();
    baselines::ExplainerResult result =
        lime.Explain(pair.source, pair.target, explanation.candidates1,
                     explanation.candidates2, budget);
    eval::FidelitySample sample;
    sample.e1 = pair.source;
    sample.e2 = pair.target;
    sample.candidates1 = explanation.candidates1;
    sample.candidates2 = explanation.candidates2;
    sample.explanation1 = result.triples1;
    sample.explanation2 = result.triples2;
    samples.push_back(std::move(sample));
  }
  ASSERT_GE(samples.size(), 4u);
  eval::FidelityResult result =
      eval::EvaluateFidelity(dataset, *model, samples);
  EXPECT_GE(result.fidelity, 0.0);
  EXPECT_LE(result.fidelity, 1.0);
  EXPECT_GT(result.sparsity, 0.0);
}

}  // namespace
}  // namespace exea
