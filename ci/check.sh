#!/usr/bin/env bash
# The repo's verification gate, runnable locally or in CI. Four stages:
#
#   1. tier-1: full configure + build + ctest (the acceptance bar every
#      change must keep green),
#   2. lint: exea_lint over src/ tools/ bench/ — the architecture families
#      (include layering vs tools/layers.txt, lock-discipline annotations,
#      header hygiene) plus nodiscard/discarded Status, raw
#      rand()/new/delete, std::cout in library code — with a machine-
#      readable copy of the findings written to build/lint.json, a
#      separately-gated untrusted-input taint scan (sources declared in
#      tools/lint_taint.txt; SARIF artifact build/lint_taint.sarif), the
#      exea_header_check target (every src/ header compiles standalone),
#      and clang-tidy (bugprone/performance/concurrency, see .clang-tidy)
#      when a clang-tidy binary is on PATH,
#   3. bench-load smoke: generate a tiny dataset, freeze a snapshot, and
#      drive the async serving core with 8 concurrent clients — the run
#      fails on any malformed or dropped response (exea_cli bench-load
#      exits non-zero),
#   4. tsan: a ThreadSanitizer pass over the concurrency-sensitive suites
#      — the worker-pool kernels (parallel_test), the obs metrics registry
#      (obs_test), the event loop / bounded queue (net_test), and the
#      serving engine's shared LRU cache / async request path / snapshot
#      hot-swap churn (serve_test, incl. SwapChurnWhileAlignsStayInFlight
#      and HotSwapUnderConcurrentLoadDropsNothing),
#   5. asan+ubsan: the full ctest suite under AddressSanitizer +
#      UndefinedBehaviorSanitizer with EXEA_DCHECKS=ON, so the contract
#      layer (src/util/check.h) is exercised together with the
#      instrumentation.
#
# Usage: ci/check.sh [--fast]   (--fast runs stages 1-3 only)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "=== tier 1: build + tests ==="
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "=== lint: exea_lint (cross-TU, baseline-gated) ==="
# The gate: a full repo scan with the incremental cache, diffed against
# the committed baseline in tools/lint_baseline.txt. Historical findings
# listed there are suppressed; any NEW finding fails the build. To adopt
# a finding deliberately, run
#   ./build/tools/exea_lint --root . --update-baseline
# and commit the baseline diff for review.
./build/tools/exea_lint --root . --cache build/lint_cache.txt
# Telemetry hygiene as its own named gate: ad-hoc counters / latency
# members outside src/obs/ fail the build even if someone narrows the
# default rule set above.
./build/tools/exea_lint --root . --rules obs-no-adhoc-metrics
# Machine-readable artifacts for dashboards / annotation bots. SARIF is
# the canonical one (code-scanning uploads); baselined findings appear
# there with an external suppression instead of vanishing. The gate run
# above already failed the build on new findings, so these re-scans
# (warm-cache, milliseconds) only record state.
./build/tools/exea_lint --root . --cache build/lint_cache.txt \
  --format=sarif > build/lint.sarif || true
./build/tools/exea_lint --root . --cache build/lint_cache.txt \
  --format=json > build/lint.json || true

echo "=== lint: untrusted-input taint (sources in tools/lint_taint.txt) ==="
# The taint family is its own named gate so a rule-set narrowing above
# can never silently drop it: every source->sink flow from wire/snapshot
# bytes must pass through EXEA_CHECK or the util::Parse* checked API, and
# the banned-parser rule keeps atoi/stoi/strtol off those paths entirely.
# No baseline here — taint findings are repaired, not waived in bulk.
# The fact tables are config-independent, so this re-scan runs warm off
# the cache populated by the gate run above.
./build/tools/exea_lint --root . --cache build/lint_cache.txt \
  --rules taint-unchecked-sink,atoi-on-untrusted
./build/tools/exea_lint --root . --cache build/lint_cache.txt \
  --rules taint-unchecked-sink,atoi-on-untrusted \
  --format=sarif > build/lint_taint.sarif || true

echo "=== lint: header self-sufficiency ==="
cmake --build build -j"${JOBS}" --target exea_header_check

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== lint: clang-tidy ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cc' | xargs -P "${JOBS}" -n 8 \
    clang-tidy -p build --quiet
else
  echo "=== lint: clang-tidy not found, skipping ==="
fi

echo "=== smoke: bench-load (8 concurrent clients, zero malformed) ==="
SMOKE_DIR="build/bench_load_smoke"
rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}/data"
./build/tools/exea_cli generate --benchmark ZH-EN --scale tiny \
  --out "${SMOKE_DIR}/data"
./build/tools/exea_cli snapshot --dir "${SMOKE_DIR}/data" --model MTransE \
  --epochs 30 --out "${SMOKE_DIR}/bundle"
# bench-load exits non-zero on any malformed or dropped response, so this
# line is the assertion, not just a report.
./build/tools/exea_cli bench-load --bundle "${SMOKE_DIR}/bundle" \
  --clients 8 --requests 25 --op mixed
# Hot-swap churn under the same load: a second bundle frozen from a
# different training run is swapped in and out 5 times mid-traffic. Any
# failed swap, malformed response, or dropped response fails the run.
./build/tools/exea_cli snapshot --dir "${SMOKE_DIR}/data" --model MTransE \
  --epochs 12 --out "${SMOKE_DIR}/bundle_alt"
./build/tools/exea_cli bench-load --bundle "${SMOKE_DIR}/bundle" \
  --clients 8 --requests 25 --op mixed \
  --swap-bundle "${SMOKE_DIR}/bundle_alt" --swaps 5

if [[ "${FAST}" == 1 ]]; then
  echo "=== fast mode: skipping sanitizer matrix ==="
  exit 0
fi

echo "=== tsan: parallel_test + obs_test + net_test + serve_test + simd_test + index_test ==="
cmake -B build-tsan -S . -DEXEA_SANITIZE=thread -DEXEA_DCHECKS=ON
cmake --build build-tsan -j"${JOBS}" --target \
  parallel_test obs_test net_test serve_test simd_test index_test
./build-tsan/tests/parallel_test
./build-tsan/tests/obs_test
./build-tsan/tests/net_test
./build-tsan/tests/serve_test
./build-tsan/tests/simd_test
./build-tsan/tests/index_test

echo "=== asan+ubsan: full ctest ==="
cmake -B build-asan -S . -DEXEA_SANITIZE=address,undefined -DEXEA_DCHECKS=ON
cmake --build build-asan -j"${JOBS}"
(cd build-asan && ctest --output-on-failure -j"${JOBS}")

echo "=== asan+ubsan: EXEA_SIMD=scalar leg (simd_test + index_test + determinism_test) ==="
# The forced-scalar leg proves the dispatch override path and the scalar
# kernels themselves are sanitizer-clean, and that the bit-identity tests
# hold when the process STARTS at the scalar level (not just when a test
# switches to it mid-run).
(cd build-asan && EXEA_SIMD=scalar ctest --output-on-failure -j"${JOBS}" \
  -R 'SimdTest|IndexTest|IndexEdgeTest|DeterminismTest')

echo "=== all checks passed ==="
