#include "baselines/anchor.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace exea::baselines {

ExplainerResult AnchorExplainer::Explain(
    kg::EntityId e1, kg::EntityId e2,
    const std::vector<kg::Triple>& candidates1,
    const std::vector<kg::Triple>& candidates2, size_t budget) {
  size_t n1 = candidates1.size();
  size_t n = n1 + candidates2.size();
  if (n == 0) return {};
  Rng rng(seed_ ^ (static_cast<uint64_t>(e1) << 32 | e2));

  // Classification threshold from the unperturbed prediction.
  double full_sim = embedder_->PerturbedSimilarity(e1, candidates1, e2,
                                                   candidates2);
  double threshold = threshold_ratio_ * full_sim;

  std::vector<bool> mask(n);
  auto classify = [&](const std::vector<bool>& m) {
    std::vector<kg::Triple> kept1;
    std::vector<kg::Triple> kept2;
    for (size_t i = 0; i < n1; ++i) {
      if (m[i]) kept1.push_back(candidates1[i]);
    }
    for (size_t i = n1; i < n; ++i) {
      if (m[i]) kept2.push_back(candidates2[i - n1]);
    }
    return embedder_->PerturbedSimilarity(e1, kept1, e2, kept2) >= threshold;
  };

  // Estimated precision of an anchor: fraction of random masks containing
  // the anchor that stay positive.
  std::vector<bool> anchored(n, false);
  auto precision = [&](const std::vector<bool>& anchor) {
    size_t positive = 0;
    for (size_t s = 0; s < samples_per_estimate_; ++s) {
      for (size_t i = 0; i < n; ++i) {
        mask[i] = anchor[i] || rng.Bernoulli(0.5);
      }
      if (classify(mask)) ++positive;
    }
    return static_cast<double>(positive) /
           static_cast<double>(samples_per_estimate_);
  };

  // Greedy anchor growth; `order` records the acquisition sequence, which
  // doubles as the importance ranking used to fill the budget.
  std::vector<double> scores(n, 0.0);
  double current_precision = precision(anchored);
  // Greedy growth is O(|anchor| * n * samples); cap the anchor size so the
  // search stays tractable in enlarged (second-order) candidate spaces.
  size_t max_anchor = std::min<size_t>(std::min(budget == 0 ? n : budget, n), 6);
  for (size_t step = 0; step < max_anchor; ++step) {
    if (current_precision >= precision_target_) break;
    double best_precision = -1.0;
    size_t best_feature = n;
    for (size_t f = 0; f < n; ++f) {
      if (anchored[f]) continue;
      anchored[f] = true;
      double p = precision(anchored);
      anchored[f] = false;
      if (p > best_precision) {
        best_precision = p;
        best_feature = f;
      }
    }
    if (best_feature == n) break;
    anchored[best_feature] = true;
    // Earlier acquisitions score higher.
    scores[best_feature] = static_cast<double>(n - step);
    current_precision = best_precision;
  }

  // Features never anchored get a weak score from a single-feature
  // precision probe so the budget can be filled deterministically.
  for (size_t f = 0; f < n; ++f) {
    if (scores[f] > 0.0) continue;
    std::vector<bool> solo(n, false);
    solo[f] = true;
    scores[f] = precision(solo) * 0.5;  // strictly below anchored scores
  }
  return SelectTopTriples(candidates1, candidates2, scores, budget);
}

}  // namespace exea::baselines
