// End-to-end tests of the exea_cli binary: each subcommand is exercised
// through a real process (std::system) against a generated on-disk
// dataset. The binary path is injected by CMake (EXEA_CLI_PATH).

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#ifndef EXEA_CLI_PATH
#error "EXEA_CLI_PATH must be defined by the build"
#endif

namespace {

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("exea_cli_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
    // Generate once for the whole suite.
    ASSERT_EQ(Run("generate --benchmark ZH-EN --scale tiny --out " +
                  dir_->string()),
              0);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  // Runs the CLI with `args`, capturing stdout into out_; returns the exit
  // code.
  static int Run(const std::string& args) {
    std::filesystem::path out_file = *dir_ / "stdout.txt";
    std::string command = std::string(EXEA_CLI_PATH) + " " + args + " > " +
                          out_file.string() + " 2>&1";
    int raw = std::system(command.c_str());
    std::ifstream in(out_file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out_ = buffer.str();
    return WEXITSTATUS(raw);
  }

  static std::string out_;
  static std::filesystem::path* dir_;
};

std::string CliTest::out_;
std::filesystem::path* CliTest::dir_ = nullptr;

TEST_F(CliTest, GenerateWritesAllFourFiles) {
  for (const char* file : {"kg1_triples.tsv", "kg2_triples.tsv",
                           "train_links.tsv", "test_links.tsv"}) {
    EXPECT_TRUE(std::filesystem::exists(*dir_ / file)) << file;
  }
}

TEST_F(CliTest, StatsReportsBothGraphs) {
  ASSERT_EQ(Run("stats --dir " + dir_->string()), 0);
  EXPECT_NE(out_.find("KG1: entities=160"), std::string::npos) << out_;
  EXPECT_NE(out_.find("KG2:"), std::string::npos);
  EXPECT_NE(out_.find("112 test"), std::string::npos);
}

TEST_F(CliTest, AlignTrainsAndWritesAlignment) {
  std::string pred = (*dir_ / "pred.tsv").string();
  ASSERT_EQ(Run("align --dir " + dir_->string() +
                " --model MTransE --epochs 30 --out " + pred),
            0);
  EXPECT_NE(out_.find("accuracy"), std::string::npos) << out_;
  EXPECT_TRUE(std::filesystem::exists(pred));
}

TEST_F(CliTest, EvaluateReadsBackAlignment) {
  std::string pred = (*dir_ / "pred2.tsv").string();
  ASSERT_EQ(Run("align --dir " + dir_->string() +
                " --model MTransE --epochs 30 --inference stable --out " +
                pred),
            0);
  ASSERT_EQ(Run("evaluate --dir " + dir_->string() + " --alignment " + pred),
            0);
  EXPECT_NE(out_.find("accuracy:"), std::string::npos) << out_;
  EXPECT_NE(out_.find("1-to-1:   yes"), std::string::npos) << out_;
}

TEST_F(CliTest, RepairReportsImprovement) {
  ASSERT_EQ(
      Run("repair --dir " + dir_->string() + " --model MTransE --epochs 40"),
      0);
  EXPECT_NE(out_.find("base accuracy"), std::string::npos) << out_;
  EXPECT_NE(out_.find("repaired accuracy"), std::string::npos);
  EXPECT_NE(out_.find("delta +"), std::string::npos)
      << "repair should improve accuracy: " << out_;
}

TEST_F(CliTest, ExplainJsonFormat) {
  // Pick a source entity name from the test links file.
  std::ifstream links(*dir_ / "test_links.tsv");
  std::string line;
  ASSERT_TRUE(std::getline(links, line));
  std::string source = line.substr(0, line.find('\t'));
  ASSERT_EQ(Run("explain --dir " + dir_->string() +
                " --model MTransE --epochs 30 --source '" + source +
                "' --format json"),
            0);
  EXPECT_NE(out_.find("\"explanation\":"), std::string::npos) << out_;
  EXPECT_NE(out_.find("\"adg\":"), std::string::npos);
}

TEST_F(CliTest, ExplainDotFormat) {
  std::ifstream links(*dir_ / "test_links.tsv");
  std::string line;
  ASSERT_TRUE(std::getline(links, line));
  std::string source = line.substr(0, line.find('\t'));
  ASSERT_EQ(Run("explain --dir " + dir_->string() +
                " --model MTransE --epochs 30 --source '" + source +
                "' --format dot"),
            0);
  EXPECT_NE(out_.find("digraph explanation"), std::string::npos) << out_;
  EXPECT_NE(out_.find("digraph adg"), std::string::npos);
}

TEST_F(CliTest, AuditRanksSuspectsFirst) {
  ASSERT_EQ(Run("audit --dir " + dir_->string() +
                " --model MTransE --epochs 30 --limit 3"),
            0);
  EXPECT_NE(out_.find("audited"), std::string::npos) << out_;
  EXPECT_NE(out_.find("suspect"), std::string::npos);
  EXPECT_NE(out_.find("#1 ("), std::string::npos);
}

TEST_F(CliTest, AuditVerbalizes) {
  ASSERT_EQ(Run("audit --dir " + dir_->string() +
                " --model MTransE --epochs 30 --limit 1 --verbalize"),
            0);
  EXPECT_NE(out_.find("was aligned with"), std::string::npos) << out_;
}

TEST_F(CliTest, SnapshotThenServeAnswersQueries) {
  std::string bundle = (*dir_ / "bundle").string();
  ASSERT_EQ(Run("snapshot --dir " + dir_->string() +
                " --model MTransE --epochs 30 --out " + bundle),
            0);
  EXPECT_NE(out_.find("wrote snapshot"), std::string::npos) << out_;
  EXPECT_TRUE(std::filesystem::exists(bundle + "/MANIFEST"));

  // Drive one NDJSON session through the server via a shell pipe.
  std::ifstream links(*dir_ / "test_links.tsv");
  std::string line;
  ASSERT_TRUE(std::getline(links, line));
  std::string source = line.substr(0, line.find('\t'));
  std::filesystem::path out_file = *dir_ / "serve_out.txt";
  std::string command =
      "printf '{\"op\":\"align\",\"entity\":\"" + source +
      "\"}\\n{\"op\":\"shutdown\"}\\n' | " + std::string(EXEA_CLI_PATH) +
      " serve --bundle " + bundle + " > " + out_file.string() + " 2>/dev/null";
  ASSERT_EQ(WEXITSTATUS(std::system(command.c_str())), 0);
  std::ifstream in(out_file);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string session = buffer.str();
  EXPECT_NE(session.find("{\"ok\":true,\"op\":\"align\""), std::string::npos)
      << session;
  EXPECT_NE(session.find("{\"ok\":true,\"op\":\"shutdown\"}"),
            std::string::npos);
}

TEST_F(CliTest, ServeRejectsMissingBundle) {
  EXPECT_NE(Run("serve --bundle /no/such/bundle < /dev/null"), 0);
  EXPECT_NE(out_.find("MANIFEST"), std::string::npos) << out_;
}

// The load generator self-hosts an async server from a bundle and exits
// non-zero on any malformed or unanswered response — so a zero exit with
// 8 concurrent clients IS the acceptance check for the async core.
TEST_F(CliTest, BenchLoadSelfHostedServesEveryClientCleanly) {
  std::string bundle = (*dir_ / "load_bundle").string();
  ASSERT_EQ(Run("snapshot --dir " + dir_->string() +
                " --model MTransE --epochs 30 --out " + bundle),
            0);
  ASSERT_EQ(Run("bench-load --bundle " + bundle +
                " --clients 8 --requests 10 --op mixed"),
            0)
      << out_;
  EXPECT_NE(out_.find("malformed=0"), std::string::npos) << out_;
  EXPECT_NE(out_.find("missing=0"), std::string::npos) << out_;
  EXPECT_NE(out_.find("rejected=0"), std::string::npos) << out_;
  EXPECT_NE(out_.find("qps="), std::string::npos) << out_;
}

TEST_F(CliTest, EverySubcommandHasHelp) {
  for (const char* command :
       {"generate", "stats", "align", "repair", "explain", "evaluate",
        "audit", "snapshot", "serve", "swap", "bench-load"}) {
    ASSERT_EQ(Run(std::string(command) + " --help"), 0) << command;
    EXPECT_NE(out_.find(std::string("exea_cli ") + command),
              std::string::npos)
        << command << " help: " << out_;
  }
  ASSERT_EQ(Run("--help"), 0);
  EXPECT_NE(out_.find("usage: exea_cli"), std::string::npos) << out_;
}

TEST_F(CliTest, VersionPrintsSnapshotFormatVersion) {
  ASSERT_EQ(Run("--version"), 0);
  EXPECT_NE(out_.find("snapshot format version"), std::string::npos) << out_;
}

TEST_F(CliTest, UnknownSubcommandFails) {
  EXPECT_NE(Run("frobnicate"), 0);
  EXPECT_NE(Run("frobnicate --help"), 0);  // no help for unknown commands
}

TEST_F(CliTest, NegativeThreadsFlagFails) {
  EXPECT_NE(Run("stats --dir " + dir_->string() + " --threads -1"), 0);
  EXPECT_NE(out_.find("--threads"), std::string::npos) << out_;
}

TEST_F(CliTest, MissingRequiredFlagFails) {
  EXPECT_NE(Run("align --model MTransE"), 0);  // no --dir
  EXPECT_NE(Run("explain --dir " + dir_->string() + " --model MTransE"),
            0);  // no --source
}

TEST_F(CliTest, UnknownEntityFails) {
  EXPECT_NE(Run("explain --dir " + dir_->string() +
                " --model MTransE --source no/such_entity"),
            0);
}

}  // namespace
