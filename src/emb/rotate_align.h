// RotAlign — a RotatE-style EA model, included as the extensibility
// demonstration the framework claims (the paper: "ExEA can be applied to
// any embedding-based EA model"; docs/extending.md walks through this
// model as the worked example).
//
// RotatE (Sun et al., ICLR 2019) models a relation as a rotation in the
// complex plane: t ≈ h ∘ r with |r_i| = 1, scoring f(h,r,t) =
// ||h ∘ r - t||. RotAlign trains one RotatE objective per KG plus the
// shared-space seed calibration used by the other translation-family
// models here. Entity embeddings are complex vectors stored as
// [re_0..re_{d/2-1}, im_0..im_{d/2-1}]; relation embeddings store phases'
// cos/sin in the same layout.

#ifndef EXEA_EMB_ROTATE_ALIGN_H_
#define EXEA_EMB_ROTATE_ALIGN_H_

#include <memory>
#include <string>

#include "emb/model.h"

namespace exea::emb {

class RotAlign : public EAModel {
 public:
  explicit RotAlign(const TrainConfig& config) : config_(config) {}

  std::string name() const override { return "RotAlign"; }
  void Train(const data::EaDataset& dataset) override;
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override;
  bool HasRelationEmbeddings() const override { return true; }
  const la::Matrix& RelationEmbeddings(kg::KgSide side) const override;
  bool IsTranslationBased() const override { return true; }
  std::unique_ptr<EAModel> CloneUntrained() const override {
    return std::make_unique<RotAlign>(config_);
  }

 private:
  TrainConfig config_;
  la::Matrix ent1_, ent2_;
  la::Matrix rel1_, rel2_;  // unit complex rotations (cos | sin layout)
};

}  // namespace exea::emb

#endif  // EXEA_EMB_ROTATE_ALIGN_H_
