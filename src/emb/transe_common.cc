#include "emb/transe_common.h"

#include "util/logging.h"

namespace exea::emb::internal_transe {

float TripleScore(const ParamRef& h, const ParamRef& r, const ParamRef& t,
                  std::vector<float>& residual) {
  size_t dim = h.table->cols();
  residual.resize(dim);
  const float* hv = h.values();
  const float* rv = r.values();
  const float* tv = t.values();
  float score = 0.0f;
  for (size_t c = 0; c < dim; ++c) {
    float g = hv[c] + rv[c] - tv[c];
    residual[c] = g;
    score += g * g;
  }
  return score;
}

void ApplyTripleGradient(const ParamRef& h, const ParamRef& r,
                         const ParamRef& t, const std::vector<float>& residual,
                         float sign) {
  size_t dim = h.table->cols();
  EXEA_CHECK_EQ(residual.size(), dim);
  std::vector<float> grad(dim);
  for (size_t c = 0; c < dim; ++c) grad[c] = sign * 2.0f * residual[c];
  h.opt->Update(h.row, grad.data());
  r.opt->Update(r.row, grad.data());
  for (size_t c = 0; c < dim; ++c) grad[c] = -grad[c];
  t.opt->Update(t.row, grad.data());
}

}  // namespace exea::emb::internal_transe
