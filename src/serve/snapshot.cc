#include "serve/snapshot.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>
#include <vector>

#include "data/dataset_io.h"
#include "kg/kg_io.h"
#include "la/matrix_io.h"
#include "util/check.h"
#include "util/parse.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace exea::serve {
namespace {

// Payload files, relative to the bundle root, in manifest order. The
// relation-embedding pair is appended only when present.
const char* const kDictionaryFiles[] = {
    "kg1_entities.tsv", "kg1_relations.tsv", "kg2_entities.tsv",
    "kg2_relations.tsv"};
const char* const kDatasetFiles[] = {
    "dataset/kg1_triples.tsv", "dataset/kg2_triples.tsv",
    "dataset/train_links.tsv", "dataset/test_links.tsv"};
const char* const kOptionalDatasetFiles[] = {"dataset/attr_triples_1.tsv",
                                             "dataset/attr_triples_2.tsv"};

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

const char kIndexFileName[] = "index.ivf";

// The payload files this bundle actually contains, in deterministic order.
std::vector<std::string> PayloadFiles(const SnapshotMeta& meta,
                                      const std::string& dir) {
  std::vector<std::string> files;
  for (const char* f : kDictionaryFiles) files.push_back(f);
  for (const char* f : kDatasetFiles) files.push_back(f);
  for (const char* f : kOptionalDatasetFiles) {
    if (std::filesystem::exists(dir + "/" + f)) files.push_back(f);
  }
  files.push_back("emb_ent1.txt");
  files.push_back("emb_ent2.txt");
  if (meta.has_relation_embeddings) {
    files.push_back("emb_rel1.txt");
    files.push_back("emb_rel2.txt");
  }
  files.push_back("alignment.tsv");
  files.push_back("repaired.tsv");
  if (meta.index == "ivf") files.push_back(kIndexFileName);
  // The manifest's integrity story assumes one checksum line per distinct
  // payload; a duplicate would let a corrupt file hide behind its twin.
  EXEA_DCHECK_EQ(std::set<std::string>(files.begin(), files.end()).size(),
                 files.size());
  return files;
}

Status CheckConsistency(const SnapshotBundle& bundle) {
  if (bundle.emb1.rows() != bundle.dataset.kg1.num_entities() ||
      bundle.emb2.rows() != bundle.dataset.kg2.num_entities()) {
    return Status::InvalidArgument(StrFormat(
        "embedding rows do not match entity counts: %zu/%zu vs %zu/%zu",
        bundle.emb1.rows(), bundle.emb2.rows(),
        bundle.dataset.kg1.num_entities(),
        bundle.dataset.kg2.num_entities()));
  }
  if (bundle.meta.has_relation_embeddings &&
      (bundle.rel1.rows() != bundle.dataset.kg1.num_relations() ||
       bundle.rel2.rows() != bundle.dataset.kg2.num_relations())) {
    return Status::InvalidArgument(
        "relation-embedding rows do not match relation counts");
  }
  // The index key is closed-world: an unrecognized strategy must fail
  // here, not degrade to a silent exact scan that hides the mismatch.
  if (bundle.meta.index == "ivf") {
    EXEA_RETURN_IF_ERROR(la::ValidateIvfIndexData(
        bundle.ivf, bundle.emb2.rows(), bundle.emb2.cols()));
  } else if (bundle.meta.index != "exact") {
    return Status::InvalidArgument("unknown snapshot index strategy: " +
                                   bundle.meta.index);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<uint64_t> ChecksumFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for checksum: " + path);
  uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a 64 offset basis
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(buffer[i]);
      hash *= 0x100000001B3ULL;  // FNV prime
    }
    if (n < static_cast<std::streamsize>(sizeof(buffer))) break;
  }
  return hash;
}

Status WriteSnapshot(const SnapshotBundle& bundle, const std::string& dir) {
  // A bundle stamped with a foreign version would be rejected by every
  // reader (or worse, misread by one): refuse to write it at all.
  EXEA_CHECK_EQ(bundle.meta.format_version, kSnapshotFormatVersion)
      << "refusing to write a bundle with a foreign format version";
  EXEA_RETURN_IF_ERROR(CheckConsistency(bundle));
  std::error_code ec;
  std::filesystem::create_directories(dir + "/dataset", ec);
  if (ec) {
    return Status::IoError("cannot create bundle directory: " + dir + ": " +
                           ec.message());
  }

  // Dictionaries first (they pin the id spaces at load time)…
  EXEA_RETURN_IF_ERROR(kg::SaveDictionary(
      bundle.dataset.kg1.entity_dictionary(), dir + "/kg1_entities.tsv"));
  EXEA_RETURN_IF_ERROR(kg::SaveDictionary(
      bundle.dataset.kg1.relation_dictionary(), dir + "/kg1_relations.tsv"));
  EXEA_RETURN_IF_ERROR(kg::SaveDictionary(
      bundle.dataset.kg2.entity_dictionary(), dir + "/kg2_entities.tsv"));
  EXEA_RETURN_IF_ERROR(kg::SaveDictionary(
      bundle.dataset.kg2.relation_dictionary(), dir + "/kg2_relations.tsv"));
  // …then the dataset, embeddings, and alignment payloads.
  EXEA_RETURN_IF_ERROR(data::SaveDataset(bundle.dataset, dir + "/dataset"));
  EXEA_RETURN_IF_ERROR(la::SaveMatrix(bundle.emb1, dir + "/emb_ent1.txt"));
  EXEA_RETURN_IF_ERROR(la::SaveMatrix(bundle.emb2, dir + "/emb_ent2.txt"));
  if (bundle.meta.has_relation_embeddings) {
    EXEA_RETURN_IF_ERROR(la::SaveMatrix(bundle.rel1, dir + "/emb_rel1.txt"));
    EXEA_RETURN_IF_ERROR(la::SaveMatrix(bundle.rel2, dir + "/emb_rel2.txt"));
  }
  EXEA_RETURN_IF_ERROR(kg::SaveAlignment(bundle.alignment, bundle.dataset.kg1,
                                         bundle.dataset.kg2,
                                         dir + "/alignment.tsv"));
  EXEA_RETURN_IF_ERROR(kg::SaveAlignment(bundle.repaired, bundle.dataset.kg1,
                                         bundle.dataset.kg2,
                                         dir + "/repaired.tsv"));
  if (bundle.meta.index == "ivf") {
    EXEA_RETURN_IF_ERROR(
        la::SaveIvfIndexData(bundle.ivf, dir + "/" + kIndexFileName));
  }

  // Manifest last, so a crashed write never leaves a bundle that passes
  // verification.
  std::vector<std::vector<std::string>> rows;
  rows.push_back(
      {"exea_snapshot_version", std::to_string(bundle.meta.format_version)});
  rows.push_back({"model", bundle.meta.model_name});
  rows.push_back({"dataset", bundle.meta.dataset_name});
  rows.push_back({"inference", bundle.meta.inference});
  rows.push_back({"relation_embeddings",
                  bundle.meta.has_relation_embeddings ? "1" : "0"});
  rows.push_back({"repair", bundle.meta.has_repair ? "1" : "0"});
  rows.push_back({"index", bundle.meta.index});
  for (const std::string& file : PayloadFiles(bundle.meta, dir)) {
    auto checksum = ChecksumFile(dir + "/" + file);
    if (!checksum.ok()) return checksum.status();
    rows.push_back({"file", file, StrFormat("%016llx",
                                            static_cast<unsigned long long>(
                                                *checksum))});
  }
  return WriteTsv(ManifestPath(dir), rows);
}

StatusOr<std::unique_ptr<SnapshotBundle>> ReadSnapshot(
    const std::string& dir) {
  auto manifest = ReadTsv(ManifestPath(dir), 2);
  if (!manifest.ok()) {
    return Status::IoError("not a snapshot bundle (no readable MANIFEST): " +
                           dir);
  }
  auto bundle = std::make_unique<SnapshotBundle>();
  SnapshotMeta& meta = bundle->meta;
  meta.format_version = -1;
  std::vector<std::pair<std::string, uint64_t>> checksums;
  for (const auto& row : *manifest) {
    const std::string& key = row[0];
    if (key == "exea_snapshot_version") {
      // The MANIFEST is untrusted disk input. atoi here used to accept
      // "1junk" as version 1 and mapped overflow/garbage to 0; the
      // checked parse rejects anything that is not entirely a small
      // non-negative integer before the version gate below runs.
      int32_t version = -1;
      Status parsed = util::ParseInt32(row[1], 0, 1'000'000, &version);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            "MANIFEST exea_snapshot_version is malformed (" +
            parsed.message() + "): " + dir);
      }
      meta.format_version = version;
    } else if (key == "model") {
      meta.model_name = row[1];
    } else if (key == "dataset") {
      meta.dataset_name = row[1];
    } else if (key == "inference") {
      meta.inference = row[1];
    } else if (key == "relation_embeddings") {
      meta.has_relation_embeddings = row[1] == "1";
    } else if (key == "repair") {
      meta.has_repair = row[1] == "1";
    } else if (key == "index") {
      meta.index = row[1];
    } else if (key == "file") {
      if (row.size() < 3) {
        return Status::InvalidArgument("malformed checksum line in MANIFEST");
      }
      uint64_t checksum = 0;
      Status parsed = util::ParseUint64Hex(row[2], &checksum);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            "malformed checksum in MANIFEST (" + parsed.message() +
            "): " + dir);
      }
      checksums.emplace_back(row[1], checksum);
    }
    // Unknown keys are ignored: minor-version additions stay readable.
  }
  // Version gate before anything else is interpreted.
  if (meta.format_version != kSnapshotFormatVersion) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot format version %d, this build reads version %d: %s",
        meta.format_version, kSnapshotFormatVersion, dir.c_str()));
  }
  if (checksums.empty()) {
    return Status::InvalidArgument("MANIFEST lists no payload files: " + dir);
  }
  for (const auto& [file, expected] : checksums) {
    auto actual = ChecksumFile(dir + "/" + file);
    if (!actual.ok()) return actual.status();
    if (*actual != expected) {
      return Status::InvalidArgument(
          StrFormat("checksum mismatch (corrupt bundle): %s/%s", dir.c_str(),
                    file.c_str()));
    }
  }

  // Dictionaries → id-stable dataset load.
  data::DatasetDictionaries dicts;
  for (auto& [names, file] :
       {std::pair<std::vector<std::string>*, const char*>{
            &dicts.entities1, "kg1_entities.tsv"},
        {&dicts.relations1, "kg1_relations.tsv"},
        {&dicts.entities2, "kg2_entities.tsv"},
        {&dicts.relations2, "kg2_relations.tsv"}}) {
    auto loaded = kg::LoadDictionaryNames(dir + "/" + file);
    if (!loaded.ok()) return loaded.status();
    *names = std::move(*loaded);
  }
  auto dataset =
      data::LoadDataset(dir + "/dataset", meta.dataset_name, dicts);
  if (!dataset.ok()) return dataset.status();
  bundle->dataset = std::move(*dataset);

  auto emb1 = la::LoadMatrix(dir + "/emb_ent1.txt");
  if (!emb1.ok()) return emb1.status();
  bundle->emb1 = std::move(*emb1);
  auto emb2 = la::LoadMatrix(dir + "/emb_ent2.txt");
  if (!emb2.ok()) return emb2.status();
  bundle->emb2 = std::move(*emb2);
  if (meta.has_relation_embeddings) {
    auto rel1 = la::LoadMatrix(dir + "/emb_rel1.txt");
    if (!rel1.ok()) return rel1.status();
    bundle->rel1 = std::move(*rel1);
    auto rel2 = la::LoadMatrix(dir + "/emb_rel2.txt");
    if (!rel2.ok()) return rel2.status();
    bundle->rel2 = std::move(*rel2);
  }

  auto alignment = kg::LoadAlignment(dir + "/alignment.tsv",
                                     bundle->dataset.kg1, bundle->dataset.kg2);
  if (!alignment.ok()) return alignment.status();
  bundle->alignment = std::move(*alignment);
  auto repaired = kg::LoadAlignment(dir + "/repaired.tsv",
                                    bundle->dataset.kg1, bundle->dataset.kg2);
  if (!repaired.ok()) return repaired.status();
  bundle->repaired = std::move(*repaired);

  if (meta.index == "ivf") {
    auto ivf = la::LoadIvfIndexData(dir + "/" + kIndexFileName);
    if (!ivf.ok()) return ivf.status();
    bundle->ivf = std::move(*ivf);
  }

  // CheckConsistency also validates the loaded index against emb2, so a
  // checksum-intact but structurally hostile index.ivf is rejected here
  // with a clean Status instead of reaching a query.
  EXEA_RETURN_IF_ERROR(CheckConsistency(*bundle));
  return bundle;
}

std::string SnapshotModel::name() const {
  return bundle_->meta.model_name + "@snapshot";
}

void SnapshotModel::Train(const data::EaDataset& /*dataset*/) {
  EXEA_LOG(Fatal) << "SnapshotModel is a frozen serving view; train the "
                     "underlying model offline and freeze a new bundle";
}

const la::Matrix& SnapshotModel::EntityEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? bundle_->emb1 : bundle_->emb2;
}

const la::Matrix& SnapshotModel::RelationEmbeddings(kg::KgSide side) const {
  EXEA_CHECK(bundle_->meta.has_relation_embeddings)
      << "bundle was frozen from a model without relation embeddings";
  return side == kg::KgSide::kSource ? bundle_->rel1 : bundle_->rel2;
}

std::unique_ptr<emb::EAModel> SnapshotModel::CloneUntrained() const {
  EXEA_LOG(Fatal) << "SnapshotModel cannot be retrained (serving-only view)";
  return nullptr;
}

}  // namespace exea::serve
