#include "repair/pipeline.h"

#include "kg/alignment.h"
#include "obs/span.h"
#include "util/logging.h"

namespace exea::repair {

RepairPipeline::RepairPipeline(const explain::ExeaExplainer& explainer,
                               const RepairOptions& options)
    : explainer_(&explainer), options_(options) {
  if (options_.enable_cr1) {
    obs::Span span("repair.mine_rules");
    checker_ = RelationConflictChecker::Mine(explainer.dataset(),
                                             explainer.model());
  }
}

double RepairPipeline::PairConfidence(
    kg::EntityId e1, kg::EntityId e2,
    const explain::AlignmentContext& context) const {
  explain::Explanation explanation = explainer_->Explain(e1, e2, context);
  explain::Adg adg = explainer_->BuildAdg(explanation);
  if (checker_) {
    prune_count_ +=
        checker_->PruneConflicts(explanation, adg, explainer_->config());
  }
  return adg.confidence;
}

RepairReport RepairPipeline::Run() {
  emb::RankedSimilarity ranked =
      emb::RankTestEntities(explainer_->model(), explainer_->dataset());
  kg::AlignmentSet base = emb::GreedyAlign(ranked);
  return Run(base, ranked);
}

RepairReport RepairPipeline::RunIterative(size_t max_rounds) {
  EXEA_CHECK_GE(max_rounds, 1u);
  emb::RankedSimilarity ranked =
      emb::RankTestEntities(explainer_->model(), explainer_->dataset());
  kg::AlignmentSet base = emb::GreedyAlign(ranked);

  RepairReport report = Run(base, ranked);
  for (size_t round = 1; round < max_rounds; ++round) {
    RepairReport next = Run(report.repaired_alignment, ranked);
    bool converged = next.repaired_alignment.SortedPairs() ==
                     report.repaired_alignment.SortedPairs();
    // Keep the original base for reporting.
    next.base_alignment = report.base_alignment;
    next.base_accuracy = report.base_accuracy;
    report = std::move(next);
    if (converged) break;
  }
  report.base_alignment = base;
  report.base_accuracy =
      kg::AlignmentAccuracy(base, explainer_->dataset().test_gold);
  return report;
}

RepairReport RepairPipeline::Run(const kg::AlignmentSet& base,
                                 const emb::RankedSimilarity& ranked) {
  obs::Span run_span("repair.run");
  const data::EaDataset& dataset = explainer_->dataset();
  const explain::ExeaConfig& config = explainer_->config();
  prune_count_ = 0;

  RepairReport report;
  report.base_alignment = base;
  report.base_accuracy = kg::AlignmentAccuracy(base, dataset.test_gold);

  ConfidenceFn confidence = [this](kg::EntityId e1, kg::EntityId e2,
                                   const explain::AlignmentContext& context) {
    return PairConfidence(e1, e2, context);
  };

  kg::AlignmentSet current = base;
  std::vector<kg::EntityId> unaligned;

  if (options_.enable_cr2) {
    obs::Span span("one_to_many");
    OneToManyResult algo1 = RepairOneToMany(
        current, dataset.train, ranked, confidence, config.repair_top_k);
    report.one_to_many_conflicts = algo1.initial_conflicts;
    report.one_to_many_swaps = algo1.swaps;
    current = std::move(algo1.alignment);
    unaligned = std::move(algo1.unaligned);
  }

  if (options_.enable_cr3) {
    obs::Span span("low_confidence");
    LowConfidenceOptions lc_options;
    lc_options.top_k = config.repair_top_k;
    lc_options.score_alpha = config.score_alpha;
    lc_options.beta = config.LowConfidenceBeta();
    LowConfidenceResult algo2 =
        RepairLowConfidence(current, std::move(unaligned), dataset.train,
                            ranked, confidence, dataset, lc_options);
    report.low_confidence_removed = algo2.low_confidence_removed;
    report.low_confidence_swaps = algo2.swaps;
    report.greedy_fallback_matches = algo2.final_greedy_matches;
    current = std::move(algo2.alignment);
  }

  report.relation_conflict_prunes = prune_count_;
  report.repaired_alignment = std::move(current);
  report.repaired_accuracy =
      kg::AlignmentAccuracy(report.repaired_alignment, dataset.test_gold);
  return report;
}

}  // namespace exea::repair
