#include "la/matrix_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace exea::la {

Status SaveMatrix(const Matrix& matrix, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::fprintf(out, "%zu %zu\n", matrix.rows(), matrix.cols());
  for (size_t r = 0; r < matrix.rows(); ++r) {
    const float* row = matrix.Row(r);
    for (size_t c = 0; c < matrix.cols(); ++c) {
      std::fprintf(out, "%s%.9g", c == 0 ? "" : " ",
                   static_cast<double>(row[c]));
    }
    std::fprintf(out, "\n");
  }
  bool ok = std::fflush(out) == 0;
  std::fclose(out);
  if (!ok) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Matrix> LoadMatrix(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  size_t rows = 0;
  size_t cols = 0;
  if (!(in >> rows >> cols)) {
    return Status::InvalidArgument("bad matrix header in " + path);
  }
  // A garbled header can decode to absurd dimensions; refuse before the
  // allocation instead of aborting inside it. The element budget caps the
  // buffer at kMaxElements * sizeof(float) = 400 MB, far beyond any
  // embedding table this library produces. The product is tested by
  // division so rows * cols cannot wrap around 64 bits and sneak a huge
  // allocation past the guard.
  constexpr uint64_t kMaxElements = 100'000'000;
  if (rows > kMaxElements || cols > kMaxElements ||
      (cols != 0 && rows > kMaxElements / cols)) {
    std::ostringstream msg;
    msg << path << ": implausible matrix dimensions " << rows << "x" << cols;
    return Status::InvalidArgument(msg.str());
  }
  Matrix matrix(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* row = matrix.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      if (!(in >> row[c])) {
        std::ostringstream msg;
        msg << path << ": truncated at row " << r << " col " << c;
        return Status::InvalidArgument(msg.str());
      }
    }
  }
  return matrix;
}

}  // namespace exea::la
