// Configuration inputs for exea_lint: the module layer DAG
// (tools/layers.txt) and the concurrency model (tools/lint_concurrency.txt)
// that names the event-loop entry points, the blocking call set, and the
// fd/resource acquirers the lifecycle rule tracks.

#ifndef EXEA_TOOLS_LINT_CONFIG_H_
#define EXEA_TOOLS_LINT_CONFIG_H_

#include <filesystem>
#include <map>
#include <set>
#include <string>

namespace lint {

// The declared module partial order, parsed from tools/layers.txt. Grammar:
// '#' starts a comment; a nonblank line is either a chain "a < b < c"
// (each '<' declares "left is below right") or a single module name that
// participates in no ordering. `below[m]` is the transitive set of modules
// strictly below m; an include from module A into module B is legal iff
// B == A or B ∈ below[A].
struct LayerGraph {
  std::set<std::string> modules;
  std::map<std::string, std::set<std::string>> below;  // transitive closure
};

// Parses `path` into `*graph`. Returns false with `*error` set on a syntax
// error or a cycle in the declared order — both are configuration errors
// (exit 2), not lint findings.
bool ParseLayers(const std::filesystem::path& path, LayerGraph* graph,
                 std::string* error);

// The concurrency model. Grammar (whitespace-separated, '#' comments):
//
//   entry <qualified-fn> ...     event-loop entry points; functions whose
//                                fully qualified name ends with the given
//                                ::-separated suffix seed the reachability
//                                walk (e.g. exea::net::EventLoop::Run)
//   blocking <name> ...          call base names treated as blocking when
//                                reached from an entry (adds to defaults)
//   safe <name> ...              functions asserted nonblocking: the walk
//                                neither descends into them nor checks
//                                their bodies
//   acquire <name> ...           fd/resource acquirer call names tracked by
//                                the fd-leak rule (adds to defaults)
//
// The event-loop family only runs when at least one entry is configured;
// fd-leak always runs with the built-in acquirer defaults.
struct ConcurrencyConfig {
  std::set<std::string> entries;   // qualified-name suffixes
  std::set<std::string> blocking;  // call base names
  std::set<std::string> safe;      // fn base names the walk treats as leaves
  std::set<std::string> acquire;   // fd/resource acquirer base names
  std::string path;                // for diagnostics
  bool loaded = false;

  // Installs the built-in blocking + acquirer defaults (always applied;
  // the config file extends them).
  void AddDefaults();
};

// Parses `path` into `*config` (on top of the defaults). Returns false
// with `*error` set on a malformed line — a configuration error (exit 2).
bool ParseConcurrency(const std::filesystem::path& path,
                      ConcurrencyConfig* config, std::string* error);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_CONFIG_H_
