#ifndef TAINT_SERVE_HANDLER_H_
#define TAINT_SERVE_HANDLER_H_

#include <string>
#include <vector>

namespace demo::serve {

// Parses one wire record and prepares a buffer for its payload.
void HandleRequest(const std::string& raw);

// Routes a raw wire line; `wire` is a configured tainted-param.
void Route(const std::string& wire, std::vector<int>& out);

}  // namespace demo::serve

#endif  // TAINT_SERVE_HANDLER_H_
