// A bounded MPMC FIFO queue — the admission-control buffer between the
// event loop and the serving workers.
//
// The capacity bound is the backpressure mechanism: TryPush never blocks
// and returns false when the queue is full, so the (single-threaded,
// latency-critical) event loop can reject a request immediately instead
// of buffering unbounded work for a saturated worker pool. Pop blocks
// until an item arrives or the queue is closed; Close drains nothing —
// items already queued are still handed out, and Pop returns false only
// once the queue is both closed and empty. That ordering is what lets a
// shutdown answer every request that was admitted before it.

#ifndef EXEA_NET_BOUNDED_QUEUE_H_
#define EXEA_NET_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/check.h"

namespace exea::net {

template <typename T>
class BoundedQueue {
 public:
  // A zero capacity would reject every push — a configuration error, not
  // an admission policy.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    EXEA_CHECK_GT(capacity, 0u) << "BoundedQueue capacity must be positive";
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues `item` unless the queue is full or closed. Never blocks.
  [[nodiscard]] bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_cv_.notify_one();
    return true;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // drained (false).
  [[nodiscard]] bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Rejects all future pushes and wakes every blocked Pop. Items already
  // queued remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;

  // mu_ protects everything declared after it (the class convention the
  // lock-discipline lint pass enforces).
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;  // signalled on push / Close
  std::deque<T> items_ EXEA_GUARDED_BY(mu_);
  bool closed_ EXEA_GUARDED_BY(mu_) = false;
};

}  // namespace exea::net

#endif  // EXEA_NET_BOUNDED_QUEUE_H_
